// T3 — SEPT minimizes expected total flowtime on identical parallel
// machines with exponential processing times [20].
//
// Exact subset-DP evaluation: SEPT vs the dynamic optimum vs LEPT/random
// priorities, across random instances and machine counts.
#include <string>

#include "batch/job.hpp"
#include "batch/subset_dp.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("T3: parallel machines E[sum C_j], exponential jobs — SEPT [20]");
  table.columns({"instance", "n", "m", "SEPT", "OPT (DP)", "LEPT", "random",
                 "SEPT=OPT"});

  Rng master(42);
  bool all_match = true;
  double worst_lept = 1.0;
  for (int inst = 0; inst < 8; ++inst) {
    Rng rng = master.stream(inst);
    const std::size_t n = 6 + rng.below(5);  // 6..10
    const unsigned m = 2 + static_cast<unsigned>(rng.below(2));
    std::vector<ExpJob> jobs(n);
    for (auto& j : jobs) j.rate = rng.uniform(0.3, 3.0);

    const double sept = exp_dp_sept(jobs, m, ExpObjective::kFlowtime);
    const double opt = exp_dp_optimal(jobs, m, ExpObjective::kFlowtime);
    const double lept = exp_dp_lept(jobs, m, ExpObjective::kFlowtime);

    std::vector<std::size_t> rnd(n);
    for (std::size_t i = 0; i < n; ++i) rnd[i] = i;
    for (std::size_t i = n; i > 1; --i) std::swap(rnd[i - 1], rnd[rng.below(i)]);
    const double random = exp_dp_priority(jobs, m, ExpObjective::kFlowtime, rnd);

    const bool match = sept <= opt * (1.0 + 1e-9);
    all_match = all_match && match;
    worst_lept = std::max(worst_lept, lept / opt);

    table.add_row({std::string("#") + std::to_string(inst), std::to_string(n),
                   std::to_string(m), fmt(sept), fmt(opt), fmt(lept),
                   fmt(random), match ? "yes" : "NO"});
  }
  table.note("all values exact (memoryless subset DP; policies = priority rules)");
  table.verdict(all_match, "SEPT attains the dynamic optimum on all rows");
  table.verdict(worst_lept > 1.05, "LEPT loses >5% somewhere (rule matters)");
  return stosched::bench::finish(table);
}
