// F6 — the stability problem for multiclass queueing networks [9]: nominal
// utilization rho < 1 at every station does NOT guarantee stability. The
// Lu–Kumar network with its destabilizing priority pair diverges although
// both stations satisfy rho = 0.68 < 1; FCFS (and the safe priority pair)
// remain stable.
#include "bench_common.hpp"
#include "queueing/network.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("F6: Lu-Kumar network, rho_A = rho_B ≈ 0.68 < 1 [9]");
  table.columns({"policy", "mean jobs", "final jobs", "growth rate /1e3",
                 "stable?"});

  const double lambda = 1.0, m1 = 0.01, m2 = 2.0 / 3.0, m3 = 0.01,
               m4 = 2.0 / 3.0;
  const double horizon = 40000.0;

  struct Case {
    std::string name;
    NetworkConfig cfg;
  };
  std::vector<Case> cases;
  cases.push_back({"bad priority (2>3, 4>1)",
                   lu_kumar_network(lambda, m1, m2, m3, m4, true)});
  cases.push_back({"FCFS", lu_kumar_network(lambda, m1, m2, m3, m4, false)});
  {
    auto safe = lu_kumar_network(lambda, m1, m2, m3, m4, true);
    safe.station_priority = {{0, 3}, {2, 1}};  // first-stage priority
    cases.push_back({"safe priority (1>4, 3>2)", safe});
  }

  double bad_growth = 0.0, fcfs_growth = 0.0, safe_growth = 0.0;
  double bad_final = 0.0, fcfs_final = 0.0;
  int row = 0;
  for (const auto& c : cases) {
    Rng rng(100 + row);
    const auto trace = simulate_network(c.cfg, horizon, 80, rng);
    const bool stable = trace.growth_rate < 0.002;  // jobs per time unit
    if (row == 0) {
      bad_growth = trace.growth_rate;
      bad_final = trace.final_total;
    }
    if (row == 1) {
      fcfs_growth = trace.growth_rate;
      fcfs_final = trace.final_total;
    }
    if (row == 2) safe_growth = trace.growth_rate;
    table.add_row({c.name, fmt(trace.mean_total, 1), fmt(trace.final_total, 0),
                   fmt(1000.0 * trace.growth_rate, 3),
                   stable ? "yes" : "NO (diverges)"});
    ++row;
  }
  table.note("nominal rho < 1 at both stations in all three rows");
  table.verdict(bad_growth > 0.01,
                "destabilizing priority diverges (linear backlog growth)");
  table.verdict(fcfs_growth < 0.002 && safe_growth < 0.002,
                "FCFS and the safe priority remain stable");
  table.verdict(bad_final > 20.0 * std::max(1.0, fcfs_final),
                "divergent backlog dwarfs the stable one");
  return stosched::bench::finish(table);
}
