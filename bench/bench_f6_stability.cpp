// F6 — the stability problem for multiclass queueing networks [9]: nominal
// utilization rho < 1 at every station does NOT guarantee stability. The
// Lu–Kumar network with its destabilizing priority pair diverges although
// both stations satisfy rho = 0.68 < 1; FCFS (and the safe priority pair)
// remain stable.
//
// Runs on the experiment engine: the registered "lu-kumar" scenario, one
// CRN-paired comparison over the three priority arms (all arms replay the
// same per-class arrival and service substreams), replications added until
// the backlog-difference CIs are tight (capped under STOSCHED_BENCH_SMOKE).
#include <algorithm>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

int main() {
  Table table("F6: Lu-Kumar network, rho_A = rho_B ≈ 0.68 < 1 [9]");
  table.columns({"policy", "mean jobs", "final jobs", "growth rate /1e3",
                 "stable?"});

  NetworkScenario scenario = network_scenario("lu-kumar");
  scenario.horizon = bench::smoke_scale(4e4, 6e3);
  const auto arms = lu_kumar_policies();  // bad, FCFS, safe

  EngineOptions opt;
  opt.seed = 100;
  opt.min_replications = 16;
  opt.batch = 16;
  opt.max_replications = bench::smoke_scale<std::size_t>(64, 16);
  opt.rel_precision = 0.15;
  opt.tracked = {0};  // stop on the mean-backlog differences vs the bad arm
  const auto cmp = compare_network_policies(scenario, arms, opt,
                                            Pairing::kCommonRandomNumbers);

  double bad_growth = 0.0, fcfs_growth = 0.0, safe_growth = 0.0;
  double bad_final = 0.0, fcfs_final = 0.0;
  for (std::size_t k = 0; k < arms.size(); ++k) {
    const double mean_total = cmp.arm[k][0].mean();
    const double final_total = cmp.arm[k][1].mean();
    const double growth = cmp.arm[k][2].mean();
    const bool stable = growth < 0.002;  // jobs per time unit
    if (k == 0) {
      bad_growth = growth;
      bad_final = final_total;
    }
    if (k == 1) {
      fcfs_growth = growth;
      fcfs_final = final_total;
    }
    if (k == 2) safe_growth = growth;
    table.add_row({arms[k].name, fmt(mean_total, 1), fmt(final_total, 0),
                   fmt(1000.0 * growth, 3),
                   stable ? "yes" : "NO (diverges)"});
  }

  table.note("nominal rho < 1 at both stations in all three rows");
  table.note("engine: " + std::to_string(cmp.replications) +
             " CRN replications/arm, horizon " + fmt(scenario.horizon, 0) +
             (cmp.converged ? "" : " (precision cap hit)"));
  table.verdict(bad_growth > 0.01,
                "destabilizing priority diverges (linear backlog growth)");
  table.verdict(fcfs_growth < 0.002 && safe_growth < 0.002,
                "FCFS and the safe priority remain stable");
  table.verdict(bad_final > 20.0 * std::max(1.0, fcfs_final),
                "divergent backlog dwarfs the stable one");
  return stosched::bench::finish(table);
}
