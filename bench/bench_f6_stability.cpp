// F6 — the stability problem for multiclass queueing networks [9]: nominal
// utilization rho < 1 at every station does NOT guarantee stability. The
// Lu–Kumar network with its destabilizing priority pair diverges although
// both stations satisfy rho = 0.68 < 1; FCFS (and the safe priority pair)
// remain stable. The Rybko–Stolyar crossing-routes network reproduces the
// same virtual-station effect at rho = 0.61: prioritizing the exit classes
// diverges, FCFS and the entry priority do not.
//
// Runs on the experiment engine: the registered "lu-kumar" and
// "rybko-stolyar" scenarios, one CRN-paired comparison per network over
// three priority arms each (all arms replay the same per-class arrival and
// service substreams), replications added until the backlog-difference CIs
// are tight (capped under STOSCHED_BENCH_SMOKE).
#include <algorithm>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

namespace {

/// Per-network divergence summary extracted from one CRN comparison whose
/// arms are ordered (destabilizing, FCFS, safe).
struct StabilityOutcome {
  double bad_growth = 0.0, fcfs_growth = 0.0, safe_growth = 0.0;
  double bad_final = 0.0, fcfs_final = 0.0;
  std::size_t replications = 0;
  bool converged = true;
};

StabilityOutcome run_network_rows(Table& table, const char* tag,
                                  const NetworkScenario& scenario,
                                  const std::vector<NetworkPolicy>& arms) {
  EngineOptions opt;
  opt.seed = 100;
  bench::note_seed(opt.seed);
  opt.min_replications = 16;
  opt.batch = 16;
  opt.max_replications = stosched::bench::smoke_scale<std::size_t>(64, 16);
  opt.rel_precision = 0.15;
  opt.tracked = {0};  // stop on the mean-backlog differences vs the bad arm
  const auto cmp = compare_network_policies(scenario, arms, opt,
                                            Pairing::kCommonRandomNumbers);

  StabilityOutcome out;
  out.replications = cmp.replications;
  out.converged = cmp.converged;
  for (std::size_t k = 0; k < arms.size(); ++k) {
    const double mean_total = cmp.arm[k][0].mean();
    const double final_total = cmp.arm[k][1].mean();
    const double growth = cmp.arm[k][2].mean();
    const bool stable = growth < 0.002;  // jobs per time unit
    if (k == 0) {
      out.bad_growth = growth;
      out.bad_final = final_total;
    }
    if (k == 1) {
      out.fcfs_growth = growth;
      out.fcfs_final = final_total;
    }
    if (k == 2) out.safe_growth = growth;
    table.add_row({std::string(tag) + arms[k].name, fmt(mean_total, 1),
                   fmt(final_total, 0), fmt(1000.0 * growth, 3),
                   stable ? "yes" : "NO (diverges)"});
  }
  return out;
}

}  // namespace

int main() {
  Table table(
      "F6: network stability — Lu-Kumar (rho ≈ 0.68) and Rybko-Stolyar "
      "(rho = 0.61), both < 1 [9]");
  table.columns({"policy", "mean jobs", "final jobs", "growth rate /1e3",
                 "stable?"});

  NetworkScenario lk = network_scenario("lu-kumar");
  lk.horizon = bench::smoke_scale(4e4, 6e3);
  const auto lk_out = run_network_rows(table, "LK: ", lk, lu_kumar_policies());

  NetworkScenario rs = network_scenario("rybko-stolyar");
  rs.horizon = bench::smoke_scale(4e4, 6e3);
  const auto rs_out =
      run_network_rows(table, "RS: ", rs, rybko_stolyar_policies());

  table.note("nominal rho < 1 at both stations in every row");
  table.note("engine: " + std::to_string(lk_out.replications) + "/" +
             std::to_string(rs_out.replications) +
             " CRN replications/arm (LK/RS), horizon " + fmt(lk.horizon, 0) +
             (lk_out.converged && rs_out.converged ? ""
                                                   : " (precision cap hit)"));
  table.verdict(lk_out.bad_growth > 0.01,
                "LK destabilizing priority diverges (linear backlog growth)");
  table.verdict(lk_out.fcfs_growth < 0.002 && lk_out.safe_growth < 0.002,
                "LK FCFS and the safe priority remain stable");
  table.verdict(lk_out.bad_final > 20.0 * std::max(1.0, lk_out.fcfs_final),
                "LK divergent backlog dwarfs the stable one");
  table.verdict(rs_out.bad_growth > 0.01,
                "RS exit-class priority diverges (virtual station overload)");
  table.verdict(rs_out.fcfs_growth < 0.002 && rs_out.safe_growth < 0.002,
                "RS FCFS and the entry priority remain stable");
  return stosched::bench::finish(table);
}
