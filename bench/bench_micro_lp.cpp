// micro-LP — dense-tableau vs revised-simplex shootout on the two LP shapes
// the repo actually solves: the HSSW interval-indexed lower-bound LP
// (online/lower_bound.hpp) and Whittle's occupation-measure relaxation
// (restless/relaxation.hpp). Both generators are the production builders, so
// the sparsity pattern, senses and conditioning are the real thing.
//
// Per row: both engines solve the identical instance (objective agreement is
// a verdict, not an assumption), then a rhs-perturbed resolve is run cold and
// warm-started from the first solve's optimal basis — the CRN-sweep pattern
// where consecutive replications share a constraint matrix. Large interval
// instances (n >= 192) are revised-only: the dense tableau is quadratic in
// rows + cols and exists below that scale purely as the auditable reference.
//
// Table-driven (not Google Benchmark) so the bench-smoke CI job can build and
// run it and bench_history.jsonl tracks lp_solves_per_sec across commits.
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "online/lower_bound.hpp"
#include "online/model.hpp"
#include "restless/relaxation.hpp"
#include "restless/restless_project.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;

namespace {

/// Random unrelated-machine instance with the size/release mix of the F11
/// sweep, built directly (no arrival process needed for an LP benchmark).
lp::Problem interval_problem(std::size_t jobs, Rng& rng) {
  const std::size_t machines = 4, types = 3;
  std::vector<std::vector<double>> speed(machines,
                                         std::vector<double>(types));
  for (auto& row : speed)
    for (auto& s : row) s = rng.uniform(0.5, 2.0);
  const online::Environment env = online::unrelated_machines(std::move(speed));

  online::OnlineInstance inst(jobs);
  double t = 0.0;
  for (auto& job : inst) {
    t += rng.uniform(0.0, 0.5);
    job.release = t;
    job.type = rng.below(types);
    job.weight = rng.uniform(0.5, 2.0);
    job.size = rng.uniform(0.5, 2.0);
  }
  return online::interval_indexed_lp(inst, env);
}

/// Whittle-relaxation shape: J random dense projects of S states each.
lp::Problem whittle_problem(std::size_t projects, std::size_t states,
                            Rng& rng) {
  restless::RestlessInstance inst;
  inst.projects.reserve(projects);
  for (std::size_t j = 0; j < projects; ++j)
    inst.projects.push_back(restless::random_restless_project(states, rng));
  inst.activate = std::max<std::size_t>(1, projects / 4);
  return restless::relaxation_lp(inst);
}

/// Mean per-solve milliseconds over `reps` identical solves.
template <class Fn>
double solve_ms(std::size_t reps, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  const double total = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  return total / static_cast<double>(reps);
}

struct Shape {
  std::string label;
  lp::Problem problem;
  bool run_dense;
};

}  // namespace

int main() {
  Table table("micro-LP: dense tableau vs revised simplex (per-solve ms)");
  table.columns({"instance", "rows", "cols", "dense-ms", "rev-ms", "speedup",
                 "cold-it", "warm-it"});

  Rng rng(2024);
  std::vector<Shape> shapes;
  const std::vector<std::size_t> both =
      bench::smoke() ? std::vector<std::size_t>{12, 24, 48}
                     : std::vector<std::size_t>{12, 24, 48, 96};
  const std::vector<std::size_t> revised_only =
      bench::smoke() ? std::vector<std::size_t>{96}
                     : std::vector<std::size_t>{192, 384};
  for (const std::size_t n : both)
    shapes.push_back(
        {"interval n=" + std::to_string(n), interval_problem(n, rng), true});
  for (const std::size_t n : revised_only)
    shapes.push_back(
        {"interval n=" + std::to_string(n), interval_problem(n, rng), false});
  for (const std::size_t j : bench::smoke() ? std::vector<std::size_t>{8, 16}
                                            : std::vector<std::size_t>{8, 16,
                                                                       32})
    shapes.push_back({"whittle J=" + std::to_string(j) + " S=8",
                      whittle_problem(j, 8, rng), true});

  bool objectives_agree = true;
  bool warm_cheaper = true;
  double largest_interval_speedup = 0.0;
  std::string largest_interval_label;
  for (Shape& shape : shapes) {
    const lp::Problem& p = shape.problem;
    const std::size_t cols = p.costs.size();
    const std::size_t rows = p.constraints.size();
    const std::size_t reps = cols > 2000 ? 1 : (cols > 500 ? 3 : 10);

    lp::Solution revised_sol;
    const double rev_ms =
        solve_ms(reps, [&] { revised_sol = lp::solve_revised(p); });
    if (!revised_sol.optimal()) {
      table.add_row({shape.label, std::to_string(rows), std::to_string(cols),
                     "-", "-", "-", "-", "-"});
      objectives_agree = false;
      continue;
    }

    std::string dense_cell = "-", speedup_cell = "-";
    if (shape.run_dense) {
      lp::Solution dense_sol;
      const double dense_ms = solve_ms(
          reps, [&] { dense_sol = lp::solve(p, lp::Solver::kDense); });
      const double scale = 1.0 + std::abs(dense_sol.objective);
      objectives_agree =
          objectives_agree && dense_sol.optimal() &&
          std::abs(dense_sol.objective - revised_sol.objective) <=
              1e-6 * scale;
      const double speedup = rev_ms > 0.0 ? dense_ms / rev_ms : 0.0;
      dense_cell = fmt(dense_ms, 3);
      speedup_cell = fmt(speedup, 1);
      if (shape.label.rfind("interval", 0) == 0) {
        largest_interval_speedup = speedup;  // `both` is sorted ascending
        largest_interval_label = shape.label;
      }
    }

    // Warm start: re-solve after an independent per-row rhs drift (a uniform
    // scaling would leave the old basis exactly optimal — zero pivots), cold
    // vs from the optimal basis of the undrifted solve.
    lp::Basis basis;
    lp::solve_revised(p, basis);
    lp::Problem drifted = p;
    for (auto& c : drifted.constraints) c.rhs *= rng.uniform(0.97, 1.06);
    const lp::Solution cold = lp::solve_revised(drifted);
    const lp::Solution warm = lp::solve_revised(drifted, basis);
    const double wscale = 1.0 + std::abs(cold.objective);
    warm_cheaper = warm_cheaper && cold.optimal() && warm.optimal() &&
                   std::abs(warm.objective - cold.objective) <=
                       1e-6 * wscale &&
                   warm.iterations < cold.iterations;

    table.add_row({shape.label, std::to_string(rows), std::to_string(cols),
                   dense_cell, fmt(rev_ms, 3), speedup_cell,
                   std::to_string(cold.iterations),
                   std::to_string(warm.iterations)});
  }

  table.note("generators: production HSSW interval-indexed and Whittle "
             "occupation-measure builders (real sparsity patterns)");
  table.note("warm-it: iterations to re-optimality after a per-row rhs "
             "drift, warm-started from the undrifted optimal basis (cold-it: "
             "same resolve from the all-slack basis)");
  table.verdict(objectives_agree,
                "dense and revised objectives agree within 1e-6 on every "
                "dual-engine instance");
  table.verdict(warm_cheaper,
                "warm-started resolve reaches the same optimum in strictly "
                "fewer iterations than cold on every instance");
  const double need = bench::smoke() ? 1.0 : 5.0;
  table.verdict(largest_interval_speedup >= need,
                "revised simplex >= " + fmt(need, 1) + "x dense on " +
                    largest_interval_label + " (measured " +
                    fmt(largest_interval_speedup, 1) + "x)");
  return bench::finish(table, {"none", 1.0});
}
