// Micro: the dense simplex on the library's two real LP shapes — random
// box-bounded LPs and the restless-bandit occupation-measure relaxation.
#include <benchmark/benchmark.h>

#include "lp/simplex.hpp"
#include "restless/relaxation.hpp"
#include "restless/restless_project.hpp"
#include "util/rng.hpp"

namespace {

void bm_simplex_random(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = n;
  stosched::Rng rng(3);
  std::vector<double> costs(n);
  for (auto& c : costs) c = rng.uniform(0.0, 1.0);
  auto p = stosched::lp::Problem::maximize(costs);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> row(n);
    for (auto& a : row) a = rng.uniform(0.0, 1.0);
    p.subject_to(row, stosched::lp::Sense::kLe, rng.uniform(1.0, 4.0));
  }
  for (auto _ : state) {
    const auto s = stosched::lp::solve(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(bm_simplex_random)->Arg(10)->Arg(30)->Arg(60);

void bm_whittle_relaxation(benchmark::State& state) {
  const auto projects = static_cast<std::size_t>(state.range(0));
  stosched::Rng rng(5);
  stosched::restless::RestlessInstance inst;
  inst.activate = std::max<std::size_t>(1, projects / 4);
  for (std::size_t j = 0; j < projects; ++j)
    inst.projects.push_back(
        stosched::restless::random_restless_project(4, rng));
  for (auto _ : state) {
    const auto r = stosched::restless::solve_relaxation(inst);
    benchmark::DoNotOptimize(r.bound);
  }
}
BENCHMARK(bm_whittle_relaxation)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
