// T7 — bandits with switching penalties [2]: Gittins' rule stops being
// optimal; a hysteresis index (continuation vs switching index) recovers
// most of the loss. Exact values on the incumbent-augmented product MDP.
#include <cmath>

#include "bandit/project.hpp"
#include "bandit/switching.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::bandit;

int main() {
  Table table("T7: switching penalties — hysteresis vs naive Gittins [2]");
  table.columns({"switch cost", "OPT", "hysteresis", "naive Gittins",
                 "hyst. regret", "naive regret"});

  // Two alternating two-state projects (reward only in the "hot" state,
  // engagement flips hot <-> cold). Their Gittins indices leapfrog after
  // every pull, so the naive rule switches arms every step — the worst case
  // for ignored setup costs, and exactly the regime [2] studies.
  BanditInstance base;
  base.beta = 0.9;
  {
    MarkovProject a;
    a.reward = {1.0, 0.0};
    a.trans = {{0.0, 1.0}, {1.0, 0.0}};
    MarkovProject b = a;
    b.reward = {0.95, 0.0};
    base.projects = {a, b};
  }
  const std::vector<std::size_t> start{0, 0};

  bool hysteresis_dominates = true;
  double naive_regret_at_max = 0.0, hyst_regret_at_max = 0.0;
  for (const double cost : {0.0, 0.1, 0.3, 0.8, 2.0, 5.0}) {
    SwitchingInstance inst{base, cost};
    const double opt = switching_optimal_value(inst, start);
    const double hyst = switching_hysteresis_value(inst, start);
    const double naive = switching_naive_gittins_value(inst, start);
    const double scale = std::abs(opt) + 1e-12;
    const double hr = (opt - hyst) / scale;
    const double nr = (opt - naive) / scale;
    hysteresis_dominates = hysteresis_dominates && hyst >= naive - 1e-9;
    naive_regret_at_max = nr;
    hyst_regret_at_max = hr;
    table.add_row({fmt(cost, 2), fmt(opt), fmt(hyst), fmt(naive),
                   fmt_pct(hr), fmt_pct(nr)});
  }
  table.note("values exact on the (joint state x incumbent) MDP");
  table.verdict(hysteresis_dominates,
                "hysteresis never loses to naive Gittins");
  table.verdict(naive_regret_at_max > hyst_regret_at_max + 0.005,
                "naive Gittins pays visibly more at large switching costs");
  return stosched::bench::finish(table);
}
