// F3 — Whittle's index heuristic for restless bandits [48] and its
// asymptotic optimality as N -> infinity with m/N fixed (Weber–Weiss [44]).
//
// Symmetric instances: N copies of an indexable project, activate N/4 per
// epoch. Series: per-project reward of Whittle vs myopic vs the relaxation
// upper bound. Prediction: Whittle's gap to the bound shrinks with N;
// myopic's does not.
#include <cmath>

#include "bench_common.hpp"
#include "restless/relaxation.hpp"
#include "restless/restless_project.hpp"
#include "restless/restless_sim.hpp"
#include "restless/whittle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::restless;

int main() {
  Table table("F3: restless bandits, m/N = 1/4 — Whittle index [48,44]");
  table.columns({"N", "Whittle/proj", "myopic/proj", "bound/proj",
                 "Whittle gap", "myopic gap"});

  // A hand-built indexable project with distinct active/passive dynamics:
  // active work improves the state; passivity lets it decay. The activation
  // budget binds (the relaxation bound is not trivially attainable), so the
  // Weber-Weiss gap has room to shrink with N.
  RestlessProject proto;
  proto.reward_passive = {0.0, 0.0, 0.0, 0.0};
  proto.reward_active = {0.1, 0.4, 0.7, 1.0};
  proto.trans_active = {{0.1, 0.6, 0.2, 0.1},
                        {0.05, 0.15, 0.6, 0.2},
                        {0.05, 0.1, 0.25, 0.6},
                        {0.05, 0.1, 0.15, 0.7}};
  proto.trans_passive = {{0.9, 0.1, 0.0, 0.0},
                         {0.5, 0.4, 0.1, 0.0},
                         {0.2, 0.5, 0.25, 0.05},
                         {0.1, 0.3, 0.4, 0.2}};

  const auto w = whittle_index(proto);
  if (!w.indexable) {
    Table fail("F3: prototype unexpectedly non-indexable");
    fail.columns({"status"});
    fail.add_row({"non-indexable"});
    fail.verdict(false, "prototype must be indexable");
    return stosched::bench::finish(fail);
  }
  const auto myo = myopic_index(proto);

  double first_gap = 0.0, last_gap = 0.0, last_myopic_gap = 0.0;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const std::size_t m = n / 4;
    const auto inst = symmetric_instance(proto, n, m);
    const double bound =
        solve_relaxation_symmetric(proto, n, m).bound / n;

    PriorityTable wt(n, w.index), mt(n, myo);
    Rng r1(100 + n), r2(200 + n);
    const double whittle =
        simulate_priority_policy(inst, wt, 60000, 6000, r1) / n;
    const double myopic =
        simulate_priority_policy(inst, mt, 60000, 6000, r2) / n;

    const double wgap = (bound - whittle) / bound;
    const double mgap = (bound - myopic) / bound;
    if (n == 4) first_gap = wgap;
    last_gap = wgap;
    last_myopic_gap = mgap;
    table.add_row({std::to_string(n), fmt(whittle, 4), fmt(myopic, 4),
                   fmt(bound, 4), fmt_pct(wgap), fmt_pct(mgap)});
  }
  table.note("bound = Whittle LP relaxation (valid upper bound per project)");
  table.verdict(last_gap < first_gap,
                "Whittle gap to the relaxation shrinks with N (Weber-Weiss)");
  table.verdict(last_gap < 0.05, "Whittle within 5% of the bound at N=64");
  // On *symmetric monotone* instances myopic is known to be competitive;
  // the defensible claim here is non-inferiority (the strict separation is
  // exercised on heterogeneous instances in T7/T8).
  table.verdict(last_gap < last_myopic_gap + 0.01,
                "Whittle not beaten by myopic beyond noise at large N");
  return stosched::bench::finish(table);
}
