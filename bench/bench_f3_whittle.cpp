// F3 — Whittle's index heuristic for restless bandits [48] and its
// asymptotic optimality as N -> infinity with m/N fixed (Weber–Weiss [44]).
//
// Symmetric instances: N copies of an indexable project, activate N/4 per
// epoch. Series: per-project reward of Whittle vs myopic vs the relaxation
// upper bound. Prediction: Whittle's gap to the bound shrinks with N;
// myopic's does not.
#include <cmath>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "restless/relaxation.hpp"
#include "restless/whittle.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::restless;

int main() {
  Table table("F3: restless bandits, m/N = 1/4 — Whittle index [48,44]");
  table.columns({"N", "Whittle/proj", "myopic/proj", "bound/proj",
                 "Whittle gap", "myopic gap"});

  // The registered "f3-decay" prototype: active work improves the state;
  // passivity lets it decay. The activation budget binds (the relaxation
  // bound is not trivially attainable), so the Weber-Weiss gap has room to
  // shrink with N.
  const experiment::RestlessScenario base =
      experiment::restless_scenario("f3-decay");
  const RestlessProject& proto = base.prototype;

  const auto w = whittle_index(proto);
  if (!w.indexable) {
    Table fail("F3: prototype unexpectedly non-indexable");
    fail.columns({"status"});
    fail.add_row({"non-indexable"});
    fail.verdict(false, "prototype must be indexable");
    return stosched::bench::finish(fail);
  }
  const auto myo = myopic_index(proto);

  // Per population size, Whittle vs myopic run as one CRN-paired engine
  // comparison: restless epochs consume randomness in a policy-independent
  // order, so the pairing is exact and the gap ranking is nearly noise-free.
  experiment::EngineOptions eopt;
  eopt.seed = 20250917;
  bench::note_seed(eopt.seed);
  eopt.min_replications = 8;
  eopt.batch = 8;
  eopt.max_replications = bench::smoke_scale<std::size_t>(64, 8);
  eopt.rel_precision = bench::smoke_scale(0.01, 0.04);

  double first_gap = 0.0, last_gap = 0.0, last_myopic_gap = 0.0;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    experiment::RestlessScenario scenario = base.with_population(n);
    scenario.horizon = bench::smoke_scale<std::size_t>(8000, 1500);
    scenario.burnin = scenario.horizon / 10;
    const std::size_t m = scenario.activate;
    const double bound =
        solve_relaxation_symmetric(proto, n, m).bound / n;

    const PriorityTable wt(n, w.index), mt(n, myo);
    const auto cmp = experiment::compare_restless_policies(
        scenario, {wt, mt}, eopt, experiment::Pairing::kCommonRandomNumbers);
    const double whittle = cmp.arm[0][0].mean() / n;
    const double myopic = cmp.arm[1][0].mean() / n;

    const double wgap = (bound - whittle) / bound;
    const double mgap = (bound - myopic) / bound;
    if (n == 4) first_gap = wgap;
    last_gap = wgap;
    last_myopic_gap = mgap;
    table.add_row({std::to_string(n), fmt(whittle, 4), fmt(myopic, 4),
                   fmt(bound, 4), fmt_pct(wgap), fmt_pct(mgap)});
  }
  table.note("bound = Whittle LP relaxation (valid upper bound per project)");
  table.note("engine: CRN-paired Whittle/myopic arms per N, max " +
             std::to_string(eopt.max_replications) + " replications");
  table.verdict(last_gap < first_gap,
                "Whittle gap to the relaxation shrinks with N (Weber-Weiss)");
  table.verdict(last_gap < 0.05, "Whittle within 5% of the bound at N=64");
  // On *symmetric monotone* instances myopic is known to be competitive;
  // the defensible claim here is non-inferiority (the strict separation is
  // exercised on heterogeneous instances in T7/T8).
  table.verdict(last_gap < last_myopic_gap + 0.01,
                "Whittle not beaten by myopic beyond noise at large N");
  return stosched::bench::finish(table);
}
