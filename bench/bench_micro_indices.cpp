// Micro: index computation costs — Gittins (three algorithms), Whittle,
// Klimov. These are the "easily computable" quantities the survey's
// policies hinge on; the benchmark quantifies "easily".
#include <benchmark/benchmark.h>

#include "bandit/gittins.hpp"
#include "bandit/project.hpp"
#include "queueing/klimov.hpp"
#include "restless/restless_project.hpp"
#include "restless/whittle.hpp"
#include "util/rng.hpp"

namespace {

void bm_gittins_largest_index(benchmark::State& state) {
  stosched::Rng rng(7);
  const auto p = stosched::bandit::random_project(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(stosched::bandit::gittins_largest_index(p, 0.9));
}
BENCHMARK(bm_gittins_largest_index)->Arg(8)->Arg(16)->Arg(32);

void bm_gittins_restart(benchmark::State& state) {
  stosched::Rng rng(7);
  const auto p = stosched::bandit::random_project(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(stosched::bandit::gittins_restart(p, 0.9));
}
BENCHMARK(bm_gittins_restart)->Arg(8)->Arg(16)->Arg(32);

void bm_whittle_index(benchmark::State& state) {
  stosched::Rng rng(7);
  const auto p = stosched::restless::random_restless_project(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(stosched::restless::whittle_index(p, 41, 1e-5));
}
BENCHMARK(bm_whittle_index)->Arg(3)->Arg(5);

void bm_klimov_indices(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stosched::Rng rng(7);
  std::vector<double> means(n), costs(n);
  std::vector<std::vector<double>> feedback(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    means[j] = rng.uniform(0.2, 2.0);
    costs[j] = rng.uniform(0.5, 3.0);
    for (std::size_t k = 0; k < n; ++k)
      if (k != j) feedback[j][k] = 0.5 / n;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        stosched::queueing::klimov_indices(means, feedback, costs));
}
BENCHMARK(bm_klimov_indices)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
