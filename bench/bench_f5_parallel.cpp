// F5 — parallel scheduling of multiclass M/M/m queues [22]: the cµ/Klimov
// priority is asymptotically optimal in heavy traffic; its gap to the
// pooled-server (achievable-region) lower bound vanishes as rho -> 1.
#include "bench_common.hpp"
#include "queueing/mg1_analytic.hpp"
#include "queueing/parallel_servers.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("F5: multiclass M/M/2 — c-mu priority vs pooled bound [22]");
  table.columns({"rho", "c-mu cost (sim)", "pooled LB", "rel gap",
                 "reverse order cost"});

  const unsigned servers = 2;
  double first_gap = 0.0, last_gap = 0.0;
  bool cmu_beats_reverse_heavy = true;
  for (const double rho : {0.5, 0.7, 0.85, 0.93, 0.97}) {
    // Two classes carrying 60%/40% of the load; total offered load rho * m.
    // Class 0: service rate 1.5 => lambda_0 = 0.6 rho m * 1.5 gives
    // rho_0 = 0.6 rho m; class 1 analogous at rate 2.25.
    std::vector<ClassSpec> classes{
        {0.6 * rho * servers * 1.5, exponential_dist(1.5), 2.0},
        {0.4 * rho * servers * 2.25, exponential_dist(2.25), 1.0},
    };
    const auto order = cmu_order(classes);
    std::vector<std::size_t> reverse(order.rbegin(), order.rend());

    const double horizon = rho > 0.9 ? 8e5 : 3e5;
    Rng r1(10 + static_cast<std::uint64_t>(rho * 100));
    Rng r2(20 + static_cast<std::uint64_t>(rho * 100));
    const auto good = simulate_mmm(classes, servers, order, horizon,
                                   horizon / 10.0, r1);
    const auto bad = simulate_mmm(classes, servers, reverse, horizon,
                                  horizon / 10.0, r2);
    const double lb = pooled_lower_bound(classes, servers);
    const double gap = (good.cost_rate - lb) / good.cost_rate;
    if (rho == 0.5) first_gap = gap;
    last_gap = gap;
    if (rho > 0.9)
      cmu_beats_reverse_heavy =
          cmu_beats_reverse_heavy && good.cost_rate < bad.cost_rate;

    table.add_row({fmt(rho, 2), fmt(good.cost_rate), fmt(lb), fmt_pct(gap),
                   fmt(bad.cost_rate)});
  }
  table.note("LB: optimal cost of the pooled 2x-fast M/M/1 (resource pooling)");
  table.verdict(last_gap < first_gap,
                "relative gap to the bound shrinks toward heavy traffic");
  table.verdict(last_gap < 0.12, "gap below 12% at rho = 0.97");
  table.verdict(cmu_beats_reverse_heavy,
                "c-mu beats the reversed order in heavy traffic");
  return stosched::bench::finish(table);
}
