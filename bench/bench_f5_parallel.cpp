// F5 — parallel scheduling of multiclass M/M/m queues [22]: the cµ/Klimov
// priority is asymptotically optimal in heavy traffic; its gap to the
// pooled-server (achievable-region) lower bound vanishes as rho -> 1.
//
// Runs on the experiment engine: the registered "parallel-pooling" scenario
// swept across loads with mmm_scale_to_load, each load a CRN-paired
// comparison of the cµ order against its reverse (both arms replay the same
// per-class arrival and service substreams), replications added until the
// cost-difference CI is tight (capped under STOSCHED_BENCH_SMOKE).
#include <vector>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "queueing/mg1_analytic.hpp"
#include "queueing/parallel_servers.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

int main() {
  Table table("F5: multiclass M/M/2 — c-mu priority vs pooled bound [22]");
  table.columns({"rho", "c-mu cost (sim)", "pooled LB", "rel gap",
                 "reverse order cost"});

  const MmmScenario base = mmm_scenario("parallel-pooling");
  double first_gap = 0.0, last_gap = 0.0;
  bool cmu_beats_reverse_heavy = true;
  for (const double rho : {0.5, 0.7, 0.85, 0.93, 0.97}) {
    MmmScenario s = mmm_scale_to_load(base, rho);
    s.horizon = bench::smoke_scale(rho > 0.9 ? 2e5 : 1e5,
                                   rho > 0.9 ? 2.5e4 : 6e3);
    s.warmup = s.horizon / 10.0;

    const auto order = queueing::cmu_order(s.classes);
    const std::vector<MmmPolicy> arms{
        {"c-mu", order},
        {"reverse", {order.rbegin(), order.rend()}}};

    EngineOptions opt;
    opt.seed = 10 + static_cast<std::uint64_t>(rho * 100);
    opt.min_replications = 16;
    opt.batch = 16;
    opt.max_replications = bench::smoke_scale<std::size_t>(32, 16);
    opt.rel_precision = 0.03;
    opt.tracked = {0};  // stop on the cost-rate difference CI
    const auto cmp =
        compare_mmm_policies(s, arms, opt, Pairing::kCommonRandomNumbers);

    const double good_cost = cmp.arm[0][0].mean();
    const double bad_cost = cmp.arm[1][0].mean();
    const double lb = queueing::pooled_lower_bound(s.classes, s.servers);
    const double gap = (good_cost - lb) / good_cost;
    if (rho == 0.5) first_gap = gap;
    last_gap = gap;
    if (rho > 0.9)
      cmu_beats_reverse_heavy = cmu_beats_reverse_heavy &&
                                good_cost < bad_cost;

    table.add_row({fmt(rho, 2), fmt(good_cost), fmt(lb), fmt_pct(gap),
                   fmt(bad_cost)});
  }
  table.note("LB: optimal cost of the pooled 2x-fast M/M/1 (resource pooling)");
  table.note("engine: CRN-paired c-mu vs reverse per load, sequential "
             "cost-difference precision");
  table.verdict(last_gap < first_gap,
                "relative gap to the bound shrinks toward heavy traffic");
  table.verdict(last_gap < 0.12, "gap below 12% at rho = 0.97");
  table.verdict(cmu_beats_reverse_heavy,
                "c-mu beats the reversed order in heavy traffic");
  return stosched::bench::finish(table);
}
