// T11 — queues with changeover (switchover) times [25, 32]: with setups,
// chasing the cµ argmax thrashes; visit-based disciplines (exhaustive,
// gated, limited) amortize the setups.
//
// Setup-duration sweep over a symmetric 2-queue system: cost rate and time
// lost to switching per discipline. Predictions: at negligible setups all
// disciplines tie (work conservation); as setups grow, greedy-cµ degrades
// fastest and exhaustive dominates gated dominates 1-limited.
#include <algorithm>

#include "bench_common.hpp"
#include "queueing/polling.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("T11: polling with changeovers — service disciplines [25]");
  table.columns({"setup", "exhaustive", "gated", "1-limited", "greedy c-mu",
                 "greedy switch%"});

  const std::vector<ClassSpec> classes{
      {0.30, exponential_dist(1.0), 1.0},
      {0.25, exponential_dist(0.8), 2.0},  // higher cµ
  };

  auto run = [&](PollingDiscipline d, double setup, std::uint64_t seed,
                 double* switch_frac = nullptr) {
    PollingOptions opt;
    opt.discipline = d;
    opt.limit = 1;
    opt.switchover = deterministic_dist(setup);
    opt.horizon = 2e5;
    opt.warmup = 2e4;
    Rng rng(seed);
    const auto res = simulate_polling(classes, opt, rng);
    if (switch_frac) *switch_frac = res.switching_fraction;
    return res.cost_rate;
  };

  bool exhaustive_wins_large = true;
  double tie_spread = 0.0;
  double greedy_penalty_growth = 0.0, prev_greedy_penalty = 0.0;
  bool penalty_monotone = true;
  for (const double setup : {1e-6, 0.1, 0.4, 1.0, 2.5}) {
    const double ex = run(PollingDiscipline::kExhaustive, setup, 1);
    const double ga = run(PollingDiscipline::kGated, setup, 2);
    const double li = run(PollingDiscipline::kLimited, setup, 3);
    double sw = 0.0;
    const double gr = run(PollingDiscipline::kGreedyCmu, setup, 4, &sw);

    if (setup < 1e-3)
      tie_spread = std::max({ex, ga, li, gr}) / std::min({ex, ga, li, gr});
    if (setup >= 1.0)
      exhaustive_wins_large =
          exhaustive_wins_large && ex <= ga * 1.05 && ex <= li && ex <= gr;
    const double penalty = gr / ex;
    if (setup > 0.05) {
      if (penalty < prev_greedy_penalty - 0.15) penalty_monotone = false;
      greedy_penalty_growth = penalty;
      prev_greedy_penalty = penalty;
    }

    table.add_row({fmt(setup, 3), fmt(ex), fmt(ga), fmt(li), fmt(gr),
                   fmt_pct(sw)});
  }
  table.note("symmetric-load 2-queue system; deterministic setups");
  table.verdict(tie_spread < 1.15,
                "disciplines within 15% of each other at negligible setups");
  table.verdict(exhaustive_wins_large,
                "exhaustive (weakly) dominates at large setups");
  table.verdict(penalty_monotone && greedy_penalty_growth > 1.1,
                "greedy c-mu pays a growing thrashing penalty");
  return stosched::bench::finish(table);
}
