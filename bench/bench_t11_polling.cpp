// T11 — queues with changeover (switchover) times [25, 32]: with setups,
// chasing the cµ argmax thrashes; visit-based disciplines (exhaustive,
// gated, limited) amortize the setups.
//
// Setup-duration sweep over the registered "t11-two-queue" system: cost
// rate and time lost to switching per discipline. At each setup value the
// four disciplines run as one CRN-paired engine comparison, so the ranking
// at a sweep point is a paired estimate, not four independent runs.
// Predictions: at negligible setups all disciplines tie (work
// conservation); as setups grow, greedy-cµ degrades fastest and exhaustive
// dominates gated dominates 1-limited.
#include <algorithm>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;
using stosched::queueing::PollingDiscipline;

int main() {
  Table table("T11: polling with changeovers — service disciplines [25]");
  table.columns({"setup", "exhaustive", "gated", "1-limited", "greedy c-mu",
                 "greedy switch%"});

  PollingScenario base = polling_scenario("t11-two-queue");
  base.horizon = bench::smoke_scale(2e4, 5e3);
  base.warmup = bench::smoke_scale(2e3, 5e2);

  const std::vector<PollingPolicy> arms{
      {"exhaustive", PollingDiscipline::kExhaustive},
      {"gated", PollingDiscipline::kGated},
      {"1-limited", PollingDiscipline::kLimited, 1},
      {"greedy c-mu", PollingDiscipline::kGreedyCmu},
  };

  EngineOptions opt;
  opt.seed = 20250915;
  bench::note_seed(opt.seed);
  opt.min_replications = 16;
  opt.batch = 16;
  opt.max_replications = bench::smoke_scale<std::size_t>(192, 24);
  opt.rel_precision = bench::smoke_scale(0.02, 0.08);
  opt.tracked = {0};

  bool exhaustive_wins_large = true;
  double tie_spread = 0.0;
  double greedy_penalty_growth = 0.0, prev_greedy_penalty = 0.0;
  bool penalty_monotone = true;
  for (const double setup : {1e-6, 0.1, 0.4, 1.0, 2.5}) {
    const PollingScenario scenario =
        with_switchover(base, deterministic_dist(setup));
    const auto cmp = compare_polling_policies(scenario, arms, opt,
                                              Pairing::kCommonRandomNumbers);
    const double ex = cmp.arm[0][0].mean();
    const double ga = cmp.arm[1][0].mean();
    const double li = cmp.arm[2][0].mean();
    const double gr = cmp.arm[3][0].mean();
    const double sw = cmp.arm[3][1].mean();  // greedy switching fraction

    if (setup < 1e-3)
      tie_spread = std::max({ex, ga, li, gr}) / std::min({ex, ga, li, gr});
    if (setup >= 1.0)
      exhaustive_wins_large =
          exhaustive_wins_large && ex <= ga * 1.05 && ex <= li && ex <= gr;
    const double penalty = gr / ex;
    if (setup > 0.05) {
      if (penalty < prev_greedy_penalty - 0.15) penalty_monotone = false;
      greedy_penalty_growth = penalty;
      prev_greedy_penalty = penalty;
    }

    table.add_row({fmt(setup, 3), fmt(ex), fmt(ga), fmt(li), fmt(gr),
                   fmt_pct(sw)});
  }
  table.note("symmetric-load 2-queue system; deterministic setups");
  table.note("engine: CRN-paired disciplines per sweep point, max " +
             std::to_string(opt.max_replications) + " replications");
  table.verdict(tie_spread < 1.15,
                "disciplines within 15% of each other at negligible setups");
  table.verdict(exhaustive_wins_large,
                "exhaustive (weakly) dominates at large setups");
  table.verdict(penalty_monotone && greedy_penalty_growth > 1.1,
                "greedy c-mu pays a growing thrashing penalty");
  return stosched::bench::finish(table);
}
