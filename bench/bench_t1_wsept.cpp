// T1 — WSEPT (Smith/Rothkopf rule) minimizes expected weighted flowtime on
// one machine, nonpreemptive [34, 37].
//
// For each random instance the table reports the exact objective of WSEPT,
// of the exhaustive optimum over all n! sequences, and of SEPT/LEPT/random
// baselines. Prediction: WSEPT == OPT on every row; the baselines are
// strictly worse whenever weights and means are not aligned.
#include <string>

#include "batch/job.hpp"
#include "batch/single_machine.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table(
      "T1: single machine, nonpreemptive E[sum w_j C_j] — WSEPT vs optimum");
  table.columns({"instance", "n", "WSEPT", "OPT (n!)", "SEPT", "LEPT",
                 "random", "WSEPT=OPT"});

  Rng master(20250610);
  bool all_match = true;
  double worst_baseline_ratio = 1.0;
  for (int inst = 0; inst < 10; ++inst) {
    Rng rng = master.stream(inst);
    const std::size_t n = 5 + rng.below(4);  // 5..8 jobs
    const Batch jobs = random_batch(n, rng);

    double opt = 0.0;
    best_order_exhaustive(jobs, &opt);
    const double wsept = exact_weighted_flowtime(jobs, wsept_order(jobs));
    const double sept = exact_weighted_flowtime(jobs, sept_order(jobs));
    const double lept = exact_weighted_flowtime(jobs, lept_order(jobs));
    const double rnd =
        exact_weighted_flowtime(jobs, random_order(n, rng));

    const bool match = wsept <= opt * (1.0 + 1e-9);
    all_match = all_match && match;
    worst_baseline_ratio = std::max(worst_baseline_ratio, lept / opt);

    table.add_row({std::string("#") + std::to_string(inst), std::to_string(n), fmt(wsept),
                   fmt(opt), fmt(sept), fmt(lept), fmt(rnd),
                   match ? "yes" : "NO"});
  }
  table.note("objectives are exact (depend on processing means only)");
  table.verdict(all_match, "WSEPT attains the exhaustive optimum on all rows");
  table.verdict(worst_baseline_ratio > 1.02,
                "ignoring weights (LEPT) costs >2% on at least one row");
  return stosched::bench::finish(table);
}
