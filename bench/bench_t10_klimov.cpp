// T10 — Klimov's problem: M/G/1 with Bernoulli feedback; the N-step index
// algorithm yields the optimal static priority [24, 38].
//
// The registered "klimov-t10" network: every static order's exact cost on
// the truncated chain, the dynamic optimum, and a simulated confirmation of
// the Klimov order — all simulated arms paired with common random numbers
// on the experiment engine. Also checks the indices ignore arrival rates.
#include <algorithm>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "queueing/klimov.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;
using stosched::queueing::KlimovNetwork;

int main() {
  Table table("T10: Klimov network — index order vs all static priorities [24]");
  table.columns({"priority", "Klimov order?", "exact cost (trunc MDP)",
                 "simulated cost"});

  QueueScenario scenario = queue_scenario("klimov-t10");
  scenario.horizon = bench::smoke_scale(2e4, 5e3);
  scenario.warmup = bench::smoke_scale(2e3, 5e2);
  KlimovNetwork net;
  net.classes = scenario.classes;
  net.feedback = scenario.feedback;

  const auto klimov = queueing::klimov_indices(net);
  const std::size_t cap = 10;

  // Arm 0 = the Klimov order, then the remaining permutations.
  std::vector<QueuePolicy> arms{
      {"klimov", queueing::Discipline::kPriorityNonPreemptive,
       klimov.priority}};
  std::vector<std::size_t> order{0, 1, 2};
  do {
    if (order != klimov.priority)
      arms.push_back({"", queueing::Discipline::kPriorityNonPreemptive, order});
  } while (std::next_permutation(order.begin(), order.end()));

  EngineOptions opt;
  opt.seed = 20250914;
  bench::note_seed(opt.seed);
  opt.min_replications = 16;
  opt.batch = 16;
  opt.max_replications = bench::smoke_scale<std::size_t>(256, 24);
  opt.rel_precision = bench::smoke_scale(0.015, 0.06);
  opt.tracked = {0};
  const auto cmp = compare_queue_policies(scenario, arms, opt,
                                          Pairing::kCommonRandomNumbers);

  double best_cost = 1e18, klimov_cost = 0.0;
  std::vector<std::pair<std::string, std::size_t>> rows;  // name -> arm index
  for (std::size_t k = 0; k < arms.size(); ++k) {
    std::string name;
    for (const auto c : arms[k].priority) name += std::to_string(c);
    rows.emplace_back(name, k);
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [name, k] : rows) {
    const bool is_klimov = k == 0;
    const double exact =
        queueing::truncated_priority_cost(net, cap, arms[k].priority);
    if (is_klimov) klimov_cost = exact;
    best_cost = std::min(best_cost, exact);
    table.add_row({name, is_klimov ? "yes" : "", fmt(exact),
                   fmt_ci(cmp.arm[k][0].mean(),
                          cmp.arm[k][0].ci_halfwidth())});
  }

  const double dynamic_opt = queueing::truncated_optimal_cost(net, cap);

  // Arrival-rate invariance: double the arrivals, same indices.
  KlimovNetwork scaled = net;
  for (auto& c : scaled.classes) c.arrival_rate *= 1.7;
  const auto scaled_idx = queueing::klimov_indices(scaled);
  bool invariant = true;
  for (std::size_t j = 0; j < 3; ++j)
    invariant = invariant &&
                std::abs(scaled_idx.index[j] - klimov.index[j]) < 1e-9;

  table.note("truncated at " + std::to_string(cap) +
             " jobs/class; dynamic optimum = " + fmt(dynamic_opt));
  table.note("engine: " + std::to_string(cmp.replications) +
             " CRN replications/arm" +
             (cmp.converged ? "" : " (precision cap hit)"));
  table.verdict(klimov_cost <= best_cost * 1.001,
                "Klimov order best among all 3! static priorities");
  table.verdict(klimov_cost <= dynamic_opt * 1.01,
                "Klimov order matches the dynamic optimum (<=1%)");
  table.verdict(invariant, "indices independent of arrival rates");
  return stosched::bench::finish(table);
}
