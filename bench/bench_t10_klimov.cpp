// T10 — Klimov's problem: M/G/1 with Bernoulli feedback; the N-step index
// algorithm yields the optimal static priority [24, 38].
//
// A 3-class exponential feedback network: every static order's exact cost
// on the truncated chain, the dynamic optimum, and a simulated confirmation
// of the Klimov order. Also checks the indices ignore arrival rates.
#include <algorithm>

#include "bench_common.hpp"
#include "queueing/klimov.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("T10: Klimov network — index order vs all static priorities [24]");
  table.columns({"priority", "Klimov order?", "exact cost (trunc MDP)",
                 "simulated cost"});

  KlimovNetwork net;
  net.classes = {{0.15, exponential_dist(2.0), 2.0},
                 {0.10, exponential_dist(1.0), 1.0},
                 {0.10, exponential_dist(1.5), 3.0}};
  net.feedback = {{0.0, 0.4, 0.0}, {0.0, 0.0, 0.3}, {0.1, 0.0, 0.0}};

  const auto klimov = klimov_indices(net);
  const std::size_t cap = 10;

  double best_cost = 1e18, klimov_cost = 0.0;
  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    std::string name;
    for (const auto c : order) name += std::to_string(c);
    const bool is_klimov = order == klimov.priority;
    const double exact = truncated_priority_cost(net, cap, order);
    Rng rng(std::hash<std::string>{}(name));
    const double sim = simulate_klimov(net, order, 2e5, 2e4, rng).cost_rate;
    if (is_klimov) klimov_cost = exact;
    best_cost = std::min(best_cost, exact);
    table.add_row({name, is_klimov ? "yes" : "", fmt(exact), fmt(sim)});
  } while (std::next_permutation(order.begin(), order.end()));

  const double dynamic_opt = truncated_optimal_cost(net, cap);

  // Arrival-rate invariance: double the arrivals, same indices.
  KlimovNetwork scaled = net;
  for (auto& c : scaled.classes) c.arrival_rate *= 1.7;
  const auto scaled_idx = klimov_indices(scaled);
  bool invariant = true;
  for (std::size_t j = 0; j < 3; ++j)
    invariant = invariant &&
                std::abs(scaled_idx.index[j] - klimov.index[j]) < 1e-9;

  table.note("truncated at " + std::to_string(cap) +
             " jobs/class; dynamic optimum = " + fmt(dynamic_opt));
  table.verdict(klimov_cost <= best_cost * 1.001,
                "Klimov order best among all 3! static priorities");
  table.verdict(klimov_cost <= dynamic_opt * 1.01,
                "Klimov order matches the dynamic optimum (<=1%)");
  table.verdict(invariant, "indices independent of arrival rates");
  return stosched::bench::finish(table);
}
