// F8 — in-tree precedence constraints on parallel machines [31]:
// Highest-Level-First is asymptotically optimal for expected makespan with
// i.i.d. exponential tasks. We track the HLF-to-lower-bound ratio as the
// tree grows (LB = max(total work / m, depth * mean)), plus the greedy
// FIFO-eligible baseline.
//
// Runs on the experiment engine: each tree size is an intree_scenario(n)
// instance, HLF vs FIFO-eligible compared under common random numbers with
// sequential precision on the makespan difference (capped under
// STOSCHED_BENCH_SMOKE).
#include <algorithm>

#include "batch/precedence.hpp"
#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;
using stosched::batch::TreePolicy;

int main() {
  Table table("F8: in-tree precedence, m=3 — HLF vs lower bound [31]");
  table.columns({"n", "depth", "HLF makespan", "FIFO makespan", "LB",
                 "HLF/LB"});

  double first_ratio = 0.0, last_ratio = 0.0;
  bool hlf_dominates = true;
  for (const std::size_t n : {20u, 50u, 100u, 250u, 600u}) {
    const TreeScenario s = intree_scenario(n);
    const double depth = static_cast<double>(batch::tree_depth(s.tree));

    EngineOptions opt;
    opt.seed = n;
    opt.min_replications = bench::smoke_scale<std::size_t>(256, 48);
    opt.batch = 128;
    opt.max_replications = bench::smoke_scale<std::size_t>(1024, 48);
    opt.rel_precision = 0.05;
    opt.tracked = {0};  // stop on the makespan-difference CI
    const auto cmp = compare_tree_policies(
        s, {TreePolicy::kHighestLevelFirst, TreePolicy::kFifoEligible}, opt,
        Pairing::kCommonRandomNumbers);
    const auto& hlf = cmp.arm[0][0];
    const auto& fifo = cmp.arm[1][0];

    const double lb = std::max(
        static_cast<double>(n) / (s.machines * s.rate), depth / s.rate);
    const double ratio = hlf.mean() / lb;
    if (n == 20) first_ratio = ratio;
    last_ratio = ratio;
    hlf_dominates = hlf_dominates &&
                    hlf.mean() <= fifo.mean() + 2.0 * (hlf.sem() + fifo.sem());

    table.add_row({std::to_string(n), fmt(depth, 0),
                   fmt_ci(hlf.mean(), hlf.ci_halfwidth(), 2),
                   fmt_ci(fifo.mean(), fifo.ci_halfwidth(), 2), fmt(lb, 2),
                   fmt(ratio, 3)});
  }
  table.note("LB = max(work/m, depth*mean); ratio -> 1 is asymptotic optimality");
  table.note("engine: CRN-paired HLF vs FIFO per tree, sequential "
             "makespan-difference precision");
  table.verdict(last_ratio < first_ratio,
                "HLF/LB ratio shrinks as the tree grows");
  table.verdict(last_ratio < 1.35, "HLF within 35% of the crude LB at n=600");
  table.verdict(hlf_dominates, "HLF never loses to FIFO-eligible");
  return stosched::bench::finish(table);
}
