// F8 — in-tree precedence constraints on parallel machines [31]:
// Highest-Level-First is asymptotically optimal for expected makespan with
// i.i.d. exponential tasks. We track the HLF-to-lower-bound ratio as the
// tree grows (LB = max(total work / m, depth * mean)), plus the greedy
// FIFO-eligible baseline.
#include <algorithm>

#include "batch/precedence.hpp"
#include "bench_common.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("F8: in-tree precedence, m=3 — HLF vs lower bound [31]");
  table.columns({"n", "depth", "HLF makespan", "FIFO makespan", "LB",
                 "HLF/LB"});

  const unsigned m = 3;
  const double rate = 1.0;
  Rng master(1234);
  double first_ratio = 0.0, last_ratio = 0.0;
  bool hlf_dominates = true;
  for (const std::size_t n : {20u, 50u, 100u, 250u, 600u}) {
    Rng tree_rng = master.stream(n);
    const InTree tree = random_in_tree(n, tree_rng);
    const double depth = static_cast<double>(tree_depth(tree));

    const auto hlf = monte_carlo(400, n, [&](std::size_t, Rng& r) {
      return simulate_tree_makespan(tree, m, rate,
                                    TreePolicy::kHighestLevelFirst, r);
    });
    const auto fifo = monte_carlo(400, n, [&](std::size_t, Rng& r) {
      return simulate_tree_makespan(tree, m, rate, TreePolicy::kFifoEligible,
                                    r);
    });
    const double lb =
        std::max(static_cast<double>(n) / (m * rate), depth / rate);
    const double ratio = hlf.mean() / lb;
    if (n == 20) first_ratio = ratio;
    last_ratio = ratio;
    hlf_dominates =
        hlf_dominates && hlf.mean() <= fifo.mean() + 2.0 * (hlf.sem() + fifo.sem());

    table.add_row({std::to_string(n), fmt(depth, 0), fmt_ci(hlf.mean(), hlf.ci_halfwidth(), 2),
                   fmt_ci(fifo.mean(), fifo.ci_halfwidth(), 2), fmt(lb, 2),
                   fmt(ratio, 3)});
  }
  table.note("LB = max(work/m, depth*mean); ratio -> 1 is asymptotic optimality");
  table.verdict(last_ratio < first_ratio,
                "HLF/LB ratio shrinks as the tree grows");
  table.verdict(last_ratio < 1.35, "HLF within 35% of the crude LB at n=600");
  table.verdict(hlf_dominates, "HLF never loses to FIFO-eligible");
  return stosched::bench::finish(table);
}
