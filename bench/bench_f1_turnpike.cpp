// F1 — turnpike optimality of Smith's rule on parallel machines [46]:
// the WSEPT heuristic's absolute suboptimality gap stays bounded as the
// batch grows, so its *relative* gap vanishes.
//
// Two panels: (a) exact panel — small exponential instances where the DP
// optimum is computable: gap(WSEPT) vs n stays flat; (b) scaling panel —
// large batches where WSEPT is compared against the Eastman–Even–Isaacs
// style lower bound; relative gap -> 0.
#include <cmath>

#include "batch/job.hpp"
#include "batch/parallel_machines.hpp"
#include "batch/single_machine.hpp"
#include "batch/subset_dp.hpp"
#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  const unsigned m = 3;
  Rng master(4242);

  // Both panels share one table (and one bench_common::finish exit) so the
  // JSON mirror — and with it bench_history.jsonl — carries every row and
  // verdict of the experiment. The "baseline" column is the DP optimum in
  // the exact panel and the fast-machine lower bound in the scaling panel.
  Table table("F1: WSEPT turnpike optimality on parallel machines (m=3)");
  table.columns({"panel", "n", "WSEPT", "baseline", "rel gap"});

  // Panel (a): exact absolute gaps on exponential instances.
  double first_gap = 0.0, last_gap = 0.0;
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u}) {
    Rng rng = master.stream(n);
    std::vector<ExpJob> jobs(n);
    Batch batch;
    for (auto& j : jobs) {
      j.rate = rng.uniform(0.4, 2.5);
      j.weight = rng.uniform(0.5, 2.0);
      batch.push_back({j.weight, exponential_dist(j.rate)});
    }
    std::vector<std::size_t> priority = wsept_order(batch);
    const double wsept =
        exp_dp_priority(jobs, m, ExpObjective::kWeightedFlowtime, priority);
    const double opt = exp_dp_optimal(jobs, m, ExpObjective::kWeightedFlowtime);
    const double gap = wsept - opt;
    if (n == 4) first_gap = gap;
    last_gap = gap;
    table.add_row({"exact-vs-DP", std::to_string(n), fmt(wsept), fmt(opt),
                   fmt_pct(gap / opt)});
  }
  table.note("panel a: absolute gap does not grow with n (turnpike property)");
  table.verdict(last_gap < std::max(0.25, 4.0 * first_gap + 0.2),
                "absolute gap stays bounded as n grows");

  // Panel (b): large-n relative gap against the *fast-single-machine*
  // relaxation: a speed-m machine can processor-share the <= m jobs any
  // m-machine policy runs, reproducing its completion times exactly, so the
  // fast machine's preemptive optimum lower-bounds every m-machine policy;
  // with exponential jobs that optimum is the WSEPT index policy, whose
  // value is the exact single-machine WSEPT objective divided by m.
  double last_rel = 1.0;
  bool decreasing = true;
  double prev_rel = 1e9;
  for (const std::size_t n : {20u, 50u, 100u, 300u, 1000u}) {
    // The registered turnpike family; the engine adds replications until the
    // simulated WSEPT mean is tight enough for the 0.5%-slack monotonicity
    // check below.
    const experiment::BatchScenario s = experiment::turnpike_scenario(n);
    const Order order = wsept_order(s.jobs);
    experiment::EngineOptions opt;
    opt.seed = 9;
    bench::note_seed(opt.seed);
    opt.min_replications = 512;
    opt.batch = 1024;
    opt.max_replications = bench::smoke_scale<std::size_t>(65536, 1024);
    opt.rel_precision = bench::smoke_scale(0.003, 0.02);
    const auto res = experiment::run_batch(s, order, opt);
    const double mean = res.metrics[0].mean();
    const double lb = exact_weighted_flowtime(s.jobs, order) / m;
    const double rel = mean / lb - 1.0;
    decreasing = decreasing && rel < prev_rel + 0.005;
    prev_rel = rel;
    last_rel = rel;
    table.add_row({"sim-vs-LB", std::to_string(n), fmt(mean, 1), fmt(lb, 1),
                   fmt_pct(rel)});
  }
  table.note("panel b: vanishing relative gap == asymptotic optimality");
  table.note("engine: sequential precision on the simulated WSEPT mean");
  table.verdict(decreasing && last_rel < 0.02,
                "relative gap decreases toward 0 as n grows");
  return bench::finish(table);
}
