// T5 — outside the theorems' assumptions the simple rules fail: two-point
// processing times on two machines (Coffman–Hofri–Weiss family [13]).
//
// For each instance the table compares SEPT/LEPT (by mean) against the
// exhaustive optimum over list orders, all evaluated *exactly* on the
// realization lattice. Prediction: a strict gap appears on some instances —
// the counterexample the survey cites — while for exponential jobs (T3/T4)
// the same rules were exactly optimal.
//
// Instances come from the registered "t5-twopoint" scenario family
// (twopoint_scenario(i)); a sequential-precision engine run cross-checks the
// exact SEPT value by simulation on every instance.
#include <string>

#include "batch/job.hpp"
#include "batch/parallel_machines.hpp"
#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("T5: two-point jobs on 2 machines — SEPT/LEPT lose optimality [13]");
  table.columns({"instance", "n", "SEPT flow", "SEPT flow (sim)", "OPT flow",
                 "flow gap", "LEPT mksp", "OPT mksp", "mksp gap"});

  int flow_gaps = 0, mksp_gaps = 0;
  bool sim_covers_exact = true;
  for (std::size_t inst = 0; inst < 8; ++inst) {
    const experiment::BatchScenario s = experiment::twopoint_scenario(inst);
    const std::size_t n = s.jobs.size();
    double opt_flow = 0.0, opt_mksp = 0.0;
    best_list_order_discrete(s.jobs, 2, false, &opt_flow);
    best_list_order_discrete(s.jobs, 2, true, &opt_mksp);
    const Order sept = sept_order(s.jobs);
    const double sept_flow =
        exact_list_policy_discrete(s.jobs, sept, 2).flowtime;
    const double lept_mksp =
        exact_list_policy_discrete(s.jobs, lept_order(s.jobs), 2).makespan;

    // Engine cross-check: simulated SEPT flowtime (unit weights, so the
    // weighted-flowtime metric IS the flowtime) against the exact lattice.
    experiment::EngineOptions eopt;
    eopt.seed = 77 + inst;
    eopt.min_replications = 64;
    eopt.batch = 256;
    eopt.max_replications = bench::smoke_scale<std::size_t>(8192, 256);
    eopt.rel_precision = bench::smoke_scale(0.01, 0.05);
    const auto sim = experiment::run_batch(s, sept, eopt);
    sim_covers_exact =
        sim_covers_exact && sim.estimate().covers(sept_flow);

    if (sept_flow > opt_flow * (1.0 + 1e-9)) ++flow_gaps;
    if (lept_mksp > opt_mksp * (1.0 + 1e-9)) ++mksp_gaps;

    table.add_row({std::string("#") + std::to_string(inst), std::to_string(n),
                   fmt(sept_flow),
                   fmt_ci(sim.metrics[0].mean(),
                          sim.metrics[0].ci_halfwidth()),
                   fmt(opt_flow), fmt_pct(sept_flow / opt_flow - 1.0),
                   fmt(lept_mksp), fmt(opt_mksp),
                   fmt_pct(lept_mksp / opt_mksp - 1.0)});
  }
  table.note("values exact over the 2^n realization lattice; optimum over n! list orders");
  table.note(std::string("engine sim CI covers the exact SEPT value on ") +
             (sim_covers_exact ? "every instance" : "SOME INSTANCES ONLY"));
  table.verdict(flow_gaps > 0,
                "SEPT strictly suboptimal for flowtime on some instance");
  table.verdict(mksp_gaps > 0,
                "LEPT strictly suboptimal for makespan on some instance");
  return stosched::bench::finish(table);
}
