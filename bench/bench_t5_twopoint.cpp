// T5 — outside the theorems' assumptions the simple rules fail: two-point
// processing times on two machines (Coffman–Hofri–Weiss family [13]).
//
// For each instance the table compares SEPT/LEPT (by mean) against the
// exhaustive optimum over list orders, all evaluated *exactly* on the
// realization lattice. Prediction: a strict gap appears on some instances —
// the counterexample the survey cites — while for exponential jobs (T3/T4)
// the same rules were exactly optimal.
#include <string>

#include "batch/job.hpp"
#include "batch/parallel_machines.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("T5: two-point jobs on 2 machines — SEPT/LEPT lose optimality [13]");
  table.columns({"instance", "n", "SEPT flow", "OPT flow", "flow gap",
                 "LEPT mksp", "OPT mksp", "mksp gap"});

  Rng master(77);
  int flow_gaps = 0, mksp_gaps = 0;
  for (int inst = 0; inst < 8; ++inst) {
    Rng rng = master.stream(inst);
    const std::size_t n = 5 + rng.below(2);  // 5..6 (exhaustive is n!)
    Batch jobs;
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(0.05, 0.5);
      const double b = a + rng.uniform(2.0, 12.0);
      const double pa = rng.uniform(0.5, 0.95);
      jobs.push_back({1.0, two_point_dist(a, pa, b)});
    }
    double opt_flow = 0.0, opt_mksp = 0.0;
    best_list_order_discrete(jobs, 2, false, &opt_flow);
    best_list_order_discrete(jobs, 2, true, &opt_mksp);
    const double sept_flow =
        exact_list_policy_discrete(jobs, sept_order(jobs), 2).flowtime;
    const double lept_mksp =
        exact_list_policy_discrete(jobs, lept_order(jobs), 2).makespan;

    if (sept_flow > opt_flow * (1.0 + 1e-9)) ++flow_gaps;
    if (lept_mksp > opt_mksp * (1.0 + 1e-9)) ++mksp_gaps;

    table.add_row({std::string("#") + std::to_string(inst), std::to_string(n),
                   fmt(sept_flow), fmt(opt_flow),
                   fmt_pct(sept_flow / opt_flow - 1.0), fmt(lept_mksp),
                   fmt(opt_mksp), fmt_pct(lept_mksp / opt_mksp - 1.0)});
  }
  table.note("values exact over the 2^n realization lattice; optimum over n! list orders");
  table.verdict(flow_gaps > 0,
                "SEPT strictly suboptimal for flowtime on some instance");
  table.verdict(mksp_gaps > 0,
                "LEPT strictly suboptimal for makespan on some instance");
  return stosched::bench::finish(table);
}
