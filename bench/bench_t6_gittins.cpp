// T6 — the Gittins index rule is optimal for the discounted multi-armed
// bandit [19]. Exact evaluation on product MDPs: Gittins vs the dynamic
// optimum vs myopic and single-best-arm baselines.
#include <cmath>
#include <string>

#include "bandit/bandit_sim.hpp"
#include "bandit/gittins.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::bandit;

int main() {
  Table table("T6: discounted multi-armed bandit — Gittins rule [19]");
  table.columns({"instance", "N", "beta", "Gittins", "OPT (DP)", "myopic",
                 "Gittins=OPT", "myopic loss"});

  Rng master(2024);
  bool all_match = true;
  double worst_myopic = 0.0;
  for (int inst = 0; inst < 8; ++inst) {
    Rng rng = master.stream(inst);
    BanditInstance bi;
    bi.beta = 0.75 + 0.2 * rng.uniform();
    const std::size_t projects = 2 + rng.below(2);
    for (std::size_t j = 0; j < projects; ++j)
      bi.projects.push_back(random_project(2 + rng.below(3), rng));
    const std::vector<std::size_t> start(projects, 0);

    const double opt = optimal_value(bi, start);
    const double git = index_policy_value(bi, gittins_table(bi), start);
    const double myo = index_policy_value(bi, myopic_table(bi), start);

    const bool match = std::abs(git - opt) <= 1e-6 * (1.0 + std::abs(opt));
    all_match = all_match && match;
    const double loss = (opt - myo) / std::abs(opt);
    worst_myopic = std::max(worst_myopic, loss);

    table.add_row({std::string("#") + std::to_string(inst), std::to_string(projects),
                   fmt(bi.beta, 3), fmt(git), fmt(opt), fmt(myo),
                   match ? "yes" : "NO", fmt_pct(loss)});
  }
  table.note("all policy values exact (policy evaluation on the product MDP)");
  table.verdict(all_match, "Gittins rule attains the optimum on all rows");
  table.verdict(worst_myopic > 0.0005,
                "myopic rule strictly suboptimal somewhere (foresight matters)");
  return stosched::bench::finish(table);
}
