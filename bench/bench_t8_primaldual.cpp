// T8 — the LP primal-dual index heuristic for restless bandits [7]: built
// from the optimal duals of the relaxation, it matches Whittle's rule on
// indexable projects and remains defined when indexability fails.
//
// Heterogeneous random instances, exact evaluation on small product chains:
// relaxation bound >= optimum >= {Whittle, primal-dual, myopic}.
#include <cmath>
#include <string>

#include "bench_common.hpp"
#include "restless/relaxation.hpp"
#include "restless/restless_project.hpp"
#include "restless/restless_sim.hpp"
#include "restless/whittle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::restless;

int main() {
  Table table("T8: restless bandits — primal-dual LP heuristic [7]");
  table.columns({"instance", "indexable", "bound", "OPT", "primal-dual",
                 "Whittle", "myopic", "PD regret"});

  Rng master(808);
  bool bound_valid = true;
  bool pd_defined_everywhere = true;
  double total_pd_regret = 0.0, total_myo_regret = 0.0;
  int rows = 0;
  for (int inst_id = 0; inst_id < 8; ++inst_id) {
    Rng rng = master.stream(inst_id);
    RestlessInstance inst;
    inst.activate = 1;
    for (int j = 0; j < 2; ++j)
      inst.projects.push_back(random_restless_project(3, rng));

    const auto relax = solve_relaxation(inst);
    const double opt = optimal_average_reward(inst);
    bound_valid = bound_valid && relax.bound >= opt - 1e-6;

    // Primal-dual advantage table (always defined).
    PriorityTable pd = relax.advantage;
    const double pd_val = priority_policy_average_reward(inst, pd);

    // Whittle (only when both projects are indexable).
    bool indexable = true;
    PriorityTable wt;
    for (const auto& p : inst.projects) {
      const auto w = whittle_index(p);
      indexable = indexable && w.indexable;
      wt.push_back(w.index);
    }
    const double w_val =
        indexable ? priority_policy_average_reward(inst, wt) : 0.0;

    PriorityTable mt;
    for (const auto& p : inst.projects) mt.push_back(myopic_index(p));
    const double m_val = priority_policy_average_reward(inst, mt);

    pd_defined_everywhere = pd_defined_everywhere && std::isfinite(pd_val);
    total_pd_regret += (opt - pd_val) / (std::abs(opt) + 1e-12);
    total_myo_regret += (opt - m_val) / (std::abs(opt) + 1e-12);
    ++rows;

    table.add_row({std::string("#") + std::to_string(inst_id), indexable ? "yes" : "no",
                   fmt(relax.bound, 4), fmt(opt, 4), fmt(pd_val, 4),
                   indexable ? fmt(w_val, 4) : "n/a", fmt(m_val, 4),
                   fmt_pct((opt - pd_val) / (std::abs(opt) + 1e-12))});
  }
  table.note("N=2 projects, m=1; OPT and policy values exact on the product chain");
  table.verdict(bound_valid, "LP relaxation upper-bounds the exact optimum");
  table.verdict(pd_defined_everywhere,
                "primal-dual heuristic defined on every instance");
  table.verdict(total_pd_regret <= total_myo_regret + 0.02 * rows,
                "primal-dual no worse than myopic on aggregate");
  return stosched::bench::finish(table);
}
