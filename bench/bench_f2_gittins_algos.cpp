// F2 — the Gittins index is computable in finitely many steps [19, 40]:
// three independent algorithms (largest-index / restart-in-state /
// retirement calibration) must agree; their costs scale differently with
// the state count. This doubles as the library's index-algorithm ablation.
#include <algorithm>
#include <chrono>
#include <cmath>

#include "bandit/gittins.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::bandit;

int main() {
  Table table("F2: Gittins algorithms — agreement and scaling [40,47]");
  table.columns({"states", "max |VWB-restart|", "max |VWB-calib|",
                 "VWB ms", "restart ms", "calibration ms"});

  Rng master(555);
  bool all_agree = true;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 48u}) {
    Rng rng = master.stream(n);
    const MarkovProject p = random_project(n, rng);
    const double beta = 0.9;

    const auto t0 = std::chrono::steady_clock::now();
    const auto a = gittins_largest_index(p, beta);
    const auto t1 = std::chrono::steady_clock::now();
    const auto b = gittins_restart(p, beta);
    const auto t2 = std::chrono::steady_clock::now();
    const auto c = gittins_calibration(p, beta);
    const auto t3 = std::chrono::steady_clock::now();

    double dab = 0.0, dac = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      dab = std::max(dab, std::abs(a[s] - b[s]));
      dac = std::max(dac, std::abs(a[s] - c[s]));
    }
    all_agree = all_agree && dab < 1e-6 && dac < 1e-5;

    const auto ms = [](auto d) {
      return std::chrono::duration<double, std::milli>(d).count();
    };
    table.add_row({std::to_string(n), fmt(dab, 9), fmt(dac, 9),
                   fmt(ms(t1 - t0), 2), fmt(ms(t2 - t1), 2),
                   fmt(ms(t3 - t2), 2)});
  }
  table.note("VWB = Varaiya-Walrand-Buyukkoc largest-index (exact linear algebra)");
  table.verdict(all_agree, "three independent algorithms agree to <=1e-5");
  return stosched::bench::finish(table);
}
