// T12 — uniform machines (different speeds): the optimal policy has a
// threshold structure [1, 33, 12] — the slow machine is used only while
// enough work remains; committing the last jobs to it is a mistake.
//
// Sweep the slow machine's speed: exact optimum (with idling allowed) vs the
// greedy never-idle SEPT policy, plus the count of decision states where the
// optimum idles the slow machine.
#include "batch/job.hpp"
#include "batch/uniform_machines.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("T12: two uniform machines, E[sum C_j] — threshold structure [1,33]");
  table.columns({"slow speed s2", "OPT", "greedy never-idle", "greedy loss",
                 "idle states"});

  Rng master(99);
  std::vector<ExpJob> jobs(6);
  Batch batch;
  {
    Rng rng = master.stream(0);
    for (auto& j : jobs) {
      j.rate = rng.uniform(0.5, 2.0);
      batch.push_back({1.0, exponential_dist(j.rate)});
    }
  }
  const auto priority = sept_order(batch);

  bool greedy_never_better = true;
  std::size_t idle_at_slowest = 0, idle_at_equal = 0;
  double worst_loss = 0.0;
  for (const double s2 : {1.0, 0.6, 0.3, 0.15, 0.05}) {
    const auto opt = uniform2_dp_optimal(jobs, 1.0, s2, ExpObjective::kFlowtime);
    const double greedy =
        uniform2_dp_priority(jobs, 1.0, s2, ExpObjective::kFlowtime, priority);
    const double loss = greedy / opt.value - 1.0;
    greedy_never_better = greedy_never_better && greedy >= opt.value - 1e-9;
    worst_loss = std::max(worst_loss, loss);
    if (s2 == 0.05) idle_at_slowest = opt.idle_states;
    if (s2 == 1.0) idle_at_equal = opt.idle_states;
    table.add_row({fmt(s2, 2), fmt(opt.value), fmt(greedy), fmt_pct(loss),
                   std::to_string(opt.idle_states)});
  }
  table.note("nonpreemptive commitment; exact values via decision/race DP");
  table.verdict(greedy_never_better, "optimum dominates the greedy policy");
  table.verdict(idle_at_slowest > idle_at_equal,
                "idling the slow machine appears as it slows (threshold)");
  table.verdict(worst_loss > 0.01,
                "never-idle greedy measurably suboptimal at low s2");
  return stosched::bench::finish(table);
}
