// F11 — stochastic online scheduling on parallel & unrelated machines:
// empirical competitive ratios of four assignment policies against the
// per-instance offline lower bound (release / WSEPT-mean-busy-time /
// interval LP, see online/lower_bound.hpp).
//
// The sweep crosses machine counts, loads and size-SCV levels on the
// identical-machine mix, then the three unrelated-machine scenarios
// (Poisson, bursty MMPP with IDC 6, Bernoulli two-point jobs) plus a small
// LP-audited Bernoulli cell. Every cell is one CRN-paired four-arm
// comparison — all arms replay the identical realized instance — with
// sequential-precision stopping on the ratio differences. The qualitative
// predictions checked: the bound is a true path-by-path lower bound (every
// replication ratio >= 1), greedy WSEPT beats random assignment on every
// unrelated-machine cell, and the greedy ratio stays inside the
// literature's small-constant guarantees.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

namespace {

struct Cell {
  std::string label;
  OnlineScenario scenario;
  bool unrelated = false;
};

}  // namespace

int main() {
  Table table("F11: online scheduling vs offline lower bound (ratio = "
              "policy cost / LB)");
  table.columns({"cell", "jobs", "greedy", "min-inc", "1-sample", "random",
                 "g-hw", "best"});

  const double horizon_scale = bench::smoke_scale(1.0, 0.4);
  std::vector<Cell> cells;
  {
    const OnlineScenario base = online_scenario("online-identical");
    cells.push_back({"identical m=2", with_machines(base, 2), false});
    cells.push_back({"identical m=4 rho=.75", base, false});
    cells.push_back({"identical m=8", with_machines(base, 8), false});
    cells.push_back({"identical rho=.6", scale_to_load(base, 0.6), false});
    cells.push_back({"identical rho=.9", scale_to_load(base, 0.9), false});
    cells.push_back({"identical scv=.25", with_size_scv(base, 0.25), false});
    cells.push_back({"identical scv=4", with_size_scv(base, 4.0), false});
  }
  cells.push_back({"unrelated", online_scenario("online-unrelated"), true});
  cells.push_back({"unrelated idc=6", online_scenario("online-bursty"), true});
  cells.push_back(
      {"bernoulli", online_scenario("online-bernoulli"), true});
  {
    // Bernoulli cell with the interval-indexed LP bound engaged, so the
    // reported ratios are against the LP-refined bound. ~130 jobs per
    // replication — beyond the dense-era cap of 96; the revised simplex
    // solves each bound LP in tens of milliseconds (see bench_micro_lp).
    OnlineScenario lp = online_scenario("online-bernoulli");
    lp.name += "-lp";
    lp.horizon = 48.0;
    lp.bound.use_lp = true;
    cells.push_back({"bernoulli-lp", std::move(lp), true});
  }

  EngineOptions opt;
  opt.seed = 111;
  bench::note_seed(opt.seed);
  opt.min_replications = 32;
  opt.batch = 32;
  opt.max_replications = bench::smoke_scale<std::size_t>(160, 24);
  opt.rel_precision = 0.08;
  opt.tracked = {0};  // the ratio differences drive the stopping rule

  const auto arms = online_policy_arms();  // greedy, min-inc, 1-sample, random
  const std::vector<std::string> arm_names{"greedy-wsept", "min-increase",
                                           "single-sample", "random"};

  bool all_ratios_ge_one = true;
  bool greedy_beats_random_unrelated = true;
  bool greedy_small_constant = true;
  bool converged = true;
  std::size_t total_reps = 0;
  for (auto& cell : cells) {
    cell.scenario.horizon *= horizon_scale;
    EngineOptions cell_opt = opt;
    if (cell.label == "bernoulli-lp")
      cell_opt.max_replications = bench::smoke_scale<std::size_t>(48, 16);
    const auto cmp = compare_online_policies(cell.scenario, arms, cell_opt,
                                             Pairing::kCommonRandomNumbers);
    std::size_t best = 0;
    for (std::size_t k = 0; k < arms.size(); ++k) {
      all_ratios_ge_one =
          all_ratios_ge_one && cmp.arm[k][0].min() >= 1.0 - 1e-9;
      if (cmp.arm[k][0].mean() < cmp.arm[best][0].mean()) best = k;
    }
    // Arm 0 is greedy; diff[k-1] = arm k − greedy, so random beating greedy
    // would show as a negative ratio difference.
    if (cell.unrelated)
      greedy_beats_random_unrelated =
          greedy_beats_random_unrelated && cmp.diff[2][0].mean() > 0.0;
    greedy_small_constant =
        greedy_small_constant && cmp.arm[0][0].mean() < 3.0;
    converged = converged && cmp.converged;
    total_reps += cmp.replications;
    table.add_row({cell.label, fmt(cmp.arm[0][3].mean(), 1),
                   fmt(cmp.arm[0][0].mean(), 3), fmt(cmp.arm[1][0].mean(), 3),
                   fmt(cmp.arm[2][0].mean(), 3), fmt(cmp.arm[3][0].mean(), 3),
                   fmt(cmp.arm[0][0].ci_halfwidth(), 3), arm_names[best]});
  }

  table.note("ratio = realized sum w_j C_j / offline lower bound, per path");
  table.note("CRN pairs: all four arms replay identical realized instances");
  table.note("engine: " + std::to_string(total_reps) +
             " total CRN replications" +
             (converged ? "" : " (precision cap hit)"));
  table.verdict(all_ratios_ge_one,
                "offline bound is a true lower bound: every replication of "
                "every policy has ratio >= 1");
  table.verdict(greedy_beats_random_unrelated,
                "greedy WSEPT beats random assignment on every "
                "unrelated-machine cell");
  table.verdict(greedy_small_constant,
                "greedy WSEPT empirical ratio stays below 3 on every cell "
                "(the literature's small-constant regime)");
  // Mixed traffic across rows (Poisson / MMPP / two-point jobs); tag the
  // trajectory with the sweep's top burstiness level.
  return bench::finish(table, {"online-mixed", 6.0});
}
