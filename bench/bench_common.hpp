// bench_common.hpp — shared scaffolding for the experiment binaries.
//
// Every experiment binary regenerates one table/figure of EXPERIMENTS.md:
// it prints a Table (rows = instances or sweep points), appends PASS/FAIL
// verdicts for the paper's qualitative predictions, and exits nonzero if a
// verdict failed so the bench loop doubles as a regression gate.
#pragma once

#include <iostream>

#include "util/table.hpp"

namespace stosched::bench {

/// Print the table and return the process exit code.
inline int finish(const Table& table) {
  table.print(std::cout);
  return table.all_checks_passed() ? 0 : 1;
}

}  // namespace stosched::bench
