// bench_common.hpp — shared scaffolding for the experiment binaries.
//
// Every experiment binary regenerates one table/figure of EXPERIMENTS.md:
// it prints a Table (rows = instances or sweep points), appends PASS/FAIL
// verdicts for the paper's qualitative predictions, and exits nonzero if a
// verdict failed so the bench loop doubles as a regression gate.
//
// Two environment knobs:
//   * STOSCHED_BENCH_JSON=<path>   — also write the table (title, columns,
//     per-row metrics, verdicts, wall-clock seconds) as JSON, so perf/result
//     trajectories can accumulate across commits;
//   * STOSCHED_BENCH_SMOKE=1      — benches shrink replication caps and
//     horizons (via smoke()/smoke_scale()) so CI can exercise the full
//     experiment-engine path in seconds.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "des/event_queue.hpp"
#include "lp/simplex.hpp"
#include "util/table.hpp"

namespace stosched::bench {

/// Traffic-configuration metadata mirrored into the bench JSON: which
/// arrival-process kind drove the experiment and its burstiness (asymptotic
/// index of dispersion; 1 = Poisson, interarrival SCV for renewal input).
/// tools/bench_compare.py refuses to diff two files whose arrival blocks
/// disagree — a perf/metric trajectory is only meaningful against the same
/// traffic. The default describes every pre-arrival-process bench.
struct ArrivalMeta {
  std::string kind = "poisson";
  double burstiness = 1.0;
};

/// True when STOSCHED_BENCH_SMOKE is set (and not "0"): benches should run
/// with tight replication caps so the whole binary finishes in seconds.
inline bool smoke() {
  const char* v = std::getenv("STOSCHED_BENCH_SMOKE");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

/// `full` in a normal run, `reduced` in a smoke run.
template <class T>
T smoke_scale(T full, T reduced) {
  return smoke() ? reduced : full;
}

namespace detail {

/// Wall-clock anchor: initialized at static-init time of the bench binary,
/// read by finish() — close enough to process wall time for trend tracking.
inline const std::chrono::steady_clock::time_point bench_start =
    std::chrono::steady_clock::now();

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True iff `s` matches the strict JSON number grammar ("-?int[.frac][exp]",
/// no leading zeros, no leading '+', no inf/nan) — stricter than strtod,
/// which would happily accept "012" or "inf".
inline bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  const std::size_t n = s.size();
  if (i < n && s[i] == '-') ++i;
  if (i >= n || s[i] < '0' || s[i] > '9') return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < n && s[i] == '.') {
    ++i;
    if (i >= n || s[i] < '0' || s[i] > '9') return false;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= n || s[i] < '0' || s[i] > '9') return false;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  return i == n;
}

/// Emit a cell as a JSON number only when it is one AND carries a decimal
/// point or exponent. Metric cells come from fmt() and always contain '.',
/// while label cells ("102", instance ids, N values) never do — requiring
/// the marker keeps every column type-consistent across rows ("012" and
/// "102" both stay strings instead of splitting into string/number).
inline std::string json_cell(const std::string& cell) {
  if (is_json_number(cell) &&
      cell.find_first_of(".eE") != std::string::npos)
    return cell;
  return '"' + json_escape(cell) + '"';
}

inline void write_json(const Table& table, const std::string& path,
                       double wall_seconds, std::uint64_t events,
                       double events_per_sec, const ArrivalMeta& arrival,
                       const lp::LpCounters& lp_counters) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: cannot write JSON to " << path << '\n';
    return;
  }
  os << "{\n  \"bench\": \"" << json_escape(table.title()) << "\",\n"
     << "  \"wall_seconds\": " << wall_seconds << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_sec\": " << events_per_sec << ",\n";
  // LP effort keys appear only when the bench solved LPs, so the JSON shape
  // of every pre-LP bench (and its history) is untouched. Counts are
  // deterministic; the rate is the perf trajectory (warn-only in compare).
  if (lp_counters.solves > 0) {
    const double lp_rate =
        wall_seconds > 0.0
            ? static_cast<double>(lp_counters.solves) / wall_seconds
            : 0.0;
    os << "  \"lp_solves\": " << lp_counters.solves << ",\n"
       << "  \"lp_iterations\": " << lp_counters.iterations << ",\n"
       << "  \"lp_solves_per_sec\": " << lp_rate << ",\n";
  }
  os << "  \"arrival\": {\"kind\": \"" << json_escape(arrival.kind)
     << "\", \"burstiness\": " << arrival.burstiness << "},\n"
     << "  \"passed\": " << (table.all_checks_passed() ? "true" : "false")
     << ",\n  \"columns\": [";
  for (std::size_t c = 0; c < table.header().size(); ++c)
    os << (c ? ", " : "") << '"' << json_escape(table.header()[c]) << '"';
  os << "],\n  \"rows\": [";
  const auto& rows = table.row_cells();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << (r ? ",\n    [" : "\n    [");
    for (std::size_t c = 0; c < rows[r].size(); ++c)
      os << (c ? ", " : "") << json_cell(rows[r][c]);
    os << ']';
  }
  os << "\n  ],\n  \"notes\": [";
  const auto& notes = table.notes();
  for (std::size_t n = 0; n < notes.size(); ++n)
    os << (n ? ", " : "") << '"' << json_escape(notes[n]) << '"';
  os << "],\n  \"verdicts\": [";
  const auto& verdicts = table.verdicts();
  for (std::size_t v = 0; v < verdicts.size(); ++v)
    os << (v ? ",\n    {" : "\n    {") << "\"pass\": "
       << (verdicts[v].pass ? "true" : "false") << ", \"what\": \""
       << json_escape(verdicts[v].what) << "\"}";
  os << "\n  ]\n}\n";
}

}  // namespace detail

/// Print the table plus a DES throughput line (events popped process-wide
/// and events/sec — the events count is deterministic, the rate is the perf
/// trajectory), optionally mirror both to $STOSCHED_BENCH_JSON (tagged with
/// the bench's traffic configuration), and return the process exit code.
/// Benches driving non-Poisson input pass an explicit ArrivalMeta so the
/// compare tool never diffs trajectories across traffic regimes.
inline int finish(const Table& table, const ArrivalMeta& arrival = {}) {
  table.print(std::cout);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    detail::bench_start)
          .count();
  const std::uint64_t events = process_event_count();
  const double events_per_sec =
      wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  if (events > 0)
    std::cout << "[des] " << events << " events in " << wall << " s ("
              << events_per_sec << " events/sec)\n";
  const lp::LpCounters lp_counters = lp::process_lp_counters();
  if (lp_counters.solves > 0)
    std::cout << "[lp] " << lp_counters.solves << " solves, "
              << lp_counters.iterations << " simplex iterations ("
              << (wall > 0.0 ? static_cast<double>(lp_counters.solves) / wall
                             : 0.0)
              << " solves/sec)\n";
  if (const char* path = std::getenv("STOSCHED_BENCH_JSON"))
    detail::write_json(table, path, wall, events, events_per_sec, arrival,
                       lp_counters);
  return table.all_checks_passed() ? 0 : 1;
}

}  // namespace stosched::bench
