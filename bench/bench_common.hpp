// bench_common.hpp — shared scaffolding for the experiment binaries.
//
// Every experiment binary regenerates one table/figure of EXPERIMENTS.md:
// it prints a Table (rows = instances or sweep points), appends PASS/FAIL
// verdicts for the paper's qualitative predictions, and exits nonzero if a
// verdict failed so the bench loop doubles as a regression gate.
//
// Two environment knobs:
//   * STOSCHED_BENCH_JSON=<path>   — also write the table (title, columns,
//     per-row metrics, verdicts, wall-clock seconds) as JSON, so perf/result
//     trajectories can accumulate across commits;
//   * STOSCHED_BENCH_SMOKE=1      — benches shrink replication caps and
//     horizons (via smoke()/smoke_scale()) so CI can exercise the full
//     experiment-engine path in seconds.
//
// All telemetry now flows from the obs registry (src/obs/): the "events" /
// "lp_solves" / "lp_iterations" counters keep their historical JSON keys
// bit-for-bit, the cross-simulator wait/sojourn histograms add
// deterministic tail-percentile columns (p50/p90/p99/p999), and finish()
// stamps a "provenance" block (git sha, compiler, flags, build type,
// sanitizers, OpenMP width, seed, scenario hash) so tools/bench_compare.py
// can flag apples-to-oranges comparisons instead of silently diffing them.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "util/table.hpp"

namespace stosched::bench {

/// Traffic-configuration metadata mirrored into the bench JSON: which
/// arrival-process kind drove the experiment and its burstiness (asymptotic
/// index of dispersion; 1 = Poisson, interarrival SCV for renewal input).
/// tools/bench_compare.py refuses to diff two files whose arrival blocks
/// disagree — a perf/metric trajectory is only meaningful against the same
/// traffic. The default describes every pre-arrival-process bench.
struct ArrivalMeta {
  std::string kind = "poisson";
  double burstiness = 1.0;
};

/// True when STOSCHED_BENCH_SMOKE is set (and not "0"): benches should run
/// with tight replication caps so the whole binary finishes in seconds.
inline bool smoke() {
  const char* v = std::getenv("STOSCHED_BENCH_SMOKE");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

/// `full` in a normal run, `reduced` in a smoke run.
template <class T>
T smoke_scale(T full, T reduced) {
  return smoke() ? reduced : full;
}

namespace detail {

/// Wall-clock anchor: initialized at static-init time of the bench binary,
/// read by finish() — close enough to process wall time for trend tracking.
inline const std::chrono::steady_clock::time_point bench_start =
    std::chrono::steady_clock::now();

/// Master seed recorded by note_seed(); stamped into the provenance block
/// when the bench declared one.
inline std::uint64_t g_seed = 0;
inline bool g_seed_set = false;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True iff `s` matches the strict JSON number grammar ("-?int[.frac][exp]",
/// no leading zeros, no leading '+', no inf/nan) — stricter than strtod,
/// which would happily accept "012" or "inf".
inline bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  const std::size_t n = s.size();
  if (i < n && s[i] == '-') ++i;
  if (i >= n || s[i] < '0' || s[i] > '9') return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < n && s[i] == '.') {
    ++i;
    if (i >= n || s[i] < '0' || s[i] > '9') return false;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= n || s[i] < '0' || s[i] > '9') return false;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  return i == n;
}

/// Emit a cell as a JSON number only when it is one AND carries a decimal
/// point or exponent. Metric cells come from fmt() and always contain '.',
/// while label cells ("102", instance ids, N values) never do — requiring
/// the marker keeps every column type-consistent across rows ("012" and
/// "102" both stay strings instead of splitting into string/number).
inline std::string json_cell(const std::string& cell) {
  if (is_json_number(cell) &&
      cell.find_first_of(".eE") != std::string::npos)
    return cell;
  return '"' + json_escape(cell) + '"';
}

/// FNV-1a over the bytes of `s`, chained through `h` — the scenario hash is
/// the fold over title, column headers and arrival block, so any change to
/// what the bench measures changes the hash.
inline std::uint64_t fnv1a(const std::string& s,
                           std::uint64_t h = 1469598103934665603ULL) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

inline std::string scenario_hash(const Table& table,
                                 const ArrivalMeta& arrival) {
  std::uint64_t h = fnv1a(table.title());
  for (const std::string& col : table.header()) h = fnv1a(col, h);
  h = fnv1a(arrival.kind, h);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", arrival.burstiness);
  h = fnv1a(buf, h);
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Tail-percentile keys for one registry histogram, emitted only when it
/// recorded anything (so the JSON shape of benches without that histogram —
/// and of all pre-obs history — is untouched). Percentiles are bucket
/// boundaries: deterministic, so they join the --exact gate.
inline void write_tails(std::ostream& os, const char* prefix,
                        const obs::HistogramSnapshot& h) {
  if (h.total == 0) return;
  os << "  \"" << prefix << "_count\": " << h.total << ",\n"
     << "  \"" << prefix << "_p50\": " << h.percentile(0.50) << ",\n"
     << "  \"" << prefix << "_p90\": " << h.percentile(0.90) << ",\n"
     << "  \"" << prefix << "_p99\": " << h.percentile(0.99) << ",\n"
     << "  \"" << prefix << "_p999\": " << h.percentile(0.999) << ",\n";
}

inline void write_provenance(std::ostream& os, const Table& table,
                             const ArrivalMeta& arrival) {
  const obs::BuildInfo b = obs::build_info();
  os << "  \"provenance\": {\"git_sha\": \"" << json_escape(b.git_sha)
     << "\", \"compiler\": \"" << json_escape(b.compiler)
     << "\", \"flags\": \"" << json_escape(b.flags)
     << "\", \"build_type\": \"" << json_escape(b.build_type)
     << "\", \"sanitizers\": \"" << json_escape(b.sanitizers)
     << "\", \"contracts\": " << (b.contracts ? "true" : "false")
     << ", \"trace\": " << (b.trace ? "true" : "false")
     << ", \"time_stats\": " << (b.time_stats ? "true" : "false")
     << ", \"omp_max_threads\": " << b.omp_max_threads;
  if (g_seed_set) os << ", \"seed\": " << g_seed;
  os << ", \"scenario_hash\": \"" << scenario_hash(table, arrival)
     << "\"},\n";
}

inline void write_json(const Table& table, const std::string& path,
                       double wall_seconds, std::uint64_t events,
                       double events_per_sec, const ArrivalMeta& arrival,
                       std::uint64_t lp_solves, std::uint64_t lp_iterations) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: cannot write JSON to " << path << '\n';
    return;
  }
  os << "{\n  \"bench\": \"" << json_escape(table.title()) << "\",\n"
     << "  \"wall_seconds\": " << wall_seconds << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"events_per_sec\": " << events_per_sec << ",\n";
  // LP effort keys appear only when the bench solved LPs, so the JSON shape
  // of every pre-LP bench (and its history) is untouched. Counts are
  // deterministic; the rate is the perf trajectory (warn-only in compare).
  if (lp_solves > 0) {
    const double lp_rate =
        wall_seconds > 0.0 ? static_cast<double>(lp_solves) / wall_seconds
                           : 0.0;
    os << "  \"lp_solves\": " << lp_solves << ",\n"
       << "  \"lp_iterations\": " << lp_iterations << ",\n"
       << "  \"lp_solves_per_sec\": " << lp_rate << ",\n";
  }
  write_tails(os, "wait", obs::histogram_snapshot("wait_time"));
  write_tails(os, "sojourn", obs::histogram_snapshot("sojourn_time"));
  write_provenance(os, table, arrival);
  os << "  \"arrival\": {\"kind\": \"" << json_escape(arrival.kind)
     << "\", \"burstiness\": " << arrival.burstiness << "},\n"
     << "  \"passed\": " << (table.all_checks_passed() ? "true" : "false")
     << ",\n  \"columns\": [";
  for (std::size_t c = 0; c < table.header().size(); ++c)
    os << (c ? ", " : "") << '"' << json_escape(table.header()[c]) << '"';
  os << "],\n  \"rows\": [";
  const auto& rows = table.row_cells();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << (r ? ",\n    [" : "\n    [");
    for (std::size_t c = 0; c < rows[r].size(); ++c)
      os << (c ? ", " : "") << json_cell(rows[r][c]);
    os << ']';
  }
  os << "\n  ],\n  \"notes\": [";
  const auto& notes = table.notes();
  for (std::size_t n = 0; n < notes.size(); ++n)
    os << (n ? ", " : "") << '"' << json_escape(notes[n]) << '"';
  os << "],\n  \"verdicts\": [";
  const auto& verdicts = table.verdicts();
  for (std::size_t v = 0; v < verdicts.size(); ++v)
    os << (v ? ",\n    {" : "\n    {") << "\"pass\": "
       << (verdicts[v].pass ? "true" : "false") << ", \"what\": \""
       << json_escape(verdicts[v].what) << "\"}";
  os << "\n  ]\n}\n";
}

}  // namespace detail

/// Record the bench's master seed for the provenance block. Call once,
/// right where the bench fixes its EngineOptions seed; the JSON "seed" key
/// appears only for benches that declared one.
inline void note_seed(std::uint64_t seed) {
  detail::g_seed = seed;
  detail::g_seed_set = true;
}

/// Print the table plus a DES throughput line (events popped process-wide
/// and events/sec — the events count is deterministic, the rate is the perf
/// trajectory), optionally mirror both to $STOSCHED_BENCH_JSON (tagged with
/// the bench's traffic configuration and build provenance), and return the
/// process exit code. Benches driving non-Poisson input pass an explicit
/// ArrivalMeta so the compare tool never diffs trajectories across traffic
/// regimes. All counts are read from the obs registry by name.
inline int finish(const Table& table, const ArrivalMeta& arrival = {}) {
  table.print(std::cout);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    detail::bench_start)
          .count();
  const std::uint64_t events = obs::counter_value("events");
  const double events_per_sec =
      wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  if (events > 0)
    std::cout << "[des] " << events << " events in " << wall << " s ("
              << events_per_sec << " events/sec)\n";
  const std::uint64_t lp_solves = obs::counter_value("lp_solves");
  const std::uint64_t lp_iterations = obs::counter_value("lp_iterations");
  if (lp_solves > 0)
    std::cout << "[lp] " << lp_solves << " solves, " << lp_iterations
              << " simplex iterations ("
              << (wall > 0.0 ? static_cast<double>(lp_solves) / wall : 0.0)
              << " solves/sec)\n";
  const obs::HistogramSnapshot waits = obs::histogram_snapshot("wait_time");
  if (waits.total > 0)
    std::cout << "[obs] wait tails over " << waits.total
              << " samples: p50 " << waits.percentile(0.50) << ", p99 "
              << waits.percentile(0.99) << ", p999 "
              << waits.percentile(0.999) << '\n';
  if (const char* path = std::getenv("STOSCHED_BENCH_JSON"))
    detail::write_json(table, path, wall, events, events_per_sec, arrival,
                       lp_solves, lp_iterations);
  return table.all_checks_passed() ? 0 : 1;
}

}  // namespace stosched::bench
