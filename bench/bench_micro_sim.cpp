// Micro: end-to-end simulator throughput — multiclass M/G/1 events per
// second under each discipline, and the Lu-Kumar network. Establishes the
// cost of one simulated time unit, which sizes every experiment above.
#include <benchmark/benchmark.h>

#include "queueing/mg1.hpp"
#include "queueing/network.hpp"
#include "util/rng.hpp"

namespace {

using namespace stosched;
using namespace stosched::queueing;

std::vector<ClassSpec> classes3() {
  return {{0.25, exponential_dist(1.0), 1.0},
          {0.2, erlang_dist(2, 3.0), 2.0},
          {0.15, hyperexp2_dist(1.2, 3.0), 0.5}};
}

void bm_mg1(benchmark::State& state, Discipline d) {
  const auto classes = classes3();
  SimOptions opt;
  opt.discipline = d;
  if (d != Discipline::kFcfs) opt.priority = {1, 0, 2};
  opt.horizon = static_cast<double>(state.range(0));
  opt.warmup = opt.horizon / 10.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    const auto res = simulate_mg1(classes, opt, rng);
    benchmark::DoNotOptimize(res.cost_rate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void bm_mg1_fcfs(benchmark::State& s) { bm_mg1(s, Discipline::kFcfs); }
void bm_mg1_np(benchmark::State& s) {
  bm_mg1(s, Discipline::kPriorityNonPreemptive);
}
void bm_mg1_pr(benchmark::State& s) {
  bm_mg1(s, Discipline::kPriorityPreemptiveResume);
}
BENCHMARK(bm_mg1_fcfs)->Arg(10000);
BENCHMARK(bm_mg1_np)->Arg(10000);
BENCHMARK(bm_mg1_pr)->Arg(10000);

void bm_lu_kumar(benchmark::State& state) {
  const auto cfg = lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0,
                                    /*bad_priority=*/false);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    const auto trace =
        simulate_network(cfg, static_cast<double>(state.range(0)), 10, rng);
    benchmark::DoNotOptimize(trace.mean_total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_lu_kumar)->Arg(10000);

}  // namespace
