// Micro: discrete-event core — hold-model throughput of the future-event
// set across structures (d-ary heaps at three arities vs the calendar
// queue: the FES shootout DESIGN.md calls out) and sizes up to 10^6, a
// ramp-up/drain profile matching multi-replication engine runs, and the
// random-variate dispatch ablation (virtual Distribution::sample vs the
// devirtualized FlatSampler switch) over a mixed pool of laws. The hold
// model (pop one, push one) is the classical FES benchmark.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "des/calendar_queue.hpp"
#include "des/event_queue.hpp"
#include "dist/arrival.hpp"
#include "util/rng.hpp"

namespace {

template <class Queue>
void bm_hold_model(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Queue heap;
  stosched::Rng rng(42);
  for (std::size_t i = 0; i < size; ++i)
    heap.push(rng.uniform(0.0, 100.0), 0);
  for (auto _ : state) {
    const stosched::Event e = heap.pop();
    heap.push(e.time + rng.exponential(1.0), 0);
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_hold_binary(benchmark::State& s) {
  bm_hold_model<stosched::DaryEventHeap<2>>(s);
}
void bm_hold_quad(benchmark::State& s) {
  bm_hold_model<stosched::DaryEventHeap<4>>(s);
}
void bm_hold_octal(benchmark::State& s) {
  bm_hold_model<stosched::DaryEventHeap<8>>(s);
}
void bm_hold_calendar(benchmark::State& s) {
  bm_hold_model<stosched::CalendarEventQueue>(s);
}

BENCHMARK(bm_hold_binary)->Arg(64)->Arg(1024)->Arg(16384)->Arg(1000000);
BENCHMARK(bm_hold_quad)->Arg(64)->Arg(1024)->Arg(16384)->Arg(1000000);
BENCHMARK(bm_hold_octal)->Arg(64)->Arg(1024)->Arg(16384)->Arg(1000000);
BENCHMARK(bm_hold_calendar)->Arg(64)->Arg(1024)->Arg(16384)->Arg(1000000);

// Ramp-up/drain: push N events, then pop all N — the transient profile of
// a replication's start and finish, where the hold model's steady size
// never goes. Items processed = one push + one pop.
template <class Queue>
void bm_ramp_drain(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Queue heap;
  stosched::Rng rng(42);
  for (auto _ : state) {
    for (std::size_t i = 0; i < size; ++i)
      heap.push(rng.uniform(0.0, 100.0), 0);
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * size));
}

void bm_ramp_drain_quad(benchmark::State& s) {
  bm_ramp_drain<stosched::EventQueue>(s);
}
void bm_ramp_drain_calendar(benchmark::State& s) {
  bm_ramp_drain<stosched::CalendarEventQueue>(s);
}

BENCHMARK(bm_ramp_drain_quad)->Arg(1024)->Arg(16384);
BENCHMARK(bm_ramp_drain_calendar)->Arg(1024)->Arg(16384);

// Random-variate dispatch ablation over a mixed pool of arrival laws,
// drawn in per-law bursts (a simulator draining one class's epochs). The
// virtual side is the pre-flattening per-draw path: ArrivalProcess::next_gap
// (indirect) chaining into Distribution::sample (a second, dependent
// indirect call). The flat side is what the simulators now do — resolve the
// law once into a CachedGapSampler and draw through the register-resident
// tagged-POD switch. Draw sequences are bit-identical (same Rng primitives
// in the same order). The pool leans on cheap laws (deterministic, uniform)
// so dispatch structure — not variate math, which is identical on both
// sides — is what the ratio isolates; with log-heavy laws the transcendental
// work would drown it.
constexpr std::size_t kMixRun = 64;  ///< draws per law per pass

std::vector<stosched::ArrivalPtr> mixed_pool() {
  return {
      stosched::renewal_arrivals(stosched::deterministic_dist(1.0)),
      stosched::renewal_arrivals(stosched::deterministic_dist(1.5)),
      stosched::renewal_arrivals(stosched::uniform_dist(0.5, 1.5)),
      stosched::renewal_arrivals(stosched::deterministic_dist(2.0)),
      stosched::renewal_arrivals(stosched::deterministic_dist(0.5)),
      stosched::renewal_arrivals(stosched::uniform_dist(1.0, 3.0)),
  };
}

void bm_mixed_gap_virtual(benchmark::State& state) {
  const auto pool = mixed_pool();
  std::vector<double> out(kMixRun * pool.size());
  stosched::ArrivalState st;
  stosched::Rng rng(11);
  for (auto _ : state) {
    std::size_t k = 0;
    for (const auto& process : pool)
      for (std::size_t j = 0; j < kMixRun; ++j)
        out[k++] = process->next_gap(st, rng);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * out.size()));
}
BENCHMARK(bm_mixed_gap_virtual);

void bm_mixed_gap_flat(benchmark::State& state) {
  const auto pool = mixed_pool();
  std::vector<stosched::CachedGapSampler> gap;
  gap.reserve(pool.size());
  for (const auto& process : pool) gap.emplace_back(process.get());
  std::vector<double> out(kMixRun * pool.size());
  stosched::ArrivalState st;
  stosched::Rng rng(11);
  for (auto _ : state) {
    std::size_t k = 0;
    // By-value copy: the sampler is 40 bytes of POD, so the whole point of
    // the flat representation is that a draw loop holds it in registers.
    for (const stosched::CachedGapSampler sampler : gap)
      for (std::size_t j = 0; j < kMixRun; ++j)
        out[k++] = sampler.next_gap(st, rng);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * out.size()));
}
BENCHMARK(bm_mixed_gap_flat);

void bm_rng_uniform(benchmark::State& state) {
  stosched::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(bm_rng_uniform);

void bm_rng_exponential(benchmark::State& state) {
  stosched::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(1.0));
}
BENCHMARK(bm_rng_exponential);

}  // namespace
