// Micro: discrete-event core — hold-model throughput of the future-event
// set at different heap arities (the ablation DESIGN.md calls out) and
// sizes. The hold model (pop one, push one) is the classical FES benchmark.
#include <benchmark/benchmark.h>

#include "des/event_queue.hpp"
#include "util/rng.hpp"

namespace {

template <unsigned Arity>
void bm_hold_model(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  stosched::DaryEventHeap<Arity> heap;
  stosched::Rng rng(42);
  for (std::size_t i = 0; i < size; ++i)
    heap.push(rng.uniform(0.0, 100.0), 0);
  for (auto _ : state) {
    const stosched::Event e = heap.pop();
    heap.push(e.time + rng.exponential(1.0), 0);
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_hold_binary(benchmark::State& s) { bm_hold_model<2>(s); }
void bm_hold_quad(benchmark::State& s) { bm_hold_model<4>(s); }
void bm_hold_octal(benchmark::State& s) { bm_hold_model<8>(s); }

BENCHMARK(bm_hold_binary)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(bm_hold_quad)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(bm_hold_octal)->Arg(64)->Arg(1024)->Arg(16384);

void bm_rng_uniform(benchmark::State& state) {
  stosched::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(bm_rng_uniform);

void bm_rng_exponential(benchmark::State& state) {
  stosched::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(1.0));
}
BENCHMARK(bm_rng_exponential);

}  // namespace
