// T2 — preemptive single-machine scheduling: Sevcik's index policy is
// optimal, and preemption pays exactly when hazard rates decrease [35].
//
// Rows sweep the "DFR-ness" of a two-point job family (longer tail, rarer
// short branch). Columns: exact value of the Sevcik index policy, the
// preemptive DP optimum, the best nonpreemptive sequence, and the gain from
// preemption. Predictions: index == OPT everywhere; gain grows with the
// tail and vanishes for degenerate (deterministic) jobs.
#include "batch/single_machine.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("T2: preemptive vs nonpreemptive, Sevcik index [35]");
  table.columns({"tail b", "index policy", "preempt OPT", "nonpreempt OPT",
                 "preemption gain", "index=OPT"});

  bool all_match = true;
  double last_gain = -1.0;
  bool gain_monotone = true;
  for (const double tail : {1.001, 2.0, 5.0, 10.0, 25.0, 60.0}) {
    // Three i.i.d. two-point jobs: short branch 0.5 w.p. 0.7, tail b else.
    std::vector<DiscreteJob> jobs(3, DiscreteJob{1.0, {0.5, tail}, {0.7, 0.3}});
    const double index = preemptive_index_policy_value(jobs);
    const double opt = preemptive_optimal_value(jobs);
    const double nonpre = nonpreemptive_optimal_value(jobs);
    const double gain = (nonpre - opt) / nonpre;

    const bool match = std::abs(index - opt) <= 1e-9 * (1.0 + opt);
    all_match = all_match && match;
    if (gain < last_gain - 1e-12) gain_monotone = false;
    last_gain = gain;

    table.add_row({fmt(tail, 3), fmt(index), fmt(opt), fmt(nonpre),
                   fmt_pct(gain), match ? "yes" : "NO"});
  }
  table.note("3 i.i.d. two-point jobs; all values exact (level-DAG DP)");
  table.verdict(all_match, "Sevcik index policy attains the preemptive optimum");
  table.verdict(gain_monotone && last_gain > 0.05,
                "preemption gain grows with the tail (DFR effect)");
  return stosched::bench::finish(table);
}
