// F10 — scheduling under bursty (MMPP) arrivals: the cµ priority's edge
// over FCFS survives — and widens in absolute terms — when the input is
// correlated instead of Poisson. Memoryless traffic is the *easiest* regime
// for a work-conserving baseline; burstiness piles up backlog during ON
// phases, which is exactly when serving the high-cµ classes first pays.
//
// Runs on the experiment engine: the registered T9 mix swept across
// asymptotic-IDC levels via with_burstiness (IDC 1 = the Poisson base),
// one CRN-paired FCFS-vs-cµ comparison per level (both arms replay the
// identical MMPP arrival epochs), sequential-precision stopping on the
// cost-rate difference. The bench JSON carries the arrival metadata block
// ("mmpp" at the top sweep level) so bench_compare.py refuses to diff this
// trajectory against a Poisson-only one.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

int main() {
  Table table("F10: FCFS vs c-mu on the T9 mix under bursty MMPP arrivals");
  table.columns({"IDC", "FCFS cost", "c-mu cost", "gap", "c-mu wins?"});

  const std::vector<double> idc_levels{1.0, 3.0, 9.0};
  const QueueScenario base = queue_scenario("t9-three-class");
  const QueuePolicy fcfs{"fcfs", queueing::Discipline::kFcfs, {}};
  const QueuePolicy cmu{"c-mu", queueing::Discipline::kPriorityNonPreemptive,
                        queueing::cmu_order(base.classes)};

  EngineOptions opt;
  opt.seed = 110;
  bench::note_seed(opt.seed);
  opt.min_replications = 32;
  opt.batch = 32;
  opt.max_replications = bench::smoke_scale<std::size_t>(512, 32);
  opt.rel_precision = 0.10;
  opt.tracked = {0};  // the cost-rate difference is what the sweep is about

  std::vector<double> fcfs_cost, gap;
  bool cmu_always_wins = true, converged = true;
  std::size_t total_reps = 0;
  for (const double idc : idc_levels) {
    QueueScenario s =
        idc > 1.0 ? with_burstiness(base, idc) : base;  // IDC 1 == Poisson
    s.horizon = bench::smoke_scale(2e4, 2e3);
    s.warmup = bench::smoke_scale(2e3, 2e2);
    const auto cmp = compare_queue_policies(s, {fcfs, cmu}, opt,
                                            Pairing::kCommonRandomNumbers);
    const double f = cmp.arm[0][0].mean();
    const double c = cmp.arm[1][0].mean();
    fcfs_cost.push_back(f);
    gap.push_back(f - c);
    cmu_always_wins = cmu_always_wins && cmp.diff[0][0].mean() < 0.0;
    converged = converged && cmp.converged;
    total_reps += cmp.replications;
    table.add_row({fmt(idc, 0), fmt(f, 3), fmt(c, 3), fmt(f - c, 3),
                   cmp.diff[0][0].mean() < 0.0 ? "yes" : "NO"});
  }

  table.note("CRN pairs: both arms replay identical MMPP arrival epochs");
  table.note("engine: " + std::to_string(total_reps) +
             " total CRN replications" +
             (converged ? "" : " (precision cap hit)"));
  table.verdict(cmu_always_wins,
                "c-mu (weakly) beats FCFS at every burstiness level");
  table.verdict(fcfs_cost.back() > fcfs_cost.front(),
                "burstiness raises the FCFS cost (IDC 9 vs Poisson)");
  table.verdict(gap.back() > gap.front(),
                "the absolute FCFS - c-mu gap widens with burstiness");
  // The sweep's top level is the trajectory's traffic tag.
  return bench::finish(table, {"mmpp", idc_levels.back()});
}
