// T4 — LEPT minimizes expected makespan on identical parallel machines with
// exponential processing times [10]. Mirror image of T3.
#include <string>

#include "batch/job.hpp"
#include "batch/subset_dp.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("T4: parallel machines E[makespan], exponential jobs — LEPT [10]");
  table.columns({"instance", "n", "m", "LEPT", "OPT (DP)", "SEPT", "LEPT=OPT"});

  Rng master(43);
  bool all_match = true;
  double worst_sept = 1.0;
  for (int inst = 0; inst < 8; ++inst) {
    Rng rng = master.stream(inst);
    const std::size_t n = 6 + rng.below(5);
    const unsigned m = 2 + static_cast<unsigned>(rng.below(2));
    std::vector<ExpJob> jobs(n);
    for (auto& j : jobs) j.rate = rng.uniform(0.3, 3.0);

    const double lept = exp_dp_lept(jobs, m, ExpObjective::kMakespan);
    const double opt = exp_dp_optimal(jobs, m, ExpObjective::kMakespan);
    const double sept = exp_dp_sept(jobs, m, ExpObjective::kMakespan);

    const bool match = lept <= opt * (1.0 + 1e-9);
    all_match = all_match && match;
    worst_sept = std::max(worst_sept, sept / opt);

    table.add_row({std::string("#") + std::to_string(inst), std::to_string(n),
                   std::to_string(m), fmt(lept), fmt(opt), fmt(sept),
                   match ? "yes" : "NO"});
  }
  table.note("LEPT front-loads long jobs so machines drain evenly");
  table.verdict(all_match, "LEPT attains the dynamic optimum on all rows");
  table.verdict(worst_sept > 1.01, "SEPT is measurably worse for makespan");
  return stosched::bench::finish(table);
}
