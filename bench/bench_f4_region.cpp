// F4 — the achievable region of the multiclass M/G/1 is a polymatroid whose
// vertices are the priority rules [4, 14, 17, 36].
//
// Two-class instance: the series traces the performance segment between the
// two priority vertices (x_j = rho_j W_j), checks simulated vertices land on
// the analytic ones, mixtures stay inside the region, and the adaptive
// greedy algorithm on the region recovers the cµ order.
#include "bench_common.hpp"
#include "core/achievable_region.hpp"
#include "experiment/adapters.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("F4: M/G/1 achievable region (2 classes) [4,14]");
  table.columns({"point", "x1 (rho1 W1)", "x2 (rho2 W2)", "x1+x2",
                 "inside region"});

  experiment::QueueScenario scenario =
      experiment::queue_scenario("f4-two-class");
  scenario.horizon = bench::smoke_scale(3e4, 6e3);
  scenario.warmup = bench::smoke_scale(3e3, 6e2);
  const std::vector<ClassSpec>& classes = scenario.classes;
  std::vector<char> full{1, 1};
  const double base = core::mg1_region_b(classes, full);

  const auto v12 = core::mg1_region_vertex(classes, {0, 1});
  const auto v21 = core::mg1_region_vertex(classes, {1, 0});

  bool all_inside = true;
  auto add_point = [&](const std::string& name, const std::vector<double>& x) {
    const bool inside = core::mg1_region_contains(classes, x, 0.05);
    all_inside = all_inside && inside;
    table.add_row({name, fmt(x[0]), fmt(x[1]), fmt(x[0] + x[1]),
                   inside ? "yes" : "NO"});
  };

  add_point("vertex (1>2) analytic", v12);
  add_point("vertex (2>1) analytic", v21);
  for (const double w : {0.25, 0.5, 0.75}) {
    std::vector<double> mix{w * v12[0] + (1 - w) * v21[0],
                            w * v12[1] + (1 - w) * v21[1]};
    add_point("mixture w=" + fmt(w, 2), mix);
  }

  // Simulated vertices, via the experiment engine: replications until the
  // per-class mean-wait CIs are tight (metrics 3 and 6 of the mg1 layout).
  experiment::EngineOptions eopt;
  eopt.seed = 20250916;
  bench::note_seed(eopt.seed);
  eopt.min_replications = 12;
  eopt.batch = 12;
  eopt.max_replications = bench::smoke_scale<std::size_t>(128, 16);
  eopt.rel_precision = bench::smoke_scale(0.015, 0.06);
  eopt.tracked = {3, 6};  // wait_0, wait_1
  bool sim_on_vertex = true;
  for (const auto& prio :
       std::vector<std::vector<std::size_t>>{{0, 1}, {1, 0}}) {
    const auto res = experiment::run_queue(
        scenario,
        {"prio", Discipline::kPriorityNonPreemptive, prio}, eopt);
    std::vector<double> x(2);
    for (std::size_t j = 0; j < 2; ++j)
      x[j] = classes[j].arrival_rate * classes[j].service->mean() *
             res.metrics[2 + 3 * j + 1].mean();
    const auto& target = prio[0] == 0 ? v12 : v21;
    for (std::size_t j = 0; j < 2; ++j)
      sim_on_vertex =
          sim_on_vertex && std::abs(x[j] - target[j]) < 0.10 * target[j] + 0.02;
    add_point("vertex (" + std::to_string(prio[0] + 1) + " top) simulated", x);
  }

  // Adaptive greedy on the region data recovers cµ.
  std::vector<double> means, costs;
  for (const auto& c : classes) {
    means.push_back(c.service->mean());
    costs.push_back(c.holding_cost);
  }
  const auto ag = core::adaptive_greedy(
      2, [&](const std::vector<char>&) { return means; }, costs);
  const bool ag_matches = ag.priority == cmu_order(classes);

  table.note("base value b(N) = " + fmt(base) +
             "; every point's x1+x2 must equal it (work conservation)");
  table.verdict(all_inside, "all points lie in the polymatroid");
  table.verdict(sim_on_vertex, "simulated vertices match Cobham vertices");
  table.verdict(ag_matches, "adaptive greedy on the region recovers c-mu");
  return stosched::bench::finish(table);
}
