// T9 — the cµ rule is optimal for the multiclass M/G/1 queue [15].
//
// One instance, every static priority order: Cobham's closed-form cost,
// the simulated cost (validating the simulator on each row), and the
// Kleinrock conservation residual. Prediction: the cµ order minimizes the
// cost; all orders satisfy the conservation law.
#include <algorithm>

#include "bench_common.hpp"
#include "core/conservation.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("T9: multiclass M/G/1 — the c-mu rule across all orders [15]");
  table.columns({"priority order", "c-mu index order?", "Cobham cost",
                 "simulated cost", "conservation resid"});

  const std::vector<ClassSpec> classes{
      {0.25, exponential_dist(1.0), 1.0},     // cµ = 1.0
      {0.20, erlang_dist(2, 3.0), 2.5},       // cµ = 3.75
      {0.15, hyperexp2_dist(1.3, 3.0), 0.7},  // cµ ≈ 0.54
  };
  const auto cmu = cmu_order(classes);

  double best_cost = 1e18;
  std::string best_order;
  std::string cmu_str;
  bool conservation_ok = true;
  bool sim_matches = true;

  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    std::string name;
    for (const auto c : order) name += std::to_string(c);
    const bool is_cmu = order == cmu;
    if (is_cmu) cmu_str = name;

    const double analytic = cobham_cost_rate(classes, order);
    SimOptions opt;
    opt.discipline = Discipline::kPriorityNonPreemptive;
    opt.priority = order;
    opt.horizon = 2e5;
    opt.warmup = 2e4;
    Rng rng(std::hash<std::string>{}(name));
    const auto res = simulate_mg1(classes, opt, rng);
    const auto audit = core::audit_conservation(classes, res);

    conservation_ok = conservation_ok && audit.rel_error < 0.08;
    sim_matches =
        sim_matches && std::abs(res.cost_rate - analytic) < 0.10 * analytic;
    if (analytic < best_cost) {
      best_cost = analytic;
      best_order = name;
    }
    table.add_row({name, is_cmu ? "yes" : "", fmt(analytic),
                   fmt(res.cost_rate), fmt_pct(audit.rel_error)});
  } while (std::next_permutation(order.begin(), order.end()));

  table.note("Cobham cost exact; simulation horizon 2e5 after warmup");
  table.verdict(best_order == cmu_str,
                "the c-mu order minimizes the cost over all 3! orders");
  table.verdict(sim_matches, "simulation within 10% of Cobham on every row");
  table.verdict(conservation_ok,
                "Kleinrock conservation law holds on every row (<8%)");
  return stosched::bench::finish(table);
}
