// T9 — the cµ rule is optimal for the multiclass M/G/1 queue [15].
//
// One instance (the registered "t9-three-class" scenario), every static
// priority order: Cobham's closed-form cost, the simulated cost rate with a
// sequential-precision CI, and the Kleinrock conservation residual.
// Prediction: the cµ order minimizes the cost; all orders satisfy the
// conservation law.
//
// Runs on the experiment engine: one paired comparison with the cµ order as
// the baseline arm, all arms replaying common random numbers, replications
// added until the cost-rate CIs are tight (capped under STOSCHED_BENCH_SMOKE).
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "core/conservation.hpp"
#include "experiment/adapters.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

int main() {
  Table table("T9: multiclass M/G/1 — the c-mu rule across all orders [15]");
  table.columns({"priority order", "c-mu index order?", "Cobham cost",
                 "simulated cost", "vs c-mu (CRN)", "conservation resid"});

  QueueScenario scenario = queue_scenario("t9-three-class");
  scenario.horizon = bench::smoke_scale(2e4, 5e3);
  scenario.warmup = bench::smoke_scale(2e3, 5e2);
  const auto cmu = queueing::cmu_order(scenario.classes);

  // Arm 0 = the cµ order (paired baseline), then every other permutation.
  std::vector<QueuePolicy> arms{
      {"c-mu", queueing::Discipline::kPriorityNonPreemptive, cmu}};
  std::vector<std::size_t> order{0, 1, 2};
  do {
    if (order != cmu)
      arms.push_back({"", queueing::Discipline::kPriorityNonPreemptive, order});
  } while (std::next_permutation(order.begin(), order.end()));

  EngineOptions opt;
  opt.seed = 20250913;
  bench::note_seed(opt.seed);
  opt.min_replications = 16;
  opt.batch = 16;
  opt.max_replications = bench::smoke_scale<std::size_t>(256, 24);
  opt.rel_precision = bench::smoke_scale(0.01, 0.05);
  opt.tracked = {0};  // stop on the cost-rate CIs
  const auto cmp = compare_queue_policies(scenario, arms, opt,
                                          Pairing::kCommonRandomNumbers);

  double best_cost = 1e18;
  std::string best_order, cmu_str;
  bool conservation_ok = true;
  bool sim_matches = true;
  std::vector<double> means(metric_count(scenario));
  for (std::size_t k = 0; k < arms.size(); ++k) {
    std::string name;
    for (const auto c : arms[k].priority) name += std::to_string(c);
    const bool is_cmu = k == 0;
    if (is_cmu) cmu_str = name;

    const double analytic =
        queueing::cobham_cost_rate(scenario.classes, arms[k].priority);
    for (std::size_t d = 0; d < means.size(); ++d)
      means[d] = cmp.arm[k][d].mean();
    const auto res = queueing::mg1_result_from_metrics(scenario.classes,
                                                       means);
    const auto audit = core::audit_conservation(scenario.classes, res);

    conservation_ok = conservation_ok && audit.rel_error < 0.08;
    sim_matches =
        sim_matches && std::abs(res.cost_rate - analytic) < 0.10 * analytic;
    if (analytic < best_cost) {
      best_cost = analytic;
      best_order = name;
    }
    const std::string delta =
        is_cmu ? "baseline"
               : fmt_ci(cmp.diff[k - 1][0].mean(),
                        cmp.diff[k - 1][0].ci_halfwidth());
    table.add_row({name, is_cmu ? "yes" : "", fmt(analytic),
                   fmt_ci(res.cost_rate, cmp.arm[k][0].ci_halfwidth()), delta,
                   fmt_pct(audit.rel_error)});
  }

  table.note("engine: " + std::to_string(cmp.replications) +
             " CRN replications/arm, horizon " + fmt(scenario.horizon, 0) +
             " after warmup" + (cmp.converged ? "" : " (precision cap hit)"));
  table.verdict(best_order == cmu_str,
                "the c-mu order minimizes the cost over all 3! orders");
  table.verdict(sim_matches, "simulation within 10% of Cobham on every row");
  table.verdict(conservation_ok,
                "Kleinrock conservation law holds on every row (<8%)");
  return stosched::bench::finish(table);
}
