// F9 — stochastic flow shops [49]: Talwar's rule for 2-machine exponential
// shops, evaluated with and without blocking (the Wie–Pinedo model), against
// all permutations under common random numbers.
#include <algorithm>
#include <string>

#include "batch/flow_shop.hpp"
#include "batch/job.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::batch;

int main() {
  Table table("F9: 2-machine exponential flow shop — Talwar's rule [49]");
  table.columns({"instance", "Talwar E[mksp]", "best perm", "worst perm",
                 "Talwar rank", "blocking penalty"});

  Rng master(31337);
  bool always_near_best = true;
  double total_blocking_penalty = 0.0;
  for (int inst = 0; inst < 5; ++inst) {
    Rng rng = master.stream(inst);
    std::vector<FlowShopJob> jobs;
    const std::size_t n = 5;
    for (std::size_t i = 0; i < n; ++i)
      jobs.push_back({{exponential_dist(rng.uniform(0.4, 3.0)),
                       exponential_dist(rng.uniform(0.4, 3.0))}});

    // Evaluate every permutation with common random numbers.
    const int reps = 4000;
    std::vector<std::vector<std::vector<double>>> draws(reps);
    for (int r = 0; r < reps; ++r) {
      Rng d = master.stream(1000 + inst).stream(r);
      draws[r].assign(n, std::vector<double>(2));
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < 2; ++k)
          draws[r][j][k] = jobs[j].stages[k]->sample(d);
    }
    auto value = [&](const Order& order, bool blocking) {
      double total = 0.0;
      for (int r = 0; r < reps; ++r)
        total += flow_shop_realization(draws[r], order, blocking).makespan;
      return total / reps;
    };

    Order perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    std::vector<double> values;
    double best = 1e18, worst = -1e18;
    do {
      const double v = value(perm, false);
      values.push_back(v);
      best = std::min(best, v);
      worst = std::max(worst, v);
    } while (std::next_permutation(perm.begin(), perm.end()));

    const Order talwar = talwar_order(jobs);
    const double tv = value(talwar, false);
    std::size_t better = 0;
    for (const double v : values)
      if (v < tv - 1e-12) ++better;
    const double rank =
        static_cast<double>(better) / static_cast<double>(values.size());
    always_near_best = always_near_best && rank <= 0.10;

    const double blocked = value(talwar, true);
    const double penalty = blocked / tv - 1.0;
    total_blocking_penalty += penalty;

    table.add_row({std::string("#") + std::to_string(inst), fmt(tv, 3), fmt(best, 3),
                   fmt(worst, 3), fmt_pct(rank), fmt_pct(penalty)});
  }
  table.note("rank = fraction of permutations strictly beating Talwar (CRN)");
  table.verdict(always_near_best,
                "Talwar's rule within the top 10% of permutations everywhere");
  table.verdict(total_blocking_penalty > 0.0,
                "blocking (no buffers) inflates the makespan [49]");
  return stosched::bench::finish(table);
}
