// F7 — fluid approximations of multiclass queues [11, 3]: the scaled
// stochastic backlog under a priority rule tracks the fluid trajectory
// (functional LLN), and the fluid cost ranking of policies predicts the
// stochastic ranking — the premise of fluid-model scheduling heuristics.
//
// Runs on the experiment engine: the registered "f7-fluid" scenario, one
// CRN-paired comparison of the cµ priority against its reverse. Each
// replication reports the fluid-scaled cost integral plus the scaled backlog
// path, so the FLLN overlay and the policy ranking share one run.
#include <cmath>

#include "bench_common.hpp"
#include "experiment/adapters.hpp"
#include "queueing/fluid.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::experiment;

int main() {
  Table table("F7: fluid limit of a 2-class priority queue [11,3]");

  FluidScenario scenario = fluid_scenario("f7-fluid");
  scenario.scale = bench::smoke_scale(400.0, 100.0);
  const int n_label = static_cast<int>(scenario.scale);
  table.columns({"t / T_drain", "fluid q1", "fluid q2",
                 "sim q1/n (n=" + std::to_string(n_label) + ")",
                 "sim q2/n (n=" + std::to_string(n_label) + ")", "max dev"});

  const auto priority = queueing::fluid_cmu_priority(scenario.classes);
  const std::vector<std::size_t> reverse(priority.rbegin(), priority.rend());
  const auto fluid =
      queueing::fluid_drain(scenario.classes, scenario.initial, priority);

  EngineOptions opt;
  opt.seed = 7;
  bench::note_seed(opt.seed);
  opt.min_replications = bench::smoke_scale<std::size_t>(48, 16);
  opt.batch = 16;
  opt.max_replications = bench::smoke_scale<std::size_t>(128, 16);
  opt.rel_precision = 0.02;
  opt.tracked = {0};  // stop on the cost-integral difference CI
  const auto cmp = compare_fluid_policies(scenario, {priority, reverse}, opt,
                                          Pairing::kCommonRandomNumbers);

  const std::size_t nc = scenario.classes.size();
  double worst_dev = 0.0;
  for (std::size_t i = 0; i < scenario.path_fractions.size(); ++i) {
    const auto f = fluid.at(scenario.path_fractions[i] * fluid.drain_time);
    double dev = 0.0;
    std::vector<double> sim(nc);
    for (std::size_t j = 0; j < nc; ++j) {
      sim[j] = cmp.arm[0][1 + i * nc + j].mean();
      dev = std::max(dev, std::abs(sim[j] - f[j]));
    }
    worst_dev = std::max(worst_dev, dev);
    table.add_row({fmt(scenario.path_fractions[i], 1), fmt(f[0], 3),
                   fmt(f[1], 3), fmt(sim[0], 3), fmt(sim[1], 3),
                   fmt(dev, 3)});
  }

  // Policy ranking: fluid cost integral vs the engine's stochastic cost
  // integral for the cµ order and its reverse.
  const double fluid_good = fluid.cost_integral;
  const double fluid_bad =
      queueing::fluid_drain(scenario.classes, scenario.initial, reverse)
          .cost_integral;
  const double sto_good = cmp.arm[0][0].mean();
  const double sto_bad = cmp.arm[1][0].mean();

  table.note("fluid ranking: cmu " + fmt(fluid_good, 2) + " < reverse " +
             fmt(fluid_bad, 2) + "; stochastic: " + fmt(sto_good, 2) +
             " vs " + fmt(sto_bad, 2));
  table.note("engine: " + std::to_string(cmp.replications) +
             " CRN replications/arm" +
             (cmp.converged ? "" : " (precision cap hit)"));
  table.verdict(worst_dev < 0.12,
                "scaled sample paths track the fluid trajectory (FLLN)");
  table.verdict(fluid_good < fluid_bad && sto_good < sto_bad,
                "fluid cost ranking predicts the stochastic ranking");
  return stosched::bench::finish(table);
}
