// F7 — fluid approximations of multiclass queues [11, 3]: the scaled
// stochastic backlog under a priority rule tracks the fluid trajectory
// (functional LLN), and the fluid cost ranking of policies predicts the
// stochastic ranking — the premise of fluid-model scheduling heuristics.
#include <cmath>

#include "bench_common.hpp"
#include "queueing/fluid.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace stosched;
using namespace stosched::queueing;

int main() {
  Table table("F7: fluid limit of a 2-class priority queue [11,3]");
  table.columns({"t / T_drain", "fluid q1", "fluid q2", "sim q1/n (n=400)",
                 "sim q2/n (n=400)", "max dev"});

  const std::vector<FluidClass> classes{{0.3, 1.0, 2.0}, {0.2, 0.8, 1.0}};
  const auto priority = fluid_cmu_priority(classes);
  const std::vector<double> q0{1.0, 1.5};
  const auto fluid = fluid_drain(classes, q0, priority);
  const double scale = 400.0;

  std::vector<double> sample_times;
  for (int i = 1; i <= 8; ++i)
    sample_times.push_back(fluid.drain_time * i / 10.0 * scale);

  // Average several scaled sample paths.
  const std::size_t reps = 40;
  std::vector<std::vector<double>> mean_path(sample_times.size(),
                                             std::vector<double>(2, 0.0));
  Rng master(7);
  for (std::size_t r = 0; r < reps; ++r) {
    Rng rng = master.stream(r);
    const auto path = simulate_backlog_path(
        classes, {static_cast<std::size_t>(scale * q0[0]),
                  static_cast<std::size_t>(scale * q0[1])},
        priority, sample_times, rng);
    for (std::size_t i = 0; i < sample_times.size(); ++i)
      for (std::size_t j = 0; j < 2; ++j)
        mean_path[i][j] += path[i][j] / (scale * reps);
  }

  double worst_dev = 0.0;
  for (std::size_t i = 0; i < sample_times.size(); ++i) {
    const auto f = fluid.at(sample_times[i] / scale);
    double dev = 0.0;
    for (std::size_t j = 0; j < 2; ++j)
      dev = std::max(dev, std::abs(mean_path[i][j] - f[j]));
    worst_dev = std::max(worst_dev, dev);
    table.add_row({fmt(0.1 * (i + 1), 1), fmt(f[0], 3), fmt(f[1], 3),
                   fmt(mean_path[i][0], 3), fmt(mean_path[i][1], 3),
                   fmt(dev, 3)});
  }

  // Policy ranking: fluid cost integral vs stochastic cost integral for the
  // cµ order and its reverse.
  std::vector<std::size_t> reverse(priority.rbegin(), priority.rend());
  const double fluid_good = fluid.cost_integral;
  const double fluid_bad =
      fluid_drain(classes, q0, reverse).cost_integral;
  auto stochastic_cost = [&](const std::vector<std::size_t>& prio) {
    const auto stat = monte_carlo(40, 99, [&](std::size_t, Rng& r) {
      std::vector<double> times;
      const double t_end = 2.0 * fluid.drain_time * scale;
      for (int i = 1; i <= 60; ++i) times.push_back(t_end * i / 60.0);
      const auto path = simulate_backlog_path(
          classes, {static_cast<std::size_t>(scale * q0[0]),
                    static_cast<std::size_t>(scale * q0[1])},
          prio, times, r);
      double cost = 0.0;
      for (std::size_t i = 0; i < times.size(); ++i)
        cost += (classes[0].cost * path[i][0] + classes[1].cost * path[i][1]) *
                (t_end / 60.0);
      return cost / (scale * scale);  // fluid scaling of the cost integral
    });
    return stat.mean();
  };
  const double sto_good = stochastic_cost(priority);
  const double sto_bad = stochastic_cost(reverse);

  table.note("fluid ranking: cmu " + fmt(fluid_good, 2) + " < reverse " +
             fmt(fluid_bad, 2) + "; stochastic: " + fmt(sto_good, 2) + " vs " +
             fmt(sto_bad, 2));
  table.verdict(worst_dev < 0.12,
                "scaled sample paths track the fluid trajectory (FLLN)");
  table.verdict(fluid_good < fluid_bad && sto_good < sto_bad,
                "fluid cost ranking predicts the stochastic ranking");
  return stosched::bench::finish(table);
}
