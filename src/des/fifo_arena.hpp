// fifo_arena.hpp — a reusable ring-buffer FIFO for simulator job records.
//
// The event-driven simulators used to keep their waiting-job queues in
// std::deque, whose chunked storage allocates and frees throughout a
// replication — pure churn on the hot path, repeated for every replication
// the engine fans out. FifoArena replaces it with a power-of-two ring
// buffer over one contiguous allocation, mirroring the EventQueue
// capacity-hint idiom: reserve once up front, then clear-don't-free, so a
// replication's queue operations are allocation-free after warm-up and the
// records sit contiguously in cache order.
//
// Supported operations are exactly what the simulators need: FIFO
// push_back/front/pop_front, plus push_front for the M/G/1 preemptive-
// resume discipline (a preempted job re-enters at the head of its class).
// T must be default-constructible and copyable (the queues hold small POD
// records: arrival epochs, WaitingJob, class ids).
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched {

template <class T>
class FifoArena {
 public:
  FifoArena() = default;

  /// Pre-size to at least `n` slots (rounded up to a power of two), so
  /// steady-state simulation never reallocates.
  explicit FifoArena(std::size_t n) { reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void reserve(std::size_t n) {
    if (n > buf_.size()) rebuild(round_up_pow2(n));
  }

  /// Drop all entries, keeping the allocation — the clear-don't-free half
  /// of the arena contract.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  void push_back(const T& value) {
    if (size_ == buf_.size()) grow();
    ring_invariant();
    buf_[(head_ + size_) & mask_] = value;
    ++size_;
  }

  void push_front(const T& value) {
    if (size_ == buf_.size()) grow();
    ring_invariant();
    head_ = (head_ + mask_) & mask_;  // head - 1, mod capacity
    buf_[head_] = value;
    ++size_;
  }

  [[nodiscard]] const T& front() const {
    STOSCHED_ASSERT(size_ > 0, "front() on empty FifoArena");
    return buf_[head_];
  }

  void pop_front() {
    STOSCHED_ASSERT(size_ > 0, "pop_front() on empty FifoArena");
    ring_invariant();
    head_ = (head_ + 1) & mask_;
    --size_;
  }

 private:
  /// The ring's structural invariants, checked (contract builds only) at
  /// every mutation: a power-of-two backing array whose mask matches it,
  /// head inside the ring, and occupancy within capacity. A violation means
  /// the index algebra below has been edited wrong, not a caller error.
  void ring_invariant() const noexcept {
    STOSCHED_INVARIANT(!buf_.empty() && (buf_.size() & mask_) == 0 &&
                           mask_ == buf_.size() - 1,
                       "FifoArena capacity/mask relation broken");
    STOSCHED_INVARIANT(head_ <= mask_, "FifoArena head outside the ring");
    STOSCHED_INVARIANT(size_ <= buf_.size(), "FifoArena overfull");
  }
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t c = kMinCapacity;
    while (c < n) c <<= 1;
    return c;
  }

  void grow() { rebuild(buf_.empty() ? kMinCapacity : buf_.size() * 2); }

  /// Reallocate to `cap` slots (a power of two), un-wrapping the ring so
  /// the live entries land at the front in FIFO order.
  void rebuild(std::size_t cap) {
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = buf_[(head_ + i) & mask_];
    buf_ = std::move(next);
    mask_ = cap - 1;
    head_ = 0;
  }

  static constexpr std::size_t kMinCapacity = 16;

  std::vector<T> buf_;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace stosched
