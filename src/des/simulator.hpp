// simulator.hpp — minimal discrete-event simulation kernel.
//
// The kernel owns the clock and the future-event set and dispatches events
// to per-type handlers. Performance-critical inner loops (the queueing
// simulators) use EventQueue directly with a switch over event types; the
// Simulator class exists for examples and model prototypes where clarity
// beats the last nanosecond.
//
// Simulation correctness invariants enforced here:
//   * time never runs backwards (scheduling in the past is a model bug);
//   * every dispatched event advances the clock to its timestamp before the
//     handler runs, so handlers always observe `now()` == event time.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "des/event_queue.hpp"
#include "util/check.hpp"

namespace stosched {

/// Event-dispatching simulation kernel with per-type handlers.
class Simulator {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Register the handler for an event type (handlers are dense by type id).
  void on(std::uint32_t type, Handler h);

  /// Schedule an event `delay` time units from now.
  void schedule_in(double delay, std::uint32_t type, std::uint32_t a = 0,
                   std::uint64_t b = 0) {
    STOSCHED_REQUIRE(delay >= 0.0, "cannot schedule into the past");
    queue_.push(now_ + delay, type, a, b);
  }

  /// Schedule an event at absolute time `t >= now()`.
  void schedule_at(double t, std::uint32_t type, std::uint32_t a = 0,
                   std::uint64_t b = 0) {
    STOSCHED_REQUIRE(t >= now_, "cannot schedule into the past");
    queue_.push(t, type, a, b);
  }

  /// Run until the event set drains or the clock passes `t_end`.
  /// Events with time > t_end remain unprocessed; the clock stops at the
  /// last processed event (or t_end if `advance_to_end`).
  void run_until(double t_end, bool advance_to_end = true);

  /// Process exactly one event if any remains; returns false when drained.
  bool step();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool drained() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }

 private:
  EventQueue queue_;
  std::vector<Handler> handlers_;
  double now_ = 0.0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace stosched
