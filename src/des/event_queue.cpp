#include "des/event_queue.hpp"

#include <atomic>

namespace stosched {

namespace {

/// Process-wide processed-event tally. Queues flush their per-instance pop
/// counters here (event_queue.hpp), so the only atomic traffic is one add
/// per clear/destroy — never per event.
std::atomic<std::uint64_t> g_process_events{0};

}  // namespace

std::uint64_t process_event_count() noexcept {
  return g_process_events.load(std::memory_order_relaxed);
}

void add_process_events(std::uint64_t n) noexcept {
  g_process_events.fetch_add(n, std::memory_order_relaxed);
}

// Explicit instantiations of the arities exercised by the library and the
// micro-benchmark ablation; keeps template code out of every consumer TU.
template class DaryEventHeap<2>;
template class DaryEventHeap<4>;
template class DaryEventHeap<8>;

}  // namespace stosched
