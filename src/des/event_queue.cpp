#include "des/event_queue.hpp"

#include "obs/metrics.hpp"

namespace stosched {

namespace {

/// Process-wide processed-event tally, now an obs registry counter (the
/// bench JSON "events" column). Queues flush their per-instance pop
/// counters here (event_queue.hpp), so the only atomic traffic is one add
/// per clear/destroy — never per event.
obs::Counter& events_counter() {
  static obs::Counter& c = obs::counter("events");
  return c;
}

}  // namespace

std::uint64_t process_event_count() noexcept {
  return events_counter().value();
}

void add_process_events(std::uint64_t n) noexcept {
  events_counter().add(n);
}

// Explicit instantiations of the arities exercised by the library and the
// micro-benchmark ablation; keeps template code out of every consumer TU.
template class DaryEventHeap<2>;
template class DaryEventHeap<4>;
template class DaryEventHeap<8>;

}  // namespace stosched
