#include "des/event_queue.hpp"

namespace stosched {

// Explicit instantiations of the arities exercised by the library and the
// micro-benchmark ablation; keeps template code out of every consumer TU.
template class DaryEventHeap<2>;
template class DaryEventHeap<4>;
template class DaryEventHeap<8>;

}  // namespace stosched
