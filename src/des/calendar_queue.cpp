#include "des/calendar_queue.hpp"

#include <algorithm>
#include <cmath>

namespace stosched {

namespace {

/// Descending (time, seq): keeps each bucket's minimum at the back.
bool after(const Event& x, const Event& y) noexcept {
  if (x.time != y.time) return x.time > y.time;
  return x.seq > y.seq;
}

bool before(const Event& x, const Event& y) noexcept { return after(y, x); }

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t c = 16;
  while (c < n) c <<= 1;
  return c;
}

/// Cap on time / width before the double -> uint64 cast. Values at or past
/// 2^63 make the cast UB, so everything beyond this collapses into one
/// far-future slot — harmless, because bucket membership only affects
/// performance: each bucket stays sorted, and ordering is decided by
/// (time, seq) comparisons, never by slot arithmetic.
constexpr double kMaxSlot = 4.0e18;

}  // namespace

CalendarEventQueue::CalendarEventQueue() : buckets_(16), bucket_mask_(15) {}

CalendarEventQueue::CalendarEventQueue(std::size_t capacity_hint)
    : CalendarEventQueue() {
  reserve(capacity_hint);
}

CalendarEventQueue::~CalendarEventQueue() { flush_popped(); }

void CalendarEventQueue::flush_popped() noexcept {
  if (popped_ != 0) {
    add_process_events(popped_);
    popped_ = 0;
  }
}

void CalendarEventQueue::clear() noexcept {
  for (auto& bucket : buckets_) bucket.clear();
  size_ = 0;
  next_seq_ = 0;
  cur_slot_ = 0;
  width_ = 1.0;
  min_valid_ = false;
  flush_popped();
  STOSCHED_CONTRACT_CODE(has_last_pop_ = false;);
}

void CalendarEventQueue::reserve(std::size_t n) {
  // Steady-state target is ~2 resident events per bucket (the grow trigger
  // in push()), so pre-size the bucket array to hint / 2.
  const std::size_t want = round_up_pow2(std::max<std::size_t>(16, n / 2));
  if (want > buckets_.size()) resize_buckets(want);
}

std::uint64_t CalendarEventQueue::slot_of(double time) const noexcept {
  const double s = time / width_;
  if (s >= kMaxSlot) return static_cast<std::uint64_t>(kMaxSlot);
  return static_cast<std::uint64_t>(s);
}

void CalendarEventQueue::insert(const Event& e) {
  auto& bucket = buckets_[slot_of(e.time) & bucket_mask_];
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), e, after), e);
}

void CalendarEventQueue::push(double time, std::uint32_t type, std::uint32_t a,
                              std::uint64_t b) {
  STOSCHED_ASSERT(time >= 0.0, "calendar queue requires nonnegative times");
  const Event e{time, next_seq_++, type, a, b};
  insert(e);
  ++size_;
  min_valid_ = false;
  // A new event may precede everything resident: rewind the year cursor so
  // the invariant (no resident event has slot < cur_slot_) holds.
  const std::uint64_t slot = slot_of(time);
  if (slot < cur_slot_) cur_slot_ = slot;
  if (size_ > 2 * buckets_.size()) resize_buckets(buckets_.size() * 2);
}

const Event& CalendarEventQueue::locate_min() const {
  STOSCHED_ASSERT(size_ > 0, "top()/pop() on empty calendar queue");
  if (min_valid_) return buckets_[min_bucket_].back();
  // Year scan: walk slots upward from the cursor. All events of one slot
  // live in one bucket (slot & mask is a function of the slot), and each
  // bucket's back is its (time, seq) minimum — so the first back whose slot
  // matches the scanned slot is the global minimum.
  const std::size_t nbuckets = buckets_.size();
  for (std::size_t i = 0; i < nbuckets; ++i) {
    const std::uint64_t s = cur_slot_ + i;
    const auto& bucket = buckets_[s & bucket_mask_];
    if (!bucket.empty() && slot_of(bucket.back().time) == s) {
      min_bucket_ = s & bucket_mask_;
      min_slot_ = s;
      min_valid_ = true;
      return bucket.back();
    }
  }
  // Sparse tail: nothing within one calendar year of the cursor. Direct
  // scan over all bucket minima (O(nbuckets), amortized away by resizing).
  std::size_t best = nbuckets;
  for (std::size_t bkt = 0; bkt < nbuckets; ++bkt) {
    const auto& bucket = buckets_[bkt];
    if (bucket.empty()) continue;
    if (best == nbuckets || before(bucket.back(), buckets_[best].back()))
      best = bkt;
  }
  min_bucket_ = best;
  min_slot_ = slot_of(buckets_[best].back().time);
  min_valid_ = true;
  return buckets_[best].back();
}

const Event& CalendarEventQueue::top() const { return locate_min(); }

Event CalendarEventQueue::pop() {
  const Event out = locate_min();
  // Pop monotonicity — the same (time, seq) contract as DaryEventHeap,
  // asserted on the calendar side of the shootout so order-equivalence is
  // checked structurally in every contract build, not only by the property
  // test in tests/test_des.cpp.
  STOSCHED_INVARIANT(
      !has_last_pop_ || out.time > last_pop_time_ ||
          (out.time == last_pop_time_ && out.seq > last_pop_seq_),
      "calendar queue popped out of (time, seq) order");
  STOSCHED_CONTRACT_CODE(has_last_pop_ = true; last_pop_time_ = out.time;
                         last_pop_seq_ = out.seq;);
  buckets_[min_bucket_].pop_back();
  --size_;
  ++popped_;
  cur_slot_ = min_slot_;  // monotone pops: nothing resident precedes this
  min_valid_ = false;
  if (buckets_.size() > 16 && size_ < buckets_.size() / 2)
    resize_buckets(buckets_.size() / 2);
  return out;
}

void CalendarEventQueue::resize_buckets(std::size_t nbuckets) {
  std::vector<Event> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  buckets_.resize(nbuckets);
  buckets_.shrink_to_fit();
  bucket_mask_ = nbuckets - 1;
  min_valid_ = false;
  if (all.empty()) {
    cur_slot_ = 0;
    return;
  }
  // Re-estimate the bucket width as the mean gap between resident events,
  // so one "day" holds ~1 event and the year scan stays O(1) amortized.
  double lo = all.front().time;
  double hi = lo;
  for (const Event& e : all) {
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }
  const double range = hi - lo;
  width_ = range > 0.0 ? range / static_cast<double>(all.size()) : 1.0;
  cur_slot_ = slot_of(lo);
  for (const Event& e : all) insert(e);
}

}  // namespace stosched
