#include "des/simulator.hpp"

namespace stosched {

void Simulator::on(std::uint32_t type, Handler h) {
  if (handlers_.size() <= type) handlers_.resize(type + 1);
  handlers_[type] = std::move(h);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const Event e = queue_.pop();
  STOSCHED_ASSERT(e.time >= now_, "event queue returned a past event");
  now_ = e.time;
  ++dispatched_;
  STOSCHED_REQUIRE(e.type < handlers_.size() && handlers_[e.type],
                   "no handler registered for event type");
  handlers_[e.type](e);
  return true;
}

void Simulator::run_until(double t_end, bool advance_to_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) step();
  if (advance_to_end && now_ < t_end) now_ = t_end;
}

}  // namespace stosched
