// calendar_queue.hpp — an adaptive-bucket calendar queue future-event set.
//
// The FES shootout companion to DaryEventHeap (Brown's calendar queue,
// CACM 1988): events hash into time buckets of width ~ the mean event gap,
// giving O(1) amortized push/pop when the event-time distribution is
// well-behaved — the classic alternative the hold-model micro-benchmark
// (`bench_micro_des`) races against the d-ary heaps.
//
// Contract parity with DaryEventHeap — same API, same semantics:
//   * strict (time, seq) ordering with automatically assigned insertion
//     sequence numbers, so the two structures are order-EQUIVALENT: any
//     simulator run replays bit-identically on either (property-tested in
//     tests/test_des.cpp);
//   * clear() keeps allocations and restarts the seq counter;
//   * pops are tallied per instance and flushed to the process-wide events
//     counter on clear/destroy (see event_queue.hpp).
//
// One extra precondition: event times must be >= 0 (all simulators schedule
// in absolute nonnegative simulation time).
#pragma once

#include <cstdint>
#include <vector>

#include "des/event_queue.hpp"
#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched {

class CalendarEventQueue {
 public:
  CalendarEventQueue();

  /// Pre-size the bucket array for ~`capacity_hint` resident events.
  explicit CalendarEventQueue(std::size_t capacity_hint);

  /// Same rationale as DaryEventHeap: a copy would double-flush the pop
  /// count into the process-wide events counter.
  CalendarEventQueue(const CalendarEventQueue&) = delete;
  CalendarEventQueue& operator=(const CalendarEventQueue&) = delete;

  ~CalendarEventQueue();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Drop all pending events and restart the tie-break sequence, keeping
  /// the bucket allocations; flushes the pop count.
  void clear() noexcept;

  void reserve(std::size_t n);

  /// Schedule an event; `seq` is assigned automatically. `time` >= 0.
  void push(double time, std::uint32_t type, std::uint32_t a = 0,
            std::uint64_t b = 0);

  /// The earliest event (smallest time, then smallest seq).
  [[nodiscard]] const Event& top() const;

  Event pop();

 private:
  std::uint64_t slot_of(double time) const noexcept;
  void insert(const Event& e);
  const Event& locate_min() const;
  void resize_buckets(std::size_t nbuckets);
  void flush_popped() noexcept;

  /// Buckets hold events of one "day" slot each, sorted DESCENDING by
  /// (time, seq) so the minimum is at the back (O(1) removal).
  std::vector<std::vector<Event>> buckets_;
  std::size_t bucket_mask_ = 0;  ///< bucket count - 1 (power of two)
  double width_ = 1.0;           ///< bucket time width
  std::uint64_t cur_slot_ = 0;   ///< no resident event has a smaller slot
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t popped_ = 0;

  // Ghost state for the pop-monotonicity contract (absent in Release).
  STOSCHED_CONTRACT_STATE(bool has_last_pop_ = false;)
  STOSCHED_CONTRACT_STATE(double last_pop_time_ = 0.0;)
  STOSCHED_CONTRACT_STATE(std::uint64_t last_pop_seq_ = 0;)

  // Cached location of the minimum event, maintained by top()/pop() and
  // invalidated by push (mutable: top() is logically const).
  mutable bool min_valid_ = false;
  mutable std::size_t min_bucket_ = 0;
  mutable std::uint64_t min_slot_ = 0;
};

}  // namespace stosched
