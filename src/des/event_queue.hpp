// event_queue.hpp — the future-event set of the discrete-event simulator.
//
// Requirements driving the design:
//   * *Deterministic replay*: ties in event time are broken by insertion
//     sequence number, so a simulation is a pure function of its inputs —
//     essential for the reproducibility guarantees the experiment harness
//     makes (and for common-random-number policy comparisons).
//   * *Cache behaviour*: the heap is a flat array of 32-byte PODs; a d-ary
//     layout (default d=4) trades slightly more comparisons per level for
//     ~half the levels and fewer cache misses — the micro-bench ablation
//     `bench_micro_des` measures binary vs 4-ary on hold-model workloads.
//   * *Cancellation without tombstone scans*: events carry a user payload;
//     models that need cancellation (e.g. preemption timers) use
//     generation counters in the payload instead of erasing heap entries,
//     the standard "lazy deletion" idiom.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched {

/// One scheduled occurrence. POD; 32 bytes.
struct Event {
  double time = 0.0;       ///< absolute simulation time
  std::uint64_t seq = 0;   ///< tie-breaker: insertion order
  std::uint32_t type = 0;  ///< model-defined event kind
  std::uint32_t a = 0;     ///< model payload (e.g. class index)
  std::uint64_t b = 0;     ///< model payload (e.g. job id / generation)
};

/// Events popped by every future-event set in this process so far — the
/// numerator of the events/sec throughput number bench_common::finish puts
/// in every BENCH_*.json. Queues count pops in a plain per-instance counter
/// (no hot-path atomics) and flush it here, atomically, when cleared or
/// destroyed; read after the simulations of interest have finished.
std::uint64_t process_event_count() noexcept;

/// Add `n` processed events to the process-wide counter (the flush half of
/// the contract above; thread-safe).
void add_process_events(std::uint64_t n) noexcept;

/// Min-heap on (time, seq) with configurable arity.
template <unsigned Arity = 4>
class DaryEventHeap {
  static_assert(Arity >= 2, "heap arity must be >= 2");

 public:
  DaryEventHeap() = default;

  /// Pre-size the heap from a capacity hint, so multi-replication drivers
  /// that rebuild their future-event set every replication allocate once.
  explicit DaryEventHeap(std::size_t capacity_hint) {
    heap_.reserve(capacity_hint);
  }

  /// Heaps are simulation-local working state: copying one would double-
  /// flush its pop count into the process-wide events counter.
  DaryEventHeap(const DaryEventHeap&) = delete;
  DaryEventHeap& operator=(const DaryEventHeap&) = delete;

  ~DaryEventHeap() { flush_popped(); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }

  /// Drop all pending events and restart the tie-break sequence. Keeps the
  /// allocated capacity, so a cleared heap is reusable allocation-free.
  /// Flushes the pop count into the process-wide events counter.
  void clear() noexcept {
    heap_.clear();
    next_seq_ = 0;
    flush_popped();
    STOSCHED_CONTRACT_CODE(has_last_pop_ = false;);
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Schedule an event; `seq` is assigned automatically.
  void push(double time, std::uint32_t type, std::uint32_t a = 0,
            std::uint64_t b = 0) {
    Event e{time, next_seq_++, type, a, b};
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  /// The earliest event (smallest time, then smallest seq).
  [[nodiscard]] const Event& top() const {
    STOSCHED_ASSERT(!heap_.empty(), "top() on empty event heap");
    return heap_.front();
  }

  Event pop() {
    STOSCHED_ASSERT(!heap_.empty(), "pop() on empty event heap");
    ++popped_;
    Event out = heap_.front();
    // Pop monotonicity: the FES contract every simulator's clock rests on —
    // (time, seq) keys leave in nondecreasing order between clear()s.
    STOSCHED_INVARIANT(
        !has_last_pop_ || out.time > last_pop_time_ ||
            (out.time == last_pop_time_ && out.seq > last_pop_seq_),
        "event heap popped out of (time, seq) order");
    STOSCHED_CONTRACT_CODE(has_last_pop_ = true; last_pop_time_ = out.time;
                           last_pop_seq_ = out.seq;);
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

 private:
  void flush_popped() noexcept {
    if (popped_ != 0) {
      add_process_events(popped_);
      popped_ = 0;
    }
  }
  static bool before(const Event& x, const Event& y) noexcept {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void sift_up(std::size_t i) noexcept {
    Event e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) noexcept {
    Event e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = Arity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t popped_ = 0;  ///< pops since the last flush (see clear())
  // Ghost state for the pop-monotonicity contract (absent in Release).
  STOSCHED_CONTRACT_STATE(bool has_last_pop_ = false;)
  STOSCHED_CONTRACT_STATE(double last_pop_time_ = 0.0;)
  STOSCHED_CONTRACT_STATE(std::uint64_t last_pop_seq_ = 0;)
};

/// The default future-event set used by all simulators in the library.
///
/// Shootout outcome (bench_micro_des, hold model + ramp/drain, sizes 64 to
/// 10^6): the 4-ary heap wins at the small resident sizes the library's
/// simulators actually run (~2 events per class), and on ramp/drain; the
/// calendar queue (calendar_queue.hpp) overtakes it from ~16k resident
/// events and is ~1.7x faster at 10^6, so big-FES models should swap it in
/// — the two are order-equivalent by contract (same (time, seq) ordering).
using EventQueue = DaryEventHeap<4>;

}  // namespace stosched
