#include "batch/single_machine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace stosched::batch {

double exact_weighted_flowtime(const Batch& jobs, const Order& order) {
  STOSCHED_REQUIRE(order.size() == jobs.size(), "order must cover the batch");
  // E[C_(i)] = sum of expected processing times of jobs up to position i;
  // linearity of expectation makes this exact for any laws.
  double completion = 0.0;
  double total = 0.0;
  for (const std::size_t j : order) {
    completion += jobs[j].processing->mean();
    total += jobs[j].weight * completion;
  }
  return total;
}

Order best_order_exhaustive(const Batch& jobs, double* value) {
  const std::size_t n = jobs.size();
  STOSCHED_REQUIRE(n >= 1 && n <= 10, "exhaustive search limited to n <= 10");
  Order perm = identity_order(n);
  Order best = perm;
  double best_val = exact_weighted_flowtime(jobs, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    const double v = exact_weighted_flowtime(jobs, perm);
    if (v < best_val) {
      best_val = v;
      best = perm;
    }
  }
  if (value) *value = best_val;
  return best;
}

double simulate_weighted_flowtime(const Batch& jobs, const Order& order,
                                  Rng& rng) {
  STOSCHED_REQUIRE(order.size() == jobs.size(), "order must cover the batch");
  // One draw decouples back-to-back simulations sharing a caller Rng; job
  // j's size then comes from the per-job substream root.stream(j) no matter
  // where the order places it, so CRN arms (different orders, same caller
  // state) schedule the identical realized batch.
  const Rng root(rng());
  double clock = 0.0;
  double total = 0.0;
  for (const std::size_t j : order) {
    Rng size_rng = root.stream(j);
    clock += jobs[j].processing->sample(size_rng);
    total += jobs[j].weight * clock;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Preemptive discrete-law machinery.
// ---------------------------------------------------------------------------

std::vector<DiscreteJob> to_discrete_jobs(const Batch& jobs) {
  std::vector<DiscreteJob> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) {
    DiscreteJob dj;
    dj.weight = j.weight;
    STOSCHED_REQUIRE(
        discrete_support(*j.processing, &dj.values, &dj.probs),
        "preemptive machinery requires discrete processing-time laws");
    out.push_back(std::move(dj));
  }
  return out;
}

double sevcik_index(const DiscreteJob& job, std::size_t level) {
  const std::size_t K = job.values.size();
  STOSCHED_REQUIRE(level < K, "job already past its last support point");
  // Survival mass beyond v_level (level 0 == no service yet).
  double surv = 0.0;
  for (std::size_t k = level; k < K; ++k) surv += job.probs[k];
  STOSCHED_ASSERT(surv > 0.0, "indexing a surely-completed job");
  const double attained = level == 0 ? 0.0 : job.values[level - 1];

  double best = 0.0;
  double p_done = 0.0;     // P(complete by candidate stop | survived)
  double e_work = 0.0;     // E[(min(P, v_t) - attained) | survived]
  for (std::size_t t = level; t < K; ++t) {
    const double q = job.probs[t] / surv;
    p_done += q;
    // Jobs that complete exactly at v_t contribute (v_t - attained); mass
    // surviving past v_t contributes the same truncation (v_t - attained).
    // Rebuild e_work incrementally: completed-at-earlier terms stay, the
    // surviving mass truncation moves out to v_t.
    e_work = 0.0;
    double done_mass = 0.0;
    for (std::size_t k = level; k <= t; ++k) {
      const double qk = job.probs[k] / surv;
      e_work += qk * (job.values[k] - attained);
      done_mass += qk;
    }
    e_work += (1.0 - done_mass) * (job.values[t] - attained);
    if (e_work > 0.0) best = std::max(best, p_done / e_work);
  }
  return job.weight * best;
}

namespace {

/// Mixed-radix state over job levels; per-job digits are 0..K-1 (alive at
/// that level) and K (completed).
struct LevelSpace {
  explicit LevelSpace(const std::vector<DiscreteJob>& jobs) : jobs_(&jobs) {
    radix_.reserve(jobs.size());
    std::size_t total = 1;
    for (const auto& j : jobs) {
      radix_.push_back(j.values.size() + 1);
      STOSCHED_REQUIRE(total < (std::size_t{1} << 24) / radix_.back(),
                       "preemptive DP state space too large");
      total *= radix_.back();
    }
    size_ = total;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] std::size_t encode(const std::vector<std::size_t>& lv) const {
    std::size_t code = 0;
    for (std::size_t i = lv.size(); i-- > 0;) code = code * radix_[i] + lv[i];
    return code;
  }

  void decode(std::size_t code, std::vector<std::size_t>& lv) const {
    lv.resize(radix_.size());
    for (std::size_t i = 0; i < radix_.size(); ++i) {
      lv[i] = code % radix_[i];
      code /= radix_[i];
    }
  }

  const std::vector<DiscreteJob>* jobs_;
  std::vector<std::size_t> radix_;
  std::size_t size_ = 0;
};

/// Backward induction over the level DAG. `pick` selects the job to serve in
/// an alive configuration (or SIZE_MAX to take the min over all alive jobs).
double level_dp(const std::vector<DiscreteJob>& jobs, bool optimal,
                const std::function<std::size_t(
                    const std::vector<std::size_t>&)>& pick) {
  const LevelSpace space(jobs);
  std::vector<double> value(space.size(),
                            std::numeric_limits<double>::quiet_NaN());
  std::vector<std::size_t> lv;

  // States ordered by decreasing total progress: iterate codes descending is
  // NOT sufficient (mixed radix), so do a proper pass ordered by the sum of
  // digits, largest first. Progress sum ranges 0..sum(K_i).
  std::size_t max_progress = 0;
  for (const auto& j : jobs) max_progress += j.values.size();

  // Bucket states by progress.
  std::vector<std::vector<std::size_t>> buckets(max_progress + 1);
  for (std::size_t code = 0; code < space.size(); ++code) {
    space.decode(code, lv);
    std::size_t progress = 0;
    for (const std::size_t d : lv) progress += d;
    buckets[progress].push_back(code);
  }

  for (std::size_t progress = max_progress + 1; progress-- > 0;) {
    for (const std::size_t code : buckets[progress]) {
      space.decode(code, lv);
      // Weight of alive jobs; completed job i has digit K_i.
      double alive_weight = 0.0;
      bool any_alive = false;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (lv[i] < jobs[i].values.size()) {
          alive_weight += jobs[i].weight;
          any_alive = true;
        }
      }
      if (!any_alive) {
        value[code] = 0.0;
        continue;
      }

      auto segment_value = [&](std::size_t i) {
        const auto& job = jobs[i];
        const std::size_t l = lv[i];
        const std::size_t K = job.values.size();
        double surv = 0.0;
        for (std::size_t k = l; k < K; ++k) surv += job.probs[k];
        const double attained = l == 0 ? 0.0 : job.values[l - 1];
        const double d = job.values[l] - attained;
        const double h = surv > 0.0 ? job.probs[l] / surv : 1.0;
        lv[i] = K;  // completed
        const double v_done = value[space.encode(lv)];
        lv[i] = l + 1;  // survived to next level (encodes K when l+1==K)
        const double v_next = l + 1 < K ? value[space.encode(lv)] : v_done;
        lv[i] = l;
        STOSCHED_ASSERT(!std::isnan(v_done) && !std::isnan(v_next),
                        "DAG order violated in level DP");
        return d * alive_weight + h * v_done + (1.0 - h) * v_next;
      };

      if (optimal) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < jobs.size(); ++i)
          if (lv[i] < jobs[i].values.size()) best = std::min(best, segment_value(i));
        value[code] = best;
      } else {
        const std::size_t i = pick(lv);
        STOSCHED_ASSERT(i < jobs.size() && lv[i] < jobs[i].values.size(),
                        "policy picked a completed job");
        value[code] = segment_value(i);
      }
    }
  }

  std::vector<std::size_t> start(jobs.size(), 0);
  return value[space.encode(start)];
}

}  // namespace

double preemptive_index_policy_value(const std::vector<DiscreteJob>& jobs) {
  return level_dp(jobs, /*optimal=*/false,
                  [&](const std::vector<std::size_t>& lv) {
                    double best = -1.0;
                    std::size_t pick = SIZE_MAX;
                    for (std::size_t i = 0; i < jobs.size(); ++i) {
                      if (lv[i] >= jobs[i].values.size()) continue;
                      const double idx = sevcik_index(jobs[i], lv[i]);
                      if (idx > best + 1e-15) {
                        best = idx;
                        pick = i;
                      }
                    }
                    return pick;
                  });
}

double preemptive_optimal_value(const std::vector<DiscreteJob>& jobs) {
  return level_dp(jobs, /*optimal=*/true, {});
}

double nonpreemptive_optimal_value(const std::vector<DiscreteJob>& jobs) {
  Batch batch;
  batch.reserve(jobs.size());
  for (const auto& dj : jobs)
    batch.push_back(Job{dj.weight, discrete_dist(dj.values, dj.probs)});
  double value = 0.0;
  best_order_exhaustive(batch, &value);
  return value;
}

}  // namespace stosched::batch
