#include "batch/uniform_machines.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace stosched::batch {

namespace {

/// Shared engine for the nonpreemptive two-machine uniform model.
/// States: (avail = unstarted job mask, j1/j2 = job committed to machine
/// 1/2, kNone if idle). Two mutually recursive value functions:
///   D — decision point: commit jobs to free machines (or idle machine 2);
///   R — race: wait for the next completion, accruing holding cost.
struct Engine {
  const std::vector<ExpJob>& jobs;
  double s1, s2;
  ExpObjective objective;
  // Greedy policy ranks (empty = optimize).
  const std::vector<std::size_t>* rank = nullptr;

  std::size_t n = 0;
  std::size_t kNone = 0;
  std::unordered_map<std::uint64_t, double> memo_d, memo_r;
  std::size_t decision_states = 0;
  std::size_t idle_states = 0;

  Engine(const std::vector<ExpJob>& js, double sp1, double sp2,
         ExpObjective obj)
      : jobs(js), s1(sp1), s2(sp2), objective(obj), n(js.size()), kNone(n) {
    STOSCHED_REQUIRE(n >= 1 && n <= 12, "uniform DP limited to n <= 12");
    STOSCHED_REQUIRE(s1 >= s2 && s2 > 0.0, "speeds must satisfy s1 >= s2 > 0");
    for (const auto& j : jobs)
      STOSCHED_REQUIRE(j.rate > 0.0, "job rates must be positive");
  }

  std::uint64_t key(std::uint32_t avail, std::size_t j1, std::size_t j2) const {
    return (static_cast<std::uint64_t>(avail) << 10) |
           (static_cast<std::uint64_t>(j1) << 5) | j2;
  }

  double cost_rate(std::uint32_t avail, std::size_t j1, std::size_t j2) const {
    if (objective == ExpObjective::kMakespan) return 1.0;
    double c = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (avail & (1u << j))
        c += objective == ExpObjective::kFlowtime ? 1.0 : jobs[j].weight;
    for (const std::size_t j : {j1, j2})
      if (j != kNone)
        c += objective == ExpObjective::kFlowtime ? 1.0 : jobs[j].weight;
    return c;
  }

  double race(std::uint32_t avail, std::size_t j1, std::size_t j2) {
    if (j1 == kNone && j2 == kNone) {
      STOSCHED_ASSERT(avail == 0, "race with nothing running but jobs left");
      return 0.0;
    }
    const auto it = memo_r.find(key(avail, j1, j2));
    if (it != memo_r.end()) return it->second;

    const double r1 = j1 == kNone ? 0.0 : s1 * jobs[j1].rate;
    const double r2 = j2 == kNone ? 0.0 : s2 * jobs[j2].rate;
    const double lambda = r1 + r2;
    double v = cost_rate(avail, j1, j2);
    if (j1 != kNone) v += r1 * decide(avail, kNone, j2);
    if (j2 != kNone) v += r2 * decide(avail, j1, kNone);
    v /= lambda;
    memo_r.emplace(key(avail, j1, j2), v);
    return v;
  }

  double decide(std::uint32_t avail, std::size_t j1, std::size_t j2) {
    if (avail == 0 && j1 == kNone && j2 == kNone) return 0.0;
    const auto it = memo_d.find(key(avail, j1, j2));
    if (it != memo_d.end()) return it->second;

    double v;
    bool counted_idle = false;
    if (rank) {
      // Greedy never-idle: fill the fast machine first, then the slow one,
      // always with the best-ranked unstarted job.
      std::uint32_t a = avail;
      std::size_t c1 = j1, c2 = j2;
      auto best_ranked = [&](std::uint32_t mask) {
        std::size_t best = kNone;
        for (std::size_t j = 0; j < n; ++j)
          if ((mask & (1u << j)) &&
              (best == kNone || (*rank)[j] < (*rank)[best]))
            best = j;
        return best;
      };
      if (c1 == kNone && a != 0) {
        c1 = best_ranked(a);
        a &= ~(1u << c1);
      }
      if (c2 == kNone && a != 0) {
        c2 = best_ranked(a);
        a &= ~(1u << c2);
      }
      v = race(a, c1, c2);
    } else {
      v = std::numeric_limits<double>::infinity();
      bool best_is_idle = false;
      // Machine-1 choices: keep incumbent, or commit any unstarted job.
      std::vector<std::size_t> c1s;
      if (j1 != kNone) {
        c1s.push_back(j1);
      } else {
        for (std::size_t j = 0; j < n; ++j)
          if (avail & (1u << j)) c1s.push_back(j);
        c1s.push_back(kNone);  // leave the fast machine idle (never wins,
                               // kept for correctness-by-enumeration)
      }
      for (const std::size_t c1 : c1s) {
        const std::uint32_t a1 =
            (j1 == kNone && c1 != kNone) ? (avail & ~(1u << c1)) : avail;
        std::vector<std::size_t> c2s;
        if (j2 != kNone) {
          c2s.push_back(j2);
        } else {
          for (std::size_t j = 0; j < n; ++j)
            if (a1 & (1u << j)) c2s.push_back(j);
          c2s.push_back(kNone);  // the threshold action: idle the slow one
        }
        for (const std::size_t c2 : c2s) {
          if (c1 == kNone && c2 == kNone && a1 != 0) continue;  // deadlock
          const std::uint32_t a2 =
              (j2 == kNone && c2 != kNone) ? (a1 & ~(1u << c2)) : a1;
          if (c1 == kNone && c2 == kNone && a2 == 0) {
            if (0.0 < v) {
              v = 0.0;
              best_is_idle = false;
            }
            continue;
          }
          const double cand = race(a2, c1, c2);
          if (cand < v - 1e-15) {
            v = cand;
            // "Idles machine 2" = slow machine left empty with work waiting.
            best_is_idle = c2 == kNone && a2 != 0;
          }
        }
      }
      ++decision_states;
      if (best_is_idle) {
        ++idle_states;
        counted_idle = true;
      }
      (void)counted_idle;
    }
    memo_d.emplace(key(avail, j1, j2), v);
    return v;
  }
};

}  // namespace

UniformDpResult uniform2_dp_optimal(const std::vector<ExpJob>& jobs, double s1,
                                    double s2, ExpObjective objective) {
  Engine eng(jobs, s1, s2, objective);
  UniformDpResult out;
  const std::uint32_t full = (1u << jobs.size()) - 1;
  out.value = eng.decide(full, eng.kNone, eng.kNone);
  out.states = eng.decision_states;
  out.idle_states = eng.idle_states;
  return out;
}

double uniform2_dp_priority(const std::vector<ExpJob>& jobs, double s1,
                            double s2, ExpObjective objective,
                            const std::vector<std::size_t>& priority) {
  STOSCHED_REQUIRE(priority.size() == jobs.size(),
                   "priority must cover all jobs");
  std::vector<std::size_t> rank(jobs.size());
  for (std::size_t pos = 0; pos < priority.size(); ++pos)
    rank[priority[pos]] = pos;
  Engine eng(jobs, s1, s2, objective);
  eng.rank = &rank;
  const std::uint32_t full = (1u << jobs.size()) - 1;
  return eng.decide(full, eng.kNone, eng.kNone);
}

}  // namespace stosched::batch
