// uniform_machines.hpp — machines that differ in speed (survey §1, T12).
//
// Two uniform machines with speeds s1 >= s2 process exponential jobs
// *nonpreemptively*: once a job starts on a machine it finishes there (a job
// with rate µ completes at rate s·µ on a speed-s machine). In this model the
// optimal flowtime policy has a *threshold* structure [1, 33]: committing a
// job to the slow machine is irrevocable, so near the end of the batch it is
// better to leave the slow machine idle and queue the remaining jobs for the
// fast one. The DP below computes the exact optimum including idling
// actions, reports how often the optimal action idles the slow machine, and
// evaluates the greedy never-idle heuristic for comparison.
//
// (If reassignment were free — the preemptive model — idling would never
// help with exponential jobs: parking a job on the slow machine costs
// nothing. The threshold phenomenon is inherently nonpreemptive.)
#pragma once

#include <cstddef>
#include <vector>

#include "batch/subset_dp.hpp"

namespace stosched::batch {

/// Result of the two-machine uniform DP.
struct UniformDpResult {
  double value = 0.0;           ///< optimal expected objective
  std::size_t states = 0;       ///< decision states examined
  std::size_t idle_states = 0;  ///< states where the optimum idles machine 2
                                ///< while unstarted jobs remain
};

/// Exact optimal expected flowtime (Σ C_j) or makespan on two uniform
/// machines with speeds s1 >= s2 > 0; exponential jobs, nonpreemptive
/// commitment; n <= 14.
UniformDpResult uniform2_dp_optimal(const std::vector<ExpJob>& jobs,
                                    double s1, double s2,
                                    ExpObjective objective);

/// Exact value of the greedy never-idle policy: whenever a machine frees
/// and unstarted jobs remain, it takes the job ranked first in `priority`
/// (the fast machine is offered the job first when both are free).
double uniform2_dp_priority(const std::vector<ExpJob>& jobs, double s1,
                            double s2, ExpObjective objective,
                            const std::vector<std::size_t>& priority);

}  // namespace stosched::batch
