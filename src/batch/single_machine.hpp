// single_machine.hpp — sequencing a batch on one machine (survey §1).
//
// Nonpreemptive case: for a *fixed* sequence the expected weighted flowtime
// depends on the processing-time laws only through their means,
//     E[Σ w_i C_i] = Σ_i w_{σ(i)} Σ_{k<=i} E[P_{σ(k)}],
// so the objective of every permutation is computed exactly — no simulation
// noise in experiment T1. Rothkopf [34] showed the deterministic Smith rule
// (nonincreasing w_i/E[P_i], WSEPT) transfers to the stochastic model.
//
// Preemptive case (Sevcik [35]): with general laws, preemption pays when
// hazard rates decrease. For *discrete* processing-time laws the optimal
// policy is an index rule whose index depends on attained service; decisions
// only matter at support points. This module computes the Sevcik/Gittins
// index exactly and evaluates policies exactly by backward induction on the
// (attained-service level per job) DAG — experiment T2.
#pragma once

#include <vector>

#include "batch/job.hpp"

namespace stosched::batch {

/// Exact E[Σ w_i C_i] of a nonpreemptive sequence (uses only means).
double exact_weighted_flowtime(const Batch& jobs, const Order& order);

/// Exhaustive minimum over all n! sequences (n <= 10). Returns the best
/// order; `value` (if non-null) receives its objective.
Order best_order_exhaustive(const Batch& jobs, double* value = nullptr);

/// One simulated replication of a nonpreemptive sequence: draws processing
/// times and returns realized Σ w_i C_i. Exists to validate the exact
/// formula and to support distributions in integration tests.
double simulate_weighted_flowtime(const Batch& jobs, const Order& order,
                                  Rng& rng);

// ---------------------------------------------------------------------------
// Preemptive scheduling of discrete-law jobs.
// ---------------------------------------------------------------------------

/// A job whose processing time has finite support v_1 < ... < v_K with
/// probabilities q_1..q_K (from discrete_dist / two_point_dist). `level`
/// counts support points already survived: attained service a = v_level
/// (a = 0 at level 0).
struct DiscreteJob {
  double weight = 1.0;
  std::vector<double> values;  ///< support, strictly increasing
  std::vector<double> probs;   ///< probabilities, sum to 1
};

/// Convert a Batch whose laws are all discrete; throws otherwise.
std::vector<DiscreteJob> to_discrete_jobs(const Batch& jobs);

/// Sevcik's index of a job at a given attained-service level:
///   sigma(level) = w * max_{t in later support points}
///                  P(finish by t | survived to level) / E[min(P, t) - a | survived].
/// Larger index = higher priority. Serving is reconsidered at support points.
double sevcik_index(const DiscreteJob& job, std::size_t level);

/// Exact expected weighted flowtime of the *Sevcik index policy* on discrete
/// jobs, by backward induction over level vectors. Jobs count <= 6 with
/// small supports (state space is prod(K_i + 1)).
double preemptive_index_policy_value(const std::vector<DiscreteJob>& jobs);

/// Exact optimal preemptive expected weighted flowtime over *all* policies
/// that act at support points (which contains an optimal policy), by
/// backward induction on the same DAG.
double preemptive_optimal_value(const std::vector<DiscreteJob>& jobs);

/// Exact value of the best *nonpreemptive* sequence on the same jobs
/// (exhaustive over orders), for the preemption-gain comparison of T2.
double nonpreemptive_optimal_value(const std::vector<DiscreteJob>& jobs);

}  // namespace stosched::batch
