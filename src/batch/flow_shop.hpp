// flow_shop.hpp — stochastic flow shops, with and without blocking
// (survey §1, [49]).
//
// Jobs pass machines 1..m in series under a common permutation. With
// infinite intermediate buffers the completion times follow the classical
// recurrence C[i][k] = max(C[i-1][k], C[i][k-1]) + p[i][k]. With *blocking*
// (no buffers, the model of Wie–Pinedo [49]) a job holds its machine until
// the next machine frees:
//     d[i][k] = max( max(d[i-1][k], d[i][k-1]) + p[i][k], d[i-1][k+1] ).
// For two machines with exponential stage times, Talwar's rule — sequence by
// nonincreasing (rate on machine 1 − rate on machine 2) — minimizes expected
// makespan; the experiment verifies it empirically against all permutations
// under common random numbers.
#pragma once

#include <cstddef>
#include <vector>

#include "batch/job.hpp"
#include "dist/distribution.hpp"

namespace stosched::batch {

/// One flow-shop job: a processing-time law per stage.
struct FlowShopJob {
  std::vector<DistPtr> stages;
};

/// Realized makespan and flowtime of a permutation schedule given sampled
/// stage times p[job][stage].
struct FlowShopOutcome {
  double makespan = 0.0;
  double flowtime = 0.0;
};

FlowShopOutcome flow_shop_realization(
    const std::vector<std::vector<double>>& p, const Order& order,
    bool blocking);

/// One simulated replication (draws all stage times).
FlowShopOutcome simulate_flow_shop(const std::vector<FlowShopJob>& jobs,
                                   const Order& order, bool blocking,
                                   Rng& rng);

/// Talwar's rule for 2-machine exponential flow shops: sort by nonincreasing
/// (rate at stage 0 − rate at stage 1). Requires exponential stage laws.
Order talwar_order(const std::vector<FlowShopJob>& jobs);

}  // namespace stosched::batch
