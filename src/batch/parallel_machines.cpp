#include "batch/parallel_machines.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched::batch {

ScheduleOutcome schedule_realization(const std::vector<double>& times,
                                     const std::vector<double>& weights,
                                     const Order& order, unsigned machines) {
  STOSCHED_REQUIRE(machines >= 1, "need at least one machine");
  STOSCHED_REQUIRE(times.size() == order.size() &&
                       weights.size() == order.size(),
                   "times/weights/order must agree");
  // Machine free times; next job always goes to the earliest-free machine.
  // A linear scan beats a heap for the machine counts used here (m <= 8).
  std::vector<double> free_at(machines, 0.0);
  ScheduleOutcome out;
  for (const std::size_t j : order) {
    std::size_t mach = 0;
    for (std::size_t m = 1; m < machines; ++m)
      if (free_at[m] < free_at[mach]) mach = m;
    const double completion = free_at[mach] + times[j];
    free_at[mach] = completion;
    out.flowtime += completion;
    out.weighted_flowtime += weights[j] * completion;
    out.makespan = std::max(out.makespan, completion);
  }
  return out;
}

ScheduleOutcome simulate_list_policy(const Batch& jobs, const Order& order,
                                     unsigned machines, Rng& rng) {
  STOSCHED_EXPECTS(machines >= 1 && order.size() == jobs.size(),
                   "list policy needs a machine and a full order");
  // Per-job size substreams off a bootstrap root: the realized batch is a
  // function of the caller's stream alone, not of the order argument, so
  // CRN policy arms dispatch the identical workload.
  const Rng root(rng());
  std::vector<double> times(jobs.size());
  std::vector<double> weights(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Rng size_rng = root.stream(j);
    times[j] = jobs[j].processing->sample(size_rng);
    weights[j] = jobs[j].weight;
  }
  return schedule_realization(times, weights, order, machines);
}

ScheduleOutcome exact_list_policy_discrete(const Batch& jobs,
                                           const Order& order,
                                           unsigned machines) {
  const std::size_t n = jobs.size();
  std::vector<std::vector<double>> values(n), probs(n);
  std::size_t lattice = 1;
  for (std::size_t j = 0; j < n; ++j) {
    STOSCHED_REQUIRE(discrete_support(*jobs[j].processing, &values[j], &probs[j]),
                     "exact evaluation requires discrete laws");
    STOSCHED_REQUIRE(lattice <= (std::size_t{1} << 20) / values[j].size(),
                     "realization lattice too large");
    lattice *= values[j].size();
  }

  std::vector<double> times(n), weights(n);
  for (std::size_t j = 0; j < n; ++j) weights[j] = jobs[j].weight;

  ScheduleOutcome expected;
  std::vector<std::size_t> digit(n, 0);
  for (std::size_t code = 0; code < lattice; ++code) {
    double p = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      times[j] = values[j][digit[j]];
      p *= probs[j][digit[j]];
    }
    const ScheduleOutcome o = schedule_realization(times, weights, order, machines);
    expected.flowtime += p * o.flowtime;
    expected.weighted_flowtime += p * o.weighted_flowtime;
    expected.makespan += p * o.makespan;
    // Mixed-radix increment.
    for (std::size_t j = 0; j < n; ++j) {
      if (++digit[j] < values[j].size()) break;
      digit[j] = 0;
    }
  }
  return expected;
}

Order best_list_order_discrete(const Batch& jobs, unsigned machines,
                               bool use_makespan, double* value) {
  const std::size_t n = jobs.size();
  STOSCHED_REQUIRE(n >= 1 && n <= 8, "exhaustive list search limited to n <= 8");
  Order perm = identity_order(n);
  Order best = perm;
  double best_val = std::numeric_limits<double>::infinity();
  do {
    const ScheduleOutcome o = exact_list_policy_discrete(jobs, perm, machines);
    const double v = use_makespan ? o.makespan : o.flowtime;
    if (v < best_val - 1e-15) {
      best_val = v;
      best = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (value) *value = best_val;
  return best;
}

}  // namespace stosched::batch
