// parallel_machines.hpp — identical parallel machines (survey §1).
//
// List policies: jobs are ordered once; whenever a machine frees, it takes
// the next unstarted job. SEPT is optimal for expected total flowtime under
// exponential laws [20] (and more generally [41,43]); LEPT is optimal for
// expected makespan under exponential laws [10]. Outside those assumptions
// the rules fail ([13], experiment T5). Policies are evaluated two ways:
//   * simulation (any laws, any n) — simulate_list_policy;
//   * exact enumeration over the realization lattice for discrete laws
//     (two-point counterexamples) — exact_list_policy_discrete;
// and the *dynamic* optimum for exponential laws comes from subset_dp.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "batch/job.hpp"

namespace stosched::batch {

/// Outcome of one schedule realization (or its expectation).
struct ScheduleOutcome {
  double flowtime = 0.0;           ///< Σ_j C_j
  double weighted_flowtime = 0.0;  ///< Σ_j w_j C_j
  double makespan = 0.0;           ///< max_j C_j
};

/// Deterministically schedule given realized processing times: machine
/// becoming free earliest (ties: lowest machine id) takes the next job in
/// `order`. Returns the realized outcome.
ScheduleOutcome schedule_realization(const std::vector<double>& times,
                                     const std::vector<double>& weights,
                                     const Order& order, unsigned machines);

/// One simulated replication of the list policy (draws processing times).
ScheduleOutcome simulate_list_policy(const Batch& jobs, const Order& order,
                                     unsigned machines, Rng& rng);

/// Exact expectation of a list policy when every law is discrete: enumerates
/// the product support (prod K_i realizations; requires <= ~2^20).
ScheduleOutcome exact_list_policy_discrete(const Batch& jobs,
                                           const Order& order,
                                           unsigned machines);

/// Exhaustive minimum of exact expected flowtime (or makespan) over all list
/// orders for discrete-law jobs; n <= 8. `use_makespan` selects objective.
Order best_list_order_discrete(const Batch& jobs, unsigned machines,
                               bool use_makespan, double* value = nullptr);

}  // namespace stosched::batch
