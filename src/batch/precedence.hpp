// precedence.hpp — in-tree precedence constraints on parallel machines
// (survey §1, [31]).
//
// Jobs form an in-tree: a job becomes eligible once all its children are
// complete; the root finishes last. Papadimitriou–Tsitsiklis showed that
// with i.i.d. exponential processing times, Highest-Level-First (HLF, level
// = distance to the root) is asymptotically optimal for expected makespan as
// n grows. The experiment compares HLF against an arbitrary-eligible greedy
// policy and against the standard lower bound
//     LB = max( E[work]/m , depth · mean )
// showing the HLF/LB ratio approach 1.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace stosched::batch {

/// An in-tree: parent[i] is the parent of node i, parent[root] == root.
struct InTree {
  std::vector<std::size_t> parent;
  std::size_t root = 0;

  [[nodiscard]] std::size_t size() const noexcept { return parent.size(); }
};

/// Uniform random recursive in-tree on n nodes (node i attaches to a
/// uniformly chosen earlier node).
InTree random_in_tree(std::size_t n, Rng& rng);

/// Level of each node = #edges on the path to the root.
std::vector<std::size_t> tree_levels(const InTree& tree);

/// Depth = max level + 1 (nodes on the longest chain).
std::size_t tree_depth(const InTree& tree);

/// Scheduling policy for eligible jobs.
enum class TreePolicy {
  kHighestLevelFirst,  ///< HLF of [31]
  kFifoEligible,       ///< serve eligible jobs in index order (greedy baseline)
};

/// Simulate one makespan realization: m machines, i.i.d. Exp(rate) jobs,
/// nonpreemptive, never idles a machine while an eligible job waits.
double simulate_tree_makespan(const InTree& tree, unsigned machines,
                              double rate, TreePolicy policy, Rng& rng);

}  // namespace stosched::batch
