#include "batch/flow_shop.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched::batch {

FlowShopOutcome flow_shop_realization(
    const std::vector<std::vector<double>>& p, const Order& order,
    bool blocking) {
  const std::size_t n = order.size();
  STOSCHED_REQUIRE(n > 0 && p.size() >= n, "need processing times per job");
  const std::size_t m = p[0].size();
  STOSCHED_REQUIRE(m >= 1, "need at least one machine");

  FlowShopOutcome out;
  // prev[k] = departure time of the previous job from machine k (blocking)
  // or its completion time (infinite buffer).
  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> cur(m + 1, 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const auto& times = p[order[pos]];
    STOSCHED_REQUIRE(times.size() == m, "stage count mismatch");
    if (!blocking) {
      double c = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        c = std::max(c, prev[k]) + times[k];
        cur[k] = c;
      }
    } else {
      // Blocking recurrence: cur[k] is the *departure* of this job from
      // machine k. The job starts on k when it has left k-1 and the previous
      // job has left k; it departs k when both its service is done and the
      // previous job has left k+1 (machine k+1 free). prev[m] == 0 sentinel.
      double leave_prev_machine = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double start = std::max(leave_prev_machine, prev[k]);
        const double complete = start + times[k];
        const double depart =
            k + 1 < m ? std::max(complete, prev[k + 1]) : complete;
        cur[k] = depart;
        leave_prev_machine = depart;
      }
    }
    const double completion = cur[m - 1];
    out.flowtime += completion;
    out.makespan = completion;  // last job's exit == makespan for permutations
    prev = cur;
  }
  return out;
}

FlowShopOutcome simulate_flow_shop(const std::vector<FlowShopJob>& jobs,
                                   const Order& order, bool blocking,
                                   Rng& rng) {
  STOSCHED_EXPECTS(order.size() == jobs.size(),
                   "flow shop order must cover every job");
  // Per-job substreams (stage draws sequential within a job's stream): the
  // realized stage matrix depends only on the caller's stream, never on the
  // order argument, so CRN arms run the identical shop.
  const Rng root(rng());
  std::vector<std::vector<double>> p(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Rng job_rng = root.stream(j);
    p[j].reserve(jobs[j].stages.size());
    for (const auto& d : jobs[j].stages) p[j].push_back(d->sample(job_rng));
  }
  return flow_shop_realization(p, order, blocking);
}

Order talwar_order(const std::vector<FlowShopJob>& jobs) {
  std::vector<double> delta(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    STOSCHED_REQUIRE(jobs[j].stages.size() == 2,
                     "Talwar's rule applies to 2-machine flow shops");
    // Exponential rate = 1/mean; the rule needs rates, which we recover from
    // the means (exactness only claimed for exponential stage laws).
    const double r1 = 1.0 / jobs[j].stages[0]->mean();
    const double r2 = 1.0 / jobs[j].stages[1]->mean();
    delta[j] = r1 - r2;
  }
  Order order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return delta[a] > delta[b];
                   });
  return order;
}

}  // namespace stosched::batch
