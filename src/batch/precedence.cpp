#include "batch/precedence.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace stosched::batch {

// rng-audit: sink(instance generator: one attachment draw per node, in
// node order, is the reproducibility contract)
InTree random_in_tree(std::size_t n, Rng& rng) {
  STOSCHED_REQUIRE(n >= 1, "tree needs at least one node");
  InTree t;
  t.parent.resize(n);
  t.parent[0] = 0;
  t.root = 0;
  for (std::size_t i = 1; i < n; ++i)
    t.parent[i] = rng.below(i);  // attach to a uniformly random earlier node
  return t;
}

std::vector<std::size_t> tree_levels(const InTree& tree) {
  const std::size_t n = tree.size();
  std::vector<std::size_t> level(n, 0);
  // parent[i] < i for generated trees, but handle general parent pointers by
  // walking up (paths are short; total cost O(n · depth)).
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t v = i, hops = 0;
    while (v != tree.parent[v]) {
      v = tree.parent[v];
      ++hops;
      STOSCHED_REQUIRE(hops <= n, "parent pointers contain a cycle");
    }
    level[i] = hops;
  }
  return level;
}

std::size_t tree_depth(const InTree& tree) {
  const auto levels = tree_levels(tree);
  return 1 + *std::max_element(levels.begin(), levels.end());
}

double simulate_tree_makespan(const InTree& tree, unsigned machines,
                              double rate, TreePolicy policy, Rng& rng) {
  STOSCHED_REQUIRE(machines >= 1, "need at least one machine");
  STOSCHED_REQUIRE(rate > 0.0, "rate must be positive");
  const std::size_t n = tree.size();
  const auto level = tree_levels(tree);

  // pending_children[i] counts uncompleted children; a node is eligible when
  // it reaches 0 (leaves start eligible).
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    if (tree.parent[i] != i) ++pending[tree.parent[i]];

  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < n; ++i)
    if (pending[i] == 0) eligible.push_back(i);

  auto pick = [&]() -> std::size_t {
    STOSCHED_ASSERT(!eligible.empty(), "no eligible job to pick");
    std::size_t best_pos = 0;
    if (policy == TreePolicy::kHighestLevelFirst) {
      for (std::size_t p = 1; p < eligible.size(); ++p)
        if (level[eligible[p]] > level[eligible[best_pos]] ||
            (level[eligible[p]] == level[eligible[best_pos]] &&
             eligible[p] < eligible[best_pos]))
          best_pos = p;
    } else {
      for (std::size_t p = 1; p < eligible.size(); ++p)
        if (eligible[p] < eligible[best_pos]) best_pos = p;
    }
    const std::size_t job = eligible[best_pos];
    eligible[best_pos] = eligible.back();
    eligible.pop_back();
    return job;
  };

  // Per-job service substreams off a bootstrap root: job i's realized
  // duration is fixed by the caller's stream alone, independent of when the
  // policy starts it, so CRN policy arms (HLF vs arbitrary) process the
  // identical realized tree.
  const Rng root(rng());

  // running: (finish_time, job). Linear scans; m is small.
  std::vector<std::pair<double, std::size_t>> running;
  double clock = 0.0;
  std::size_t completed = 0;

  while (completed < n) {
    while (running.size() < machines && !eligible.empty()) {
      const std::size_t job = pick();
      Rng service_rng = root.stream(job);
      running.emplace_back(clock + service_rng.exponential(rate), job);
    }
    STOSCHED_ASSERT(!running.empty(), "deadlock: nothing running or eligible");
    std::size_t next = 0;
    for (std::size_t r = 1; r < running.size(); ++r)
      if (running[r].first < running[next].first) next = r;
    clock = running[next].first;
    const std::size_t done = running[next].second;
    running[next] = running.back();
    running.pop_back();
    ++completed;
    if (done != tree.root) {
      const std::size_t par = tree.parent[done];
      STOSCHED_ASSERT(pending[par] > 0, "parent dependency underflow");
      if (--pending[par] == 0) eligible.push_back(par);
    }
  }
  return clock;
}

}  // namespace stosched::batch
