// subset_dp.hpp — exact dynamic programming for exponential jobs on
// identical parallel machines (survey §1, experiments T3/T4/F1).
//
// With exponential processing times the running jobs are memoryless, so the
// system state collapses to the *set* of uncompleted jobs; decision epochs
// are completion times. For a chosen service set A (|A| = min(m, |S|)):
//   * the next completion arrives after Exp(Λ_A), Λ_A = Σ_{i∈A} µ_i;
//   * it is job i with probability µ_i / Λ_A;
// which yields the recursions
//   flowtime:  V(S) = min_A [ W(S)/Λ_A + Σ_{i∈A} (µ_i/Λ_A) V(S\{i}) ],
//   makespan:  V(S) = min_A [    1/Λ_A + Σ_{i∈A} (µ_i/Λ_A) V(S\{i}) ],
// with W(S) the total weight of uncompleted jobs. The minimizing policy is
// the exact dynamic optimum over *all* nonanticipative policies (idling is
// never profitable here). Evaluating a fixed priority order instead of
// minimizing gives the exact value of SEPT/LEPT/WSEPT — the comparisons the
// experiments report are therefore noise-free.
#pragma once

#include <cstddef>
#include <vector>

namespace stosched::batch {

/// An exponential job: completion rate µ and flowtime weight w.
struct ExpJob {
  double rate = 1.0;
  double weight = 1.0;
};

enum class ExpObjective {
  kFlowtime,          ///< E[Σ C_j]
  kWeightedFlowtime,  ///< E[Σ w_j C_j]
  kMakespan,          ///< E[max C_j]
};

/// Exact optimal expected value over all policies. n <= 16.
double exp_dp_optimal(const std::vector<ExpJob>& jobs, unsigned machines,
                      ExpObjective objective);

/// Exact expected value of the static priority policy that always serves the
/// min(m, |S|) uncompleted jobs ranked earliest in `priority` (a permutation
/// of job indices, highest priority first).
double exp_dp_priority(const std::vector<ExpJob>& jobs, unsigned machines,
                       ExpObjective objective,
                       const std::vector<std::size_t>& priority);

/// Convenience: value of SEPT (shortest expected processing first ==
/// highest rate first) / LEPT (lowest rate first) under the DP.
double exp_dp_sept(const std::vector<ExpJob>& jobs, unsigned machines,
                   ExpObjective objective);
double exp_dp_lept(const std::vector<ExpJob>& jobs, unsigned machines,
                   ExpObjective objective);

}  // namespace stosched::batch
