// job.hpp — stochastic jobs and batch instances (survey §1).
//
// A job carries a holding-cost weight and a processing-time law. Batches are
// plain vectors; instance generators produce the workload families the
// experiments sweep over (exponential, IFR, DFR, two-point, mixed).
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace stosched::batch {

/// One stochastic job: weight w_i (cost per unit time in system) and the
/// processing-time distribution G_i.
struct Job {
  double weight = 1.0;
  DistPtr processing;
};

using Batch = std::vector<Job>;

/// A scheduling order: job indices, first entry = first served / highest
/// priority.
using Order = std::vector<std::size_t>;

/// Family tag for generated instances.
enum class JobFamily {
  kExponential,   ///< Exp(rate) with random rates
  kErlang,        ///< IFR
  kHyperExp,      ///< DFR
  kTwoPoint,      ///< the counterexample family of [13]
  kUniform,
  kMixed,         ///< a blend of the above
};

/// Options for the random-instance generator.
struct BatchGenOptions {
  JobFamily family = JobFamily::kMixed;
  double mean_lo = 0.5;     ///< processing means drawn from [mean_lo, mean_hi]
  double mean_hi = 4.0;
  double weight_lo = 0.5;   ///< weights drawn from [weight_lo, weight_hi]
  double weight_hi = 3.0;
  bool unit_weights = false;
};

/// Generate a random batch of n jobs.
Batch random_batch(std::size_t n, Rng& rng, const BatchGenOptions& opts = {});

/// Identity / sorted orders.
Order identity_order(std::size_t n);
/// Shortest expected processing time first.
Order sept_order(const Batch& jobs);
/// Longest expected processing time first.
Order lept_order(const Batch& jobs);
/// Smith / Rothkopf rule: nonincreasing w_i / E[P_i] (WSEPT). Optimal for
/// 1 machine, nonpreemptive, expected weighted flowtime [34,37].
Order wsept_order(const Batch& jobs);
/// Uniformly random permutation.
Order random_order(std::size_t n, Rng& rng);

/// Sum of expected processing times.
double total_expected_work(const Batch& jobs);

}  // namespace stosched::batch
