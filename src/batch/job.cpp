#include "batch/job.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace stosched::batch {

// rng-audit: sink(instance generator: its sequential draw order IS the
// reproducibility contract, pinned by the golden tests)
Batch random_batch(std::size_t n, Rng& rng, const BatchGenOptions& opts) {
  STOSCHED_REQUIRE(n > 0, "batch must contain at least one job");
  Batch jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = rng.uniform(opts.mean_lo, opts.mean_hi);
    JobFamily fam = opts.family;
    if (fam == JobFamily::kMixed) {
      switch (rng.below(5)) {
        case 0: fam = JobFamily::kExponential; break;
        case 1: fam = JobFamily::kErlang; break;
        case 2: fam = JobFamily::kHyperExp; break;
        case 3: fam = JobFamily::kTwoPoint; break;
        default: fam = JobFamily::kUniform; break;
      }
    }
    DistPtr d;
    switch (fam) {
      case JobFamily::kExponential:
        d = exponential_dist(1.0 / mean);
        break;
      case JobFamily::kErlang: {
        const unsigned k = 2 + static_cast<unsigned>(rng.below(3));
        d = erlang_dist(k, k / mean);
        break;
      }
      case JobFamily::kHyperExp:
        d = hyperexp2_dist(mean, rng.uniform(1.5, 6.0));
        break;
      case JobFamily::kTwoPoint: {
        // Short value a, long value b, calibrated to the requested mean.
        const double a = 0.2 * mean;
        const double pa = rng.uniform(0.5, 0.95);
        const double b = (mean - pa * a) / (1.0 - pa);
        d = two_point_dist(a, pa, b);
        break;
      }
      case JobFamily::kUniform:
        d = uniform_dist(0.2 * mean, 1.8 * mean);
        break;
      case JobFamily::kMixed:
        STOSCHED_ASSERT(false, "mixed family resolved above");
    }
    const double w =
        opts.unit_weights ? 1.0 : rng.uniform(opts.weight_lo, opts.weight_hi);
    jobs.push_back(Job{w, std::move(d)});
  }
  return jobs;
}

Order identity_order(std::size_t n) {
  Order order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

namespace {

template <typename Less>
Order sorted_order(std::size_t n, Less less) {
  Order order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), less);
  return order;
}

}  // namespace

Order sept_order(const Batch& jobs) {
  return sorted_order(jobs.size(), [&](std::size_t a, std::size_t b) {
    return jobs[a].processing->mean() < jobs[b].processing->mean();
  });
}

Order lept_order(const Batch& jobs) {
  return sorted_order(jobs.size(), [&](std::size_t a, std::size_t b) {
    return jobs[a].processing->mean() > jobs[b].processing->mean();
  });
}

Order wsept_order(const Batch& jobs) {
  return sorted_order(jobs.size(), [&](std::size_t a, std::size_t b) {
    return jobs[a].weight / jobs[a].processing->mean() >
           jobs[b].weight / jobs[b].processing->mean();
  });
}

// rng-audit: sink(Fisher-Yates consumes one draw per position by design)
Order random_order(std::size_t n, Rng& rng) {
  Order order = identity_order(n);
  // Fisher–Yates with the library RNG (std::shuffle is not
  // implementation-stable across standard libraries).
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

double total_expected_work(const Batch& jobs) {
  double total = 0.0;
  for (const auto& j : jobs) total += j.processing->mean();
  return total;
}

}  // namespace stosched::batch
