#include "batch/subset_dp.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace stosched::batch {

namespace {

/// Enumerate all k-subsets of the set bits of `mask`, invoking `fn(subset)`.
template <typename Fn>
void for_each_k_subset(std::uint32_t mask, unsigned k, Fn&& fn) {
  std::vector<unsigned> bits;
  for (unsigned b = 0; b < 32; ++b)
    if (mask & (1u << b)) bits.push_back(b);
  const unsigned n = static_cast<unsigned>(bits.size());
  STOSCHED_ASSERT(k <= n, "k-subset larger than set");
  std::vector<unsigned> idx(k);
  std::iota(idx.begin(), idx.end(), 0u);
  for (;;) {
    std::uint32_t sub = 0;
    for (const unsigned i : idx) sub |= 1u << bits[i];
    fn(sub);
    // Next combination in lexicographic order.
    unsigned i = k;
    while (i-- > 0) {
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (unsigned j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

double run_dp(const std::vector<ExpJob>& jobs, unsigned machines,
              ExpObjective objective,
              const std::vector<std::size_t>* priority) {
  const std::size_t n = jobs.size();
  STOSCHED_REQUIRE(n >= 1 && n <= 16, "subset DP limited to n <= 16");
  STOSCHED_REQUIRE(machines >= 1, "need at least one machine");
  for (const auto& j : jobs)
    STOSCHED_REQUIRE(j.rate > 0.0, "job rates must be positive");

  const std::uint32_t full = n == 32 ? ~0u : (1u << n) - 1;
  std::vector<double> value(full + 1, 0.0);

  // Ranks for priority evaluation: rank[j] = position in the priority list.
  std::vector<std::size_t> rank(n, 0);
  if (priority) {
    STOSCHED_REQUIRE(priority->size() == n, "priority must cover all jobs");
    for (std::size_t pos = 0; pos < n; ++pos) rank[(*priority)[pos]] = pos;
  }

  for (std::uint32_t s = 1; s <= full; ++s) {
    const unsigned alive = static_cast<unsigned>(std::popcount(s));
    const unsigned k = std::min(machines, alive);

    double cost_rate = 0.0;
    if (objective == ExpObjective::kMakespan) {
      cost_rate = 1.0;
    } else {
      for (std::size_t j = 0; j < n; ++j)
        if (s & (1u << j))
          cost_rate += objective == ExpObjective::kFlowtime ? 1.0
                                                            : jobs[j].weight;
    }

    auto action_value = [&](std::uint32_t a) {
      double lambda = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        if (a & (1u << j)) lambda += jobs[j].rate;
      double v = cost_rate;
      for (std::size_t j = 0; j < n; ++j)
        if (a & (1u << j)) v += jobs[j].rate * value[s & ~(1u << j)];
      return v / lambda;
    };

    if (priority) {
      // Serve the k highest-priority (lowest-rank) alive jobs.
      std::uint32_t a = 0;
      std::vector<std::size_t> aliveJobs;
      for (std::size_t j = 0; j < n; ++j)
        if (s & (1u << j)) aliveJobs.push_back(j);
      std::partial_sort(aliveJobs.begin(), aliveJobs.begin() + k,
                        aliveJobs.end(), [&](std::size_t x, std::size_t y) {
                          return rank[x] < rank[y];
                        });
      for (unsigned i = 0; i < k; ++i) a |= 1u << aliveJobs[i];
      value[s] = action_value(a);
    } else {
      double best = std::numeric_limits<double>::infinity();
      for_each_k_subset(s, k, [&](std::uint32_t a) {
        best = std::min(best, action_value(a));
      });
      value[s] = best;
    }
  }
  return value[full];
}

std::vector<std::size_t> order_by_rate(const std::vector<ExpJob>& jobs,
                                       bool highest_rate_first) {
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return highest_rate_first ? jobs[a].rate > jobs[b].rate
                                               : jobs[a].rate < jobs[b].rate;
                   });
  return order;
}

}  // namespace

double exp_dp_optimal(const std::vector<ExpJob>& jobs, unsigned machines,
                      ExpObjective objective) {
  return run_dp(jobs, machines, objective, nullptr);
}

double exp_dp_priority(const std::vector<ExpJob>& jobs, unsigned machines,
                       ExpObjective objective,
                       const std::vector<std::size_t>& priority) {
  return run_dp(jobs, machines, objective, &priority);
}

double exp_dp_sept(const std::vector<ExpJob>& jobs, unsigned machines,
                   ExpObjective objective) {
  // SEPT: shortest mean == highest rate first.
  return exp_dp_priority(jobs, machines, objective,
                         order_by_rate(jobs, /*highest_rate_first=*/true));
}

double exp_dp_lept(const std::vector<ExpJob>& jobs, unsigned machines,
                   ExpObjective objective) {
  return exp_dp_priority(jobs, machines, objective,
                         order_by_rate(jobs, /*highest_rate_first=*/false));
}

}  // namespace stosched::batch
