#include "obs/progress.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

namespace stosched::obs {
namespace {

// Resolved once: nullptr = disabled, otherwise the sink (stderr or an
// append-mode file, leaked so late emitters never race a close).
std::FILE* resolve_sink() {
  const char* env = std::getenv("STOSCHED_PROGRESS");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0)
    return nullptr;
  if (std::strcmp(env, "-") == 0 || std::strcmp(env, "stderr") == 0)
    return stderr;
  return std::fopen(env, "a");  // nullptr on failure = disabled
}

std::FILE* sink() {
  static std::FILE* s = resolve_sink();
  return s;
}

std::mutex& sink_mutex() {
  static std::mutex* m = new std::mutex;  // leaked, emitters may be late
  return *m;
}

std::uint64_t next_seq() {
  static std::uint64_t seq = 0;  // guarded by sink_mutex
  return seq++;
}

}  // namespace

bool progress_enabled() noexcept { return sink() != nullptr; }

std::string format_progress_line(const char* event, std::uint64_t seq,
                                 std::initializer_list<ProgressField> fields) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"event\":\"" << event << "\",\"seq\":" << seq;
  for (const ProgressField& f : fields) os << ",\"" << f.key << "\":" << f.value;
  os << "}";
  return os.str();
}

void progress_line(const char* event,
                   std::initializer_list<ProgressField> fields) {
  std::FILE* out = sink();
  if (out == nullptr) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  const std::string line = format_progress_line(event, next_seq(), fields);
  std::fputs(line.c_str(), out);
  std::fputc('\n', out);
  std::fflush(out);
}

}  // namespace stosched::obs
