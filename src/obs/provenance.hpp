// provenance.hpp — build + runtime facts for apples-to-apples comparisons.
//
// A bench number without its build context is a trap: comparing a
// sanitizer build against Release, or an 8-thread run against 1-thread,
// "detects" regressions that are configuration diffs. This header exposes
// the facts that make two BENCH_*.json files comparable —
// bench_common::finish stamps them into a "provenance" block and
// tools/bench_compare.py warns when they disagree (the --exact determinism
// gate deliberately ignores the block: its whole point is comparing
// different OMP thread counts).
//
// Compile-time facts (git sha, compiler, flags, build type, sanitizers,
// which compiled-out layers are armed) are baked into provenance.cpp via
// CMake-provided defines — the git sha is captured at *configure* time, so
// it can lag the working tree until the next CMake run; treat it as "the
// commit this build directory was configured from". Runtime facts (OpenMP
// width) are read fresh on every call.
#pragma once

#include <string>

namespace stosched::obs {

/// Everything worth knowing about how this binary was built and how wide
/// it will run. Strings are never empty — unknown facts say "unknown".
struct BuildInfo {
  std::string git_sha;     ///< configure-time HEAD (short), or "unknown"
  std::string compiler;    ///< e.g. "gcc 12.2.0" / "clang 18.1.8 ..."
  std::string flags;       ///< CMAKE_CXX_FLAGS + active per-config flags
  std::string build_type;  ///< CMAKE_BUILD_TYPE, or "unknown"
  std::string sanitizers;  ///< STOSCHED_SANITIZE value; "none" when off
  bool contracts = false;  ///< STOSCHED_CONTRACTS armed in this build
  bool trace = false;      ///< STOSCHED_TRACE macros compiled in
  bool time_stats = false; ///< STOSCHED_TIME_STATS phase timers compiled in
  int omp_max_threads = 1; ///< omp_get_max_threads() now (1 without OpenMP)
};

BuildInfo build_info();

}  // namespace stosched::obs
