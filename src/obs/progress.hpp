// progress.hpp — opt-in structured progress lines for long replication
// sweeps.
//
// A sequential-precision run (`EngineOptions::sequential`) can grind
// through thousands of replications before its CI half-widths close; until
// now the only signal was the final table. This sink emits one
// machine-readable JSON object per line while the run is still going —
// live half-widths from the stopping rule, batch completions from the
// replication driver — so a wrapper script (or a human with tail -f) can
// watch convergence without touching the results.
//
// Strictly opt-in via the STOSCHED_PROGRESS environment variable:
//
//   STOSCHED_PROGRESS=-            # lines to stderr
//   STOSCHED_PROGRESS=run.ndjson   # lines appended to a file
//
// unset (or "0") means progress_enabled() is a cached `false` and every
// emission site costs one branch. The line protocol is deliberately tiny —
// a flat JSON object with an "event" tag, a monotone "seq" number (total
// order even when OpenMP workers interleave), and numeric fields:
//
//   {"event":"ci","seq":42,"metric":0,"mean":1.93,"halfwidth":0.011,...}
//
// Consumers should ignore unknown keys and unknown event tags; emitters
// add fields freely.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

namespace stosched::obs {

/// One key/value pair of a progress line. Keys are string literals;
/// values are doubles (counts up to 2^53 stay exact).
struct ProgressField {
  const char* key;
  double value;
};

/// True when STOSCHED_PROGRESS selects a sink (cached after first call).
bool progress_enabled() noexcept;

/// Emit one line to the configured sink; no-op when disabled. Thread-safe
/// (single mutex-guarded write per line, flushed immediately).
void progress_line(const char* event, std::initializer_list<ProgressField> fields);

/// The formatting half of progress_line, exposed so tests can check the
/// protocol without an environment variable or a sink.
std::string format_progress_line(const char* event, std::uint64_t seq,
                                 std::initializer_list<ProgressField> fields);

}  // namespace stosched::obs
