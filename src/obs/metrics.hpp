// metrics.hpp — the process-wide metrics registry of the observability layer.
//
// Before this subsystem the repo's telemetry was three ad-hoc mechanisms
// that grew one PR at a time: the `events` atomic in des/event_queue.cpp,
// the `lp_solves`/`lp_iterations` pair in lp/simplex.cpp, and flat scalar
// columns in BENCH_*.json. This header unifies them behind one registry of
// named instruments:
//
//   * Counter    — monotone event tally (relaxed-atomic adds). The sums are
//                  commutative, so totals are bit-identical under any
//                  OpenMP schedule — the discipline the LP counters set.
//   * Gauge      — last-written level (relaxed store/load); for facts, not
//                  sums (e.g. a configuration knob worth exporting).
//   * Histogram  — deterministic log₂-bucketed distribution. The bucket of
//                  a value is a pure function of its IEEE-754 bits (no
//                  floating log), bucket counts are commutative atomic
//                  sums, and percentiles are bucket upper bounds — so a
//                  histogram snapshot, like a counter, is bit-identical
//                  across thread counts and joins the bench_compare.py
//                  --exact determinism gate.
//
// Hot-path policy mirrors the event counter's: simulators record into a
// plain LocalHistogram (one array increment per sample, no atomics) and
// merge it into the shared registry histogram once per replication.
// Callers that need an instrument repeatedly cache the reference returned
// by counter()/gauge()/histogram(); the registry lookup itself takes a
// mutex and is not for hot loops.
//
// The repo lint rule `metrics-registry` (tools/lint_stosched.py) forbids
// new file-scope std::atomic telemetry outside src/obs/ — all
// instrumentation flows through here, so bench_common::finish can stamp
// every counter and tail percentile into BENCH_*.json generically.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stosched::obs {

/// Monotone event tally. Thread-safe; relaxed adds (commutative sums, so
/// totals never depend on the thread schedule).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level. Thread-safe; last writer wins (use for facts and
/// settings, not for sums — concurrent set() is a race by design).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// ---- deterministic log₂ bucketing ------------------------------------------
// Log-linear layout, 8 sub-buckets per octave (relative resolution 2^(1/8),
// ~9%): bucket (e, s) covers [2^e·(1+s/8), 2^e·(1+(s+1)/8)) for exponents
// e in [kMinExp, kMaxExp). Index 0 is the underflow bucket (v ≤ 0,
// subnormals, and everything below 2^kMinExp ≈ 9.5e-7 — "effectively zero"
// at queueing time scales); the last index is the overflow bucket
// (v ≥ 2^kMaxExp ≈ 8.8e12). The index is computed from the value's raw
// IEEE-754 bits, so it is exact, branch-light and identical on every
// platform — no floating-point log whose last ulp could differ.
namespace hist {

inline constexpr int kMinExp = -20;
inline constexpr int kMaxExp = 43;
inline constexpr std::size_t kSubBuckets = 8;
inline constexpr std::size_t kBuckets =
    2 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

/// Bucket of `v`. Zero, negatives and NaN land in the underflow bucket.
inline std::size_t bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // also catches NaN: no comparison is true
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const int exp = static_cast<int>(bits >> 52) - 1023;  // v in [2^exp, 2^exp+1)
  if (exp < kMinExp) return 0;  // includes all subnormals (raw exponent 0)
  if (exp >= kMaxExp) return kBuckets - 1;  // includes +inf
  const std::size_t sub = (bits >> 49) & 7;  // top 3 mantissa bits
  return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets + sub;
}

/// Inclusive lower edge of bucket `index` (0 for the underflow bucket).
inline double bucket_lower(std::size_t index) noexcept {
  if (index == 0) return 0.0;
  if (index >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t k = index - 1;
  const int e = kMinExp + static_cast<int>(k / kSubBuckets);
  const double frac = 1.0 + static_cast<double>(k % kSubBuckets) /
                                static_cast<double>(kSubBuckets);
  return std::ldexp(frac, e);
}

/// Exclusive upper edge of bucket `index` (+inf for the overflow bucket).
inline double bucket_upper(std::size_t index) noexcept {
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_lower(index + 1);
}

}  // namespace hist

/// Frozen bucket counts of one histogram; value-comparable, so tests can
/// assert bit-identity across OpenMP schedules directly.
struct HistogramSnapshot {
  std::array<std::uint64_t, hist::kBuckets> counts{};
  std::uint64_t total = 0;

  bool operator==(const HistogramSnapshot&) const = default;

  /// Nearest-rank percentile (q in (0, 1]): the upper edge of the bucket
  /// holding the ceil(q·total)-th smallest sample — deterministic and
  /// conservative (never below the true percentile by more than one bucket
  /// width, ~9% relative). The overflow bucket reports its lower edge so
  /// the result is always finite. Returns 0 when the histogram is empty.
  [[nodiscard]] double percentile(double q) const noexcept {
    if (total == 0) return 0.0;
    const double want = std::ceil(q * static_cast<double>(total));
    std::uint64_t rank = want < 1.0 ? 1 : static_cast<std::uint64_t>(want);
    if (rank > total) rank = total;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < hist::kBuckets; ++i) {
      cum += counts[i];
      if (cum >= rank)
        return i == hist::kBuckets - 1 ? hist::bucket_lower(i)
                                       : hist::bucket_upper(i);
    }
    return hist::bucket_lower(hist::kBuckets - 1);  // unreachable
  }
};

/// Replication-local histogram: plain increments, no atomics. Record into
/// one of these inside a simulator and merge() it into the shared registry
/// histogram once per replication — the same flush-don't-contend pattern
/// as the event queues' pop counters.
class LocalHistogram {
 public:
  void record(double v) noexcept {
    ++counts_[hist::bucket_index(v)];
    ++total_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::array<std::uint64_t, hist::kBuckets>& counts()
      const noexcept {
    return counts_;
  }
  void clear() noexcept {
    counts_.fill(0);
    total_ = 0;
  }

 private:
  std::array<std::uint64_t, hist::kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Shared histogram: relaxed-atomic bucket counts. merge() is the intended
/// write path (one fetch_add per nonzero bucket per replication); record()
/// exists for low-rate direct use.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v) noexcept {
    counts_[hist::bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  }
  void merge(const LocalHistogram& local) noexcept {
    if (local.total() == 0) return;
    const auto& c = local.counts();
    for (std::size_t i = 0; i < hist::kBuckets; ++i)
      if (c[i] != 0) counts_[i].fetch_add(c[i], std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < hist::kBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total += s.counts[i];
    }
    return s;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<std::atomic<std::uint64_t>, hist::kBuckets> counts_{};
};

// ---- registry --------------------------------------------------------------
// Process-wide, name-keyed, find-or-create. Returned references are stable
// for the process lifetime (instruments are never destroyed). Lookup takes
// a mutex: resolve once, cache the reference.

Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Read a counter without creating it: 0 when the name was never
/// registered. This is what bench_common::finish uses, so a bench that
/// popped no events or solved no LPs registers nothing.
std::uint64_t counter_value(const std::string& name) noexcept;

/// Snapshot a histogram without creating it: empty when never registered.
HistogramSnapshot histogram_snapshot(const std::string& name) noexcept;

/// Name-sorted snapshot of every registered instrument (deterministic
/// iteration order for reports and JSON export).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};
MetricsSnapshot metrics_snapshot();

/// The two cross-simulator tail histograms every event-driven simulator
/// merges into (post-warmup per-visit waiting time; per-job time in
/// system). bench_common::finish turns them into the wait_p50..p999 /
/// sojourn_p50..p999 columns of BENCH_*.json.
Histogram& wait_time_histogram();
Histogram& sojourn_time_histogram();

}  // namespace stosched::obs
