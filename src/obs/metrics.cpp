#include "obs/metrics.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace stosched::obs {
namespace {

// Leaked on purpose (the timestat::Registry pattern): instruments must
// outlive every static destructor that might still bump a counter, and
// atexit-ordered teardown across TUs is not worth reasoning about for a
// telemetry registry. std::map keys the instruments by name so every
// iteration (snapshot, report) is alphabetical and deterministic.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked, see above
  return *r;
}

template <class T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& m,
                  const std::string& name) {
  auto it = m.find(name);
  if (it == m.end())
    it = m.emplace(name, std::make_unique<T>(name)).first;
  return *it->second;
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.counters, name);
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.gauges, name);
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.histograms, name);
}

std::uint64_t counter_value(const std::string& name) noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second->value();
}

HistogramSnapshot histogram_snapshot(const std::string& name) noexcept {
  Histogram* h = nullptr;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.histograms.find(name);
    if (it != r.histograms.end()) h = it->second.get();
  }
  return h == nullptr ? HistogramSnapshot{} : h->snapshot();
}

MetricsSnapshot metrics_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot s;
  s.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms)
    s.histograms.emplace_back(name, h->snapshot());
  return s;
}

Histogram& wait_time_histogram() {
  static Histogram& h = histogram("wait_time");
  return h;
}

Histogram& sojourn_time_histogram() {
  static Histogram& h = histogram("sojourn_time");
  return h;
}

}  // namespace stosched::obs
