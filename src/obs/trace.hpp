// trace.hpp — compiled-out Chrome-trace spans for the replication pipeline.
//
// Answers the question the scalar metrics cannot: not "how many events"
// but "where did the wall time go, on which OpenMP lane, in which
// replication". Instrumentation macros in the contract.hpp/timestat.hpp
// style — compiled to nothing unless the CMake option STOSCHED_TRACE=ON
// defines STOSCHED_TRACE, so the Release hot path carries zero cost:
//
//   STOSCHED_TRACE_SPAN("engine", "replication");   // scoped duration
//   STOSCHED_TRACE_INSTANT("engine", "stop-rule");  // point marker
//   STOSCHED_TRACE_COUNTER("lp", "iterations", n);  // sampled series
//
// Category and name must be string literals (they are stored as pointers,
// never copied). The collector buffers fixed-size PODs in thread-local
// vectors — no locks, no allocation beyond vector growth on the recording
// path — and merges them at write time. Each recording thread gets its own
// `tid`, so OpenMP worker lanes render as separate tracks.
//
// Output is the Chrome trace_event JSON array format: load it at
// ui.perfetto.dev or chrome://tracing, or schema-check it with the
// stdlib-only tools/trace_check.py (the CI trace-smoke job does both
// halves of that automatically). In an instrumented build, set
//
//   STOSCHED_TRACE_FILE=run.trace.json ./bench_t9_cmu
//
// and the trace is written at process exit. The collector itself is always
// compiled (tests drive it directly in every build); only the macros are
// gated, which is what keeps the zero-side-effect guarantee testable via
// the ghost-count pattern (see tests/test_obs.cpp).
//
// The repo's instrumentation points: experiment/engine.hpp marks every
// sweep cell, replication, and CRN arm; lp/ marks every simplex solve;
// each of the four event-driven simulators and the online simulator marks
// its whole-run span. Clock reads go through timestat::now_ns(), the same
// steady clock as the phase timers — and the only clock the hot-loop-clock
// lint rule admits near the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/timestat.hpp"

namespace stosched::obs::trace {

/// Append one complete ("ph":"X") event: a named region of `dur_ns`
/// nanoseconds that began at `start_ns` (timestat::now_ns clock).
void record_complete(const char* cat, const char* name, std::uint64_t start_ns,
                     std::uint64_t dur_ns) noexcept;

/// Append one instant ("ph":"i") event at the current time.
void record_instant(const char* cat, const char* name) noexcept;

/// Append one counter ("ph":"C") sample at the current time.
void record_counter(const char* cat, const char* name, double value) noexcept;

/// Events buffered so far across all threads (live + retired buffers).
std::size_t event_count();

/// Drop every buffered event (tests only; concurrent recording during a
/// clear is the caller's problem).
void clear();

/// Merge all thread buffers and write a complete Chrome trace JSON array,
/// events sorted by timestamp. Safe to call with zero events (emits "[]").
void write(std::ostream& os);

/// write() to `path`; returns false (and keeps the events buffered) when
/// the file cannot be opened.
bool write_file(const std::string& path);

/// RAII region marker used by STOSCHED_TRACE_SPAN: stamps the clock on
/// construction and records a complete event on destruction.
class Span {
 public:
  Span(const char* cat, const char* name) noexcept
      : cat_(cat), name_(name), start_ns_(timestat::now_ns()) {}
  ~Span() {
    record_complete(cat_, name_, start_ns_, timestat::now_ns() - start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* cat_;
  const char* name_;
  std::uint64_t start_ns_;
};

}  // namespace stosched::obs::trace

// ---- instrumentation macros ------------------------------------------------
// STOSCHED_TRACE_ACTIVE is 0/1 (not defined/undefined) so tests can assert
// the exact evaluation count of macro arguments in both modes — the ghost
// evaluation-count pattern from util/contract.hpp. When inactive, macro
// arguments are never evaluated and no clock is read.
#ifdef STOSCHED_TRACE
#define STOSCHED_TRACE_ACTIVE 1
#define STOSCHED_TRACE_CONCAT2_(a, b) a##b
#define STOSCHED_TRACE_CONCAT_(a, b) STOSCHED_TRACE_CONCAT2_(a, b)
#define STOSCHED_TRACE_SPAN(cat, name)        \
  const ::stosched::obs::trace::Span STOSCHED_TRACE_CONCAT_( \
      stosched_trace_span_, __LINE__)(cat, name)
#define STOSCHED_TRACE_INSTANT(cat, name) \
  ::stosched::obs::trace::record_instant(cat, name)
#define STOSCHED_TRACE_COUNTER(cat, name, value) \
  ::stosched::obs::trace::record_counter(cat, name, \
                                         static_cast<double>(value))
#else
#define STOSCHED_TRACE_ACTIVE 0
#define STOSCHED_TRACE_SPAN(cat, name) static_cast<void>(0)
#define STOSCHED_TRACE_INSTANT(cat, name) static_cast<void>(0)
#define STOSCHED_TRACE_COUNTER(cat, name, value) static_cast<void>(0)
#endif
