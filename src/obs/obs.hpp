// obs.hpp — umbrella for the observability subsystem.
//
// One include gives a consumer the whole telemetry surface: the metrics
// registry (counters / gauges / deterministic latency histograms), the
// compiled-out Chrome-trace macros, run provenance, the structured
// progress sink — and the phase-timing layer (util/timestat.hpp), which
// predates src/obs/ but is conceptually part of it and is re-exported here.
#pragma once

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "util/timestat.hpp"
