#include "obs/provenance.hpp"

#include "util/contract.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

// CMake sets these as per-source compile definitions on this file only
// (see set_source_files_properties in CMakeLists.txt); the fallbacks keep
// the file buildable outside the repo's own build system.
#ifndef STOSCHED_GIT_SHA
#define STOSCHED_GIT_SHA "unknown"
#endif
#ifndef STOSCHED_BUILD_TYPE
#define STOSCHED_BUILD_TYPE "unknown"
#endif
#ifndef STOSCHED_BUILD_FLAGS
#define STOSCHED_BUILD_FLAGS "unknown"
#endif
#ifndef STOSCHED_SANITIZE_STR
#define STOSCHED_SANITIZE_STR "none"
#endif

namespace stosched::obs {
namespace {

const char* compiler_string() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo build_info() {
  BuildInfo b;
  b.git_sha = STOSCHED_GIT_SHA;
  b.compiler = compiler_string();
  b.flags = STOSCHED_BUILD_FLAGS;
  b.build_type = STOSCHED_BUILD_TYPE;
  b.sanitizers = STOSCHED_SANITIZE_STR;
  if (b.sanitizers.empty() || b.sanitizers == "OFF") b.sanitizers = "none";
  b.contracts = STOSCHED_CONTRACTS_ACTIVE != 0;
#ifdef STOSCHED_TRACE
  b.trace = true;
#endif
#ifdef STOSCHED_TIME_STATS
  b.time_stats = true;
#endif
#ifdef _OPENMP
  b.omp_max_threads = omp_get_max_threads();
#else
  b.omp_max_threads = 1;
#endif
  return b;
}

}  // namespace stosched::obs
