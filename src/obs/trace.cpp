#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

namespace stosched::obs::trace {
namespace {

struct TraceEvent {
  const char* cat;
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;  // complete events only
  double value;          // counter events only
  std::uint32_t tid;
  char ph;  // 'X' complete, 'i' instant, 'C' counter
};

struct Buffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

// Same leaked-registry shape as timestat.cpp: live per-thread buffers plus
// a retired pile that thread-exit flushes into, so no event is lost when an
// OpenMP worker dies before the trace is written.
struct Registry {
  std::mutex mu;
  std::vector<Buffer*> live;
  std::vector<TraceEvent> retired;
  std::uint32_t next_tid = 0;
  bool atexit_installed = false;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked, outlives all threads
  return *r;
}

void write_env_trace() {
  const char* path = std::getenv("STOSCHED_TRACE_FILE");
  if (path != nullptr && *path != '\0') write_file(path);
}

struct ThreadBuffer {
  Buffer buf;
  ThreadBuffer() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    buf.tid = r.next_tid++;
    r.live.push_back(&buf);
    if (!r.atexit_installed) {
      r.atexit_installed = true;
      std::atexit(write_env_trace);
    }
  }
  ~ThreadBuffer() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retired.insert(r.retired.end(), buf.events.begin(), buf.events.end());
    r.live.erase(std::remove(r.live.begin(), r.live.end(), &buf),
                 r.live.end());
  }
};

Buffer& local_buffer() {
  thread_local ThreadBuffer tb;
  return tb.buf;
}

// Trace names are string literals chosen by this repo, but keep the writer
// honest about arbitrary bytes anyway (same minimal escape set as
// bench_common's JSON writer).
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    else
      os << c;
  }
}

// Chrome's ts/dur unit is microseconds; emit as integer-nanosecond-derived
// fixed-point (µs with 3 decimals) so no precision is lost.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"";
  write_escaped(os, e.name);
  os << "\",\"cat\":\"";
  write_escaped(os, e.cat);
  os << "\",\"ph\":\"" << e.ph << "\",\"ts\":";
  write_us(os, e.ts_ns);
  if (e.ph == 'X') {
    os << ",\"dur\":";
    write_us(os, e.dur_ns);
  }
  os << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  if (e.ph == 'C') os << ",\"args\":{\"value\":" << e.value << "}";
  os << "}";
}

std::vector<TraceEvent> gather() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<TraceEvent> all = r.retired;
  for (const Buffer* b : r.live)
    all.insert(all.end(), b->events.begin(), b->events.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  return all;
}

}  // namespace

void record_complete(const char* cat, const char* name, std::uint64_t start_ns,
                     std::uint64_t dur_ns) noexcept {
  Buffer& b = local_buffer();
  b.events.push_back({cat, name, start_ns, dur_ns, 0.0, b.tid, 'X'});
}

void record_instant(const char* cat, const char* name) noexcept {
  Buffer& b = local_buffer();
  b.events.push_back({cat, name, timestat::now_ns(), 0, 0.0, b.tid, 'i'});
}

void record_counter(const char* cat, const char* name, double value) noexcept {
  Buffer& b = local_buffer();
  b.events.push_back({cat, name, timestat::now_ns(), 0, value, b.tid, 'C'});
}

std::size_t event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = r.retired.size();
  for (const Buffer* b : r.live) n += b->events.size();
  return n;
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired.clear();
  for (Buffer* b : r.live) b->events.clear();
}

void write(std::ostream& os) {
  const std::vector<TraceEvent> all = gather();
  os << "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_event(os, all[i]);
  }
  os << "\n]\n";
}

bool write_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace stosched::obs::trace
