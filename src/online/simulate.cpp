#include "online/simulate.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched::online {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Pop the highest-priority queued job (ties: earliest arrival) and start
/// it: believed end feeds the policy-visible state, the realized end drives
/// the event clock.
void start_next(MachineState& state, double& realized_end,
                std::size_t& serving, const OnlineInstance& inst,
                const Environment& env, std::size_t machine, double now) {
  if (state.queue.empty()) {
    state.busy = false;
    realized_end = kInf;
    return;
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < state.queue.size(); ++k) {
    const auto& a = state.queue[k];
    const auto& b = state.queue[best];
    if (a.priority > b.priority ||
        (a.priority == b.priority && a.job < b.job))
      best = k;
  }
  const QueueEntry entry = state.queue[best];
  state.queue.erase(state.queue.begin() +
                    static_cast<std::ptrdiff_t>(best));
  state.busy = true;
  state.believed_end = now + entry.believed;
  serving = entry.job;
  realized_end =
      now + env.proc_time(machine, inst[entry.job].type, inst[entry.job].size);
  // Believed-vs-realized separation: both clocks advance from `now`
  // independently — the policy-visible believed end and the hidden realized
  // end may disagree, but neither may point into the past, or a later
  // completion event would run the simulation clock backwards.
  STOSCHED_ENSURES(state.believed_end >= now,
                   "believed completion scheduled in the past");
  STOSCHED_ENSURES(realized_end >= now,
                   "realized completion scheduled in the past");
}

}  // namespace

OnlineResult simulate_online(const OnlineInstance& inst,
                             const Environment& env,
                             const std::vector<JobType>& types,
                             const OnlinePolicy& policy, Rng& policy_rng) {
  validate_types(types);
  env.validate(types.size());
  STOSCHED_TRACE_SPAN("sim", "simulate_online");
  for (std::size_t j = 1; j < inst.size(); ++j)
    STOSCHED_REQUIRE(inst[j - 1].release <= inst[j].release,
                     "online instance must be sorted by release");

  const std::size_t m = env.machines();
  const OnlineContext ctx{env, types};
  std::vector<MachineState> states(m);
  std::vector<double> realized_end(m, kInf);  // hidden from policies
  std::vector<std::size_t> serving(m, 0);
  std::vector<double> completion(inst.size(), 0.0);

  std::size_t next_arrival = 0;
  // Ghost clock for the event-monotonicity contract (absent in Release).
  STOSCHED_CONTRACT_STATE(double contract_last_event = 0.0;)
  for (;;) {
    // Next event: the earliest realized completion or the next arrival;
    // simultaneous events complete first, so the arriving job observes the
    // freed machine.
    std::size_t done_machine = m;
    double done_time = kInf;
    for (std::size_t i = 0; i < m; ++i)
      if (realized_end[i] < done_time) {
        done_time = realized_end[i];
        done_machine = i;
      }
    const double arrival_time =
        next_arrival < inst.size() ? inst[next_arrival].release : kInf;
    if (done_machine == m && arrival_time == kInf) break;

    STOSCHED_INVARIANT(std::min(done_time, arrival_time) >= contract_last_event,
                       "online event clock ran backwards");
    STOSCHED_CONTRACT_CODE(contract_last_event =
                               std::min(done_time, arrival_time););

    if (done_time <= arrival_time) {
      completion[serving[done_machine]] = done_time;
      start_next(states[done_machine], realized_end[done_machine],
                 serving[done_machine], inst, env, done_machine, done_time);
    } else {
      const std::size_t j = next_arrival++;
      const OnlineJob& job = inst[j];
      const std::size_t pick =
          policy.assign(ctx, job, states, job.release, policy_rng);
      STOSCHED_ASSERT(pick < m, "policy assigned an out-of-range machine");
      states[pick].queue.push_back({j, policy.believed_proc(ctx, job, pick),
                                    job.weight,
                                    policy.priority(ctx, job, pick)});
      if (!states[pick].busy)
        start_next(states[pick], realized_end[pick], serving[pick], inst, env,
                   pick, job.release);
    }
  }

  OnlineResult res;
  res.jobs = inst.size();
  obs::LocalHistogram flow_hist;  // per-job flow times -> sojourn tails
  for (std::size_t j = 0; j < inst.size(); ++j) {
    res.weighted_completion += inst[j].weight * completion[j];
    res.weighted_flowtime +=
        inst[j].weight * (completion[j] - inst[j].release);
    res.makespan = std::max(res.makespan, completion[j]);
    flow_hist.record(completion[j] - inst[j].release);
  }
  obs::sojourn_time_histogram().merge(flow_hist);
  return res;
}

std::size_t online_metric_count() { return 4; }

std::vector<std::string> online_metric_names() {
  return {"ratio", "weighted_completion", "lower_bound", "jobs"};
}

void run_online_replication(const ArrivalProcess& arrival,
                            const std::vector<JobType>& types,
                            const Environment& env, double horizon,
                            const OfflineBoundOptions& bound,
                            const OnlinePolicy& policy, Rng& rng,
                            std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == online_metric_count(),
                   "metric span size mismatch");
  // Per-purpose substreams (see the header comment): the workload streams
  // (arrival/type/size/sample) are consumed identically by every policy
  // arm; only the policy stream's usage differs between arms.
  const Rng root(rng());
  Rng arrival_rng = root.stream(0);
  Rng type_rng = root.stream(1);
  Rng size_rng = root.stream(2);
  Rng sample_rng = root.stream(3);
  Rng policy_rng = root.stream(4);

  const OnlineInstance inst = generate_online_instance(
      arrival, types, horizon, arrival_rng, type_rng, size_rng, sample_rng);
  const OnlineResult res =
      simulate_online(inst, env, types, policy, policy_rng);
  const OfflineBound lb = offline_lower_bound(inst, env, types, bound);

  out[0] = lb.value > 0.0 ? res.weighted_completion / lb.value : 1.0;
  out[1] = res.weighted_completion;
  out[2] = lb.value;
  out[3] = static_cast<double>(res.jobs);
}

}  // namespace stosched::online
