#include "online/lower_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace stosched::online {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Best-machine processing times q_j = min_i p_ij of the realized instance.
std::vector<double> best_proc_times(const OnlineInstance& inst,
                                    const Environment& env) {
  std::vector<double> q(inst.size(), 0.0);
  for (std::size_t j = 0; j < inst.size(); ++j) {
    double best = kInf;
    for (std::size_t i = 0; i < env.machines(); ++i)
      best = std::min(best, env.proc_time(i, inst[j].type, inst[j].size));
    q[j] = best;
  }
  return q;
}

/// Mean busy times M_j of preemptive WSPT on a single speed-m machine:
/// process the released job with the highest w/q at rate m, preempting at
/// releases. The unique O(n log n) minimizer of Σ w_j M_j on the fluid
/// relaxation (Goemans).
std::vector<double> wspt_mean_busy_times(const OnlineInstance& inst,
                                         const std::vector<double>& q,
                                         double m) {
  const std::size_t n = inst.size();
  std::vector<std::size_t> by_release(n);
  for (std::size_t j = 0; j < n; ++j) by_release[j] = j;
  std::stable_sort(by_release.begin(), by_release.end(),
                   [&](std::size_t a, std::size_t b) {
                     return inst[a].release < inst[b].release;
                   });

  struct Entry {
    double index;  // w / q (infinite for zero-size jobs: done instantly)
    std::size_t job;
  };
  const auto lower = [](const Entry& a, const Entry& b) {
    // Max-heap on the index; ties serve the earlier arrival first.
    return a.index < b.index || (a.index == b.index && a.job > b.job);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(lower)> heap(lower);

  std::vector<double> rem = q;
  std::vector<double> busy(n, 0.0);
  double now = 0.0;
  std::size_t next = 0;
  while (next < n || !heap.empty()) {
    while (next < n && inst[by_release[next]].release <= now) {
      const std::size_t j = by_release[next++];
      heap.push({q[j] > 0.0 ? inst[j].weight / q[j] : kInf, j});
    }
    if (heap.empty()) {
      now = inst[by_release[next]].release;
      continue;
    }
    const std::size_t j = heap.top().job;
    if (rem[j] <= 0.0) {
      heap.pop();
      continue;
    }
    const double finish_dt = rem[j] / m;
    const double release_dt =
        next < n ? inst[by_release[next]].release - now : kInf;
    const double d = std::min(finish_dt, release_dt);
    if (d > 0.0) {
      // Work m*d of job j processed centered at now + d/2.
      busy[j] += (now + 0.5 * d) * (m * d) / q[j];
      rem[j] -= m * d;
      now += d;
    }
    if (rem[j] <= 1e-12 * q[j]) {
      rem[j] = 0.0;
      heap.pop();
    }
  }
  return busy;
}

/// True when the instance carries no work and no releases — the LP grid
/// would be degenerate, and every bound is 0 anyway.
bool trivial_instance(const OnlineInstance& inst, const Environment& env) {
  for (std::size_t j = 0; j < inst.size(); ++j) {
    if (inst[j].release > 0.0) return false;
    for (std::size_t i = 0; i < env.machines(); ++i)
      if (env.proc_time(i, inst[j].type, inst[j].size) > 0.0) return false;
  }
  return true;
}

/// The interval-indexed LP bound (0 if skipped or the solve failed).
double interval_lp_bound(const OnlineInstance& inst, const Environment& env,
                         const OfflineBoundOptions& opt) {
  if (trivial_instance(inst, env)) return 0.0;
  const lp::Problem prob = interval_indexed_lp(inst, env, opt);
  const lp::Solution sol = lp::solve(prob, opt.lp_solver);
  return sol.optimal() ? sol.objective : 0.0;
}

}  // namespace

lp::Problem interval_indexed_lp(const OnlineInstance& inst,
                                const Environment& env,
                                const OfflineBoundOptions& opt) {
  const std::size_t n = inst.size();
  const std::size_t m = env.machines();
  STOSCHED_REQUIRE(opt.interval_ratio > 1.0,
                   "LP interval ratio must exceed 1");
  const std::vector<double> q = best_proc_times(inst, env);

  // Geometric grid 0 = τ_0 < τ_1 < ... < τ_T covering every completion an
  // optimal schedule could have (each job on some machine after the last
  // release).
  double smallest = kInf, upper = 0.0, max_release = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (q[j] > 0.0) smallest = std::min(smallest, q[j]);
    double worst = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      worst = std::max(worst, env.proc_time(i, inst[j].type, inst[j].size));
    upper += worst;
    max_release = std::max(max_release, inst[j].release);
  }
  upper += max_release;
  STOSCHED_REQUIRE(upper > 0.0,
                   "interval-indexed LP needs work or releases");
  if (!std::isfinite(smallest)) smallest = upper;
  std::vector<double> tau{0.0, smallest};
  while (tau.back() < upper) tau.push_back(tau.back() * opt.interval_ratio);
  const std::size_t T = tau.size() - 1;  // intervals (τ_{t-1}, τ_t]

  // Variable layout: C_0..C_{n-1}, then x_{ijt} for every allowed triple
  // (interval ends after the job's release). The allowed t's of a job form
  // a suffix first_t[j]..T of the grid (τ is increasing), which makes the
  // t → variable mapping O(1) below. Rows are built sparsely: at n = 512
  // this LP has ~14k variables, and dense rows would cost hundreds of MB.
  std::vector<std::size_t> xbase(n);    // per job: first x variable id
  std::vector<std::size_t> first_t(n);  // per job: first allowed interval
  std::size_t vars = n;
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t first = T + 1;
    for (std::size_t t = 1; t <= T; ++t) {
      if (tau[t] <= inst[j].release) continue;
      first = t;
      break;
    }
    first_t[j] = first;
    xbase[j] = vars;
    vars += m * (T + 1 - first);
  }

  std::vector<double> costs(vars, 0.0);
  for (std::size_t j = 0; j < n; ++j) costs[j] = inst[j].weight;
  lp::Problem prob = lp::Problem::minimize(std::move(costs));

  const auto nt = [&](std::size_t j) { return T + 1 - first_t[j]; };
  const auto xvar = [&](std::size_t j, std::size_t i, std::size_t t) {
    return xbase[j] + i * nt(j) + (t - first_t[j]);
  };

  // Coverage: Σ_{i,t} x_{ijt} = 1.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<std::size_t> idx;
    idx.reserve(m * nt(j));
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t t = first_t[j]; t <= T; ++t)
        idx.push_back(xvar(j, i, t));
    std::vector<double> val(idx.size(), 1.0);
    prob.subject_to_sparse(std::move(idx), std::move(val), lp::Sense::kEq,
                           1.0);
  }

  // Capacity: Σ_j p_ij x_{ijt} <= τ_t − τ_{t-1} per machine and interval.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t t = 1; t <= T; ++t) {
      std::vector<std::size_t> idx;
      std::vector<double> val;
      for (std::size_t j = 0; j < n; ++j) {
        if (t < first_t[j]) continue;
        idx.push_back(xvar(j, i, t));
        val.push_back(env.proc_time(i, inst[j].type, inst[j].size));
      }
      if (!idx.empty())
        prob.subject_to_sparse(std::move(idx), std::move(val), lp::Sense::kLe,
                               tau[t] - tau[t - 1]);
    }
  }

  // Completion-time bounds: C_j >= Σ x τ_{t-1} and C_j >= r_j + Σ x p_ij.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<std::size_t> sidx{j}, pidx{j};
    std::vector<double> sval{1.0}, pval{1.0};
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t t = first_t[j]; t <= T; ++t) {
        sidx.push_back(xvar(j, i, t));
        sval.push_back(-tau[t - 1]);
        pidx.push_back(xvar(j, i, t));
        pval.push_back(-env.proc_time(i, inst[j].type, inst[j].size));
      }
    prob.subject_to_sparse(std::move(sidx), std::move(sval), lp::Sense::kGe,
                           0.0);
    prob.subject_to_sparse(std::move(pidx), std::move(pval), lp::Sense::kGe,
                           inst[j].release);
  }
  return prob;
}

OfflineBound offline_lower_bound(const OnlineInstance& inst,
                                 const Environment& env,
                                 const std::vector<JobType>& types,
                                 const OfflineBoundOptions& opt) {
  env.validate(types.size());
  OfflineBound bound;
  if (inst.empty()) return bound;

  const std::vector<double> q = best_proc_times(inst, env);
  const double m = static_cast<double>(env.machines());

  for (std::size_t j = 0; j < inst.size(); ++j)
    bound.release_bound += inst[j].weight * (inst[j].release + q[j]);

  const std::vector<double> busy = wspt_mean_busy_times(inst, q, m);
  for (std::size_t j = 0; j < inst.size(); ++j)
    bound.busy_bound += inst[j].weight * (busy[j] + q[j] / (2.0 * m));

  if (opt.use_lp && inst.size() <= opt.lp_job_cap)
    bound.lp_bound = interval_lp_bound(inst, env, opt);

  bound.value =
      std::max({bound.release_bound, bound.busy_bound, bound.lp_bound});
  return bound;
}

}  // namespace stosched::online
