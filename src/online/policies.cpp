#include "online/policies.hpp"

#include "util/check.hpp"

namespace stosched::online {

double expected_proc(const OnlineContext& ctx, const OnlineJob& job,
                     std::size_t machine) {
  return ctx.types[job.type].size->mean() / ctx.env.speed[machine][job.type];
}

double believed_delay(const MachineState& state, double pri, double now) {
  double delay = state.believed_residual(now);
  for (const auto& q : state.queue)
    if (q.priority >= pri) delay += q.believed;
  return delay;
}

namespace {

/// Shared argmin-with-lowest-machine-id tie-break.
template <class Score>
std::size_t argmin_machine(std::size_t machines, Score&& score) {
  std::size_t best = 0;
  double best_score = score(0);
  for (std::size_t i = 1; i < machines; ++i) {
    const double s = score(i);
    if (s < best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

class GreedyWseptPolicy final : public OnlinePolicy {
 public:
  const char* name() const noexcept override { return "greedy-wsept"; }

  double believed_proc(const OnlineContext& ctx, const OnlineJob& job,
                       std::size_t machine) const override {
    return expected_proc(ctx, job, machine);
  }

  std::size_t assign(const OnlineContext& ctx, const OnlineJob& job,
                     const std::vector<MachineState>& machines, double now,
                     Rng&) const override {
    // The job's own expected completion under WSEPT insertion: the work it
    // must wait behind plus its own expected processing. Faster machines
    // win on both terms; backlogged machines lose.
    return argmin_machine(machines.size(), [&](std::size_t i) {
      const double p = believed_proc(ctx, job, i);
      return believed_delay(machines[i], job.weight / p, now) + p;
    });
  }
};

class MinIncreasePolicy final : public OnlinePolicy {
 public:
  const char* name() const noexcept override { return "min-increase"; }

  double believed_proc(const OnlineContext& ctx, const OnlineJob& job,
                       std::size_t machine) const override {
    return expected_proc(ctx, job, machine);
  }

  std::size_t assign(const OnlineContext& ctx, const OnlineJob& job,
                     const std::vector<MachineState>& machines, double now,
                     Rng&) const override {
    // Expected increment of Σ w C when inserting into machine i's WSEPT
    // order: the job's own expected weighted completion plus the delay it
    // inflicts on every queued job it overtakes.
    return argmin_machine(machines.size(), [&](std::size_t i) {
      const double p = believed_proc(ctx, job, i);
      const double pri = job.weight / p;
      double overtaken_weight = 0.0;
      for (const auto& q : machines[i].queue)
        if (q.priority < pri) overtaken_weight += q.weight;
      return job.weight * (believed_delay(machines[i], pri, now) + p) +
             p * overtaken_weight;
    });
  }
};

class SingleSamplePolicy final : public OnlinePolicy {
 public:
  const char* name() const noexcept override { return "single-sample"; }

  double believed_proc(const OnlineContext& ctx, const OnlineJob& job,
                       std::size_t machine) const override {
    return job.sample / ctx.env.speed[machine][job.type];
  }

  /// SEPT on the sample: shortest believed job first, weights ignored —
  /// the unweighted sample-information baseline.
  double priority(const OnlineContext& ctx, const OnlineJob& job,
                  std::size_t machine) const override {
    return 1.0 / believed_proc(ctx, job, machine);
  }

  std::size_t assign(const OnlineContext& ctx, const OnlineJob& job,
                     const std::vector<MachineState>& machines, double now,
                     Rng&) const override {
    return argmin_machine(machines.size(), [&](std::size_t i) {
      const double p = believed_proc(ctx, job, i);
      return believed_delay(machines[i], priority(ctx, job, i), now) + p;
    });
  }
};

class RandomAssignmentPolicy final : public OnlinePolicy {
 public:
  const char* name() const noexcept override { return "random"; }

  double believed_proc(const OnlineContext& ctx, const OnlineJob& job,
                       std::size_t machine) const override {
    return expected_proc(ctx, job, machine);
  }

  // rng-audit: sink(the random-assignment baseline is the one policy whose
  // job is to consume the policy substream: one draw per arrival)
  std::size_t assign(const OnlineContext&, const OnlineJob&,
                     const std::vector<MachineState>& machines, double,
                     Rng& rng) const override {
    return static_cast<std::size_t>(rng.below(machines.size()));
  }
};

}  // namespace

OnlinePolicyPtr greedy_wsept_policy() {
  return std::make_shared<GreedyWseptPolicy>();
}

OnlinePolicyPtr min_increase_policy() {
  return std::make_shared<MinIncreasePolicy>();
}

OnlinePolicyPtr single_sample_policy() {
  return std::make_shared<SingleSamplePolicy>();
}

OnlinePolicyPtr random_assignment_policy() {
  return std::make_shared<RandomAssignmentPolicy>();
}

}  // namespace stosched::online
