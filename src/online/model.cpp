#include "online/model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stosched::online {

void validate_types(const std::vector<JobType>& types) {
  STOSCHED_REQUIRE(!types.empty(), "online model needs at least one job type");
  double total = 0.0;
  for (const auto& t : types) {
    STOSCHED_REQUIRE(t.prob >= 0.0 && t.prob <= 1.0,
                     "type probability must lie in [0, 1]");
    STOSCHED_REQUIRE(t.weight > 0.0 && std::isfinite(t.weight),
                     "type weight must be positive and finite");
    STOSCHED_REQUIRE(t.size != nullptr, "type needs a size law");
    STOSCHED_REQUIRE(t.size->mean() > 0.0 && std::isfinite(t.size->mean()),
                     "type size law needs a positive finite mean");
    total += t.prob;
  }
  STOSCHED_REQUIRE(std::abs(total - 1.0) <= 1e-9,
                   "type probabilities must sum to 1");
}

double mean_size(const std::vector<JobType>& types) {
  double m = 0.0;
  for (const auto& t : types) m += t.prob * t.size->mean();
  return m;
}

void Environment::validate(std::size_t num_types) const {
  STOSCHED_REQUIRE(!speed.empty(), "environment needs at least one machine");
  for (const auto& row : speed) {
    STOSCHED_REQUIRE(row.size() == num_types,
                     "environment speed row must cover every job type");
    for (const double s : row)
      STOSCHED_REQUIRE(s > 0.0 && std::isfinite(s),
                       "machine speeds must be positive and finite");
  }
}

double Environment::mix_capacity(const std::vector<JobType>& types) const {
  double cap = 0.0;
  for (const auto& row : speed)
    for (std::size_t t = 0; t < types.size(); ++t)
      cap += types[t].prob * row[t];
  return cap;
}

Environment identical_machines(std::size_t m, std::size_t num_types) {
  STOSCHED_REQUIRE(m >= 1 && num_types >= 1,
                   "need at least one machine and one type");
  Environment env;
  env.speed.assign(m, std::vector<double>(num_types, 1.0));
  return env;
}

Environment related_machines(const std::vector<double>& speeds,
                             std::size_t num_types) {
  STOSCHED_REQUIRE(!speeds.empty() && num_types >= 1,
                   "need at least one machine and one type");
  Environment env;
  env.speed.reserve(speeds.size());
  for (const double s : speeds) {
    STOSCHED_REQUIRE(s > 0.0 && std::isfinite(s),
                     "machine speeds must be positive and finite");
    env.speed.emplace_back(num_types, s);
  }
  return env;
}

Environment unrelated_machines(std::vector<std::vector<double>> speed) {
  Environment env;
  env.speed = std::move(speed);
  STOSCHED_REQUIRE(!env.speed.empty(),
                   "environment needs at least one machine");
  env.validate(env.speed.front().size());
  return env;
}

// rng-audit: sink(workload generator: the type draw interleaves with the
// forwarded arrival/size/sample streams in release order by contract)
OnlineInstance generate_online_instance(const ArrivalProcess& arrival,
                                        const std::vector<JobType>& types,
                                        double horizon, Rng& arrival_rng,
                                        Rng& type_rng, Rng& size_rng,
                                        Rng& sample_rng) {
  validate_types(types);
  STOSCHED_REQUIRE(horizon > 0.0, "online horizon must be positive");
  std::vector<double> probs;
  probs.reserve(types.size());
  for (const auto& t : types) probs.push_back(t.prob);

  OnlineInstance inst;
  ArrivalState state;
  double now = 0.0;
  for (;;) {
    now += arrival.next_gap(state, arrival_rng);
    if (now >= horizon) break;
    const std::size_t batch = arrival.batch_size(state, arrival_rng);
    for (std::size_t b = 0; b < batch; ++b) {
      OnlineJob job;
      job.release = now;
      job.type = type_rng.categorical(probs.data(), probs.size());
      job.weight = types[job.type].weight;
      job.size = types[job.type].size->sample(size_rng);
      job.sample = types[job.type].size->sample(sample_rng);
      inst.push_back(job);
    }
  }
  return inst;
}

}  // namespace stosched::online
