// model.hpp — stochastic online scheduling on parallel & unrelated machines.
//
// The survey's index-policy machinery is evaluated in closed queueing and
// bandit settings; the modern stochastic-online-scheduling literature
// (Megow–Uetz–Vredeveld; Jäger 2022; Antoniadis–Hoeksma–Schewior–Uetz 2025)
// instead studies jobs that *arrive over time* and must be assigned
// immediately and irrevocably to one of m machines, with only the size
// *distribution* known at arrival. This module is the workload model of
// that setting:
//
//   * `JobType`   — a class of arriving jobs: mix probability, weight, and a
//     base size law (any `dist::Distribution`);
//   * `Environment` — the machine set, as a speed matrix speed[i][t] > 0:
//     a type-t job of base size S runs for S / speed[i][t] on machine i.
//     Identical machines (all 1), uniformly related machines (rows constant
//     per machine) and unrelated machines (general matrix) are the three
//     classical environments, built by the factories below;
//   * `OnlineJob` / `OnlineInstance` — one realized sample path: arrival
//     epochs driven by any `dist::ArrivalProcess` (Poisson, renewal, bursty
//     MMPP, batch), a type per job, a realized base size, and one extra
//     independent *observed sample* per job (what a single-sample policy is
//     allowed to see instead of the law).
//
// Determinism contract: `generate_online_instance` draws through four
// dedicated Rng substreams (arrival gaps, types, realized sizes, observed
// samples). Two policy arms replaying the same substreams therefore face the
// *identical* realized instance — the synchronization that turns an online
// policy comparison into a common-random-number paired design, and that lets
// the offline lower bound be shared across arms.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/arrival.hpp"
#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace stosched::online {

/// One class of arriving jobs.
struct JobType {
  double prob = 1.0;    ///< mix probability (all types must sum to 1)
  double weight = 1.0;  ///< completion-time weight w_j of jobs of this type
  DistPtr size;         ///< base size law S (machine-independent)
};

/// Validate a type mix: nonempty, probabilities in [0,1] summing to 1,
/// positive weights, size laws present with positive finite means.
void validate_types(const std::vector<JobType>& types);

/// Mean base size of the type mix, Σ_t prob_t E[S_t].
double mean_size(const std::vector<JobType>& types);

/// The machine set: speed[i][t] > 0 is machine i's speed on type-t jobs, so
/// a base size S becomes processing time S / speed[i][t]. All rows must
/// have one entry per job type.
struct Environment {
  std::vector<std::vector<double>> speed;  ///< [machine][type]

  [[nodiscard]] std::size_t machines() const { return speed.size(); }
  void validate(std::size_t num_types) const;

  /// Realized processing time of a type-t job of base size `size` on i.
  [[nodiscard]] double proc_time(std::size_t machine, std::size_t type,
                                 double size) const {
    return size / speed[machine][type];
  }

  /// Total service capacity offered to the mix: Σ_i Σ_t prob_t speed[i][t]
  /// (jobs of mean size per unit time when every machine runs its mix
  /// share). The denominator of the nominal load.
  [[nodiscard]] double mix_capacity(const std::vector<JobType>& types) const;
};

/// m identical unit-speed machines.
Environment identical_machines(std::size_t m, std::size_t num_types);

/// Uniformly related machines: machine i runs every type at speed speeds[i].
Environment related_machines(const std::vector<double>& speeds,
                             std::size_t num_types);

/// General unrelated machines from an explicit (machine x type) speed matrix.
Environment unrelated_machines(std::vector<std::vector<double>> speed);

/// One realized arriving job.
struct OnlineJob {
  double release = 0.0;   ///< arrival epoch r_j
  std::size_t type = 0;   ///< job type index
  double weight = 1.0;    ///< w_j (copied from the type)
  double size = 1.0;      ///< realized base size (hidden from policies)
  /// One independent draw from the same size law — the only size
  /// information a single-sample policy sees. Drawn for every job from a
  /// dedicated substream so all arms observe the same sample.
  double sample = 1.0;
};

/// One sample path, sorted by release epoch.
using OnlineInstance = std::vector<OnlineJob>;

/// Generate the arrivals of [0, horizon): epochs from `arrival` (batch
/// processes fan out several simultaneous jobs per epoch), a type per job
/// from the mix, a realized size and an observed sample per job. Each of the
/// four draw purposes consumes only its own substream.
OnlineInstance generate_online_instance(const ArrivalProcess& arrival,
                                        const std::vector<JobType>& types,
                                        double horizon, Rng& arrival_rng,
                                        Rng& type_rng, Rng& size_rng,
                                        Rng& sample_rng);

}  // namespace stosched::online
