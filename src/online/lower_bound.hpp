// lower_bound.hpp — exact offline lower bounds on Σ w_j C_j per realized
// instance, the denominator of the empirical competitive ratio.
//
// Every policy run produces a feasible nonpreemptive schedule of the
// realized instance (releases r_j, realized processing times
// p_ij = size_j / speed[i][type_j]), so its cost is >= OPT(ω) >= LB(ω)
// path by path — the reported per-replication ratio cost / LB is therefore
// always >= 1 and upper-bounds the true empirical competitive ratio.
// Three bounds, combined by max:
//
//   * release bound — Σ w_j (r_j + min_i p_ij): every job must be fully
//     processed somewhere after it arrives;
//   * WSEPT mean-busy-time bound — relax to m identical machines with
//     q_j = min_i p_ij (running every job at its best speed only shortens
//     schedules), then to a single speed-m machine shared preemptively
//     (time-sharing emulates any parallel schedule exactly). On that
//     relaxation Σ w_j M_j is minimized by preemptive WSPT (Goemans), and
//     C_j >= M_j + q_j / (2m) for any schedule, giving the classical
//     LP-equivalent bound Σ w_j (M_j^WSPT + q_j / (2m)) in O(n log n);
//   * interval-indexed LP — the Hall–Schulz–Shmoys–Wein relaxation on
//     geometric intervals: fractions x_ijt of job j on machine i in
//     interval t, machine capacity per interval, release-respecting
//     placement, and C_j >= max(Σ x τ_{t-1}, r_j + Σ x p_ij). The instance
//     is polynomially sized and very sparse (a handful of nonzeros per
//     row), so it is built with sparse rows and solved by the revised
//     simplex (lp::Solver::kRevised) by default — hundreds of jobs are
//     routine, and the job cap is only a guard against accidentally
//     gigantic instances. The combinatorial bounds still carry the big
//     sweeps (the LP costs a solve per replication); the LP tightens the
//     audited cells and checks the cheap bounds in tests.
#pragma once

#include <cstddef>

#include "lp/simplex.hpp"
#include "online/model.hpp"

namespace stosched::online {

struct OfflineBoundOptions {
  bool use_lp = false;          ///< also solve the interval-indexed LP
  std::size_t lp_job_cap = 512; ///< skip the LP above this many jobs
  double interval_ratio = 2.0;  ///< geometric growth of the LP time grid
  /// Engine for the LP solve. kRevised is the default production path;
  /// kDense remains selectable so tests can differential the two on the
  /// real bound (tests/test_online.cpp does).
  lp::Solver lp_solver = lp::Solver::kRevised;
};

/// The combined bound and its ingredients (lp_bound is 0 when skipped).
struct OfflineBound {
  double value = 0.0;          ///< max of the bounds below
  double release_bound = 0.0;
  double busy_bound = 0.0;
  double lp_bound = 0.0;
};

/// Lower bound on Σ w_j C_j over all nonpreemptive offline schedules of the
/// realized instance. Deterministic; an empty instance yields all zeros.
OfflineBound offline_lower_bound(const OnlineInstance& inst,
                                 const Environment& env,
                                 const std::vector<JobType>& types,
                                 const OfflineBoundOptions& opt = {});

/// The HSSW interval-indexed LP itself (minimize Σ w_j C_j, variables
/// C_0..C_{n-1} then the placement fractions x_ijt), exposed so benches and
/// tests can generate real bound-shaped sparse instances without duplicating
/// the construction. Requires a non-degenerate instance: at least one job
/// with positive best-machine processing time or positive release date.
lp::Problem interval_indexed_lp(const OnlineInstance& inst,
                                const Environment& env,
                                const OfflineBoundOptions& opt = {});

}  // namespace stosched::online
