// simulate.hpp — the online-scheduling simulator and its engine adapter.
//
// One replication = one realized sample path pushed through one policy:
// jobs arrive over time, are assigned to a machine the instant they arrive
// (using believed processing times only), and each machine serves its queue
// nonpreemptively in the policy's local priority order while the *realized*
// processing times drive the clock. Because assignment and sequencing
// condition only on believed state, the simulator keeps the believed and
// realized views strictly separate: policies receive `MachineState` (no
// realized quantities), the event loop owns the realized completion clocks.
//
// The replication metric vector is
//   [ratio, weighted_completion, lower_bound, jobs]
// with ratio = Σ w_j C_j / offline_lower_bound on the same path — the
// policy's schedule is a feasible offline schedule, so ratio >= 1 path by
// path and its replication mean is an empirical competitive-ratio estimate
// with a CI.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "online/lower_bound.hpp"
#include "online/model.hpp"
#include "online/policies.hpp"
#include "util/rng.hpp"

namespace stosched::online {

/// Realized outcome of one policy run over one instance.
struct OnlineResult {
  double weighted_completion = 0.0;  ///< Σ w_j C_j
  double weighted_flowtime = 0.0;    ///< Σ w_j (C_j − r_j)
  double makespan = 0.0;             ///< max C_j (0 for an empty instance)
  std::size_t jobs = 0;
};

/// Run `policy` over the realized `inst`. Deterministic in (inst, env,
/// types, policy, policy_rng state); only randomized policies draw from
/// `policy_rng`.
OnlineResult simulate_online(const OnlineInstance& inst,
                             const Environment& env,
                             const std::vector<JobType>& types,
                             const OnlinePolicy& policy, Rng& policy_rng);

/// Experiment-engine adapter: metric vector layout is
///   [ratio, weighted_completion, lower_bound, jobs].
std::size_t online_metric_count();
std::vector<std::string> online_metric_names();

/// Uniform replication entry point: derive the five per-purpose substreams
/// (arrival, type, size, sample, policy) from one draw of `rng`, generate
/// the instance, run the policy, bound the instance offline, and write the
/// metric vector. CRN arms replaying the same `rng` state face identical
/// instances and identical lower bounds.
void run_online_replication(const ArrivalProcess& arrival,
                            const std::vector<JobType>& types,
                            const Environment& env, double horizon,
                            const OfflineBoundOptions& bound,
                            const OnlinePolicy& policy, Rng& rng,
                            std::span<double> out);

}  // namespace stosched::online
