// policies.hpp — online assignment policies behind one interface.
//
// An online policy makes two decisions, both using only information
// available at the decision epoch (type, weight, the size *law* — never the
// realized size):
//
//   * *assignment*: pick a machine the instant a job arrives (immediate and
//     irrevocable — the defining constraint of the model);
//   * *local sequencing*: a static priority index per (job, machine); each
//     machine serves its queue nonpreemptively in decreasing index order.
//
// The four implementations are the canonical arms of the stochastic
// online scheduling literature:
//
//   * greedy-wsept  — Jäger-style greedy by expected rate: machines
//     sequence by WSEPT (w / E[p_ij], the cµ index of this setting) and the
//     job goes wherever its own expected completion time is smallest;
//   * min-increase  — Megow–Uetz–Vredeveld: the job goes to the machine
//     minimizing the expected increment of Σ w_j C_j, i.e. its own expected
//     weighted completion *plus* the expected delay it inflicts on the
//     lower-index jobs it overtakes;
//   * single-sample — sees ONE independent sample of each job's size law
//     instead of its moments (the sample-based information regime of the
//     Bernoulli-type-job / policy-stratification line of work): greedy
//     assignment and SEPT sequencing computed from the sample as if it were
//     the mean;
//   * random        — uniformly random machine, WSEPT sequencing: the
//     baseline that isolates the value of informed *assignment*.
//
// Thread-safety: policy objects are immutable after construction (all
// methods const) because the experiment engine runs replications of the
// same policy concurrently. Per-replication randomness (the random arm's
// machine draws) flows through the dedicated policy substream handed to
// `assign`.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "online/model.hpp"
#include "util/rng.hpp"

namespace stosched::online {

/// What a policy believes about one queued (not yet started) job.
struct QueueEntry {
  std::size_t job = 0;      ///< instance index (arrival order)
  double believed = 0.0;    ///< policy's believed processing time here
  double weight = 1.0;
  double priority = 0.0;    ///< local sequencing index (higher served first)
};

/// The online-visible state of one machine: believed quantities only — the
/// realized remaining time of the in-service job is deliberately absent.
struct MachineState {
  bool busy = false;
  double believed_end = 0.0;  ///< believed completion epoch of current job
  std::vector<QueueEntry> queue;

  /// Believed remaining processing of the in-service job at `now`.
  [[nodiscard]] double believed_residual(double now) const {
    return busy && believed_end > now ? believed_end - now : 0.0;
  }
};

/// Everything a policy may condition on besides the machine states.
struct OnlineContext {
  const Environment& env;
  const std::vector<JobType>& types;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  /// Short arm tag ("greedy-wsept", ...), for tables and bench metadata.
  virtual const char* name() const noexcept = 0;

  /// The policy's believed processing time of `job` on `machine` — the
  /// expectation E[p_ij] for moment-informed policies, the observed sample
  /// for the single-sample regime. Strictly positive.
  virtual double believed_proc(const OnlineContext& ctx, const OnlineJob& job,
                               std::size_t machine) const = 0;

  /// Local sequencing index of `job` on `machine` (higher served first).
  /// Default: WSEPT, weight / believed_proc.
  virtual double priority(const OnlineContext& ctx, const OnlineJob& job,
                          std::size_t machine) const {
    return job.weight / believed_proc(ctx, job, machine);
  }

  /// Pick a machine for the arriving `job`. `machines` holds the believed
  /// per-machine states, `now` is the arrival epoch, and `rng` is the
  /// policy's dedicated substream (only randomized policies draw).
  virtual std::size_t assign(const OnlineContext& ctx, const OnlineJob& job,
                             const std::vector<MachineState>& machines,
                             double now, Rng& rng) const = 0;
};

using OnlinePolicyPtr = std::shared_ptr<const OnlinePolicy>;

/// Expected processing time of `job` on `machine`: E[S_type] / speed.
double expected_proc(const OnlineContext& ctx, const OnlineJob& job,
                     std::size_t machine);

/// Believed delay ahead of a job of local index `pri` on machine `state`:
/// the in-service residual plus every queued job that would be served
/// first (index >= pri — queued jobs arrived earlier, and ties go to the
/// earlier arrival, mirroring the simulator's tie-break).
double believed_delay(const MachineState& state, double pri, double now);

// ---- factories -----------------------------------------------------------

OnlinePolicyPtr greedy_wsept_policy();
OnlinePolicyPtr min_increase_policy();
OnlinePolicyPtr single_sample_policy();
OnlinePolicyPtr random_assignment_policy();

}  // namespace stosched::online
