// relaxation.hpp — Whittle's LP relaxation and the primal-dual index
// heuristic (survey §2, [48, 7]).
//
// The time-average restless bandit admits an occupation-measure LP: per
// project j, variables x_j(s, a) >= 0 with flow balance and normalization;
// the activation budget couples projects through
//     Σ_j Σ_s x_j(s, 1) = m.
// Its optimum upper-bounds every admissible policy's average reward (the
// policy's occupation measures are feasible), so it is the reference bound
// in experiments F3/T8. The primal-dual heuristic of Bertsimas–Niño-Mora
// [7] ranks project states by the *activity advantage at the optimal duals*:
//     adv_j(s) = [r1_j(s) + P1_j h_j](s) - [r0_j(s) + P0_j h_j](s),
// where h_j are the flow-balance duals. Activating the m largest advantages
// reproduces Whittle's rule on indexable projects (the advantage crosses
// zero at the critical subsidy) but remains defined when indexability fails.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/simplex.hpp"
#include "restless/restless_project.hpp"

namespace stosched::restless {

/// Output of the relaxation solve.
struct RelaxationResult {
  double bound = 0.0;  ///< optimal relaxed average reward (total, all projects)
  /// advantage[j][s] — the primal-dual priority of project j in state s.
  std::vector<std::vector<double>> advantage;
  /// activity[j][s] — relaxed stationary probability of being active in s.
  std::vector<std::vector<double>> activity;
};

/// Solve the coupled occupation-measure LP for the instance.
RelaxationResult solve_relaxation(const RestlessInstance& inst);

/// Symmetric shortcut: for `copies` identical projects with budget m, the
/// relaxation decouples into one project with activity rate m/copies; the
/// bound scales linearly. Returns the same structure with advantage/activity
/// for the prototype only.
RelaxationResult solve_relaxation_symmetric(const RestlessProject& proto,
                                            std::size_t copies,
                                            std::size_t activate);

/// The occupation-measure LP itself (maximize average reward over x_j(s,a)
/// with flow balance, per-project normalization and the coupling row),
/// exposed so benches and tests can generate Whittle-relaxation-shaped
/// sparse instances without duplicating the construction.
lp::Problem relaxation_lp(const RestlessInstance& inst);

}  // namespace stosched::restless
