// restless_sim.hpp — playing restless bandits (survey §2, F3/T8).
//
// Each epoch the policy activates exactly m of the N projects; all projects
// transition (active or passive law). Policies are per-state priority tables
// (Whittle index, myopic advantage, LP primal-dual advantage) or uniform
// random. Small instances are also solved exactly on the product MDP with
// subset actions, giving a noise-free optimum for T8.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "restless/restless_project.hpp"

namespace stosched::restless {

/// Per-project priority tables: priority[j][s].
using PriorityTable = std::vector<std::vector<double>>;

/// Long-run average reward (per epoch, total across projects) of the
/// top-m priority policy, estimated over `horizon` epochs after `burnin`.
double simulate_priority_policy(const RestlessInstance& inst,
                                const PriorityTable& priority,
                                std::size_t horizon, std::size_t burnin,
                                Rng& rng);

/// Same, activating a uniformly random m-subset each epoch.
double simulate_random_policy(const RestlessInstance& inst,
                              std::size_t horizon, std::size_t burnin,
                              Rng& rng);

/// Experiment-engine adapter: one simulate_priority_policy replication; the
/// single metric is the average per-epoch reward. Restless epochs consume
/// randomness in a policy-independent order (every project transitions every
/// epoch), so common-random-number comparisons of priority tables are
/// synchronized for free.
void run_replication(const RestlessInstance& inst,
                     const PriorityTable& priority, std::size_t horizon,
                     std::size_t burnin, Rng& rng, std::span<double> out);

/// Exact optimal average reward via relative value iteration on the product
/// MDP with all C(N, m) activation subsets. Tiny instances only.
double optimal_average_reward(const RestlessInstance& inst);

/// Exact average reward of the top-m priority policy on the product chain.
double priority_policy_average_reward(const RestlessInstance& inst,
                                      const PriorityTable& priority);

}  // namespace stosched::restless
