// whittle.hpp — indexability and the Whittle index (survey §2, [48]).
//
// Whittle's construction: relax "activate exactly m projects each epoch" to
// "m on average", price activity with a Lagrangian subsidy W paid for
// passivity, and decouple into single-project subsidy problems
//     max  time-average of [ r1(s) 1{active} + (r0(s) + W) 1{passive} ].
// The project is *indexable* if the optimal passive set grows monotonically
// from empty to everything as W sweeps (-inf, +inf); the Whittle index of
// state s is the critical subsidy at which s switches sides. The index rule
// activates the m projects with the largest current indices; Weber–Weiss
// [44] proved asymptotic optimality under indexability + a mixing condition
// (experiment F3 measures exactly this).
//
// Computation: for a given W the subsidy problem is solved by relative value
// iteration (average-reward criterion, matching Whittle's formulation); the
// index is found per state by bisection, and indexability is verified by
// checking that passive sets are nested along a subsidy grid.
#pragma once

#include <cstddef>
#include <vector>

#include "restless/restless_project.hpp"

namespace stosched::restless {

/// Result of the Whittle computation for one project.
struct WhittleResult {
  bool indexable = false;
  std::vector<double> index;       ///< per state; meaningful iff indexable
  std::size_t grid_points = 0;     ///< subsidy grid used for the nesting check
};

/// Optimal passive set of the single-project subsidy problem at subsidy W
/// (average-reward criterion). Ties resolve to passive.
std::vector<char> passive_set(const RestlessProject& p, double subsidy,
                              double tol = 1e-10);

/// Compute indexability + Whittle indices. `grid` controls the nesting
/// check resolution; bisection refines each index to `tol`.
WhittleResult whittle_index(const RestlessProject& p, std::size_t grid = 81,
                            double tol = 1e-7);

/// Myopic index: one-step activity advantage r1(s) - r0(s).
std::vector<double> myopic_index(const RestlessProject& p);

}  // namespace stosched::restless
