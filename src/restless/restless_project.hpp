// restless_project.hpp — restless bandit projects (survey §2, [48]).
//
// Unlike classical bandit projects, a restless project keeps evolving while
// passive, under its own transition law, and may earn a passive reward.
// Whittle's relaxation and index heuristic, the Weber–Weiss asymptotic
// optimality experiment (F3) and the primal-dual LP heuristic of [7] (T8)
// are all built on this type.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace stosched::restless {

/// Two-action finite project: action 0 = passive, action 1 = active.
struct RestlessProject {
  std::vector<double> reward_passive;             ///< r0(s)
  std::vector<double> reward_active;              ///< r1(s)
  std::vector<std::vector<double>> trans_passive; ///< P0, row-stochastic
  std::vector<std::vector<double>> trans_active;  ///< P1, row-stochastic

  [[nodiscard]] std::size_t num_states() const noexcept {
    return reward_passive.size();
  }
  void validate() const;
};

/// Random dense project with rewards in the given ranges; active rewards are
/// drawn above passive ones on average so activity matters.
RestlessProject random_restless_project(std::size_t states, Rng& rng,
                                        double reward_scale = 1.0);

/// The restless instance: N projects, exactly m activated per epoch.
struct RestlessInstance {
  std::vector<RestlessProject> projects;
  std::size_t activate = 1;  ///< m

  void validate() const;
};

/// Build a symmetric instance from `copies` copies of one project.
RestlessInstance symmetric_instance(const RestlessProject& proto,
                                    std::size_t copies, std::size_t activate);

}  // namespace stosched::restless
