#include "restless/whittle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mdp/mdp.hpp"
#include "mdp/solve.hpp"
#include "util/check.hpp"

namespace stosched::restless {

namespace {

/// Single-project subsidy MDP: action 0 = passive (reward r0 + W),
/// action 1 = active (reward r1).
mdp::FiniteMdp subsidy_mdp(const RestlessProject& p, double subsidy) {
  const std::size_t n = p.num_states();
  mdp::FiniteMdp m(n);
  for (std::size_t s = 0; s < n; ++s) {
    mdp::Action passive;
    passive.reward = p.reward_passive[s] + subsidy;
    passive.label = 0;
    mdp::Action active;
    active.reward = p.reward_active[s];
    active.label = 1;
    for (std::size_t t = 0; t < n; ++t) {
      if (p.trans_passive[s][t] > 0.0)
        passive.transitions.push_back({t, p.trans_passive[s][t]});
      if (p.trans_active[s][t] > 0.0)
        active.transitions.push_back({t, p.trans_active[s][t]});
    }
    m.add_action(s, std::move(passive));
    m.add_action(s, std::move(active));
  }
  return m;
}

}  // namespace

std::vector<char> passive_set(const RestlessProject& p, double subsidy,
                              double tol) {
  p.validate();
  const auto m = subsidy_mdp(p, subsidy);
  const auto sol = mdp::relative_value_iteration(m, tol);
  const std::size_t n = p.num_states();
  std::vector<char> passive(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    double q_passive = p.reward_passive[s] + subsidy;
    double q_active = p.reward_active[s];
    for (std::size_t t = 0; t < n; ++t) {
      q_passive += p.trans_passive[s][t] * sol.bias[t];
      q_active += p.trans_active[s][t] * sol.bias[t];
    }
    // Ties resolve to passive (standard convention: the index is the
    // smallest subsidy making passivity optimal).
    passive[s] = q_passive >= q_active - 1e-9 ? 1 : 0;
  }
  return passive;
}

std::vector<double> myopic_index(const RestlessProject& p) {
  std::vector<double> idx(p.num_states());
  for (std::size_t s = 0; s < p.num_states(); ++s)
    idx[s] = p.reward_active[s] - p.reward_passive[s];
  return idx;
}

WhittleResult whittle_index(const RestlessProject& p, std::size_t grid,
                            double tol) {
  p.validate();
  STOSCHED_REQUIRE(grid >= 3, "subsidy grid needs at least 3 points");
  const std::size_t n = p.num_states();
  WhittleResult out;
  out.index.assign(n, 0.0);
  out.grid_points = grid;

  // Bracket the subsidy range: expand until no state is passive at `lo` and
  // all are passive at `hi`.
  double r_span = 0.0;
  for (std::size_t s = 0; s < n; ++s)
    r_span = std::max(r_span, std::abs(p.reward_active[s]) +
                                  std::abs(p.reward_passive[s]));
  double lo = -2.0 * r_span - 1.0, hi = 2.0 * r_span + 1.0;
  for (int tries = 0; tries < 8; ++tries) {
    const auto at_lo = passive_set(p, lo);
    if (std::none_of(at_lo.begin(), at_lo.end(), [](char c) { return c; }))
      break;
    lo = 2.0 * lo - 1.0;
  }
  for (int tries = 0; tries < 8; ++tries) {
    const auto at_hi = passive_set(p, hi);
    if (std::all_of(at_hi.begin(), at_hi.end(), [](char c) { return c; }))
      break;
    hi = 2.0 * hi + 1.0;
  }

  // Nesting check along the grid: passive sets must grow monotonically.
  out.indexable = true;
  std::vector<char> prev(n, 0);
  for (std::size_t g = 0; g < grid; ++g) {
    const double w =
        lo + (hi - lo) * static_cast<double>(g) / static_cast<double>(grid - 1);
    const auto cur = passive_set(p, w);
    for (std::size_t s = 0; s < n; ++s)
      if (prev[s] && !cur[s]) out.indexable = false;
    prev = cur;
  }
  if (!std::all_of(prev.begin(), prev.end(), [](char c) { return c; }))
    out.indexable = false;  // range failed to capture all thresholds

  if (!out.indexable) return out;

  // Per-state bisection for the critical subsidy.
  for (std::size_t s = 0; s < n; ++s) {
    double a = lo, b = hi;
    while (b - a > tol) {
      const double mid = 0.5 * (a + b);
      if (passive_set(p, mid)[s])
        b = mid;
      else
        a = mid;
    }
    out.index[s] = 0.5 * (a + b);
  }
  return out;
}

}  // namespace stosched::restless
