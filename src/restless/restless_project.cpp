#include "restless/restless_project.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stosched::restless {

namespace {

void check_stochastic(const std::vector<std::vector<double>>& p,
                      std::size_t n) {
  STOSCHED_REQUIRE(p.size() == n, "transition matrix shape mismatch");
  for (const auto& row : p) {
    STOSCHED_REQUIRE(row.size() == n, "transition matrix must be square");
    double total = 0.0;
    for (const double q : row) {
      STOSCHED_REQUIRE(q >= -1e-12, "negative transition probability");
      total += q;
    }
    STOSCHED_REQUIRE(std::abs(total - 1.0) < 1e-9,
                     "transition rows must sum to 1");
  }
}

// rng-audit: sink(row-major matrix fill: the generator family's shared
// draw-order contract)
std::vector<std::vector<double>> random_stochastic(std::size_t n, Rng& rng) {
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t s = 0; s < n; ++s) {
    double total = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      p[s][t] = rng.uniform_pos();
      total += p[s][t];
    }
    for (std::size_t t = 0; t < n; ++t) p[s][t] /= total;
    double partial = 0.0;
    for (std::size_t t = 0; t + 1 < n; ++t) partial += p[s][t];
    p[s][n - 1] = 1.0 - partial;
  }
  return p;
}

}  // namespace

void RestlessProject::validate() const {
  const std::size_t n = num_states();
  STOSCHED_REQUIRE(n >= 1, "project needs at least one state");
  STOSCHED_REQUIRE(reward_active.size() == n, "reward vector shape mismatch");
  check_stochastic(trans_passive, n);
  check_stochastic(trans_active, n);
}

// rng-audit: sink(instance generator: its sequential draw order IS the
// reproducibility contract, pinned by the golden tests)
RestlessProject random_restless_project(std::size_t states, Rng& rng,
                                        double reward_scale) {
  STOSCHED_REQUIRE(states >= 1, "project needs at least one state");
  RestlessProject p;
  p.reward_passive.resize(states);
  p.reward_active.resize(states);
  for (std::size_t s = 0; s < states; ++s) {
    p.reward_passive[s] = reward_scale * rng.uniform(0.0, 0.3);
    p.reward_active[s] = reward_scale * rng.uniform(0.0, 1.0);
  }
  p.trans_passive = random_stochastic(states, rng);
  p.trans_active = random_stochastic(states, rng);
  return p;
}

void RestlessInstance::validate() const {
  STOSCHED_REQUIRE(!projects.empty(), "instance needs at least one project");
  STOSCHED_REQUIRE(activate >= 1 && activate <= projects.size(),
                   "must activate between 1 and N projects");
  for (const auto& p : projects) p.validate();
}

RestlessInstance symmetric_instance(const RestlessProject& proto,
                                    std::size_t copies,
                                    std::size_t activate) {
  RestlessInstance inst;
  inst.projects.assign(copies, proto);
  inst.activate = activate;
  inst.validate();
  return inst;
}

}  // namespace stosched::restless
