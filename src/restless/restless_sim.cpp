#include "restless/restless_sim.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "mdp/mdp.hpp"
#include "mdp/solve.hpp"
#include "util/check.hpp"

namespace stosched::restless {

namespace {

/// Rank projects by priority and return the indices of the top m
/// (ties broken by project id for determinism).
void top_m(const std::vector<double>& score, std::size_t m,
           std::vector<std::size_t>& out) {
  const std::size_t n = score.size();
  out.resize(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  std::partial_sort(out.begin(), out.begin() + m, out.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  out.resize(m);
}

}  // namespace

double simulate_priority_policy(const RestlessInstance& inst,
                                const PriorityTable& priority,
                                std::size_t horizon, std::size_t burnin,
                                Rng& rng) {
  inst.validate();
  STOSCHED_REQUIRE(priority.size() == inst.projects.size(),
                   "priority table must cover all projects");
  const std::size_t n = inst.projects.size();
  // Per-project transition substreams off a bootstrap root: project j's
  // chain consumes only its own stream, so a CRN comparison against
  // simulate_random_policy (which uses the same layout) keeps project
  // trajectories aligned wherever the action sequences agree.
  const Rng root(rng());
  std::vector<Rng> trans_rng;
  trans_rng.reserve(n);
  for (std::size_t j = 0; j < n; ++j) trans_rng.push_back(root.stream(j));
  std::vector<std::size_t> state(n, 0);
  std::vector<double> score(n, 0.0);
  std::vector<char> active(n, 0);
  std::vector<std::size_t> chosen;

  double total = 0.0;
  for (std::size_t t = 0; t < burnin + horizon; ++t) {
    for (std::size_t j = 0; j < n; ++j) score[j] = priority[j][state[j]];
    top_m(score, inst.activate, chosen);
    std::fill(active.begin(), active.end(), 0);
    for (const std::size_t j : chosen) active[j] = 1;

    for (std::size_t j = 0; j < n; ++j) {
      const auto& p = inst.projects[j];
      const double r =
          active[j] ? p.reward_active[state[j]] : p.reward_passive[state[j]];
      if (t >= burnin) total += r;
      const auto& row =
          active[j] ? p.trans_active[state[j]] : p.trans_passive[state[j]];
      state[j] = trans_rng[j].categorical(row.data(), row.size());
    }
  }
  return total / static_cast<double>(horizon);
}

void run_replication(const RestlessInstance& inst,
                     const PriorityTable& priority, std::size_t horizon,
                     std::size_t burnin, Rng& rng, std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == 1, "restless replication reports one metric");
  out[0] = simulate_priority_policy(inst, priority, horizon, burnin, rng);
}

double simulate_random_policy(const RestlessInstance& inst,
                              std::size_t horizon, std::size_t burnin,
                              Rng& rng) {
  inst.validate();
  const std::size_t n = inst.projects.size();
  // Same substream layout as simulate_priority_policy (per-project
  // transition streams 0..n-1) plus a dedicated selection stream at n, so
  // CRN comparisons between the two policies share project randomness.
  const Rng root(rng());
  std::vector<Rng> trans_rng;
  trans_rng.reserve(n);
  for (std::size_t j = 0; j < n; ++j) trans_rng.push_back(root.stream(j));
  Rng select_rng = root.stream(n);
  std::vector<std::size_t> state(n, 0);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  double total = 0.0;
  for (std::size_t t = 0; t < burnin + horizon; ++t) {
    // Partial Fisher–Yates: the first m entries form a random m-subset.
    for (std::size_t i = 0; i < inst.activate; ++i) {
      const std::size_t j = i + select_rng.below(n - i);
      std::swap(perm[i], perm[j]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      const bool act =
          std::find(perm.begin(), perm.begin() + inst.activate, j) !=
          perm.begin() + inst.activate;
      const auto& p = inst.projects[j];
      const double r =
          act ? p.reward_active[state[j]] : p.reward_passive[state[j]];
      if (t >= burnin) total += r;
      const auto& row =
          act ? p.trans_active[state[j]] : p.trans_passive[state[j]];
      state[j] = trans_rng[j].categorical(row.data(), row.size());
    }
  }
  return total / static_cast<double>(horizon);
}

namespace {

/// Product-space machinery shared by the exact solvers.
struct ProductSpace {
  const RestlessInstance& inst;
  std::size_t total = 1;
  std::vector<std::vector<std::size_t>> subsets;  // all m-subsets, fixed order

  explicit ProductSpace(const RestlessInstance& i) : inst(i) {
    inst.validate();
    for (const auto& p : inst.projects) {
      // Joint transition rows are dense (every project moves every epoch),
      // so the exact product solvers are reserved for tiny instances.
      STOSCHED_REQUIRE(total < (std::size_t{1} << 10) / p.num_states(),
                       "restless product MDP too large");
      total *= p.num_states();
    }
    // Enumerate m-subsets lexicographically.
    const std::size_t n = inst.projects.size();
    std::vector<std::size_t> idx(inst.activate);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    for (;;) {
      subsets.push_back(idx);
      std::size_t pos = inst.activate;
      bool done = true;
      while (pos-- > 0) {
        if (idx[pos] != pos + n - inst.activate) {
          ++idx[pos];
          for (std::size_t k = pos + 1; k < inst.activate; ++k)
            idx[k] = idx[k - 1] + 1;
          done = false;
          break;
        }
      }
      if (done) break;
    }
  }

  void decode(std::size_t code, std::vector<std::size_t>& s) const {
    s.resize(inst.projects.size());
    for (std::size_t j = 0; j < inst.projects.size(); ++j) {
      s[j] = code % inst.projects[j].num_states();
      code /= inst.projects[j].num_states();
    }
  }

  [[nodiscard]] mdp::FiniteMdp build() const {
    mdp::FiniteMdp m(total);
    std::vector<std::size_t> s;
    std::vector<char> active(inst.projects.size(), 0);
    for (std::size_t code = 0; code < total; ++code) {
      decode(code, s);
      for (std::size_t ai = 0; ai < subsets.size(); ++ai) {
        std::fill(active.begin(), active.end(), 0);
        for (const std::size_t j : subsets[ai]) active[j] = 1;

        mdp::Action act;
        act.label = static_cast<int>(ai);
        for (std::size_t j = 0; j < inst.projects.size(); ++j) {
          const auto& p = inst.projects[j];
          act.reward += active[j] ? p.reward_active[s[j]]
                                  : p.reward_passive[s[j]];
        }
        // Joint transition = product of per-project rows; expand iteratively.
        std::vector<std::pair<std::size_t, double>> joint{{0, 1.0}};
        std::size_t stride = 1;
        for (std::size_t j = 0; j < inst.projects.size(); ++j) {
          const auto& p = inst.projects[j];
          const auto& row =
              active[j] ? p.trans_active[s[j]] : p.trans_passive[s[j]];
          std::vector<std::pair<std::size_t, double>> grown;
          grown.reserve(joint.size() * row.size());
          for (const auto& [base, prob] : joint)
            for (std::size_t t = 0; t < row.size(); ++t)
              if (row[t] > 0.0)
                grown.emplace_back(base + stride * t, prob * row[t]);
          joint = std::move(grown);
          stride *= p.num_states();
        }
        act.transitions.reserve(joint.size());
        for (const auto& [target, prob] : joint)
          act.transitions.push_back({target, prob});
        m.add_action(code, std::move(act));
      }
    }
    return m;
  }

  /// Action index of the top-m priority choice in joint state s.
  [[nodiscard]] std::size_t priority_action(
      const PriorityTable& priority, const std::vector<std::size_t>& s) const {
    std::vector<double> score(inst.projects.size());
    for (std::size_t j = 0; j < inst.projects.size(); ++j)
      score[j] = priority[j][s[j]];
    std::vector<std::size_t> chosen;
    top_m(score, inst.activate, chosen);
    std::sort(chosen.begin(), chosen.end());
    for (std::size_t ai = 0; ai < subsets.size(); ++ai)
      if (subsets[ai] == chosen) return ai;
    STOSCHED_ASSERT(false, "chosen subset not found");
    return 0;
  }
};

}  // namespace

double optimal_average_reward(const RestlessInstance& inst) {
  const ProductSpace space(inst);
  const auto m = space.build();
  const auto sol = mdp::relative_value_iteration(m, 1e-10);
  return sol.gain;
}

double priority_policy_average_reward(const RestlessInstance& inst,
                                      const PriorityTable& priority) {
  STOSCHED_REQUIRE(priority.size() == inst.projects.size(),
                   "priority table must cover all projects");
  const ProductSpace space(inst);
  const auto m = space.build();
  std::vector<std::size_t> policy(space.total, 0);
  std::vector<std::size_t> s;
  for (std::size_t code = 0; code < space.total; ++code) {
    space.decode(code, s);
    policy[code] = space.priority_action(priority, s);
  }
  return mdp::average_reward_of_policy_iterative(m, policy);
}

}  // namespace stosched::restless
