#include "restless/relaxation.hpp"

#include <cmath>

#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace stosched::restless {

namespace {

/// Assemble the occupation-measure LP. `activity_rhs` is the right-hand
/// side of the coupling constraint (m for the full instance, m/N for the
/// symmetric one-project shortcut). Rows come out in the order dual
/// extraction expects: flow balance per (project, state), then one
/// normalization row per project, then the coupling row.
lp::Problem build_lp(const std::vector<const RestlessProject*>& projects,
                     double activity_rhs) {
  // Variable layout: x_j(s, a) at offset[j] + 2 s + a.
  std::vector<std::size_t> offset(projects.size() + 1, 0);
  for (std::size_t j = 0; j < projects.size(); ++j)
    offset[j + 1] = offset[j] + 2 * projects[j]->num_states();
  const std::size_t nvars = offset.back();

  std::vector<double> costs(nvars, 0.0);
  for (std::size_t j = 0; j < projects.size(); ++j)
    for (std::size_t s = 0; s < projects[j]->num_states(); ++s) {
      costs[offset[j] + 2 * s + 0] = projects[j]->reward_passive[s];
      costs[offset[j] + 2 * s + 1] = projects[j]->reward_active[s];
    }

  auto problem = lp::Problem::maximize(std::move(costs));

  // Flow balance: one row per (project, state), each touching only that
  // project's 2·n variables — built sparsely.
  for (std::size_t j = 0; j < projects.size(); ++j) {
    const auto& p = *projects[j];
    const std::size_t n = p.num_states();
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<std::size_t> idx;
      std::vector<double> val;
      idx.reserve(2 * n + 2);
      val.reserve(2 * n + 2);
      idx.push_back(offset[j] + 2 * s + 0);
      val.push_back(1.0);
      idx.push_back(offset[j] + 2 * s + 1);
      val.push_back(1.0);
      for (std::size_t sp = 0; sp < n; ++sp) {
        idx.push_back(offset[j] + 2 * sp + 0);
        val.push_back(-p.trans_passive[sp][s]);
        idx.push_back(offset[j] + 2 * sp + 1);
        val.push_back(-p.trans_active[sp][s]);
      }
      problem.subject_to_sparse(std::move(idx), std::move(val), lp::Sense::kEq,
                                0.0);
    }
  }
  // Normalization per project.
  for (std::size_t j = 0; j < projects.size(); ++j) {
    std::vector<std::size_t> idx;
    std::vector<double> val;
    for (std::size_t s = 0; s < projects[j]->num_states(); ++s) {
      idx.push_back(offset[j] + 2 * s + 0);
      idx.push_back(offset[j] + 2 * s + 1);
      val.insert(val.end(), {1.0, 1.0});
    }
    problem.subject_to_sparse(std::move(idx), std::move(val), lp::Sense::kEq,
                              1.0);
  }
  // Coupling: total activity.
  {
    std::vector<std::size_t> idx;
    for (std::size_t j = 0; j < projects.size(); ++j)
      for (std::size_t s = 0; s < projects[j]->num_states(); ++s)
        idx.push_back(offset[j] + 2 * s + 1);
    std::vector<double> val(idx.size(), 1.0);
    problem.subject_to_sparse(std::move(idx), std::move(val), lp::Sense::kEq,
                              activity_rhs);
  }
  return problem;
}

/// Solve the occupation-measure LP and package the primal-dual outputs.
RelaxationResult solve_lp(const std::vector<const RestlessProject*>& projects,
                          double activity_rhs) {
  std::vector<std::size_t> offset(projects.size() + 1, 0);
  for (std::size_t j = 0; j < projects.size(); ++j)
    offset[j + 1] = offset[j] + 2 * projects[j]->num_states();

  // Flow-balance rows are the first Σ_j n_j rows, in (project, state) order.
  std::vector<std::vector<std::size_t>> flow_row(projects.size());
  std::size_t row = 0;
  for (std::size_t j = 0; j < projects.size(); ++j) {
    flow_row[j].resize(projects[j]->num_states());
    for (std::size_t s = 0; s < projects[j]->num_states(); ++s)
      flow_row[j][s] = row++;
  }

  const lp::Problem problem = build_lp(projects, activity_rhs);
  const auto sol = lp::solve(problem, lp::Solver::kRevised);
  STOSCHED_REQUIRE(sol.optimal(), "relaxation LP did not solve: " +
                                      lp::to_string(sol.status));

  RelaxationResult out;
  out.bound = sol.objective;
  out.advantage.resize(projects.size());
  out.activity.resize(projects.size());
  for (std::size_t j = 0; j < projects.size(); ++j) {
    const auto& p = *projects[j];
    const std::size_t n = p.num_states();
    out.advantage[j].resize(n);
    out.activity[j].resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      // Activity advantage at the optimal flow duals h (shift-invariant
      // within a project, so the redundant flow row is harmless).
      double adv = p.reward_active[s] - p.reward_passive[s];
      for (std::size_t t = 0; t < n; ++t)
        adv += (p.trans_active[s][t] - p.trans_passive[s][t]) *
               sol.duals[flow_row[j][t]];
      out.advantage[j][s] = adv;
      out.activity[j][s] = sol.x[offset[j] + 2 * s + 1];
    }
  }
  return out;
}

}  // namespace

lp::Problem relaxation_lp(const RestlessInstance& inst) {
  inst.validate();
  std::vector<const RestlessProject*> ptrs;
  ptrs.reserve(inst.projects.size());
  for (const auto& p : inst.projects) ptrs.push_back(&p);
  return build_lp(ptrs, static_cast<double>(inst.activate));
}

RelaxationResult solve_relaxation(const RestlessInstance& inst) {
  inst.validate();
  std::vector<const RestlessProject*> ptrs;
  ptrs.reserve(inst.projects.size());
  for (const auto& p : inst.projects) ptrs.push_back(&p);
  return solve_lp(ptrs, static_cast<double>(inst.activate));
}

RelaxationResult solve_relaxation_symmetric(const RestlessProject& proto,
                                            std::size_t copies,
                                            std::size_t activate) {
  proto.validate();
  STOSCHED_REQUIRE(copies >= 1 && activate >= 1 && activate <= copies,
                   "need 1 <= activate <= copies");
  std::vector<const RestlessProject*> one{&proto};
  RelaxationResult r = solve_lp(
      one, static_cast<double>(activate) / static_cast<double>(copies));
  r.bound *= static_cast<double>(copies);
  return r;
}

}  // namespace stosched::restless
