// tolerances.hpp — the numeric policy shared by both LP solvers.
//
// The dense tableau (simplex.cpp) and the sparse revised simplex
// (revised_simplex.cpp) are differential-tested against each other, so they
// must agree on what "zero" means: a pivot below kPivot is treated as
// structural zero, a basic value within kFeas of its bound is feasible, and
// ratio-test ties within kRatioTie are broken by Bland-friendly smallest
// index. Keeping the constants here (instead of per-TU copies) is what makes
// "objective agreement within 1e-6" a statement about the algorithms rather
// than about two silently different arithmetic regimes.
#pragma once

namespace stosched::lp::tol {

/// Entries at or below this magnitude never serve as pivots and never count
/// as an improving reduced cost.
inline constexpr double kPivot = 1e-9;

/// A basic variable within this distance of its bound (or an infeasibility
/// sum below it) counts as feasible.
inline constexpr double kFeas = 1e-7;

/// Ratio-test ties within this width are broken by smallest basis index —
/// the lexicographic-ish rule both solvers share for anti-cycling.
inline constexpr double kRatioTie = 1e-12;

/// A pivot step shorter than this counts as degenerate; a streak of them
/// flips pricing from Dantzig to Bland.
inline constexpr double kDegenerateStep = 1e-12;

/// Eta entries below this magnitude are dropped when the revised solver
/// appends an update or refactorizes (bounds fill without hurting the
/// refactorization residual below).
inline constexpr double kEtaDrop = 1e-12;

/// Contract bound on the refactorization residual max_i |B·B⁻¹eᵢ − eᵢ|
/// probed after every rebuild of the eta file (checked when
/// STOSCHED_CONTRACTS arms ghost code).
inline constexpr double kRefactorResidual = 1e-6;

}  // namespace stosched::lp::tol
