#include "lp/adaptive_greedy.hpp"

#include <limits>

#include "util/check.hpp"

namespace stosched::lp {

AdaptiveGreedyResult adaptive_greedy(
    std::size_t n,
    const std::function<std::vector<double>(const std::vector<char>&)>& coeffs,
    const std::vector<double>& costs) {
  STOSCHED_REQUIRE(n >= 1, "need at least one class");
  STOSCHED_REQUIRE(costs.size() == n, "cost vector shape mismatch");

  AdaptiveGreedyResult out;
  out.index.assign(n, 0.0);
  out.priority.assign(n, 0);
  out.y.assign(n, 0.0);

  // Peel from the *lowest* priority class upward. At step k (k = n..1) the
  // candidate set S_k holds the classes not yet peeled; the peeled class
  // minimizes the adjusted cost rate
  //     ( c_j - Σ_{peeled sets L} A_j^L y_L ) / A_j^{S_k}.
  // Its index is the cumulative sum of the dual increments y.
  std::vector<char> in_set(n, 1);
  // adjusted[j] accumulates Σ_L A_j^L y_L over already-peeled sets L.
  std::vector<double> adjusted(n, 0.0);
  double index_sum = 0.0;

  for (std::size_t step = n; step-- > 0;) {
    const std::vector<double> a = coeffs(in_set);
    double best = std::numeric_limits<double>::infinity();
    std::size_t pick = n;
    // Scan high ids first so ties peel the larger id into lower priority,
    // matching the convention "stable sort by index descending".
    for (std::size_t j = n; j-- > 0;) {
      if (!in_set[j]) continue;
      STOSCHED_REQUIRE(a[j] > 0.0,
                       "conservation-law coefficients must be positive");
      const double rate = (costs[j] - adjusted[j]) / a[j];
      if (rate < best) {
        best = rate;
        pick = j;
      }
    }
    STOSCHED_ASSERT(pick < n, "no class picked in adaptive greedy");

    out.y[step] = best;
    index_sum += best;
    out.index[pick] = index_sum;
    out.priority[step] = pick;

    // Update the adjustment with this set's coefficients before shrinking.
    for (std::size_t j = 0; j < n; ++j)
      if (in_set[j]) adjusted[j] += a[j] * best;
    in_set[pick] = 0;
  }
  return out;
}

}  // namespace stosched::lp
