// revised_simplex.hpp — sparse revised primal simplex with a factorized
// basis and warm starts, the production engine behind lp::Solver::kRevised.
//
// Where the dense tableau (simplex.hpp) updates an (m+1)×(n+1) matrix per
// pivot, the revised method keeps only the basis inverse — as an eta file
// (lp/sparse.hpp) — and works column-wise over the CSC constraint matrix:
//   * pricing: one BTRAN (y = B⁻ᵀ·cost_B) plus a sparse dot per nonbasic
//     column, O(nnz(A)) instead of O(m·n);
//   * ratio test / update: one FTRAN of the entering column and one new eta.
// Bounded variables are native: every variable carries [lower, upper], so
// kGe/kEq rows need slack bounds ((-∞,0] / [0,0]) instead of artificial
// columns, and phase 1 minimizes the total bound violation of the basic
// variables directly (a composite phase 1 — the cost vector is ±1 on
// infeasible basics). That choice is what makes warm starts cheap: a basis
// from a neighbouring solve (same shape, perturbed rhs/costs — the CRN
// sweep pattern in online/lower_bound.cpp) is usually a handful of phase-1
// pivots from feasible, instead of a full artificial-variable restart.
//
// Pricing is Dantzig with a Bland fallback after a degenerate streak, the
// same anti-cycling policy (and the same tolerances, lp/tolerances.hpp) as
// the dense solver — the two engines are differential-tested against each
// other in tests/test_lp_revised.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/simplex.hpp"
#include "lp/sparse.hpp"

namespace stosched::lp {

/// Where a variable sits relative to its bounds. Nonbasic variables rest
/// exactly on a finite bound; basic values are implied by the basis.
enum class VarStatus : std::uint8_t { kAtLower, kAtUpper, kBasic };

/// A simplex basis in exportable form: one status per variable (structural
/// variables first, then one slack per row) and the basic variable of each
/// row. solve_revised() fills it on success; passing it back into a solve of
/// a same-shaped problem (identical variable/row counts — rhs and costs may
/// differ) re-pivots from there instead of restarting phase 1. Incompatible
/// or singular bases are detected and fall back to a cold start.
struct Basis {
  std::size_t vars = 0;  ///< structural variables
  std::size_t rows = 0;  ///< constraint rows
  std::vector<VarStatus> status;   ///< vars + rows entries
  std::vector<std::uint32_t> basic;  ///< per row: index of its basic variable

  [[nodiscard]] bool empty() const { return status.empty(); }
  /// Structurally usable for a problem with the given shape?
  [[nodiscard]] bool matches(std::size_t n_vars, std::size_t n_rows) const;
};

/// Cold solve. Deterministic; agrees with the dense engine to within the
/// shared tolerances.
Solution solve_revised(const Problem& p, std::size_t max_iterations = 100000);

/// Warm solve: start from `basis` when it matches the problem's shape and
/// factorizes cleanly (else cold-start). On any completed solve the final
/// basis is written back, so successive calls chain naturally.
Solution solve_revised(const Problem& p, Basis& basis,
                       std::size_t max_iterations = 100000);

}  // namespace stosched::lp
