#include "lp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The working set of one solve. Computational form:
///
///     minimize  ĉ·x̃   s.t.   [A | I] x̃ = b,   l ≤ x̃ ≤ u
///
/// over the structural variables followed by one slack per row. Row sense
/// lives entirely in the slack bounds — kLe: s ∈ [0,∞), kGe: s ∈ (-∞,0],
/// kEq: s ∈ [0,0] — so every slack column is +e_i, the all-slack basis is
/// the identity (empty eta file), and no artificial columns ever exist.
/// Maximization flips the cost sign (ĉ = dir·c with dir = ±1).
struct Engine {
  // Problem data.
  std::size_t n = 0;      ///< structural variables
  std::size_t m = 0;      ///< rows
  std::size_t total = 0;  ///< n + m columns
  double dir = 1.0;       ///< +1 minimize, -1 maximize
  SparseColumns cols;     ///< all columns, slacks included
  std::vector<double> lower, upper;
  std::vector<double> chat;  ///< internal min costs (slacks 0)
  std::vector<double> b;

  // Basis state.
  std::vector<VarStatus> status;     ///< per column
  std::vector<std::uint32_t> basic;  ///< per row
  std::vector<double> xb;            ///< value of basic[r], per row
  EtaFile file;
  std::size_t pivots_since_refactor = 0;
  static constexpr std::size_t kRefactorInterval = 64;

  // Scratch, sized m.
  std::vector<double> w;       ///< FTRAN of the entering column
  std::vector<double> y;       ///< BTRAN duals of the current phase cost
  std::vector<std::int8_t> d;  ///< -1 below lower / +1 above upper / 0 ok

  // Ghost state for the phase-2 monotonicity contract.
  STOSCHED_CONTRACT_STATE(double ghost_obj = 0.0; bool ghost_phase2 = false;)

  void build(const Problem& p) {
    n = p.costs.size();
    m = p.constraints.size();
    total = n + m;
    STOSCHED_REQUIRE(n > 0, "LP needs at least one variable");
    dir = p.objective == Problem::Objective::kMinimize ? 1.0 : -1.0;

    lower.assign(total, 0.0);
    upper.assign(total, kInf);
    chat.assign(total, 0.0);
    for (std::size_t j = 0; j < n; ++j) chat[j] = dir * p.costs[j];
    b.resize(m);

    // CSC assembly, two passes over the sparse rows; slack column n+i is
    // the single entry (i, 1). Duplicate row indices stay as separate
    // entries — every consumer (scatter/dot) is additive.
    std::vector<std::size_t> count(total, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const Constraint& row = p.constraints[i];
      for (const std::size_t j : row.idx) {
        STOSCHED_REQUIRE(j < n, "constraint column index out of range");
        ++count[j];
      }
      ++count[n + i];
    }
    cols.rows = m;
    cols.start.assign(total + 1, 0);
    for (std::size_t j = 0; j < total; ++j)
      cols.start[j + 1] = cols.start[j] + count[j];
    cols.row.resize(cols.start[total]);
    cols.value.resize(cols.start[total]);
    std::vector<std::size_t> fill(cols.start.begin(), cols.start.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
      const Constraint& row = p.constraints[i];
      for (std::size_t k = 0; k < row.idx.size(); ++k) {
        const std::size_t at = fill[row.idx[k]]++;
        cols.row[at] = static_cast<std::uint32_t>(i);
        cols.value[at] = row.val[k];
      }
      const std::size_t at = fill[n + i]++;
      cols.row[at] = static_cast<std::uint32_t>(i);
      cols.value[at] = 1.0;

      b[i] = row.rhs;
      switch (row.sense) {
        case Sense::kLe:
          break;  // s ∈ [0, ∞)
        case Sense::kGe:
          lower[n + i] = -kInf;
          upper[n + i] = 0.0;
          break;
        case Sense::kEq:
          upper[n + i] = 0.0;  // fixed at zero
          break;
      }
    }
    w.assign(m, 0.0);
    y.assign(m, 0.0);
    d.assign(m, 0);
  }

  void add_column(std::size_t j, double scale, std::vector<double>& v) const {
    for (std::size_t k = cols.start[j]; k < cols.start[j + 1]; ++k)
      v[cols.row[k]] += scale * cols.value[k];
  }

  double dot_column(std::size_t j, const std::vector<double>& v) const {
    double s = 0.0;
    for (std::size_t k = cols.start[j]; k < cols.start[j + 1]; ++k)
      s += v[cols.row[k]] * cols.value[k];
    return s;
  }

  /// Value a nonbasic variable rests at (always one of its finite bounds).
  double nonbasic_value(std::size_t j) const {
    return status[j] == VarStatus::kAtLower ? lower[j] : upper[j];
  }

  /// Every variable nonbasic at its finite-lower (or, for kGe slacks, its
  /// finite-upper) bound; all slacks basic; empty eta file (B = I).
  void set_slack_basis() {
    status.assign(total, VarStatus::kAtLower);
    for (std::size_t j = 0; j < total; ++j)
      if (lower[j] == -kInf) status[j] = VarStatus::kAtUpper;
    basic.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      basic[i] = static_cast<std::uint32_t>(n + i);
      status[n + i] = VarStatus::kBasic;
    }
    file.clear();
    pivots_since_refactor = 0;
  }

  /// A warm basis is usable when its statuses are consistent with this
  /// problem's bounds and its basic set has full rank (checked by
  /// refactorize()). Shape compatibility was already checked by the caller.
  bool load_basis(const Basis& warm) {
    for (std::size_t j = 0; j < total; ++j) {
      if (warm.status[j] == VarStatus::kAtLower && lower[j] == -kInf)
        return false;
      if (warm.status[j] == VarStatus::kAtUpper && upper[j] == kInf)
        return false;
    }
    status = warm.status;
    basic = warm.basic;
    return refactorize();
  }

  /// Rebuild the eta file from the basis columns: sparsest column first,
  /// partial pivoting over the not-yet-pivoted rows. Reorders `basic` so
  /// that basic[r] is the variable pivoted in row r (the product form then
  /// inverts that column order exactly). Returns false on a singular basis.
  bool refactorize() {
    std::vector<std::uint32_t> order(basic);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b_) {
                const std::size_t na = cols.start[a + 1] - cols.start[a];
                const std::size_t nb = cols.start[b_ + 1] - cols.start[b_];
                return na != nb ? na < nb : a < b_;
              });
    file.clear();
    std::vector<char> assigned(m, 0);
    std::vector<std::uint32_t> new_basic(m, 0);
    std::vector<double> v(m);
    for (const std::uint32_t var : order) {
      std::fill(v.begin(), v.end(), 0.0);
      add_column(var, 1.0, v);
      file.ftran(v);
      std::size_t r = m;
      double best = tol::kPivot;
      for (std::size_t i = 0; i < m; ++i) {
        if (assigned[i]) continue;
        const double mag = std::abs(v[i]);
        if (mag > best) {
          best = mag;
          r = i;
        }
      }
      if (r == m) return false;  // singular (or numerically so)
      file.append(v, static_cast<std::uint32_t>(r), tol::kEtaDrop);
      assigned[r] = 1;
      new_basic[r] = var;
    }
    basic = std::move(new_basic);
    pivots_since_refactor = 0;
    STOSCHED_ENSURES(refactor_residual_ok(),
                     "refactorization residual exceeds tolerance");
    return true;
  }

  /// Ghost probe for the contract above: ‖B·(B⁻¹eᵢ) − eᵢ‖∞ on a couple of
  /// unit vectors. O(m·nnz) but only ever runs with contracts armed.
  bool refactor_residual_ok() const {
    for (const std::size_t probe : {std::size_t{0}, m / 2}) {
      if (probe >= m) continue;
      std::vector<double> e(m, 0.0);
      e[probe] = 1.0;
      file.ftran(e);
      std::vector<double> res(m, 0.0);
      for (std::size_t r = 0; r < m; ++r)
        if (e[r] != 0.0) add_column(basic[r], e[r], res);
      res[probe] -= 1.0;
      for (const double v : res)
        if (std::abs(v) > tol::kRefactorResidual) return false;
    }
    return true;
  }

  /// Contract predicate: exactly m basic columns, and the row bookkeeping
  /// agrees with the per-variable statuses.
  bool basis_consistent() const {
    std::size_t basics = 0;
    for (const VarStatus s : status) basics += s == VarStatus::kBasic;
    if (basics != m) return false;
    for (std::size_t r = 0; r < m; ++r)
      if (status[basic[r]] != VarStatus::kBasic) return false;
    return true;
  }

  /// Recompute the basic values from scratch: x_B = B⁻¹(b − N·x_N).
  void compute_xb() {
    xb = b;
    for (std::size_t j = 0; j < total; ++j) {
      if (status[j] == VarStatus::kBasic) continue;
      const double v = nonbasic_value(j);
      if (v != 0.0) add_column(j, -v, xb);
    }
    file.ftran(xb);
  }

  /// Internal (minimization-form) objective of the current iterate.
  double internal_objective() const {
    double obj = 0.0;
    for (std::size_t j = 0; j < total; ++j)
      if (status[j] != VarStatus::kBasic && chat[j] != 0.0)
        obj += chat[j] * nonbasic_value(j);
    for (std::size_t r = 0; r < m; ++r) obj += chat[basic[r]] * xb[r];
    return obj;
  }

  /// The iterate loop. Each pass classifies basic feasibility and runs one
  /// composite phase-1 step (minimize total bound violation) or one phase-2
  /// step — so a warm start that lands feasible skips phase 1 entirely.
  Solution run(std::size_t max_iter) {
    Solution sol;
    compute_xb();
    std::size_t degenerate_run = 0;
    std::size_t stalls = 0;
    bool bland = false;
    STOSCHED_CONTRACT_CODE(ghost_phase2 = false;);

    while (true) {
      if (sol.iterations >= max_iter) {
        sol.status = Solution::Status::kIterLimit;
        return sol;
      }
      if (pivots_since_refactor >= kRefactorInterval) {
        if (!refactorize()) set_slack_basis();  // degraded but sound restart
        compute_xb();
      }

      // Classify the basics; phase 1 while any violates a bound.
      bool phase1 = false;
      for (std::size_t r = 0; r < m; ++r) {
        const std::uint32_t bv = basic[r];
        d[r] = 0;
        if (xb[r] < lower[bv] - tol::kFeas) {
          d[r] = -1;
          phase1 = true;
        } else if (xb[r] > upper[bv] + tol::kFeas) {
          d[r] = 1;
          phase1 = true;
        }
      }

      // Phase-2 objective never worsens between feasible iterates (each
      // step moves along a direction whose internal-objective slope is
      // negative), checked as a ghost invariant.
      STOSCHED_CONTRACT_CODE(if (!phase1) {
        const double obj = internal_objective();
        STOSCHED_INVARIANT(
            !ghost_phase2 ||
                obj <= ghost_obj + tol::kFeas * (1.0 + std::abs(ghost_obj)),
            "phase-2 objective worsened across a pivot");
        ghost_obj = obj;
        ghost_phase2 = true;
      } else {
        ghost_phase2 = false;
      });

      // Duals of the phase cost: y = B⁻ᵀ g_B, where g is the composite
      // phase-1 cost (±1 on infeasible basics) or ĉ.
      for (std::size_t r = 0; r < m; ++r)
        y[r] = phase1 ? static_cast<double>(d[r]) : chat[basic[r]];
      file.btran(y);

      // Pricing: Dantzig over all nonbasic columns (Bland once a degenerate
      // streak suggests cycling). slope = σ_j·ẑ_j is the objective's rate of
      // change when j moves off its bound (σ = +1 from lower, −1 from
      // upper); improving means slope < −kPivot. Fixed columns (kEq slacks)
      // never enter.
      std::size_t enter = total;
      double esign = 1.0;
      double best = -tol::kPivot;
      for (std::size_t j = 0; j < total; ++j) {
        if (status[j] == VarStatus::kBasic) continue;
        if (lower[j] == upper[j]) continue;
        const double z = (phase1 ? 0.0 : chat[j]) - dot_column(j, y);
        const double sigma = status[j] == VarStatus::kAtLower ? 1.0 : -1.0;
        const double slope = sigma * z;
        if (bland) {
          if (slope < -tol::kPivot) {
            enter = j;
            esign = sigma;
            break;
          }
        } else if (slope < best) {
          best = slope;
          enter = j;
          esign = sigma;
        }
      }
      if (enter == total) {
        // No improving column: phase-1 optimum with residual violation
        // means the LP is infeasible; otherwise we are optimal and `y`
        // already holds the phase-2 duals.
        sol.status = phase1 ? Solution::Status::kInfeasible
                            : Solution::Status::kOptimal;
        return sol;
      }

      // FTRAN the entering column, then the bounded-variable ratio test:
      // basics block where they reach a bound (infeasible basics at the
      // bound they violate — the first breakpoint of the piecewise-linear
      // phase-1 objective); the entering variable itself blocks at its
      // opposite bound (a bound flip, no pivot).
      std::fill(w.begin(), w.end(), 0.0);
      add_column(enter, 1.0, w);
      file.ftran(w);

      double alpha = upper[enter] - lower[enter];  // flip step, often ∞
      std::size_t leave = m;                       // m = bound flip
      bool leave_at_upper = false;
      for (std::size_t r = 0; r < m; ++r) {
        const double delta = esign * w[r];  // −d(x_B[r])/d(step)
        if (delta < tol::kPivot && delta > -tol::kPivot) continue;
        const std::uint32_t bv = basic[r];
        double a;
        bool at_upper;
        if (d[r] == 0) {
          if (delta > 0.0) {
            if (lower[bv] == -kInf) continue;
            a = (xb[r] - lower[bv]) / delta;
            at_upper = false;
          } else {
            if (upper[bv] == kInf) continue;
            a = (xb[r] - upper[bv]) / delta;
            at_upper = true;
          }
        } else if (d[r] < 0) {
          if (delta > 0.0) continue;  // moves further below, not blocking
          a = (xb[r] - lower[bv]) / delta;
          at_upper = false;
        } else {
          if (delta < 0.0) continue;
          a = (xb[r] - upper[bv]) / delta;
          at_upper = true;
        }
        if (a < 0.0) a = 0.0;  // tolerance-negative step: degenerate
        if (a < alpha - tol::kRatioTie ||
            (a < alpha + tol::kRatioTie && leave < m && bv < basic[leave])) {
          alpha = a;
          leave = r;
          leave_at_upper = at_upper;
        }
      }

      if (alpha == kInf) {
        if (!phase1) {
          sol.status = Solution::Status::kUnbounded;
          return sol;
        }
        // A descent direction for the infeasibility always has a finite
        // breakpoint in exact arithmetic; reaching here means the factor
        // went stale. Rebuild and retry, give up if it persists.
        if (++stalls > 2) {
          sol.status = Solution::Status::kIterLimit;
          return sol;
        }
        if (!refactorize()) set_slack_basis();
        compute_xb();
        continue;
      }
      stalls = 0;

      ++sol.iterations;
      degenerate_run =
          alpha < tol::kDegenerateStep ? degenerate_run + 1 : 0;
      if (degenerate_run > 2 * m + 20) bland = true;

      if (alpha != 0.0)
        for (std::size_t r = 0; r < m; ++r) xb[r] -= esign * alpha * w[r];

      if (leave == m) {
        // Bound flip: the entering variable traversed to its other bound.
        status[enter] = status[enter] == VarStatus::kAtLower
                            ? VarStatus::kAtUpper
                            : VarStatus::kAtLower;
        continue;
      }

      const std::uint32_t out = basic[leave];
      const double in_value = (esign > 0.0 ? lower[enter] : upper[enter]) +
                              esign * alpha;
      status[out] =
          leave_at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      status[enter] = VarStatus::kBasic;
      basic[leave] = static_cast<std::uint32_t>(enter);
      xb[leave] = in_value;
      file.append(w, static_cast<std::uint32_t>(leave), tol::kEtaDrop);
      ++pivots_since_refactor;
      STOSCHED_INVARIANT(basis_consistent(),
                         "basis column count != row count after pivot");
    }
  }

  /// Fill the caller-facing Solution from an optimal iterate. `y` must hold
  /// the phase-2 duals (B⁻ᵀĉ_B), which run() guarantees at kOptimal exit.
  void extract(const Problem& p, Solution& sol) const {
    sol.x.assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      if (status[j] != VarStatus::kBasic) sol.x[j] = nonbasic_value(j);
    for (std::size_t r = 0; r < m; ++r)
      if (basic[r] < n) sol.x[basic[r]] = xb[r];
    sol.objective = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      sol.objective += p.costs[j] * sol.x[j];
    // duals/reduced costs back in the caller's sense (ĉ = dir·c flips both).
    sol.duals.assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) sol.duals[i] = dir * y[i];
    sol.reduced_costs.assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (status[j] == VarStatus::kBasic) continue;  // 0, as dense reports
      sol.reduced_costs[j] = dir * (chat[j] - dot_column(j, y));
    }
  }

  void export_basis(Basis& out) const {
    out.vars = n;
    out.rows = m;
    out.status = status;
    out.basic = basic;
  }
};

Solution solve_revised_impl(const Problem& p, Basis* warm,
                            std::size_t max_iterations) {
  STOSCHED_TRACE_SPAN("lp", "lp_solve_revised");
  Engine e;
  e.build(p);
  if (warm == nullptr || !warm->matches(e.n, e.m) || !e.load_basis(*warm))
    e.set_slack_basis();
  Solution sol = e.run(max_iterations);
  add_process_lp_solve(sol.iterations);
  if (sol.status == Solution::Status::kOptimal) e.extract(p, sol);
  if (warm != nullptr) e.export_basis(*warm);
  return sol;
}

}  // namespace

bool Basis::matches(std::size_t n_vars, std::size_t n_rows) const {
  if (vars != n_vars || rows != n_rows) return false;
  if (status.size() != vars + rows || basic.size() != rows) return false;
  std::size_t basics = 0;
  for (const VarStatus s : status) basics += s == VarStatus::kBasic;
  if (basics != rows) return false;
  for (const std::uint32_t bv : basic)
    if (bv >= status.size() || status[bv] != VarStatus::kBasic) return false;
  return true;
}

Solution solve_revised(const Problem& p, std::size_t max_iterations) {
  return solve_revised_impl(p, nullptr, max_iterations);
}

Solution solve_revised(const Problem& p, Basis& basis,
                       std::size_t max_iterations) {
  return solve_revised_impl(p, &basis, max_iterations);
}

Solution solve(const Problem& p, Solver solver, std::size_t max_iterations) {
  return solver == Solver::kDense ? solve(p, max_iterations)
                                  : solve_revised(p, max_iterations);
}

}  // namespace stosched::lp
