// sparse.hpp — compressed sparse columns and the product-form eta file, the
// storage layer under the revised simplex (revised_simplex.cpp).
//
// The basis inverse is kept as a product of eta matrices ("product form of
// the inverse", the layout chuffed's LUFactor also uses): each pivot appends
// one eta; refactorization rebuilds the file from the basis columns with
// partial pivoting, sparsest column first. An eta is the identity except in
// one column, so FTRAN (v ← B⁻¹v) applies the file left-to-right with one
// axpy per eta and BTRAN (v ← B⁻ᵀv) applies transposed etas right-to-left
// with one sparse dot each. This is a Gauss–Jordan product form rather than
// a triangular LU — more fill per eta, but one code path serves both the
// per-pivot update and the rebuild, and the refactorization interval keeps
// the file short.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stosched::lp {

/// Column-major sparse matrix (CSC): column j holds entries
/// [start[j], start[j+1]) of (row, value).
struct SparseColumns {
  std::size_t rows = 0;
  std::vector<std::size_t> start;  ///< cols+1 offsets into row/value
  std::vector<std::uint32_t> row;
  std::vector<double> value;

  [[nodiscard]] std::size_t cols() const {
    return start.empty() ? 0 : start.size() - 1;
  }
  [[nodiscard]] std::size_t nnz() const { return value.size(); }
};

/// One eta matrix: the identity with column `pivot` replaced. Applying it to
/// a vector scales entry `pivot` by `diag` and adds `off` multiples of the
/// old pivot entry elsewhere.
struct Eta {
  std::uint32_t pivot = 0;
  double diag = 1.0;
  std::vector<std::pair<std::uint32_t, double>> off;
};

/// The eta file: B⁻¹ = E_K ··· E_1 for the current basis. append() is both
/// the per-pivot update (w = current B⁻¹ times the entering column) and one
/// step of refactorization (w = partial product times a basis column).
class EtaFile {
 public:
  void clear() { etas_.clear(); }
  [[nodiscard]] std::size_t size() const { return etas_.size(); }
  [[nodiscard]] std::size_t nnz() const {
    std::size_t total = 0;
    for (const Eta& e : etas_) total += 1 + e.off.size();
    return total;
  }

  /// Append the eta that maps the (already FTRANed) column w to e_pivot.
  /// Entries below drop_tol are discarded; a column that is already e_pivot
  /// appends nothing. The caller guarantees |w[pivot]| is pivot-worthy.
  void append(const std::vector<double>& w, std::uint32_t pivot,
              double drop_tol) {
    Eta e;
    e.pivot = pivot;
    const double pv = w[pivot];
    e.diag = 1.0 / pv;
    for (std::uint32_t k = 0; k < w.size(); ++k) {
      if (k == pivot) continue;
      const double v = w[k];
      if (v > drop_tol || v < -drop_tol) e.off.emplace_back(k, -v / pv);
    }
    if (e.off.empty() && e.diag == 1.0) return;  // identity eta
    etas_.push_back(std::move(e));
  }

  /// v ← B⁻¹ v (dense work vector).
  void ftran(std::vector<double>& v) const {
    for (const Eta& e : etas_) {
      const double t = v[e.pivot];
      if (t == 0.0) continue;
      v[e.pivot] = e.diag * t;
      for (const auto& [k, a] : e.off) v[k] += a * t;
    }
  }

  /// v ← B⁻ᵀ v (dense work vector).
  void btran(std::vector<double>& v) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double s = it->diag * v[it->pivot];
      for (const auto& [k, a] : it->off) s += a * v[k];
      v[it->pivot] = s;
    }
  }

 private:
  std::vector<Eta> etas_;
};

}  // namespace stosched::lp
