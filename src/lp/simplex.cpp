#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace stosched::lp {

namespace {

/// Internal dense tableau. Rows 0..m-1 are constraints, row m is the
/// reduced-cost row (entries c_j - z_j for the current maximization), and
/// column N is the right-hand side.
struct Tableau {
  std::size_t m = 0;          // constraint rows
  std::size_t n_total = 0;    // structural + slack/surplus + artificial
  std::vector<double> a;      // (m+1) x (n_total+1), row-major
  std::vector<std::size_t> basis;  // basic column of each row

  double& at(std::size_t r, std::size_t c) { return a[r * (n_total + 1) + c]; }
  double at(std::size_t r, std::size_t c) const {
    return a[r * (n_total + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, n_total); }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_val = at(pr, pc);
    STOSCHED_ASSERT(std::abs(pivot_val) > tol::kPivot, "pivot too small");
    const double inv = 1.0 / pivot_val;
    for (std::size_t c = 0; c <= n_total; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= n_total; ++c)
        at(r, c) -= factor * at(pr, c);
      at(r, pc) = 0.0;
    }
    basis[pr] = pc;
  }
};

/// Runs the simplex loop on the current objective row. `eligible(c)` masks
/// columns that may enter (used to bar artificials in phase 2).
/// Returns kOptimal or kUnbounded/kIterLimit.
Solution::Status run_simplex(Tableau& t, const std::vector<char>& eligible,
                             std::size_t max_iter, std::size_t& iters) {
  std::size_t degenerate_run = 0;
  bool bland = false;
  while (iters < max_iter) {
    // Pricing: Dantzig (most positive reduced cost) or Bland (smallest index)
    // once a degenerate streak suggests cycling risk.
    std::size_t enter = t.n_total;
    double best = tol::kPivot;
    for (std::size_t c = 0; c < t.n_total; ++c) {
      if (!eligible[c]) continue;
      const double rc = t.at(t.m, c);
      if (bland) {
        if (rc > tol::kPivot) {
          enter = c;
          break;
        }
      } else if (rc > best) {
        best = rc;
        enter = c;
      }
    }
    if (enter == t.n_total) return Solution::Status::kOptimal;

    // Ratio test: leaving row minimizes rhs / column over positive entries;
    // ties broken by smallest basis index (lexicographic-ish, aids Bland).
    std::size_t leave = t.m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.m; ++r) {
      const double col = t.at(r, enter);
      if (col > tol::kPivot) {
        const double ratio = t.rhs(r) / col;
        if (ratio < best_ratio - tol::kRatioTie ||
            (ratio < best_ratio + tol::kRatioTie && leave < t.m &&
             t.basis[r] < t.basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t.m) return Solution::Status::kUnbounded;

    degenerate_run =
        best_ratio < tol::kDegenerateStep ? degenerate_run + 1 : 0;
    if (degenerate_run > 2 * t.m + 20) bland = true;

    t.pivot(leave, enter);
    ++iters;
  }
  return Solution::Status::kIterLimit;
}

// Process-wide LP effort, mirroring the DES event counter: obs registry
// counters with relaxed adds — the totals are commutative sums, so they
// are schedule-independent under OpenMP (the --exact determinism gate
// relies on this). The names are the bench JSON column names.
obs::Counter& solves_counter() {
  static obs::Counter& c = obs::counter("lp_solves");
  return c;
}

obs::Counter& iterations_counter() {
  static obs::Counter& c = obs::counter("lp_iterations");
  return c;
}

}  // namespace

LpCounters process_lp_counters() noexcept {
  return {solves_counter().value(), iterations_counter().value()};
}

void add_process_lp_solve(std::uint64_t iterations) noexcept {
  solves_counter().add(1);
  iterations_counter().add(iterations);
}

Problem Problem::maximize(std::vector<double> costs) {
  Problem p;
  p.objective = Objective::kMaximize;
  p.costs = std::move(costs);
  return p;
}

Problem Problem::minimize(std::vector<double> costs) {
  Problem p;
  p.objective = Objective::kMinimize;
  p.costs = std::move(costs);
  return p;
}

Problem& Problem::subject_to(const std::vector<double>& coeffs, Sense sense,
                             double rhs) {
  STOSCHED_REQUIRE(coeffs.size() == costs.size(),
                   "constraint width must match variable count");
  Constraint c;
  c.sense = sense;
  c.rhs = rhs;
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    if (coeffs[j] == 0.0) continue;
    c.idx.push_back(j);
    c.val.push_back(coeffs[j]);
  }
  constraints.push_back(std::move(c));
  return *this;
}

Problem& Problem::subject_to_sparse(std::vector<std::size_t> idx,
                                    std::vector<double> val, Sense sense,
                                    double rhs) {
  STOSCHED_REQUIRE(idx.size() == val.size(),
                   "sparse constraint: index/value length mismatch");
  for (const std::size_t j : idx)
    STOSCHED_REQUIRE(j < costs.size(),
                     "sparse constraint: column index out of range");
  constraints.push_back(Constraint{std::move(idx), std::move(val), sense, rhs});
  return *this;
}

std::string to_string(Solution::Status s) {
  switch (s) {
    case Solution::Status::kOptimal:
      return "optimal";
    case Solution::Status::kInfeasible:
      return "infeasible";
    case Solution::Status::kUnbounded:
      return "unbounded";
    case Solution::Status::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

Solution solve(const Problem& p, std::size_t max_iterations) {
  STOSCHED_TRACE_SPAN("lp", "lp_solve_dense");
  const std::size_t n = p.costs.size();
  const std::size_t m = p.constraints.size();
  STOSCHED_REQUIRE(n > 0, "LP needs at least one variable");

  // Maximization sign: internally we always maximize sign * c.
  const double sign =
      p.objective == Problem::Objective::kMaximize ? 1.0 : -1.0;

  // Column layout: [0,n) structural | slack/surplus | artificial.
  // First pass: count extra columns, normalizing rhs >= 0.
  std::size_t n_slack = 0, n_art = 0;
  std::vector<double> row_scale(m, 1.0);
  std::vector<Sense> sense(m);
  for (std::size_t i = 0; i < m; ++i) {
    sense[i] = p.constraints[i].sense;
    if (p.constraints[i].rhs < 0.0) {
      row_scale[i] = -1.0;
      sense[i] = sense[i] == Sense::kLe   ? Sense::kGe
                 : sense[i] == Sense::kGe ? Sense::kLe
                                          : Sense::kEq;
    }
    if (sense[i] != Sense::kEq) ++n_slack;
    if (sense[i] != Sense::kLe) ++n_art;
  }

  Tableau t;
  t.m = m;
  t.n_total = n + n_slack + n_art;
  t.a.assign((m + 1) * (t.n_total + 1), 0.0);
  t.basis.assign(m, 0);

  std::vector<std::size_t> slack_col(m, SIZE_MAX), art_col(m, SIZE_MAX);
  std::size_t next_slack = n, next_art = n + n_slack;
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& row = p.constraints[i];
    for (std::size_t k = 0; k < row.idx.size(); ++k) {
      STOSCHED_REQUIRE(row.idx[k] < n,
                       "constraint column index out of range");
      t.at(i, row.idx[k]) += row_scale[i] * row.val[k];
    }
    t.rhs(i) = row_scale[i] * row.rhs;
    if (sense[i] != Sense::kEq) {
      slack_col[i] = next_slack++;
      t.at(i, slack_col[i]) = sense[i] == Sense::kLe ? 1.0 : -1.0;
    }
    if (sense[i] != Sense::kLe) {
      art_col[i] = next_art++;
      t.at(i, art_col[i]) = 1.0;
      t.basis[i] = art_col[i];
    } else {
      t.basis[i] = slack_col[i];
    }
  }

  Solution sol;
  std::vector<char> eligible(t.n_total, 1);

  // ---- Phase 1: maximize -(sum of artificials). ----
  if (n_art > 0) {
    // Objective row: for each artificial basic row, add the row (so the
    // reduced costs of the initial basis are zero).
    for (std::size_t i = 0; i < m; ++i) {
      if (art_col[i] == SIZE_MAX) continue;
      for (std::size_t c = 0; c <= t.n_total; ++c)
        t.at(t.m, c) += t.at(i, c);
    }
    for (std::size_t i = 0; i < m; ++i)
      if (art_col[i] != SIZE_MAX) t.at(t.m, art_col[i]) = 0.0;

    const auto status =
        run_simplex(t, eligible, max_iterations, sol.iterations);
    if (status == Solution::Status::kIterLimit) {
      sol.status = status;
      add_process_lp_solve(sol.iterations);
      return sol;
    }
    // Phase-1 optimum is -(infeasibility); rhs of the objective row holds it.
    if (t.rhs(t.m) > tol::kFeas) {
      sol.status = Solution::Status::kInfeasible;
      add_process_lp_solve(sol.iterations);
      return sol;
    }
    // Pivot any artificial still in the basis (at zero level) out, if a
    // nonartificial column with a nonzero entry exists in its row.
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis[i] < n + n_slack) continue;
      for (std::size_t c = 0; c < n + n_slack; ++c) {
        if (std::abs(t.at(i, c)) > tol::kPivot) {
          t.pivot(i, c);
          break;
        }
      }
    }
    // Bar artificials from re-entering.
    for (std::size_t c = n + n_slack; c < t.n_total; ++c) eligible[c] = 0;
  }

  // ---- Phase 2: maximize sign * c over structural variables. ----
  // Rebuild the objective row from scratch for the current basis:
  // rc_j = c_j - c_B B^{-1} A_j. We compute it by starting from c and
  // eliminating basic columns.
  for (std::size_t c = 0; c <= t.n_total; ++c) t.at(t.m, c) = 0.0;
  for (std::size_t j = 0; j < n; ++j) t.at(t.m, j) = sign * p.costs[j];
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t bc = t.basis[i];
    const double cb = bc < n ? sign * p.costs[bc] : 0.0;
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c <= t.n_total; ++c)
      t.at(t.m, c) -= cb * t.at(i, c);
  }
  for (std::size_t i = 0; i < m; ++i) t.at(t.m, t.basis[i]) = 0.0;

  sol.status = run_simplex(t, eligible, max_iterations, sol.iterations);
  add_process_lp_solve(sol.iterations);
  if (sol.status != Solution::Status::kOptimal) return sol;

  // Extract primal values.
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (t.basis[i] < n) sol.x[t.basis[i]] = t.rhs(i);

  // Objective in the caller's sense. The tableau's objective row rhs equals
  // -(current max-form objective value).
  const double obj_max = -t.rhs(t.m);
  sol.objective = sign * obj_max;

  // Duals: y_i = -rc(column with +e_i footprint in row i). Slack columns of
  // <= rows carry +e_i; surplus columns of >= rows carry -e_i; artificials
  // of = / >= rows carry +e_i (their columns remain in the tableau).
  sol.duals.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double y_max;
    if (sense[i] == Sense::kLe) {
      y_max = -t.at(t.m, slack_col[i]);
    } else if (sense[i] == Sense::kGe) {
      // surplus has -e_i: rc = -c_B B^{-1} (-e_i) = +y_i
      y_max = t.at(t.m, slack_col[i]);
      // artificial (+e_i) also available; prefer it when present for
      // numerical agreement.
      if (art_col[i] != SIZE_MAX) y_max = -t.at(t.m, art_col[i]);
    } else {
      y_max = -t.at(t.m, art_col[i]);
    }
    // Undo the rhs normalization (row multiplied by -1 flips the dual) and
    // the maximization sign.
    sol.duals[i] = sign * row_scale[i] * y_max;
  }

  // Reduced costs of structural variables, reported in the caller's sense:
  // positive reduced cost means "increasing this nonbasic variable improves
  // the (caller-sense) objective" for max problems, and the usual
  // min-problem convention (c_j - z_j >= 0 at optimum) for min problems.
  sol.reduced_costs.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    sol.reduced_costs[j] = sign * t.at(t.m, j);

  return sol;
}

}  // namespace stosched::lp
