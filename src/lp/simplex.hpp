// simplex.hpp — dense two-phase primal simplex.
//
// The survey's modern results lean on linear programming twice:
//   * Whittle's restless-bandit relaxation [48] and the primal-dual index
//     heuristic built on its optimal basis [7] (§2);
//   * achievable-region / conservation-law bounds for multiclass queues
//     [4,8,22] (§3).
// Both produce small dense LPs (tens to a few hundred rows), so a dense
// tableau simplex is the right tool: simple, auditable, cache-friendly.
//
// Numerical policy: Dantzig pricing with a switch to Bland's rule after a
// run of degenerate pivots (guarantees termination), explicit feasibility
// phase (no Big-M constants to tune), and a pivot tolerance of 1e-9.
// Solutions report primal values, constraint duals and reduced costs — the
// restless-bandit heuristic consumes the latter.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stosched::lp {

/// Inequality sense of one constraint row.
enum class Sense { kLe, kGe, kEq };

/// A single linear constraint: coeffs · x  (sense)  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// max/min c·x subject to constraints and x >= 0.
struct Problem {
  enum class Objective { kMaximize, kMinimize };
  Objective objective = Objective::kMaximize;
  std::vector<double> costs;           ///< c, one entry per variable
  std::vector<Constraint> constraints;

  /// Convenience builders.
  static Problem maximize(std::vector<double> costs);
  static Problem minimize(std::vector<double> costs);
  Problem& subject_to(std::vector<double> coeffs, Sense sense, double rhs);
};

/// Outcome of a solve.
struct Solution {
  enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };
  Status status = Status::kIterLimit;
  double objective = 0.0;              ///< in the problem's own sense
  std::vector<double> x;               ///< primal values
  std::vector<double> duals;           ///< one per constraint (shadow prices)
  std::vector<double> reduced_costs;   ///< one per structural variable
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const { return status == Status::kOptimal; }
};

std::string to_string(Solution::Status s);

/// Solve with the two-phase primal simplex. Deterministic.
Solution solve(const Problem& p, std::size_t max_iterations = 100000);

}  // namespace stosched::lp
