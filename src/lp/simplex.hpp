// simplex.hpp — the LP front door: Problem/Solution types shared by both
// solvers, plus the dense two-phase tableau reference implementation.
//
// The survey's modern results lean on linear programming three times:
//   * Whittle's restless-bandit relaxation [48] and the primal-dual index
//     heuristic built on its optimal basis [7] (§2);
//   * achievable-region / conservation-law bounds for multiclass queues
//     [4,8,22] (§3);
//   * the Hall–Schulz–Shmoys–Wein interval-indexed lower bound for online
//     scheduling (online/lower_bound.hpp), whose instances are large and
//     very sparse.
// Two solvers share this interface. The dense tableau (this header's
// solve()) is the simple, auditable reference for small dense problems; the
// sparse revised simplex (revised_simplex.hpp) carries the big structured
// instances with a factorized basis and warm starts. Constraints are stored
// sparsely — rows of (column, coefficient) pairs — so a 500-job
// interval-indexed LP costs megabytes, not the gigabytes dense rows would;
// subject_to() still accepts dense coefficient vectors and compacts them.
//
// Numerical policy (lp/tolerances.hpp, shared verbatim by both solvers):
// Dantzig pricing with a switch to Bland's rule after a run of degenerate
// pivots (guarantees termination), explicit feasibility phase (no Big-M
// constants to tune), pivot tolerance tol::kPivot. Solutions report primal
// values, constraint duals and reduced costs — the restless-bandit
// heuristic consumes the latter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/tolerances.hpp"

namespace stosched::lp {

/// Inequality sense of one constraint row.
enum class Sense { kLe, kGe, kEq };

/// A single linear constraint in sparse form: Σ val[k]·x[idx[k]] (sense) rhs.
/// Duplicate indices are allowed and contribute additively.
struct Constraint {
  std::vector<std::size_t> idx;
  std::vector<double> val;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// max/min c·x subject to constraints and x >= 0.
struct Problem {
  enum class Objective { kMaximize, kMinimize };
  Objective objective = Objective::kMaximize;
  std::vector<double> costs;           ///< c, one entry per variable
  std::vector<Constraint> constraints;

  /// Convenience builders.
  static Problem maximize(std::vector<double> costs);
  static Problem minimize(std::vector<double> costs);
  /// Dense row: width must equal the variable count; zeros are compacted.
  Problem& subject_to(const std::vector<double>& coeffs, Sense sense,
                      double rhs);
  /// Sparse row: indices must be in range (duplicates add up).
  Problem& subject_to_sparse(std::vector<std::size_t> idx,
                             std::vector<double> val, Sense sense, double rhs);
};

/// Outcome of a solve.
struct Solution {
  enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };
  Status status = Status::kIterLimit;
  double objective = 0.0;              ///< in the problem's own sense
  std::vector<double> x;               ///< primal values
  std::vector<double> duals;           ///< one per constraint (shadow prices)
  std::vector<double> reduced_costs;   ///< one per structural variable
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const { return status == Status::kOptimal; }
};

std::string to_string(Solution::Status s);

/// Solve with the dense two-phase primal simplex. Deterministic.
Solution solve(const Problem& p, std::size_t max_iterations = 100000);

/// Which engine carries a solve. kDense is the auditable reference; kRevised
/// (revised_simplex.hpp) is the production path for sparse instances.
enum class Solver { kDense, kRevised };

/// Dispatch on the selector. Both engines share tolerances and anti-cycling
/// policy, so results agree to within roundoff (the differential suite in
/// tests/test_lp_revised.cpp enforces 1e-6).
Solution solve(const Problem& p, Solver solver,
               std::size_t max_iterations = 100000);

/// Process-wide LP effort counters, mirroring des/event_queue.hpp's event
/// counters: every completed solve (either engine, any thread) adds its
/// iteration count. The totals are order-independent sums, so they are
/// bit-identical across OpenMP schedules — bench_compare.py gates on
/// lp_iterations in --exact mode while lp_solves_per_sec is the warn-only
/// perf trajectory.
struct LpCounters {
  std::uint64_t solves = 0;
  std::uint64_t iterations = 0;
};
LpCounters process_lp_counters() noexcept;
void add_process_lp_solve(std::uint64_t iterations) noexcept;

}  // namespace stosched::lp
