// adaptive_greedy.hpp — greedy dual peeling over (extended) polymatroids.
//
// The adaptive-greedy algorithm of Bertsimas–Niño-Mora [4] optimizes a
// linear cost over a performance polytope defined by conservation laws
//     Σ_{j∈S} A_j^S x_j >= b(S)  for all S ⊂ N,  equality at S = N,
// by peeling classes from lowest priority upward and accumulating dual
// increments; it yields both the optimal priority order and the priority
// *indices* (cµ for the plain M/G/1, Klimov's indices with feedback,
// Gittins' indices for branching bandits).
//
// This is pure LP-duality machinery: it needs only the coefficient callback
// A and the cost vector — b(S) never enters — and therefore lives in lp/
// (the optimization layer) so model modules (queueing/, core/) can share it
// without depending on each other. core/achievable_region.hpp re-exports it
// under stosched::core for the survey-facing API.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace stosched::lp {

/// Output of the adaptive-greedy peeling.
struct AdaptiveGreedyResult {
  std::vector<double> index;          ///< per class; higher = serve first
  std::vector<std::size_t> priority;  ///< classes ordered by index, highest first
  std::vector<double> y;              ///< dual increments, one per peel step
};

/// Adaptive greedy on an (extended) polymatroid. `coeffs(in_set)` must
/// return the vector A^S with entries A_j^S for the classes j with
/// in_set[j] != 0 (other entries ignored); costs are the per-class holding
/// costs c_j of the minimization min Σ c_j x_j.
AdaptiveGreedyResult adaptive_greedy(
    std::size_t n,
    const std::function<std::vector<double>(const std::vector<char>&)>& coeffs,
    const std::vector<double>& costs);

}  // namespace stosched::lp
