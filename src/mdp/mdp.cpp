#include "mdp/mdp.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stosched::mdp {

std::size_t FiniteMdp::add_action(std::size_t state, Action a) {
  STOSCHED_REQUIRE(state < actions_.size(), "state out of range");
  actions_[state].push_back(std::move(a));
  return actions_[state].size() - 1;
}

std::size_t FiniteMdp::total_actions() const noexcept {
  std::size_t total = 0;
  for (const auto& acts : actions_) total += acts.size();
  return total;
}

void FiniteMdp::validate() const {
  for (std::size_t s = 0; s < actions_.size(); ++s) {
    STOSCHED_REQUIRE(!actions_[s].empty(),
                     "every state needs at least one action");
    for (const auto& a : actions_[s]) {
      double total = 0.0;
      for (const auto& tr : a.transitions) {
        STOSCHED_REQUIRE(tr.state < actions_.size(),
                         "transition target out of range");
        STOSCHED_REQUIRE(tr.prob >= -1e-12, "negative transition probability");
        total += tr.prob;
      }
      STOSCHED_REQUIRE(std::abs(total - 1.0) < 1e-9,
                       "transition probabilities must sum to 1");
    }
  }
}

}  // namespace stosched::mdp
