#include "mdp/solve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace stosched::mdp {

namespace {

/// One Bellman backup for state s given current values v.
/// Returns (best value, best action index).
std::pair<double, std::size_t> backup(const FiniteMdp& mdp, double beta,
                                      const std::vector<double>& v,
                                      std::size_t s) {
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_a = 0;
  const auto acts = mdp.actions(s);
  for (std::size_t ai = 0; ai < acts.size(); ++ai) {
    double q = acts[ai].reward;
    for (const auto& tr : acts[ai].transitions) q += beta * tr.prob * v[tr.state];
    if (q > best) {
      best = q;
      best_a = ai;
    }
  }
  return {best, best_a};
}

}  // namespace

bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n) {
  STOSCHED_REQUIRE(a.size() == n * n && b.size() == n,
                   "system dimensions mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t piv = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-12) return false;
    if (piv != col) {
      for (std::size_t c = col; c < n; ++c)
        std::swap(a[piv * n + c], a[col * n + c]);
      std::swap(b[piv], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * b[c];
    b[ri] = sum / a[ri * n + ri];
  }
  return true;
}

DiscountedSolution value_iteration(const FiniteMdp& mdp, double beta,
                                   double tol, std::size_t max_iter) {
  STOSCHED_REQUIRE(beta > 0.0 && beta < 1.0, "discount must lie in (0,1)");
  const std::size_t n = mdp.num_states();
  DiscountedSolution out;
  out.value.assign(n, 0.0);
  out.policy.assign(n, 0);

  // Gauss–Seidel sweeps; stop when the span seminorm of the update, scaled
  // by beta/(1-beta), falls below tol (a true error bound for v*).
  for (out.iterations = 0; out.iterations < max_iter; ++out.iterations) {
    double max_delta = -std::numeric_limits<double>::infinity();
    double min_delta = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      const auto [val, act] = backup(mdp, beta, out.value, s);
      const double delta = val - out.value[s];
      max_delta = std::max(max_delta, delta);
      min_delta = std::min(min_delta, delta);
      out.value[s] = val;
      out.policy[s] = act;
    }
    out.residual = std::max(std::abs(max_delta), std::abs(min_delta));
    if ((max_delta - min_delta) * beta / (1.0 - beta) < tol &&
        out.residual * beta / (1.0 - beta) < tol)
      break;
  }
  return out;
}

std::vector<double> evaluate_policy(const FiniteMdp& mdp, double beta,
                                    const std::vector<std::size_t>& policy) {
  const std::size_t n = mdp.num_states();
  STOSCHED_REQUIRE(policy.size() == n, "policy size must match state count");
  // Solve (I - beta P) v = r.
  std::vector<double> a(n * n, 0.0), b(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const auto acts = mdp.actions(s);
    STOSCHED_REQUIRE(policy[s] < acts.size(), "policy picks missing action");
    const Action& act = acts[policy[s]];
    a[s * n + s] = 1.0;
    for (const auto& tr : act.transitions) a[s * n + tr.state] -= beta * tr.prob;
    b[s] = act.reward;
  }
  const bool ok = solve_linear_system(a, b, n);
  STOSCHED_ASSERT(ok, "policy evaluation system is singular");
  return b;
}

DiscountedSolution policy_iteration(const FiniteMdp& mdp, double beta,
                                    std::size_t max_iter) {
  STOSCHED_REQUIRE(beta > 0.0 && beta < 1.0, "discount must lie in (0,1)");
  const std::size_t n = mdp.num_states();
  DiscountedSolution out;
  out.policy.assign(n, 0);
  out.value.assign(n, 0.0);
  for (out.iterations = 0; out.iterations < max_iter; ++out.iterations) {
    out.value = evaluate_policy(mdp, beta, out.policy);
    bool changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      const auto [val, act] = backup(mdp, beta, out.value, s);
      // Strict improvement test with tolerance prevents cycling between
      // equal-value actions.
      if (act != out.policy[s] &&
          val > out.value[s] + 1e-12 * (1.0 + std::abs(out.value[s]))) {
        out.policy[s] = act;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return out;
}

AverageSolution relative_value_iteration(const FiniteMdp& mdp, double tol,
                                         std::size_t max_iter) {
  const std::size_t n = mdp.num_states();
  AverageSolution out;
  out.bias.assign(n, 0.0);
  out.policy.assign(n, 0);
  std::vector<double> next(n, 0.0);
  // Aperiodicity transform: T_tau v = (1-tau) v + tau T v with tau in (0,1)
  // guarantees convergence for periodic chains.
  constexpr double tau = 0.9;
  for (out.iterations = 0; out.iterations < max_iter; ++out.iterations) {
    double max_delta = -std::numeric_limits<double>::infinity();
    double min_delta = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      // Average-reward backup: no discount.
      double best = -std::numeric_limits<double>::infinity();
      std::size_t best_a = 0;
      const auto acts = mdp.actions(s);
      for (std::size_t ai = 0; ai < acts.size(); ++ai) {
        double q = acts[ai].reward;
        for (const auto& tr : acts[ai].transitions)
          q += tr.prob * out.bias[tr.state];
        if (q > best) {
          best = q;
          best_a = ai;
        }
      }
      next[s] = (1.0 - tau) * out.bias[s] + tau * best;
      out.policy[s] = best_a;
      const double delta = next[s] - out.bias[s];
      max_delta = std::max(max_delta, delta);
      min_delta = std::min(min_delta, delta);
    }
    // Normalize so bias[0] stays 0 (prevents drift).
    const double ref = next[0];
    for (std::size_t s = 0; s < n; ++s) out.bias[s] = next[s] - ref;
    out.gain = max_delta / tau;  // both deltas converge to tau*gain
    if (max_delta - min_delta < tol * tau) {
      out.gain = 0.5 * (max_delta + min_delta) / tau;
      break;
    }
  }
  return out;
}

double average_reward_of_policy(const FiniteMdp& mdp,
                                const std::vector<std::size_t>& policy) {
  // Unichain evaluation equations: g + h(s) = r(s) + sum_j P(s,j) h(j),
  // with the normalization h(0) = 0. Unknowns: [g, h(1), ..., h(n-1)].
  const std::size_t n = mdp.num_states();
  STOSCHED_REQUIRE(policy.size() == n, "policy size must match state count");
  std::vector<double> a(n * n, 0.0), b(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const Action& act = mdp.actions(s)[policy[s]];
    // Row: g + h(s) - sum P h = r. Column 0 is g; columns 1..n-1 are h(1..).
    a[s * n + 0] = 1.0;
    auto h_col = [](std::size_t state) { return state; };  // h(k) at col k, k>=1
    if (s >= 1) a[s * n + h_col(s)] += 1.0;
    for (const auto& tr : act.transitions)
      if (tr.state >= 1) a[s * n + h_col(tr.state)] -= tr.prob;
    b[s] = act.reward;
  }
  const bool ok = solve_linear_system(a, b, n);
  STOSCHED_ASSERT(ok, "average-reward evaluation system is singular");
  return b[0];
}

double average_reward_of_policy_iterative(
    const FiniteMdp& mdp, const std::vector<std::size_t>& policy, double tol,
    std::size_t max_iter) {
  const std::size_t n = mdp.num_states();
  STOSCHED_REQUIRE(policy.size() == n, "policy size must match state count");
  std::vector<double> h(n, 0.0), next(n, 0.0);
  constexpr double tau = 0.9;  // aperiodicity damping
  double gain = 0.0;
  for (std::size_t it = 0; it < max_iter; ++it) {
    double max_d = -std::numeric_limits<double>::infinity();
    double min_d = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      const Action& a = mdp.actions(s)[policy[s]];
      double q = a.reward;
      for (const auto& tr : a.transitions) q += tr.prob * h[tr.state];
      next[s] = (1.0 - tau) * h[s] + tau * q;
      const double d = next[s] - h[s];
      max_d = std::max(max_d, d);
      min_d = std::min(min_d, d);
    }
    const double ref = next[0];
    for (std::size_t s = 0; s < n; ++s) h[s] = next[s] - ref;
    gain = 0.5 * (max_d + min_d) / tau;
    if (max_d - min_d < tol * tau) break;
  }
  return gain;
}

}  // namespace stosched::mdp
