// mdp.hpp — finite Markov decision processes.
//
// The survey frames most of its models as dynamic programs and immediately
// notes the curse of dimensionality; the library therefore uses this module
// in exactly the role the literature does: computing *exact optimal* values
// on small instances so that index policies (Gittins, Whittle, Klimov) can
// be certified optimal / near-optimal in the experiments (T3–T7, F3).
//
// Conventions: rewards are *maximized* (experiments that minimize cost
// negate); transitions are sparse row lists; discount factor beta in (0,1)
// for discounted problems.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stosched::mdp {

/// One sparse transition entry: probability of moving to `state`.
struct Transition {
  std::size_t state = 0;
  double prob = 0.0;
};

/// One admissible action in a given state.
struct Action {
  double reward = 0.0;
  std::vector<Transition> transitions;
  int label = 0;  ///< caller-defined tag (e.g. which project was engaged)
};

/// A finite MDP stored as per-state action lists.
class FiniteMdp {
 public:
  explicit FiniteMdp(std::size_t num_states) : actions_(num_states) {}

  /// Append an action to `state`; returns its index within the state.
  std::size_t add_action(std::size_t state, Action a);

  [[nodiscard]] std::size_t num_states() const noexcept {
    return actions_.size();
  }
  [[nodiscard]] std::span<const Action> actions(std::size_t s) const {
    return actions_[s];
  }
  [[nodiscard]] std::size_t total_actions() const noexcept;

  /// Verify every state has at least one action and every action's
  /// transition probabilities are nonnegative and sum to 1 (tolerance 1e-9).
  /// Throws std::invalid_argument on violation.
  void validate() const;

 private:
  std::vector<std::vector<Action>> actions_;
};

}  // namespace stosched::mdp
