// solve.hpp — exact solvers for finite MDPs.
//
// * value_iteration     — discounted; Gauss–Seidel sweeps with a span-based
//                         stopping rule (Bellman residual scaled by
//                         beta/(1-beta)), so `tol` bounds the true sup-norm
//                         distance to v*.
// * policy_iteration    — Howard's algorithm; policy evaluation by dense
//                         Gaussian elimination (exact to rounding), finite
//                         convergence, used as the reference solver in tests.
// * relative_value_iteration — average-reward (unichain) problems: gain +
//                         bias, used by the restless-bandit experiments that
//                         follow Whittle's time-average formulation.
// * evaluate_policy     — value of a fixed stationary policy (dense solve).
#pragma once

#include <vector>

#include "mdp/mdp.hpp"

namespace stosched::mdp {

/// Result of a discounted solve: optimal values and a greedy optimal policy
/// (index of the argmax action per state).
struct DiscountedSolution {
  std::vector<double> value;
  std::vector<std::size_t> policy;
  std::size_t iterations = 0;
  double residual = 0.0;
};

DiscountedSolution value_iteration(const FiniteMdp& mdp, double beta,
                                   double tol = 1e-10,
                                   std::size_t max_iter = 100000);

DiscountedSolution policy_iteration(const FiniteMdp& mdp, double beta,
                                    std::size_t max_iter = 1000);

/// Value of the stationary policy `policy` (one action index per state).
std::vector<double> evaluate_policy(const FiniteMdp& mdp, double beta,
                                    const std::vector<std::size_t>& policy);

/// Average-reward solution for unichain MDPs.
struct AverageSolution {
  double gain = 0.0;               ///< long-run average reward per period
  std::vector<double> bias;        ///< relative values (h), h[ref] = 0
  std::vector<std::size_t> policy;
  std::size_t iterations = 0;
};

AverageSolution relative_value_iteration(const FiniteMdp& mdp,
                                         double tol = 1e-9,
                                         std::size_t max_iter = 200000);

/// Long-run average reward of a fixed stationary policy (unichain), via the
/// evaluation equations h + g·1 = r + P h solved with a dense system.
/// O(n^3); prefer the iterative variant beyond a few hundred states.
double average_reward_of_policy(const FiniteMdp& mdp,
                                const std::vector<std::size_t>& policy);

/// Iterative (damped successive-approximation) variant of the above; O(iters
/// x transitions), suitable for product state spaces.
double average_reward_of_policy_iterative(
    const FiniteMdp& mdp, const std::vector<std::size_t>& policy,
    double tol = 1e-10, std::size_t max_iter = 500000);

/// Dense linear solver (partial-pivot Gaussian elimination) shared by the
/// policy-evaluation routines; exposed for reuse by the fluid module and
/// tests. Solves A x = b in place; returns false if A is singular.
bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n);

}  // namespace stosched::mdp
