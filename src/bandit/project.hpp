// project.hpp — bandit projects (survey §2).
//
// A project is a finite Markov chain with a state-dependent reward received
// when (and only when) the project is engaged; idle projects are frozen.
// This is exactly the classical multi-armed bandit setting of Gittins–Jones
// [19]: engage one project per epoch, maximize E[Σ β^t R_{j(t)}].
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace stosched::bandit {

/// A finite-state Markov reward project.
struct MarkovProject {
  std::vector<double> reward;               ///< R_i, earned on engagement
  std::vector<std::vector<double>> trans;   ///< row-stochastic transition P

  [[nodiscard]] std::size_t num_states() const noexcept {
    return reward.size();
  }
  /// Throws std::invalid_argument unless P is row-stochastic and shapes
  /// agree.
  void validate() const;
};

/// Random project: rewards uniform in [reward_lo, reward_hi], transition
/// rows drawn as normalized uniform vectors (dense, well-mixing).
MarkovProject random_project(std::size_t states, Rng& rng,
                             double reward_lo = 0.0, double reward_hi = 1.0);

/// A bandit instance: N projects engaged one at a time, discount beta.
struct BanditInstance {
  std::vector<MarkovProject> projects;
  double beta = 0.9;

  void validate() const;
};

}  // namespace stosched::bandit
