#include "bandit/bandit_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bandit/gittins.hpp"
#include "mdp/solve.hpp"
#include "util/check.hpp"

namespace stosched::bandit {

IndexTable gittins_table(const BanditInstance& inst) {
  inst.validate();
  IndexTable table;
  table.reserve(inst.projects.size());
  for (const auto& p : inst.projects)
    table.push_back(gittins_largest_index(p, inst.beta));
  return table;
}

IndexTable myopic_table(const BanditInstance& inst) {
  inst.validate();
  IndexTable table;
  table.reserve(inst.projects.size());
  for (const auto& p : inst.projects) table.push_back(p.reward);
  return table;
}

std::size_t encode_joint(const BanditInstance& inst,
                         const std::vector<std::size_t>& states) {
  STOSCHED_REQUIRE(states.size() == inst.projects.size(),
                   "joint state must cover all projects");
  std::size_t code = 0;
  for (std::size_t j = states.size(); j-- > 0;) {
    STOSCHED_REQUIRE(states[j] < inst.projects[j].num_states(),
                     "project state out of range");
    code = code * inst.projects[j].num_states() + states[j];
  }
  return code;
}

namespace {

std::size_t joint_space_size(const BanditInstance& inst) {
  std::size_t total = 1;
  for (const auto& p : inst.projects) {
    STOSCHED_REQUIRE(total < (std::size_t{1} << 22) / p.num_states(),
                     "product MDP too large");
    total *= p.num_states();
  }
  return total;
}

void decode_joint(const BanditInstance& inst, std::size_t code,
                  std::vector<std::size_t>& states) {
  states.resize(inst.projects.size());
  for (std::size_t j = 0; j < inst.projects.size(); ++j) {
    states[j] = code % inst.projects[j].num_states();
    code /= inst.projects[j].num_states();
  }
}

}  // namespace

mdp::FiniteMdp product_mdp(const BanditInstance& inst) {
  inst.validate();
  const std::size_t total = joint_space_size(inst);
  mdp::FiniteMdp m(total);
  std::vector<std::size_t> states;
  for (std::size_t code = 0; code < total; ++code) {
    decode_joint(inst, code, states);
    for (std::size_t j = 0; j < inst.projects.size(); ++j) {
      const auto& proj = inst.projects[j];
      mdp::Action a;
      a.reward = proj.reward[states[j]];
      a.label = static_cast<int>(j);
      const std::size_t s = states[j];
      for (std::size_t t = 0; t < proj.num_states(); ++t) {
        if (proj.trans[s][t] == 0.0) continue;
        auto next = states;
        next[j] = t;
        a.transitions.push_back({encode_joint(inst, next), proj.trans[s][t]});
      }
      m.add_action(code, std::move(a));
    }
  }
  return m;
}

double optimal_value(const BanditInstance& inst,
                     const std::vector<std::size_t>& start) {
  const auto m = product_mdp(inst);
  const auto sol = mdp::value_iteration(m, inst.beta, 1e-10);
  return sol.value[encode_joint(inst, start)];
}

namespace {

/// The index policy as a deterministic action map on the product MDP.
std::vector<std::size_t> index_policy_actions(const BanditInstance& inst,
                                              const IndexTable& table,
                                              std::size_t total) {
  std::vector<std::size_t> policy(total, 0);
  std::vector<std::size_t> states;
  for (std::size_t code = 0; code < total; ++code) {
    decode_joint(inst, code, states);
    std::size_t best = 0;
    double best_idx = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.projects.size(); ++j) {
      const double idx = table[j][states[j]];
      if (idx > best_idx + 1e-14) {
        best_idx = idx;
        best = j;
      }
    }
    policy[code] = best;  // action order == project order in product_mdp
    // NOLINTNEXTLINE: decode buffer reused intentionally
  }
  return policy;
}

}  // namespace

double index_policy_value(const BanditInstance& inst, const IndexTable& table,
                          const std::vector<std::size_t>& start) {
  STOSCHED_REQUIRE(table.size() == inst.projects.size(),
                   "index table must cover all projects");
  const auto m = product_mdp(inst);
  const auto policy = index_policy_actions(inst, table, m.num_states());
  const auto values = mdp::evaluate_policy(m, inst.beta, policy);
  return values[encode_joint(inst, start)];
}

double simulate_index_policy(const BanditInstance& inst,
                             const IndexTable& table,
                             const std::vector<std::size_t>& start, Rng& rng,
                             double trunc_eps) {
  STOSCHED_REQUIRE(table.size() == inst.projects.size(),
                   "index table must cover all projects");
  // Per-project transition substreams off a bootstrap root: each arm's
  // chain consumes only its own stream, so index-policy variants replaying
  // the same caller stream keep untouched arms on identical trajectories.
  const Rng root(rng());
  std::vector<Rng> trans_rng;
  trans_rng.reserve(inst.projects.size());
  for (std::size_t j = 0; j < inst.projects.size(); ++j)
    trans_rng.push_back(root.stream(j));
  std::vector<std::size_t> states = start;
  double discount = 1.0;
  double total = 0.0;
  while (discount >= trunc_eps) {
    std::size_t best = 0;
    double best_idx = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.projects.size(); ++j) {
      const double idx = table[j][states[j]];
      if (idx > best_idx + 1e-14) {
        best_idx = idx;
        best = j;
      }
    }
    const auto& proj = inst.projects[best];
    total += discount * proj.reward[states[best]];
    states[best] = trans_rng[best].categorical(proj.trans[states[best]].data(),
                                               proj.num_states());
    discount *= inst.beta;
  }
  return total;
}

void run_replication(const BanditInstance& inst, const IndexTable& table,
                     const std::vector<std::size_t>& start, Rng& rng,
                     std::span<double> out, double trunc_eps) {
  STOSCHED_REQUIRE(out.size() == 1, "bandit replication reports one metric");
  out[0] = simulate_index_policy(inst, table, start, rng, trunc_eps);
}

}  // namespace stosched::bandit
