#include "bandit/switching.hpp"

#include <limits>

#include "bandit/gittins.hpp"
#include "mdp/solve.hpp"
#include "util/check.hpp"

namespace stosched::bandit {

namespace {

/// Augmented state: joint project state x incumbent (N == "no incumbent").
/// Encoding: code * (N+1) + incumbent.
struct Augmented {
  const SwitchingInstance& inst;
  std::size_t joint_size = 1;
  std::size_t num_projects = 0;

  explicit Augmented(const SwitchingInstance& si) : inst(si) {
    si.base.validate();
    num_projects = si.base.projects.size();
    for (const auto& p : si.base.projects) {
      STOSCHED_REQUIRE(joint_size < (std::size_t{1} << 20) / p.num_states(),
                       "augmented MDP too large");
      joint_size *= p.num_states();
    }
  }

  [[nodiscard]] std::size_t size() const {
    return joint_size * (num_projects + 1);
  }
  [[nodiscard]] std::size_t encode(std::size_t joint,
                                   std::size_t incumbent) const {
    return joint * (num_projects + 1) + incumbent;
  }

  void decode_joint(std::size_t code, std::vector<std::size_t>& states) const {
    states.resize(num_projects);
    for (std::size_t j = 0; j < num_projects; ++j) {
      states[j] = code % inst.base.projects[j].num_states();
      code /= inst.base.projects[j].num_states();
    }
  }

  [[nodiscard]] std::size_t encode_joint(
      const std::vector<std::size_t>& states) const {
    std::size_t code = 0;
    for (std::size_t j = states.size(); j-- > 0;)
      code = code * inst.base.projects[j].num_states() + states[j];
    return code;
  }

  /// Build the augmented MDP (actions = project to engage next).
  [[nodiscard]] mdp::FiniteMdp build() const {
    mdp::FiniteMdp m(size());
    std::vector<std::size_t> states;
    for (std::size_t joint = 0; joint < joint_size; ++joint) {
      decode_joint(joint, states);
      for (std::size_t inc = 0; inc <= num_projects; ++inc) {
        const std::size_t code = encode(joint, inc);
        for (std::size_t j = 0; j < num_projects; ++j) {
          const auto& proj = inst.base.projects[j];
          mdp::Action a;
          a.label = static_cast<int>(j);
          a.reward = proj.reward[states[j]] -
                     (j == inc ? 0.0 : inst.switch_cost);
          const std::size_t s = states[j];
          for (std::size_t t = 0; t < proj.num_states(); ++t) {
            if (proj.trans[s][t] == 0.0) continue;
            auto next = states;
            next[j] = t;
            a.transitions.push_back(
                {encode(encode_joint(next), j), proj.trans[s][t]});
          }
          m.add_action(code, std::move(a));
        }
      }
    }
    return m;
  }
};

/// Evaluate a deterministic augmented policy exactly.
double evaluate(const Augmented& aug, const mdp::FiniteMdp& m,
                const std::vector<std::size_t>& policy,
                const std::vector<std::size_t>& start) {
  const auto values =
      mdp::evaluate_policy(m, aug.inst.base.beta, policy);
  return values[aug.encode(aug.encode_joint(start), aug.num_projects)];
}

}  // namespace

double switching_optimal_value(const SwitchingInstance& inst,
                               const std::vector<std::size_t>& start) {
  const Augmented aug(inst);
  const auto m = aug.build();
  const auto sol = mdp::value_iteration(m, inst.base.beta, 1e-10);
  return sol.value[aug.encode(aug.encode_joint(start), aug.num_projects)];
}

double switching_hysteresis_value(const SwitchingInstance& inst,
                                  const std::vector<std::size_t>& start) {
  const Augmented aug(inst);
  const auto m = aug.build();
  const auto gittins = gittins_table(inst.base);
  const double penalty = (1.0 - inst.base.beta) * inst.switch_cost;

  std::vector<std::size_t> policy(m.num_states(), 0);
  std::vector<std::size_t> states;
  for (std::size_t joint = 0; joint < aug.joint_size; ++joint) {
    aug.decode_joint(joint, states);
    for (std::size_t inc = 0; inc <= aug.num_projects; ++inc) {
      // Challenger index: gamma - (1-beta) c_sw; incumbent keeps raw gamma.
      std::size_t best = 0;
      double best_idx = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < aug.num_projects; ++j) {
        const double idx =
            gittins[j][states[j]] - (j == inc ? 0.0 : penalty);
        if (idx > best_idx + 1e-14) {
          best_idx = idx;
          best = j;
        }
      }
      policy[aug.encode(joint, inc)] = best;
    }
  }
  return evaluate(aug, m, policy, start);
}

double switching_naive_gittins_value(const SwitchingInstance& inst,
                                     const std::vector<std::size_t>& start) {
  const Augmented aug(inst);
  const auto m = aug.build();
  const auto gittins = gittins_table(inst.base);

  std::vector<std::size_t> policy(m.num_states(), 0);
  std::vector<std::size_t> states;
  for (std::size_t joint = 0; joint < aug.joint_size; ++joint) {
    aug.decode_joint(joint, states);
    std::size_t best = 0;
    double best_idx = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < aug.num_projects; ++j) {
      if (gittins[j][states[j]] > best_idx + 1e-14) {
        best_idx = gittins[j][states[j]];
        best = j;
      }
    }
    for (std::size_t inc = 0; inc <= aug.num_projects; ++inc)
      policy[aug.encode(joint, inc)] = best;
  }
  return evaluate(aug, m, policy, start);
}

}  // namespace stosched::bandit
