#include "bandit/gittins.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mdp/solve.hpp"
#include "util/check.hpp"

namespace stosched::bandit {

namespace {

/// Invert (I - beta * P_CC) where C is an index list into p.trans.
/// Returns the dense inverse (row-major, |C| x |C|).
std::vector<double> continuation_inverse(const MarkovProject& p, double beta,
                                         const std::vector<std::size_t>& cset) {
  const std::size_t k = cset.size();
  std::vector<double> m(k * k, 0.0);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t s = 0; s < k; ++s)
      m[r * k + s] = (r == s ? 1.0 : 0.0) - beta * p.trans[cset[r]][cset[s]];
  // Gauss–Jordan with partial pivoting on [M | I] — one O(k^3) pass.
  std::vector<double> inv(k * k, 0.0);
  for (std::size_t d = 0; d < k; ++d) inv[d * k + d] = 1.0;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(m[r * k + col]) > std::abs(m[piv * k + col])) piv = r;
    STOSCHED_ASSERT(std::abs(m[piv * k + col]) > 1e-12,
                    "continuation system singular");
    if (piv != col)
      for (std::size_t c = 0; c < k; ++c) {
        std::swap(m[piv * k + c], m[col * k + c]);
        std::swap(inv[piv * k + c], inv[col * k + c]);
      }
    const double scale = 1.0 / m[col * k + col];
    for (std::size_t c = 0; c < k; ++c) {
      m[col * k + c] *= scale;
      inv[col * k + c] *= scale;
    }
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = m[r * k + col];
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < k; ++c) {
        m[r * k + c] -= f * m[col * k + c];
        inv[r * k + c] -= f * inv[col * k + c];
      }
    }
  }
  return inv;
}

}  // namespace

std::vector<double> gittins_largest_index(const MarkovProject& p,
                                          double beta) {
  p.validate();
  STOSCHED_REQUIRE(beta > 0.0 && beta < 1.0, "discount must lie in (0,1)");
  const std::size_t n = p.num_states();
  std::vector<double> gamma(n, 0.0);
  std::vector<char> indexed(n, 0);
  std::vector<std::size_t> cont;  // continuation set, highest indices first

  for (std::size_t round = 0; round < n; ++round) {
    // inv = (I - beta P_CC)^{-1} over the current continuation set.
    const std::vector<double> inv =
        cont.empty() ? std::vector<double>{}
                     : continuation_inverse(p, beta, cont);
    const std::size_t k = cont.size();

    // Precompute w = inv * R_C and u = inv * 1 (discounted reward / time
    // accumulated while wandering inside C).
    std::vector<double> w(k, 0.0), u(k, 0.0);
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t s = 0; s < k; ++s) {
        w[r] += inv[r * k + s] * p.reward[cont[s]];
        u[r] += inv[r * k + s];
      }

    double best = -std::numeric_limits<double>::infinity();
    std::size_t best_state = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (indexed[i]) continue;
      // Stopping set C ∪ {i}: starting at i, continue while in C ∪ {i}.
      //   a_i = R_i + beta P_iC w' + beta P_ii a_i, where the C-part values
      //   also feed back into i through P_Ci. Solve the 2x2 block by
      //   substitution:
      //   a_C = w + inv * (beta P_Ci) a_i  (vector form)
      //   a_i = R_i + beta [P_iC (w + inv beta P_Ci a_i)] + beta P_ii a_i.
      double pic_w = 0.0, pic_u = 0.0;       // beta P_iC · w, · u
      double pic_inv_pci = 0.0;              // beta^2 P_iC inv P_Ci
      if (k > 0) {
        // v = inv^T applied to (P_iC): first gather row P_iC.
        for (std::size_t r = 0; r < k; ++r) {
          const double pir = beta * p.trans[i][cont[r]];
          pic_w += pir * w[r];
          pic_u += pir * u[r];
        }
        for (std::size_t r = 0; r < k; ++r) {
          const double pir = beta * p.trans[i][cont[r]];
          if (pir == 0.0) continue;
          double inv_pci = 0.0;
          for (std::size_t s = 0; s < k; ++s)
            inv_pci += inv[r * k + s] * beta * p.trans[cont[s]][i];
          pic_inv_pci += pir * inv_pci;
        }
      }
      const double self = beta * p.trans[i][i];
      const double denom_scale = 1.0 - self - pic_inv_pci;
      STOSCHED_ASSERT(denom_scale > 1e-14, "degenerate continuation block");
      const double a_i = (p.reward[i] + pic_w) / denom_scale;
      const double b_i = (1.0 + pic_u) / denom_scale;
      const double ratio = a_i / b_i;
      if (ratio > best) {
        best = ratio;
        best_state = i;
      }
    }
    STOSCHED_ASSERT(best_state < n, "no candidate found");
    gamma[best_state] = best;
    indexed[best_state] = 1;
    cont.push_back(best_state);
  }
  return gamma;
}

std::vector<double> gittins_restart(const MarkovProject& p, double beta,
                                    double tol) {
  p.validate();
  STOSCHED_REQUIRE(beta > 0.0 && beta < 1.0, "discount must lie in (0,1)");
  const std::size_t n = p.num_states();
  std::vector<double> gamma(n, 0.0);
  std::vector<double> v(n, 0.0), next(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    // MDP: in every state choose continue (reward R_s, move by P_s) or
    // restart (reward R_i, move by P_i). gamma_i = (1-beta) * V(i).
    std::fill(v.begin(), v.end(), 0.0);
    double diff = std::numeric_limits<double>::infinity();
    while (diff * beta / (1.0 - beta) > tol) {
      diff = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        double cont = p.reward[s];
        double restart = p.reward[i];
        for (std::size_t t = 0; t < n; ++t) {
          cont += beta * p.trans[s][t] * v[t];
          restart += beta * p.trans[i][t] * v[t];
        }
        next[s] = std::max(cont, restart);
        diff = std::max(diff, std::abs(next[s] - v[s]));
      }
      v.swap(next);
    }
    gamma[i] = (1.0 - beta) * v[i];
  }
  return gamma;
}

std::vector<double> gittins_calibration(const MarkovProject& p, double beta,
                                        double tol) {
  p.validate();
  STOSCHED_REQUIRE(beta > 0.0 && beta < 1.0, "discount must lie in (0,1)");
  const std::size_t n = p.num_states();

  const double r_lo = *std::min_element(p.reward.begin(), p.reward.end());
  const double r_hi = *std::max_element(p.reward.begin(), p.reward.end());

  // Optimal stopping value with retirement reward M: V = max(M, R + beta PV).
  std::vector<double> v(n, 0.0), next(n, 0.0);
  auto stopping_value = [&](double M) {
    for (std::size_t s = 0; s < n; ++s) v[s] = std::max(M, p.reward[s] / (1.0 - beta));
    double diff = std::numeric_limits<double>::infinity();
    while (diff * beta / (1.0 - beta) > 1e-12 * std::max(1.0, std::abs(M))) {
      diff = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        double cont = p.reward[s];
        for (std::size_t t = 0; t < n; ++t) cont += beta * p.trans[s][t] * v[t];
        next[s] = std::max(M, cont);
        diff = std::max(diff, std::abs(next[s] - v[s]));
      }
      v.swap(next);
    }
  };

  std::vector<double> gamma(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // gamma_i = (1-beta) M*, where M* is the smallest retirement reward at
    // which stopping immediately at i is optimal: V(i; M*) = M*.
    double lo = r_lo / (1.0 - beta), hi = r_hi / (1.0 - beta);
    while ((hi - lo) * (1.0 - beta) > tol) {
      const double mid = 0.5 * (lo + hi);
      stopping_value(mid);
      if (v[i] > mid + 1e-13 * std::max(1.0, std::abs(mid)))
        lo = mid;  // continuing still strictly better: index above (1-b)mid
      else
        hi = mid;
    }
    gamma[i] = (1.0 - beta) * 0.5 * (lo + hi);
  }
  return gamma;
}

}  // namespace stosched::bandit
