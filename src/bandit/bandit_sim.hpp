// bandit_sim.hpp — playing multi-armed bandits: simulation and exact
// evaluation (survey §2, experiment T6).
//
// Policies are *index rules*: each project state carries a number, the rule
// engages a project with maximal current index (ties: lowest project id).
// Gittins = the Gittins index [19]; myopic = the one-step reward; random =
// uniform choice. Small instances are evaluated exactly on the product MDP,
// so T6's "Gittins attains the optimum, myopic does not" verdict carries no
// Monte-Carlo noise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bandit/project.hpp"
#include "mdp/mdp.hpp"

namespace stosched::bandit {

/// Per-project index tables: indices[j][s] is the priority of project j in
/// state s.
using IndexTable = std::vector<std::vector<double>>;

/// Gittins table via the largest-index algorithm.
IndexTable gittins_table(const BanditInstance& inst);
/// Myopic table: index = immediate reward.
IndexTable myopic_table(const BanditInstance& inst);

/// Build the product-space MDP of the instance (actions = which project to
/// engage). State encoding is mixed-radix over project states; use
/// `encode_joint` to map a joint state.
mdp::FiniteMdp product_mdp(const BanditInstance& inst);
std::size_t encode_joint(const BanditInstance& inst,
                         const std::vector<std::size_t>& states);

/// Exact optimal expected discounted reward from a joint start state.
double optimal_value(const BanditInstance& inst,
                     const std::vector<std::size_t>& start);

/// Exact value of the index policy induced by `table` from `start`.
double index_policy_value(const BanditInstance& inst, const IndexTable& table,
                          const std::vector<std::size_t>& start);

/// One simulated discounted-reward replication of an index policy, truncated
/// when beta^t < trunc_eps (bias < trunc_eps * Rmax / (1-beta)).
double simulate_index_policy(const BanditInstance& inst,
                             const IndexTable& table,
                             const std::vector<std::size_t>& start, Rng& rng,
                             double trunc_eps = 1e-10);

/// Experiment-engine adapter: one simulate_index_policy replication; the
/// single metric is the truncated discounted reward.
void run_replication(const BanditInstance& inst, const IndexTable& table,
                     const std::vector<std::size_t>& start, Rng& rng,
                     std::span<double> out, double trunc_eps = 1e-10);

}  // namespace stosched::bandit
