#include "bandit/project.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stosched::bandit {

void MarkovProject::validate() const {
  STOSCHED_REQUIRE(!reward.empty(), "project needs at least one state");
  STOSCHED_REQUIRE(trans.size() == reward.size(),
                   "transition matrix shape mismatch");
  for (const auto& row : trans) {
    STOSCHED_REQUIRE(row.size() == reward.size(),
                     "transition matrix must be square");
    double total = 0.0;
    for (const double p : row) {
      STOSCHED_REQUIRE(p >= -1e-12, "negative transition probability");
      total += p;
    }
    STOSCHED_REQUIRE(std::abs(total - 1.0) < 1e-9,
                     "transition rows must sum to 1");
  }
}

// rng-audit: sink(instance generator: its sequential draw order IS the
// reproducibility contract, pinned by the golden tests)
MarkovProject random_project(std::size_t states, Rng& rng, double reward_lo,
                             double reward_hi) {
  STOSCHED_REQUIRE(states >= 1, "project needs at least one state");
  MarkovProject p;
  p.reward.resize(states);
  p.trans.assign(states, std::vector<double>(states, 0.0));
  for (std::size_t s = 0; s < states; ++s) {
    p.reward[s] = rng.uniform(reward_lo, reward_hi);
    double total = 0.0;
    for (std::size_t t = 0; t < states; ++t) {
      p.trans[s][t] = rng.uniform_pos();
      total += p.trans[s][t];
    }
    for (std::size_t t = 0; t < states; ++t) p.trans[s][t] /= total;
    // Renormalize exactly: make the last entry absorb rounding error.
    double partial = 0.0;
    for (std::size_t t = 0; t + 1 < states; ++t) partial += p.trans[s][t];
    p.trans[s][states - 1] = 1.0 - partial;
  }
  return p;
}

void BanditInstance::validate() const {
  STOSCHED_REQUIRE(!projects.empty(), "instance needs at least one project");
  STOSCHED_REQUIRE(beta > 0.0 && beta < 1.0, "discount must lie in (0,1)");
  for (const auto& p : projects) p.validate();
}

}  // namespace stosched::bandit
