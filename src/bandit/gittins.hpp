// gittins.hpp — Gittins dynamic allocation indices (survey §2).
//
// The index of state i is
//     gamma_i = sup_{tau >= 1} E_i[ Σ_{t<tau} β^t R_{x(t)} ]
//                            / E_i[ Σ_{t<tau} β^t ],
// the best achievable "discounted reward per unit of discounted time" before
// retiring. Gittins–Jones [19]: engaging a project with maximal current
// index is optimal. The survey stresses the rich history of independent
// proofs; in the same spirit the library computes the index by three
// independent algorithms and cross-validates them (experiment F2):
//
//   * gittins_largest_index — Varaiya–Walrand–Buyukkoc [40]: states are
//     indexed from the largest down; the k-th round solves a linear system
//     on the previously-indexed (continuation) set. O(n^4), exact up to
//     linear-solve rounding.
//   * gittins_restart — Katehakis–Veinott restart-in-state MDP: gamma_i =
//     (1-β) V_i(i), where V_i is the value of the MDP allowing "continue" or
//     "restart to i" in every state. Solved by value iteration [47]-style.
//   * gittins_calibration — Whittle's retirement-reward calibration [47]:
//     bisect the retirement reward M until indifference at state i;
//     gamma_i = (1-β) M*.
#pragma once

#include <vector>

#include "bandit/project.hpp"

namespace stosched::bandit {

/// Varaiya–Walrand–Buyukkoc largest-index-first algorithm. Exact.
std::vector<double> gittins_largest_index(const MarkovProject& p, double beta);

/// Restart-in-state formulation solved by value iteration to `tol`.
std::vector<double> gittins_restart(const MarkovProject& p, double beta,
                                    double tol = 1e-11);

/// Retirement-option calibration via bisection to `tol` on the index scale.
std::vector<double> gittins_calibration(const MarkovProject& p, double beta,
                                        double tol = 1e-9);

}  // namespace stosched::bandit
