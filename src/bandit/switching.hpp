// switching.hpp — bandits with switching penalties (survey §2, [2]).
//
// A cost c_sw is charged whenever the engaged project changes (including the
// first engagement from idle). Gittins' rule is no longer optimal; Asawa and
// Teneketzis characterized the optimal policy partially and motivated a
// hysteresis heuristic built from two indices per state:
//   * continuation index  = plain Gittins index gamma_i (no setup to keep
//     playing the incumbent);
//   * switching index     = gamma_i - (1-beta) * c_sw (a newcomer must
//     amortize the setup over the discounted future).
// The heuristic stays with the incumbent while its continuation index beats
// every rival's switching index. Experiment T7 compares: exact optimum (MDP
// over joint state x incumbent), hysteresis heuristic, and naive Gittins.
#pragma once

#include <cstddef>
#include <vector>

#include "bandit/bandit_sim.hpp"
#include "bandit/project.hpp"

namespace stosched::bandit {

/// The switching-cost bandit: instance + switching penalty.
struct SwitchingInstance {
  BanditInstance base;
  double switch_cost = 0.0;
};

/// Exact optimal value from `start` with no incumbent (first pull pays the
/// switching cost). Augments the product MDP with the incumbent project.
double switching_optimal_value(const SwitchingInstance& inst,
                               const std::vector<std::size_t>& start);

/// Exact value of the hysteresis index policy described above.
double switching_hysteresis_value(const SwitchingInstance& inst,
                                  const std::vector<std::size_t>& start);

/// Exact value of naive Gittins (ignores the switching cost when choosing,
/// but still pays it).
double switching_naive_gittins_value(const SwitchingInstance& inst,
                                     const std::vector<std::size_t>& start);

}  // namespace stosched::bandit
