// arrival.hpp — pluggable arrival processes for the queueing simulators.
//
// Every event-driven simulator in queueing/ used to hard-code Poisson
// arrivals (`arrival_rate` + one exponential draw per arrival). That locks
// the policy experiments to memoryless traffic, which is exactly the regime
// where index/priority policies are *hardest to separate*: correlated or
// bursty input and non-unit interarrival variability are where scheduling
// choices move the cost. `ArrivalProcess` makes the arrival law a
// first-class, swappable model component:
//
//   * RenewalArrivals — i.i.d. interarrival times from any `Distribution`
//     (the exponential case IS the old Poisson path, bit-for-bit);
//   * MMPPArrivals   — 2-phase Markov-modulated Poisson (the simplest MAP):
//     the instantaneous rate jumps between two levels along a Markov chain,
//     producing positively correlated, bursty arrivals with a closed-form
//     stationary rate (so load sweeps still work exactly);
//   * BatchArrivals  — renewal epochs delivering fixed-size or geometric
//     batches of simultaneous jobs.
//
// Determinism contract: a process never owns randomness. The simulator
// hands each class a dedicated `Rng` substream plus a per-replication
// `ArrivalState`; `next_gap` / `batch_size` draw only through that stream.
// Two policy arms replaying the same substreams therefore see *identical*
// arrival epochs and batch sizes — the synchronization the common-random-
// number comparisons (experiment::run_paired) rely on — for every process
// kind, not just Poisson.
//
// Rate/burstiness contract: `rate()` is the exact long-run expected number
// of *jobs* per unit time (batch-size weighted), so traffic intensities and
// `scale_to_load` remain exact for any process. `burstiness()` is the
// asymptotic index of dispersion of counts, lim Var N(t) / E N(t): 1 for
// Poisson, the interarrival SCV for a renewal process, > 1 for bursty MMPP
// and batch input.
#pragma once

#include <cstddef>
#include <memory>

#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace stosched {

class ArrivalProcess;

/// Shared ownership: class specs and scenario registries hold (and freely
/// copy) handles to immutable processes, exactly like `DistPtr`.
using ArrivalPtr = std::shared_ptr<const ArrivalProcess>;

/// Per-replication mutable sampler state. The process object itself is
/// immutable and shared; everything that evolves along one sample path
/// (the MMPP phase) lives here, owned by the simulator next to the class's
/// Rng substream.
struct ArrivalState {
  std::size_t phase = 0;  ///< MMPP modulating phase; unused by renewal/batch
};

/// An exogenous arrival stream with known long-run rate and burstiness.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Long-run expected jobs per unit time (batch-size weighted); > 0.
  virtual double rate() const = 0;

  /// Asymptotic index of dispersion of counts, lim_t Var N(t) / E N(t).
  /// 1 for Poisson; for a renewal process this equals the interarrival SCV.
  virtual double burstiness() const = 0;

  /// Time from the current arrival epoch to the next one, advancing `state`.
  /// Draws only from `rng` (deterministic in the substream).
  virtual double next_gap(ArrivalState& state, Rng& rng) const = 0;

  /// Number of jobs delivered at the epoch just reached (>= 1). The default
  /// consumes no randomness, so non-batch processes leave the draw sequence
  /// untouched.
  virtual std::size_t batch_size(ArrivalState& state, Rng& rng) const {
    (void)state;
    (void)rng;
    return 1;
  }

  /// E[batch size] (1 for non-batch processes).
  virtual double mean_batch() const { return 1.0; }

  /// Gap-sampling fast path: when the process's `next_gap` is exactly one
  /// stateless Distribution-style draw (Poisson, renewal, batch epochs),
  /// fill `out` with the FlatSampler replaying that draw bit-for-bit and
  /// return true; stateful processes (MMPP) return false and keep the
  /// virtual path. `CachedGapSampler` below is the consumer.
  virtual bool flat_gap(FlatSampler* out) const {
    (void)out;
    return false;
  }

  /// Copy with the long-run job rate multiplied by `factor` (> 0), realized
  /// as a pure time rescaling: the correlation structure and `burstiness()`
  /// are preserved exactly. This is what makes `scale_to_load` work for any
  /// process kind.
  virtual ArrivalPtr scaled(double factor) const = 0;

  /// Short process tag ("poisson", "renewal", "mmpp", "batch"), for
  /// diagnostics and bench metadata.
  virtual const char* kind() const noexcept = 0;
};

/// Per-class cached gap dispatcher for simulator hot loops: resolves the
/// process's sampling procedure ONCE (at replication setup) instead of one
/// virtual `next_gap` per arrival. Flat-capable processes route every draw
/// through the tagged-POD switch; stateful ones keep the virtual call. The
/// draw sequence is bit-identical either way (see `flat_gap`). Holds raw
/// pointers — valid only while the process (and its laws) are alive, which
/// the simulators guarantee by keeping the ArrivalPtr next to it.
class CachedGapSampler {
 public:
  CachedGapSampler() noexcept = default;

  explicit CachedGapSampler(const ArrivalProcess* process) noexcept
      : process_(process) {
    if (process_ != nullptr) flat_ok_ = process_->flat_gap(&flat_);
  }

  /// Time to the next arrival epoch, advancing `state` (virtual path only).
  double next_gap(ArrivalState& state, Rng& rng) const {
    return flat_ok_ ? flat_.sample(rng) : process_->next_gap(state, rng);
  }

  [[nodiscard]] bool flat() const noexcept { return flat_ok_; }

 private:
  const ArrivalProcess* process_ = nullptr;
  FlatSampler flat_;
  bool flat_ok_ = false;
};

// ---- factories -----------------------------------------------------------
// All factories validate their arguments and throw std::invalid_argument on
// a bad parameterization.

/// Poisson with the given rate. Dedicated implementation (not a renewal
/// wrapper) whose gap draw is exactly `rng.exponential(rate)` — the
/// simulators' historical draw — so configurations built from plain
/// `arrival_rate` fields reproduce the pre-refactor sample paths
/// bit-for-bit.
ArrivalPtr poisson_arrivals(double rate);

/// Renewal process with i.i.d. interarrival law `interarrival` (positive,
/// finite mean). With an exponential law this is bit-identical to
/// `poisson_arrivals` (both reduce to one `rng.exponential` per gap).
ArrivalPtr renewal_arrivals(DistPtr interarrival);

/// 2-phase Markov-modulated Poisson process (the canonical 2-state MAP):
/// while in phase i the stream is Poisson(rate_i); the phase flips 0 -> 1 at
/// rate switch01 and 1 -> 0 at rate switch10. Stationary job rate (closed
/// form): pi0 rate0 + pi1 rate1 with pi0 = switch10 / (switch01 + switch10).
/// Requires both switch rates > 0, rates >= 0 and a positive stationary
/// rate. Sample paths start in phase 0.
ArrivalPtr mmpp_arrivals(double rate0, double rate1, double switch01,
                         double switch10);

/// Symmetric on-off MMPP calibrated to a target long-run `rate` and
/// asymptotic index of dispersion `burstiness` > 1: phase 0 is ON at
/// 2*rate, phase 1 is OFF, both switch rates rate / (burstiness - 1).
/// The standard one-knob bursty-traffic family of the scenario sweeps.
ArrivalPtr bursty_arrivals(double rate, double burstiness);

/// Renewal epochs delivering a fixed batch of `size` >= 1 simultaneous jobs.
ArrivalPtr batch_arrivals(DistPtr interarrival, std::size_t size);

/// Renewal epochs delivering Geometric batches on {1, 2, ...} with mean
/// `mean_size` >= 1 (P[B = k] = (1-q) q^(k-1), q = 1 - 1/mean_size).
ArrivalPtr batch_arrivals_geometric(DistPtr interarrival, double mean_size);

}  // namespace stosched
