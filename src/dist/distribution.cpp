#include "dist/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace stosched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool sums_to_one(const std::vector<double>& probs) {
  double total = 0.0;
  for (const double p : probs) total += p;
  return std::abs(total - 1.0) <= 1e-9;
}

class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double rate) : rate_(rate) {}
  double sample(Rng& rng) const override { return rng.exponential(rate_); }
  FlatSampler flat() const override { return FlatSampler::exponential(rate_); }
  double mean() const override { return 1.0 / rate_; }
  double second_moment() const override { return 2.0 / (rate_ * rate_); }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  HazardClass hazard_class() const override { return HazardClass::kConstant; }
  const char* name() const noexcept override { return "exp"; }

 private:
  double rate_;
};

class DeterministicDist final : public Distribution {
 public:
  explicit DeterministicDist(double value) : value_(value) {}
  double sample(Rng&) const override { return value_; }
  FlatSampler flat() const override {
    return FlatSampler::deterministic(value_);
  }
  double mean() const override { return value_; }
  double second_moment() const override { return value_ * value_; }
  double variance() const override { return 0.0; }
  HazardClass hazard_class() const override {
    return HazardClass::kIncreasing;
  }
  const char* name() const noexcept override { return "det"; }

 protected:
  bool discrete_support_impl(std::vector<double>* values,
                             std::vector<double>* probs) const override {
    if (values) *values = {value_};
    if (probs) *probs = {1.0};
    return true;
  }

 private:
  double value_;
};

class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {}
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  FlatSampler flat() const override { return FlatSampler::uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double second_moment() const override { return variance() + mean() * mean(); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  HazardClass hazard_class() const override {
    return HazardClass::kIncreasing;
  }
  const char* name() const noexcept override { return "uniform"; }

 private:
  double lo_, hi_;
};

class ErlangDist final : public Distribution {
 public:
  ErlangDist(unsigned k, double rate) : k_(k), rate_(rate) {}
  double sample(Rng& rng) const override {
    // Sum of k exponentials via logs of chunked products of uniforms:
    // exact inversion composition, deterministic across platforms. Chunks
    // of 8 keep every partial product normal (>= 2^-424 even if all draws
    // hit the 2^-53 floor), so no underflow for any stage count.
    double acc = 0.0;
    for (unsigned i = 0; i < k_; i += 8) {
      double prod = 1.0;
      const unsigned end = std::min(i + 8u, k_);
      for (unsigned j = i; j < end; ++j) prod *= rng.uniform_pos();
      acc += std::log(prod);
    }
    return -acc / rate_;
  }
  FlatSampler flat() const override { return FlatSampler::erlang(k_, rate_); }
  double mean() const override { return k_ / rate_; }
  double second_moment() const override {
    return k_ * (k_ + 1.0) / (rate_ * rate_);
  }
  double variance() const override { return k_ / (rate_ * rate_); }
  HazardClass hazard_class() const override {
    return k_ == 1 ? HazardClass::kConstant : HazardClass::kIncreasing;
  }
  const char* name() const noexcept override { return "erlang"; }

 private:
  unsigned k_;
  double rate_;
};

class HyperExpDist final : public Distribution {
 public:
  HyperExpDist(std::vector<double> probs, std::vector<double> rates)
      : probs_(std::move(probs)), rates_(std::move(rates)) {}
  double sample(Rng& rng) const override {
    const std::size_t i = rng.categorical(probs_.data(), probs_.size());
    return rng.exponential(rates_[i]);
  }
  double mean() const override {
    double m = 0.0;
    for (std::size_t i = 0; i < probs_.size(); ++i) m += probs_[i] / rates_[i];
    return m;
  }
  double second_moment() const override {
    double m2 = 0.0;
    for (std::size_t i = 0; i < probs_.size(); ++i)
      m2 += 2.0 * probs_[i] / (rates_[i] * rates_[i]);
    return m2;
  }
  double variance() const override {
    const double m = mean();
    return second_moment() - m * m;
  }
  HazardClass hazard_class() const override {
    for (const double r : rates_)
      if (r != rates_.front()) return HazardClass::kDecreasing;
    return HazardClass::kConstant;
  }
  const char* name() const noexcept override { return "hyperexp"; }

 private:
  std::vector<double> probs_, rates_;
};

/// Balanced-means two-branch fit: p1/mu1 == p2/mu2, hitting a requested
/// (mean, SCV). Reports the requested moments exactly.
class HyperExp2Dist final : public Distribution {
 public:
  HyperExp2Dist(double mean, double scv) : mean_(mean), scv_(scv) {
    const double p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
    p_ = p1;
    mu1_ = 2.0 * p1 / mean;
    mu2_ = 2.0 * (1.0 - p1) / mean;
  }
  double sample(Rng& rng) const override {
    return rng.exponential(rng.bernoulli(p_) ? mu1_ : mu2_);
  }
  double mean() const override { return mean_; }
  double second_moment() const override { return variance() + mean_ * mean_; }
  double variance() const override { return scv_ * mean_ * mean_; }
  HazardClass hazard_class() const override {
    return scv_ > 1.0 ? HazardClass::kDecreasing : HazardClass::kConstant;
  }
  const char* name() const noexcept override { return "hyperexp2"; }

 private:
  double mean_, scv_, p_, mu1_, mu2_;
};

class TwoPointDist final : public Distribution {
 public:
  TwoPointDist(double a, double pa, double b) : a_(a), b_(b), pa_(pa) {}
  double sample(Rng& rng) const override {
    return rng.bernoulli(pa_) ? a_ : b_;
  }
  double mean() const override { return pa_ * a_ + (1.0 - pa_) * b_; }
  double second_moment() const override {
    return pa_ * a_ * a_ + (1.0 - pa_) * b_ * b_;
  }
  double variance() const override {
    const double m = mean();
    return second_moment() - m * m;
  }
  HazardClass hazard_class() const override {
    return HazardClass::kNonMonotone;
  }
  const char* name() const noexcept override { return "twopoint"; }

 protected:
  bool discrete_support_impl(std::vector<double>* values,
                             std::vector<double>* probs) const override {
    if (values) *values = {a_, b_};
    if (probs) *probs = {pa_, 1.0 - pa_};
    return true;
  }

 private:
  double a_, b_, pa_;
};

class WeibullDist final : public Distribution {
 public:
  WeibullDist(double shape, double scale)
      : shape_(shape),
        scale_(scale),
        mean_(scale * std::tgamma(1.0 + 1.0 / shape)),
        m2_(scale * scale * std::tgamma(1.0 + 2.0 / shape)) {}
  double sample(Rng& rng) const override {
    // Inversion: F^{-1}(u) = scale * (-log(1-u))^{1/shape}.
    return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
  }
  double mean() const override { return mean_; }
  double second_moment() const override { return m2_; }
  double variance() const override { return m2_ - mean_ * mean_; }
  HazardClass hazard_class() const override {
    if (shape_ > 1.0) return HazardClass::kIncreasing;
    if (shape_ < 1.0) return HazardClass::kDecreasing;
    return HazardClass::kConstant;
  }
  const char* name() const noexcept override { return "weibull"; }

 private:
  double shape_, scale_, mean_, m2_;
};

class LognormalDist final : public Distribution {
 public:
  LognormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  double sample(Rng& rng) const override {
    return std::exp(mu_ + sigma_ * rng.normal());
  }
  double mean() const override {
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
  }
  double second_moment() const override {
    return std::exp(2.0 * mu_ + 2.0 * sigma_ * sigma_);
  }
  double variance() const override {
    const double m = mean();
    return second_moment() - m * m;
  }
  HazardClass hazard_class() const override {
    // The lognormal hazard rises from 0 then falls back to 0: upside-down
    // bathtub, for every sigma.
    return HazardClass::kNonMonotone;
  }
  const char* name() const noexcept override { return "lognormal"; }

 private:
  double mu_, sigma_;
};

class ParetoDist final : public Distribution {
 public:
  ParetoDist(double scale, double alpha) : scale_(scale), alpha_(alpha) {}
  double sample(Rng& rng) const override {
    // Inversion: x_m * U^{-1/alpha} with U in (0,1].
    return scale_ * std::pow(rng.uniform_pos(), -1.0 / alpha_);
  }
  double mean() const override { return alpha_ * scale_ / (alpha_ - 1.0); }
  double second_moment() const override {
    if (alpha_ <= 2.0) return kInf;
    return alpha_ * scale_ * scale_ / (alpha_ - 2.0);
  }
  double variance() const override {
    if (alpha_ <= 2.0) return kInf;
    const double m = mean();
    return second_moment() - m * m;
  }
  HazardClass hazard_class() const override {
    return HazardClass::kDecreasing;  // h(t) = alpha / t on [x_m, inf)
  }
  const char* name() const noexcept override { return "pareto"; }

 private:
  double scale_, alpha_;
};

class DiscreteDist final : public Distribution {
 public:
  DiscreteDist(std::vector<double> values, std::vector<double> probs)
      : values_(std::move(values)), probs_(std::move(probs)) {}
  double sample(Rng& rng) const override {
    // Linear-scan inversion — supports here are small (job outcomes).
    double u = rng.uniform();
    for (std::size_t i = 0; i + 1 < probs_.size(); ++i) {
      u -= probs_[i];
      if (u < 0.0) return values_[i];
    }
    return values_.back();
  }
  double mean() const override {
    double m = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
      m += probs_[i] * values_[i];
    return m;
  }
  double second_moment() const override {
    double m2 = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i)
      m2 += probs_[i] * values_[i] * values_[i];
    return m2;
  }
  double variance() const override {
    const double m = mean();
    return second_moment() - m * m;
  }
  HazardClass hazard_class() const override {
    return HazardClass::kNonMonotone;
  }
  const char* name() const noexcept override { return "discrete"; }

 protected:
  bool discrete_support_impl(std::vector<double>* values,
                             std::vector<double>* probs) const override {
    if (values) *values = values_;
    if (probs) *probs = probs_;
    return true;
  }

 private:
  std::vector<double> values_, probs_;
};

class ScaledDist final : public Distribution {
 public:
  ScaledDist(DistPtr base, double factor)
      : base_(std::move(base)), factor_(factor) {}
  double sample(Rng& rng) const override {
    return factor_ * base_->sample(rng);
  }
  double mean() const override { return factor_ * base_->mean(); }
  double second_moment() const override {
    return factor_ * factor_ * base_->second_moment();
  }
  double variance() const override {
    return factor_ * factor_ * base_->variance();
  }
  HazardClass hazard_class() const override {
    // h_scaled(t) = h(t / c) / c: a positive time rescale preserves the
    // monotonicity class.
    return base_->hazard_class();
  }
  const char* name() const noexcept override { return "scaled"; }

 protected:
  bool discrete_support_impl(std::vector<double>* values,
                             std::vector<double>* probs) const override {
    if (!discrete_support(*base_, values, probs)) return false;
    if (values)
      for (double& v : *values) v *= factor_;
    return true;
  }

 private:
  DistPtr base_;
  double factor_;
};

/// Tijms' common-rate mixture of Erlang(k-1) and Erlang(k) stages — the
/// exact two-moment fit for SCV in (1/k, 1/(k-1)). Known IFR: adjacent-
/// shape, common-rate Erlang mixtures have log-concave densities.
class ErlangMixDist final : public Distribution {
 public:
  ErlangMixDist(unsigned k, double rate, double p_short)
      : short_(std::make_shared<ErlangDist>(k - 1, rate)),
        long_(std::make_shared<ErlangDist>(k, rate)),
        p_(p_short) {}
  double sample(Rng& rng) const override {
    // One Bernoulli then the chosen branch's stage draws; same primitive
    // sequence pattern as HyperExpDist, deterministic across platforms.
    return rng.bernoulli(p_) ? short_->sample(rng) : long_->sample(rng);
  }
  double mean() const override {
    return p_ * short_->mean() + (1.0 - p_) * long_->mean();
  }
  double second_moment() const override {
    return p_ * short_->second_moment() +
           (1.0 - p_) * long_->second_moment();
  }
  double variance() const override {
    const double m = mean();
    return second_moment() - m * m;
  }
  HazardClass hazard_class() const override {
    return HazardClass::kIncreasing;
  }
  const char* name() const noexcept override { return "erlangmix"; }

 private:
  std::shared_ptr<ErlangDist> short_, long_;
  double p_;
};

}  // namespace

const char* to_string(HazardClass c) noexcept {
  switch (c) {
    case HazardClass::kConstant: return "constant";
    case HazardClass::kIncreasing: return "IFR";
    case HazardClass::kDecreasing: return "DFR";
    case HazardClass::kNonMonotone: return "non-monotone";
  }
  return "?";
}

bool discrete_support(const Distribution& d, std::vector<double>* values,
                      std::vector<double>* probs) {
  return d.discrete_support_impl(values, probs);
}

DistPtr exponential_dist(double rate) {
  STOSCHED_REQUIRE(rate > 0.0 && std::isfinite(rate),
                   "exponential rate must be positive and finite");
  return std::make_shared<ExponentialDist>(rate);
}

DistPtr deterministic_dist(double value) {
  STOSCHED_REQUIRE(value > 0.0 && std::isfinite(value),
                   "deterministic value must be positive and finite");
  return std::make_shared<DeterministicDist>(value);
}

DistPtr uniform_dist(double lo, double hi) {
  STOSCHED_REQUIRE(lo >= 0.0 && hi > lo && std::isfinite(hi),
                   "uniform support needs 0 <= lo < hi");
  return std::make_shared<UniformDist>(lo, hi);
}

DistPtr erlang_dist(unsigned k, double rate) {
  STOSCHED_REQUIRE(k >= 1, "Erlang needs at least one stage");
  STOSCHED_REQUIRE(rate > 0.0 && std::isfinite(rate),
                   "Erlang stage rate must be positive and finite");
  return std::make_shared<ErlangDist>(k, rate);
}

DistPtr hyperexp_dist(std::vector<double> probs, std::vector<double> rates) {
  STOSCHED_REQUIRE(!probs.empty() && probs.size() == rates.size(),
                   "hyperexp needs matching, nonempty probs and rates");
  for (const double p : probs)
    STOSCHED_REQUIRE(p > 0.0 && p <= 1.0,
                     "hyperexp branch probabilities must lie in (0,1]");
  for (const double r : rates)
    STOSCHED_REQUIRE(r > 0.0 && std::isfinite(r),
                     "hyperexp branch rates must be positive and finite");
  STOSCHED_REQUIRE(sums_to_one(probs),
                   "hyperexp branch probabilities must sum to 1");
  return std::make_shared<HyperExpDist>(std::move(probs), std::move(rates));
}

DistPtr hyperexp2_dist(double mean, double scv) {
  STOSCHED_REQUIRE(mean > 0.0 && std::isfinite(mean),
                   "hyperexp2 mean must be positive and finite");
  STOSCHED_REQUIRE(scv >= 1.0 && std::isfinite(scv),
                   "hyperexp2 SCV must be >= 1 (use Erlang below 1)");
  return std::make_shared<HyperExp2Dist>(mean, scv);
}

DistPtr two_point_dist(double a, double pa, double b) {
  STOSCHED_REQUIRE(a > 0.0 && b > a && std::isfinite(b),
                   "two-point support needs 0 < a < b");
  STOSCHED_REQUIRE(pa > 0.0 && pa < 1.0,
                   "two-point probability must lie in (0,1)");
  return std::make_shared<TwoPointDist>(a, pa, b);
}

DistPtr weibull_dist(double shape, double scale) {
  STOSCHED_REQUIRE(shape > 0.0 && std::isfinite(shape),
                   "Weibull shape must be positive and finite");
  STOSCHED_REQUIRE(scale > 0.0 && std::isfinite(scale),
                   "Weibull scale must be positive and finite");
  return std::make_shared<WeibullDist>(shape, scale);
}

DistPtr lognormal_dist(double mu, double sigma) {
  STOSCHED_REQUIRE(std::isfinite(mu), "lognormal mu must be finite");
  STOSCHED_REQUIRE(sigma > 0.0 && std::isfinite(sigma),
                   "lognormal sigma must be positive and finite");
  return std::make_shared<LognormalDist>(mu, sigma);
}

DistPtr pareto_dist(double scale, double alpha) {
  STOSCHED_REQUIRE(scale > 0.0 && std::isfinite(scale),
                   "Pareto scale must be positive and finite");
  STOSCHED_REQUIRE(alpha > 1.0 && std::isfinite(alpha),
                   "Pareto tail index must exceed 1 for a finite mean");
  return std::make_shared<ParetoDist>(scale, alpha);
}

DistPtr discrete_dist(std::vector<double> values, std::vector<double> probs) {
  STOSCHED_REQUIRE(!values.empty() && values.size() == probs.size(),
                   "discrete law needs matching, nonempty values and probs");
  STOSCHED_REQUIRE(values.front() > 0.0 && std::isfinite(values.back()),
                   "discrete support must be positive and finite");
  for (std::size_t i = 1; i < values.size(); ++i)
    STOSCHED_REQUIRE(values[i] > values[i - 1],
                     "discrete support must be strictly increasing");
  for (const double p : probs)
    STOSCHED_REQUIRE(p > 0.0 && p <= 1.0,
                     "discrete probabilities must lie in (0,1]");
  STOSCHED_REQUIRE(sums_to_one(probs),
                   "discrete probabilities must sum to 1");
  return std::make_shared<DiscreteDist>(std::move(values), std::move(probs));
}

DistPtr scaled_dist(DistPtr base, double factor) {
  STOSCHED_REQUIRE(base != nullptr, "scaled law needs a base distribution");
  STOSCHED_REQUIRE(factor > 0.0 && std::isfinite(factor),
                   "scale factor must be positive and finite");
  return std::make_shared<ScaledDist>(std::move(base), factor);
}

DistPtr with_mean_scv(double mean, double scv) {
  STOSCHED_REQUIRE(mean > 0.0 && std::isfinite(mean),
                   "two-moment fit mean must be positive and finite");
  STOSCHED_REQUIRE(scv >= 0.0 && std::isfinite(scv),
                   "two-moment fit SCV must be >= 0 and finite");
  if (scv == 0.0) return deterministic_dist(mean);
  if (scv == 1.0) return exponential_dist(1.0 / mean);
  if (scv > 1.0) return hyperexp2_dist(mean, scv);
  // SCV in (0, 1): pick k with 1/k <= scv <= 1/(k-1) and mix Erlang(k-1)
  // and Erlang(k) at a common rate (Tijms). With mixing probability
  //   p = (k*scv - sqrt(k(1+scv) - k^2 scv)) / (1 + scv)
  // and rate mu = (k - p) / mean, the first two moments match exactly.
  const auto k = static_cast<unsigned>(std::ceil(1.0 / scv));
  const double kd = static_cast<double>(k);
  // The radicand vanishes at scv == 1/(k-1); clamp float noise at 0.
  const double rad = std::max(0.0, kd * (1.0 + scv) - kd * kd * scv);
  const double p = (kd * scv - std::sqrt(rad)) / (1.0 + scv);
  if (p <= 0.0) return erlang_dist(k, kd / mean);  // scv == 1/k exactly
  const double mu = (kd - p) / mean;
  return std::make_shared<ErlangMixDist>(k, mu, p);
}

}  // namespace stosched
