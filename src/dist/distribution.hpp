// distribution.hpp — processing-time laws with known moments (survey §0).
//
// Everything in stochastic scheduling consumes a job's law through two
// narrow windows: its first two moments (WSEPT, Sevcik, cµ, achievable
// regions) and its hazard-rate monotonicity class (Gittins/Whittle index
// structure, LEPT/SEPT optimality conditions). `Distribution` exposes
// exactly that — closed-form `mean()` / `second_moment()` / `variance()` /
// `scv()` plus a `HazardClass` tag — together with deterministic sampling
// for the discrete-event side.
//
// Sampling reproducibility: every law draws through `stosched::Rng`
// primitives only (inversion, mixtures of inversions), never through
// implementation-defined <random> algorithms, so a (seed, stream) pair
// yields bit-identical sample paths on every platform. See util/rng.hpp.
//
// Laws whose support is a finite set additionally expose it through
// `discrete_support()`, which the exact DP solvers (subset_dp,
// parallel_machines) use to enumerate outcomes.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace stosched {

class Distribution;

/// Devirtualized per-event sampling: a tagged POD capturing one law's draw
/// procedure as (kind + parameters), dispatched by a `switch` instead of a
/// virtual call. Simulators resolve each class's law to a FlatSampler once
/// per replication and route every hot-loop draw through it — params live
/// inline in a 32-byte value instead of behind a shared_ptr + vtable chase.
///
/// Bit-identity contract: every fast-path case consumes exactly the same
/// Rng primitives in exactly the same order as the corresponding
/// `Distribution::sample` override, so replacing virtual dispatch with a
/// cached FlatSampler cannot change any sample path (regression-tested for
/// all laws in tests/test_dist.cpp). Laws without a fast case fall back to
/// the virtual call through a raw pointer — the sampler is only valid while
/// the distribution it came from is alive.
class FlatSampler {
 public:
  enum class Kind : unsigned char {
    kExponential,    ///< a = rate
    kDeterministic,  ///< a = value; consumes no randomness
    kUniform,        ///< a = lo, b = hi
    kErlang,         ///< k = stages, a = per-stage rate
    kVirtual,        ///< fallback: one virtual sample() per draw
  };

  /// Default: point mass at 0 — an inert placeholder for containers;
  /// overwrite via a factory or Distribution::flat() before sampling.
  FlatSampler() noexcept = default;

  static FlatSampler exponential(double rate) noexcept {
    return {Kind::kExponential, 0, rate, 0.0, nullptr};
  }
  static FlatSampler deterministic(double value) noexcept {
    return {Kind::kDeterministic, 0, value, 0.0, nullptr};
  }
  static FlatSampler uniform(double lo, double hi) noexcept {
    return {Kind::kUniform, 0, lo, hi, nullptr};
  }
  static FlatSampler erlang(unsigned k, double rate) noexcept {
    return {Kind::kErlang, k, rate, 0.0, nullptr};
  }
  static FlatSampler virtual_fallback(const Distribution& d) noexcept {
    return {Kind::kVirtual, 0, 0.0, 0.0, &d};
  }

  /// One draw; defined inline below Distribution (the fallback case needs
  /// its complete type).
  double sample(Rng& rng) const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  FlatSampler(Kind kind, unsigned k, double a, double b,
              const Distribution* fallback) noexcept
      : kind_(kind), k_(k), a_(a), b_(b), fallback_(fallback) {}

  Kind kind_ = Kind::kDeterministic;
  unsigned k_ = 0;
  double a_ = 0.0;
  double b_ = 0.0;
  const Distribution* fallback_ = nullptr;
};

/// Monotonicity class of the hazard (failure) rate h(t) = f(t) / (1-F(t)).
/// Drives index-policy optimality: e.g. LEPT is optimal for LEPT-agreeable
/// DFR families, SEPT for IFR ones; constant hazard (memoryless) makes
/// preemption irrelevant.
enum class HazardClass {
  kConstant,     ///< exponential: memoryless
  kIncreasing,   ///< IFR — "aging" laws (deterministic, Erlang, uniform)
  kDecreasing,   ///< DFR — heavy-tail-ish laws (hyperexponential, Pareto)
  kNonMonotone,  ///< neither (two-point, lognormal, general discrete)
};

/// Human-readable tag, for tables and logs.
const char* to_string(HazardClass c) noexcept;

/// A nonnegative processing-time law with closed-form first two moments.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// One draw, using only deterministic Rng primitives.
  virtual double sample(Rng& rng) const = 0;

  /// E[X] (finite for every law in the library).
  virtual double mean() const = 0;

  /// E[X^2]; +infinity where the law has none (Pareto with alpha <= 2).
  virtual double second_moment() const = 0;

  /// Var[X]; +infinity when the second moment is infinite.
  virtual double variance() const = 0;

  /// Squared coefficient of variation Var[X] / E[X]^2 — the quantity the
  /// SCV-sensitive approximation bounds are stated in.
  double scv() const {
    const double m = mean();
    return variance() / (m * m);
  }

  /// Monotonicity class of the hazard rate.
  virtual HazardClass hazard_class() const = 0;

  /// Short law name ("exp", "erlang", ...), for diagnostics.
  virtual const char* name() const noexcept = 0;

  /// Devirtualized sampling hook: the FlatSampler whose switch-based
  /// sample() replays this law's draw procedure bit-for-bit. Laws with a
  /// flat fast path (exponential, deterministic, uniform, Erlang) override
  /// this; the default routes every draw back through the virtual sample().
  /// The returned sampler references *this — keep the law alive.
  virtual FlatSampler flat() const {
    return FlatSampler::virtual_fallback(*this);
  }

 protected:
  friend bool discrete_support(const Distribution&, std::vector<double>*,
                               std::vector<double>*);

  /// Finite-support hook: laws with a finite atom set fill `values`
  /// (strictly increasing) and `probs` and return true. Either out-pointer
  /// may be null. Default: not discrete.
  virtual bool discrete_support_impl(std::vector<double>* values,
                                     std::vector<double>* probs) const {
    (void)values;
    (void)probs;
    return false;
  }
};

inline double FlatSampler::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kExponential:
      return rng.exponential(a_);
    case Kind::kDeterministic:
      return a_;
    case Kind::kUniform:
      return rng.uniform(a_, b_);
    case Kind::kErlang: {
      // Byte-for-byte the ErlangDist::sample loop: chunked log-of-products
      // inversion (see dist/distribution.cpp for the underflow argument).
      double acc = 0.0;
      for (unsigned i = 0; i < k_; i += 8) {
        double prod = 1.0;
        const unsigned end = std::min(i + 8u, k_);
        for (unsigned j = i; j < end; ++j) prod *= rng.uniform_pos();
        acc += std::log(prod);
      }
      return -acc / a_;
    }
    case Kind::kVirtual:
      return fallback_->sample(rng);
  }
  return 0.0;  // unreachable: the switch covers every Kind
}

/// Shared ownership: jobs, queueing class specs and generated instances all
/// hold (and freely copy) handles to immutable laws.
using DistPtr = std::shared_ptr<const Distribution>;

/// If `d` has finite support, fill `values` / `probs` (null pointers are
/// skipped) and return true; otherwise return false and leave the outputs
/// untouched.
bool discrete_support(const Distribution& d, std::vector<double>* values,
                      std::vector<double>* probs);

// ---- factories -----------------------------------------------------------
// All factories validate their arguments and throw std::invalid_argument on
// a bad parameterization (nonpositive rate, probabilities not summing to 1,
// unordered support, ...).

/// Exponential with the given rate; mean 1/rate, SCV 1, constant hazard.
DistPtr exponential_dist(double rate);

/// Point mass at `value` > 0; SCV 0, (weakly) increasing hazard.
DistPtr deterministic_dist(double value);

/// Uniform on [lo, hi), 0 <= lo < hi; increasing hazard.
DistPtr uniform_dist(double lo, double hi);

/// Erlang-k with per-stage rate `rate`: sum of k iid exponentials.
/// Mean k/rate, SCV 1/k; constant hazard for k == 1, increasing for k >= 2.
DistPtr erlang_dist(unsigned k, double rate);

/// General hyperexponential mixture: with probability probs[i], an
/// exponential of rate rates[i]. Decreasing hazard (constant when all
/// branch rates coincide).
DistPtr hyperexp_dist(std::vector<double> probs, std::vector<double> rates);

/// Two-branch balanced-means hyperexponential calibrated to a target mean
/// and SCV >= 1 — the standard two-moment fit for high-variability service.
DistPtr hyperexp2_dist(double mean, double scv);

/// Two-point law: value `a` with probability `pa`, else `b`; 0 < a < b.
/// The counterexample family of the survey's §1 (nonmonotone hazard).
DistPtr two_point_dist(double a, double pa, double b);

/// Weibull with shape `k` and scale `lambda`; increasing hazard for k > 1,
/// decreasing for k < 1, exponential at k == 1.
DistPtr weibull_dist(double shape, double scale);

/// Lognormal: exp(mu + sigma Z), Z standard normal; nonmonotone hazard.
DistPtr lognormal_dist(double mu, double sigma);

/// Pareto with scale x_m and tail index alpha > 1 (finite mean); second
/// moment infinite for alpha <= 2. Decreasing hazard.
DistPtr pareto_dist(double scale, double alpha);

/// General finite law on strictly increasing positive atoms.
DistPtr discrete_dist(std::vector<double> values, std::vector<double> probs);

/// Time-rescaled law: samples `factor * X` for X ~ base (factor > 0).
/// Mean scales by factor, variance by factor^2, so the SCV and the hazard
/// monotonicity class are preserved exactly — the transform behind
/// rate-scaling a renewal arrival process without changing its shape.
DistPtr scaled_dist(DistPtr base, double factor);

/// Exact two-moment fit to a target (mean, SCV), the standard workhorse of
/// SCV sweeps: SCV 0 -> deterministic, SCV in (0,1) -> common-rate mixture
/// of Erlang(k-1)/Erlang(k) stages with 1/k <= SCV <= 1/(k-1) (Tijms' fit),
/// SCV 1 -> exponential, SCV > 1 -> balanced-means 2-branch
/// hyperexponential. The returned law reports the requested moments
/// exactly.
DistPtr with_mean_scv(double mean, double scv);

}  // namespace stosched
