#include "dist/arrival.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace stosched {

namespace {

/// The historical simulator path: one `rng.exponential(rate)` per gap.
/// Deliberately NOT a RenewalArrivals over ExponentialDist — although the
/// two are bit-identical today, this class pins the old draw directly so
/// the Poisson-default construction path can never drift.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate) : rate_(rate) {}
  double rate() const override { return rate_; }
  double burstiness() const override { return 1.0; }
  double next_gap(ArrivalState&, Rng& rng) const override {
    return rng.exponential(rate_);
  }
  bool flat_gap(FlatSampler* out) const override {
    *out = FlatSampler::exponential(rate_);  // the next_gap draw, verbatim
    return true;
  }
  ArrivalPtr scaled(double factor) const override {
    STOSCHED_REQUIRE(factor > 0.0 && std::isfinite(factor),
                     "arrival scale factor must be positive and finite");
    return poisson_arrivals(rate_ * factor);
  }
  const char* kind() const noexcept override { return "poisson"; }

 private:
  double rate_;
};

class RenewalArrivals final : public ArrivalProcess {
 public:
  explicit RenewalArrivals(DistPtr interarrival)
      : interarrival_(std::move(interarrival)) {}
  double rate() const override { return 1.0 / interarrival_->mean(); }
  double burstiness() const override {
    // Asymptotic IDC of a renewal process == interarrival SCV.
    return interarrival_->scv();
  }
  double next_gap(ArrivalState&, Rng& rng) const override {
    return interarrival_->sample(rng);
  }
  bool flat_gap(FlatSampler* out) const override {
    // The law's own flat form; laws without a fast case still skip the
    // per-gap ArrivalProcess dispatch via the virtual-fallback sampler.
    *out = interarrival_->flat();
    return true;
  }
  ArrivalPtr scaled(double factor) const override {
    STOSCHED_REQUIRE(factor > 0.0 && std::isfinite(factor),
                     "arrival scale factor must be positive and finite");
    return renewal_arrivals(scaled_dist(interarrival_, 1.0 / factor));
  }
  const char* kind() const noexcept override { return "renewal"; }

 private:
  DistPtr interarrival_;
};

class MMPPArrivals final : public ArrivalProcess {
 public:
  MMPPArrivals(double rate0, double rate1, double sw01, double sw10)
      : lambda_{rate0, rate1}, sw_{sw01, sw10} {}

  double rate() const override {
    const auto [pi0, pi1] = stationary();
    return pi0 * lambda_[0] + pi1 * lambda_[1];
  }

  double burstiness() const override {
    // Doubly-stochastic Poisson: Var N(t) = mean + variance contributed by
    // the integrated rate path. With Cov(lambda(0), lambda(u)) =
    // pi0 pi1 (l0 - l1)^2 exp(-(s01+s10) u), the asymptotic IDC is
    //   1 + 2 pi0 pi1 (l0 - l1)^2 / ((s01 + s10) * mean_rate).
    const auto [pi0, pi1] = stationary();
    const double d = lambda_[0] - lambda_[1];
    return 1.0 + 2.0 * pi0 * pi1 * d * d / ((sw_[0] + sw_[1]) * rate());
  }

  double next_gap(ArrivalState& state, Rng& rng) const override {
    // Competing exponentials: in phase p the next event fires at rate
    // lambda_p + sw_p and is an arrival with probability lambda_p / total;
    // otherwise the phase flips and the clock keeps accumulating.
    double gap = 0.0;
    for (;;) {
      const std::size_t p = state.phase & 1u;
      const double total = lambda_[p] + sw_[p];
      gap += rng.exponential(total);
      if (rng.uniform() * total < lambda_[p]) return gap;
      state.phase = p ^ 1u;
    }
  }

  ArrivalPtr scaled(double factor) const override {
    STOSCHED_REQUIRE(factor > 0.0 && std::isfinite(factor),
                     "arrival scale factor must be positive and finite");
    // Pure time rescaling: all four transition rates speed up together, so
    // the phase-path geometry (and hence burstiness) is unchanged.
    return mmpp_arrivals(lambda_[0] * factor, lambda_[1] * factor,
                         sw_[0] * factor, sw_[1] * factor);
  }

  const char* kind() const noexcept override { return "mmpp"; }

 private:
  std::pair<double, double> stationary() const {
    const double total = sw_[0] + sw_[1];
    return {sw_[1] / total, sw_[0] / total};
  }

  double lambda_[2];
  double sw_[2];  ///< sw_[0]: phase 0 -> 1, sw_[1]: phase 1 -> 0
};

class BatchArrivals final : public ArrivalProcess {
 public:
  /// `geo_q == 0` means a fixed batch of `fixed`; otherwise Geometric on
  /// {1, 2, ...} with continuation probability `geo_q`.
  BatchArrivals(DistPtr interarrival, std::size_t fixed, double geo_q)
      : interarrival_(std::move(interarrival)), fixed_(fixed), geo_q_(geo_q) {}

  double rate() const override { return mean_batch() / interarrival_->mean(); }

  double mean_batch() const override {
    return geo_q_ > 0.0 ? 1.0 / (1.0 - geo_q_) : static_cast<double>(fixed_);
  }

  double burstiness() const override {
    // N(t) = sum of K(t) i.i.d. batch sizes over base renewal epochs:
    // Var N = E K Var B + Var K (E B)^2, so asymptotically
    // IDC = Var B / E B + IDC_base * E B.
    const double eb = mean_batch();
    const double p = 1.0 - geo_q_;
    const double var_b = geo_q_ > 0.0 ? geo_q_ / (p * p) : 0.0;
    return var_b / eb + interarrival_->scv() * eb;
  }

  double next_gap(ArrivalState&, Rng& rng) const override {
    return interarrival_->sample(rng);
  }

  bool flat_gap(FlatSampler* out) const override {
    // Epoch gaps are one stateless interarrival draw; batch_size stays a
    // virtual call (it is off the per-event critical path: one per epoch,
    // and only geometric batches draw at all).
    *out = interarrival_->flat();
    return true;
  }

  std::size_t batch_size(ArrivalState&, Rng& rng) const override {
    if (geo_q_ <= 0.0) return fixed_;
    // Geometric inversion on {1, 2, ...}: u in (0, 1], so the ratio of logs
    // is nonnegative and u == 1 maps to a batch of exactly 1.
    const double u = rng.uniform_pos();
    return 1 + static_cast<std::size_t>(std::log(u) / std::log(geo_q_));
  }

  ArrivalPtr scaled(double factor) const override {
    STOSCHED_REQUIRE(factor > 0.0 && std::isfinite(factor),
                     "arrival scale factor must be positive and finite");
    return std::make_shared<BatchArrivals>(
        scaled_dist(interarrival_, 1.0 / factor), fixed_, geo_q_);
  }

  const char* kind() const noexcept override { return "batch"; }

 private:
  DistPtr interarrival_;
  std::size_t fixed_;
  double geo_q_;
};

void require_interarrival(const DistPtr& interarrival) {
  STOSCHED_REQUIRE(interarrival != nullptr, "interarrival law required");
  STOSCHED_REQUIRE(
      interarrival->mean() > 0.0 && std::isfinite(interarrival->mean()),
      "interarrival law needs a positive finite mean");
}

}  // namespace

ArrivalPtr poisson_arrivals(double rate) {
  STOSCHED_REQUIRE(rate > 0.0 && std::isfinite(rate),
                   "Poisson arrival rate must be positive and finite");
  return std::make_shared<PoissonArrivals>(rate);
}

ArrivalPtr renewal_arrivals(DistPtr interarrival) {
  require_interarrival(interarrival);
  return std::make_shared<RenewalArrivals>(std::move(interarrival));
}

ArrivalPtr mmpp_arrivals(double rate0, double rate1, double switch01,
                         double switch10) {
  STOSCHED_REQUIRE(rate0 >= 0.0 && std::isfinite(rate0) && rate1 >= 0.0 &&
                       std::isfinite(rate1),
                   "MMPP phase rates must be >= 0 and finite");
  STOSCHED_REQUIRE(switch01 > 0.0 && std::isfinite(switch01) &&
                       switch10 > 0.0 && std::isfinite(switch10),
                   "MMPP switch rates must be positive and finite");
  STOSCHED_REQUIRE(rate0 > 0.0 || rate1 > 0.0,
                   "MMPP needs a positive stationary rate");
  return std::make_shared<MMPPArrivals>(rate0, rate1, switch01, switch10);
}

ArrivalPtr bursty_arrivals(double rate, double burstiness) {
  STOSCHED_REQUIRE(rate > 0.0 && std::isfinite(rate),
                   "bursty arrival rate must be positive and finite");
  STOSCHED_REQUIRE(burstiness > 1.0 && std::isfinite(burstiness),
                   "burstiness must exceed 1 (use poisson_arrivals at 1)");
  // Symmetric on-off: pi0 = pi1 = 1/2, ON rate 2*rate, and the IDC formula
  // reduces to 1 + rate / switch, so switch = rate / (burstiness - 1).
  const double sw = rate / (burstiness - 1.0);
  return mmpp_arrivals(2.0 * rate, 0.0, sw, sw);
}

ArrivalPtr batch_arrivals(DistPtr interarrival, std::size_t size) {
  require_interarrival(interarrival);
  STOSCHED_REQUIRE(size >= 1, "batch size must be >= 1");
  return std::make_shared<BatchArrivals>(std::move(interarrival), size, 0.0);
}

ArrivalPtr batch_arrivals_geometric(DistPtr interarrival, double mean_size) {
  require_interarrival(interarrival);
  STOSCHED_REQUIRE(mean_size >= 1.0 && std::isfinite(mean_size),
                   "geometric mean batch size must be >= 1");
  const double q = 1.0 - 1.0 / mean_size;
  return std::make_shared<BatchArrivals>(std::move(interarrival), 1, q);
}

}  // namespace stosched
