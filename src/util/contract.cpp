#include "util/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace stosched::detail {

[[noreturn]] void contract_violation(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const char* msg) noexcept {
  // fprintf, not iostreams: the handler must work from noexcept hot paths
  // and during static destruction, and must not allocate under a failing
  // AddressSanitizer run.
  std::fprintf(stderr, "stosched contract violation — %s failed: (%s) at %s:%d — %s\n",
               kind, expr, file, line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace stosched::detail
