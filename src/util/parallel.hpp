// parallel.hpp — deterministic Monte-Carlo replication driver.
//
// Simulation experiments repeat independent replications and aggregate a
// scalar (or small vector) outcome. The driver:
//
//   * derives one RNG stream per replication from a master seed, so results
//     are a pure function of (seed, replications) — the schedule of
//     replications onto threads is irrelevant;
//   * fans replications out over OpenMP threads when available (the guides'
//     explicit-parallelism doctrine: the caller states the parallel shape,
//     nothing is implicit), falling back to serial execution;
//   * merges per-thread RunningStat accumulators with the exact
//     Chan–Golub–LeVeque combination, so the aggregate mean/variance is
//     independent of the thread partition up to floating-point association
//     order of the *merge tree*, which we fix by merging in thread order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stosched {

/// Run `replications` independent replications of `body`, where
/// `body(rep_index, rng)` returns the replication's scalar outcome. Returns
/// the merged statistics. Deterministic for fixed (seed, replications).
RunningStat monte_carlo(std::size_t replications, std::uint64_t seed,
                        const std::function<double(std::size_t, Rng&)>& body);

/// Vector-valued variant: `body(rep, rng, out)` fills `out` (size `dims`,
/// already zeroed). Returns one RunningStat per dimension.
std::vector<RunningStat> monte_carlo_vec(
    std::size_t replications, std::uint64_t seed, std::size_t dims,
    const std::function<void(std::size_t, Rng&, std::vector<double>&)>& body);

/// Number of worker threads the driver will use (1 if OpenMP is absent).
unsigned monte_carlo_threads() noexcept;

}  // namespace stosched
