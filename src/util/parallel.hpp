// parallel.hpp — compatibility shim over experiment/engine.hpp.
//
// The original Monte-Carlo replication driver lived here; it is now a thin
// type-erased wrapper around the experiment engine (same substream
// derivation, same cell-ordered Chan–Golub–LeVeque merging), kept because a
// `std::function` interface is convenient for quick call sites and tests.
// New code — anything that wants paired (CRN) comparisons, sequential
// stopping or named scenarios — should use stosched::experiment directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stosched {

/// Run `replications` independent replications of `body`, where
/// `body(rep_index, rng)` returns the replication's scalar outcome. Returns
/// the merged statistics. Deterministic for fixed (seed, replications) and
/// bit-identical to `experiment::run_fixed` with one metric dimension.
RunningStat monte_carlo(std::size_t replications, std::uint64_t seed,
                        const std::function<double(std::size_t, Rng&)>& body);

/// Vector-valued variant: `body(rep, rng, out)` fills `out` (size `dims`,
/// already zeroed). Returns one RunningStat per dimension.
std::vector<RunningStat> monte_carlo_vec(
    std::size_t replications, std::uint64_t seed, std::size_t dims,
    const std::function<void(std::size_t, Rng&, std::vector<double>&)>& body);

/// Number of worker threads the driver will use (1 if OpenMP is absent).
unsigned monte_carlo_threads() noexcept;

}  // namespace stosched
