#include "util/timestat.hpp"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

namespace stosched::timestat {

namespace {

/// Flushed totals of destroyed TimeStat instances, merged by name.
struct DeadStat {
  std::string name;
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

/// Process-wide registry. Deliberately leaked (never destroyed): TimeStat
/// instances are namespace-scope statics in arbitrary translation units, so
/// their construction/destruction order relative to any registry *object*
/// is unspecified — a leaked registry is valid at every point either could
/// run, including inside atexit handlers.
struct Registry {
  std::mutex mu;
  std::vector<TimeStat*> live;
  std::vector<DeadStat> dead;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked on purpose, see above
  return *r;
}

void merge_dead(Registry& reg, const char* name, std::uint64_t ns,
                std::uint64_t count) {
  for (auto& d : reg.dead) {
    if (d.name == name) {
      d.total_ns += ns;
      d.count += count;
      return;
    }
  }
  reg.dead.push_back({name, ns, count});
}

#ifdef STOSCHED_TIME_STATS
void report_at_exit() { report(std::cerr); }
#endif

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TimeStat::TimeStat(const char* name) noexcept : name_(name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.live.push_back(this);
#ifdef STOSCHED_TIME_STATS
  // One process-exit report per stats build; registered on the first
  // TimeStat so uninstrumented binaries stay silent.
  static const bool installed = (std::atexit(report_at_exit), true);
  (void)installed;
#endif
}

TimeStat::~TimeStat() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (std::size_t i = 0; i < reg.live.size(); ++i) {
    if (reg.live[i] == this) {
      reg.live.erase(reg.live.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (total_ns() != 0 || count() != 0)
    merge_dead(reg, name_, total_ns(), count());
}

void report(std::ostream& os) {
  Registry& reg = registry();
  std::vector<DeadStat> rows;
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    rows = reg.dead;
    for (const TimeStat* s : reg.live) {
      if (s->count() == 0) continue;
      bool merged = false;
      for (auto& r : rows) {
        if (r.name == s->name()) {
          r.total_ns += s->total_ns();
          r.count += s->count();
          merged = true;
          break;
        }
      }
      if (!merged) rows.push_back({s->name(), s->total_ns(), s->count()});
    }
  }
  if (rows.empty()) return;
  os << "-- stosched time stats "
        "--------------------------------------------------\n";
  char line[160];
  std::snprintf(line, sizeof line, "  %-28s %12s %14s %12s\n", "phase",
                "calls", "total", "per-call");
  os << line;
  for (const auto& r : rows) {
    const double total_s = static_cast<double>(r.total_ns) * 1e-9;
    const double per_call =
        r.count > 0
            ? static_cast<double>(r.total_ns) / static_cast<double>(r.count)
            : 0.0;
    std::snprintf(line, sizeof line, "  %-28s %12llu %12.3f s %9.1f ns\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.count),
                  total_s, per_call);
    os << line;
  }
  os << "------------------------------------------------------------"
        "-------------\n";
}

}  // namespace stosched::timestat
