// contract.hpp — compiled-out contracts for the hot paths.
//
// Three macro families, complementing util/check.hpp:
//
//   STOSCHED_EXPECTS(cond, msg)    precondition at a function entry
//   STOSCHED_ENSURES(cond, msg)    postcondition before a return
//   STOSCHED_INVARIANT(cond, msg)  structural invariant inside an algorithm
//
// Division of labor with check.hpp — the policy the static rule
// `entry-contract` (tools/ast_audit.py) enforces:
//
//   * STOSCHED_REQUIRE stays the *caller-facing* validation: always on,
//     throws std::invalid_argument, used for config/argument checking that
//     tests exercise with EXPECT_THROW. Cheap, outside hot loops.
//   * The STOSCHED_EXPECTS/ENSURES/INVARIANT family is for checks that are
//     too hot or too internal to pay for in Release: per-event loop
//     invariants, ring-buffer index algebra, pop monotonicity of the
//     future-event sets. They compile to nothing — the condition is NOT
//     evaluated — unless STOSCHED_CONTRACTS is defined, which the build
//     system turns on for Debug builds and every STOSCHED_SANITIZE build
//     (so ASan/UBSan/TSan CI legs run with contracts armed, where a
//     violation's abort() produces a symbolized sanitizer-grade report).
//     Release binaries carry zero overhead; the events/sec counters in
//     BENCH_*.json guard that claim commit over commit.
//
// A failed contract is an internal bug, never a recoverable condition, so
// the handler prints and abort()s rather than throwing: stack intact for
// sanitizers and core dumps, and no unwinding through noexcept hot paths.
//
// Ghost state: some contracts need bookkeeping that must not exist in
// Release builds (e.g. the last-popped key of an event queue). Declare it
// with STOSCHED_CONTRACT_STATE(declaration;) and mutate it inside
// STOSCHED_CONTRACT_CODE(...) — both expand to nothing when contracts are
// off. All TUs of one build share one STOSCHED_CONTRACTS setting (it is a
// global compile definition), so contract-only members never cause layout
// mismatches across translation units.
#pragma once

namespace stosched::detail {

/// Print `kind: (expr) at file:line — msg` to stderr and abort(). Always
/// compiled (the self-test exercises it in every build type); only the
/// macros below are conditional.
[[noreturn]] void contract_violation(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const char* msg) noexcept;

}  // namespace stosched::detail

#ifdef STOSCHED_CONTRACTS

#define STOSCHED_CONTRACTS_ACTIVE 1

#define STOSCHED_CONTRACT_CHECK_(kind, cond, msg)                         \
  do {                                                                    \
    if (!(cond))                                                          \
      ::stosched::detail::contract_violation(kind, #cond, __FILE__,       \
                                             __LINE__, (msg));            \
  } while (0)

#define STOSCHED_EXPECTS(cond, msg) \
  STOSCHED_CONTRACT_CHECK_("precondition", cond, msg)
#define STOSCHED_ENSURES(cond, msg) \
  STOSCHED_CONTRACT_CHECK_("postcondition", cond, msg)
#define STOSCHED_INVARIANT(cond, msg) \
  STOSCHED_CONTRACT_CHECK_("invariant", cond, msg)

/// Declare contract-only ("ghost") state, e.g. a class member tracking the
/// last value an accessor returned. Pass a complete declaration including
/// the trailing semicolon.
#define STOSCHED_CONTRACT_STATE(...) __VA_ARGS__

/// Execute contract-only statements (updates to ghost state).
#define STOSCHED_CONTRACT_CODE(...) \
  do {                              \
    __VA_ARGS__                     \
  } while (0)

#else  // !STOSCHED_CONTRACTS — every macro is token-free in Release.

#define STOSCHED_CONTRACTS_ACTIVE 0
#define STOSCHED_EXPECTS(cond, msg) ((void)0)
#define STOSCHED_ENSURES(cond, msg) ((void)0)
#define STOSCHED_INVARIANT(cond, msg) ((void)0)
#define STOSCHED_CONTRACT_STATE(...)
#define STOSCHED_CONTRACT_CODE(...) ((void)0)

#endif  // STOSCHED_CONTRACTS
