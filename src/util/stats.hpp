// stats.hpp — streaming statistics for simulation output analysis.
//
// Three layers:
//   * RunningStat — Welford single-pass mean/variance, mergeable so that
//     per-thread accumulators combine into a global one without loss
//     (Chan–Golub–LeVeque pairwise update). This is the workhorse of the
//     Monte-Carlo replication driver.
//   * TimeAverage — integral of a piecewise-constant sample path divided by
//     elapsed time; the estimator for time-stationary quantities such as
//     queue lengths (E[L]) in steady-state experiments.
//   * BatchMeans — classical fixed-number-of-batches method for confidence
//     intervals on a single long run with autocorrelated output.
#pragma once

#include <cstddef>
#include <vector>

namespace stosched {

/// Welford/Chan streaming moments: numerically stable, mergeable, O(1) push.
class RunningStat {
 public:
  void push(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merge another accumulator into this one (parallel reduction step).
  void merge(const RunningStat& o) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the (1-alpha) normal-approximation confidence interval.
  [[nodiscard]] double ci_halfwidth(double alpha = 0.05) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant path, e.g. queue length.
/// Call `observe(t, value)` at every change; `finish(t_end)` closes the last
/// segment. Supports a warm-up: samples before `reset_at` are discarded by
/// calling `reset(t_warm)` once.
class TimeAverage {
 public:
  void observe(double t, double value) noexcept;
  /// Drop everything accumulated so far and restart the integral at time t
  /// with the current value (used to discard a warm-up transient).
  void reset(double t) noexcept;
  /// Close the path at time t_end and return the time average.
  [[nodiscard]] double finish(double t_end) noexcept;
  [[nodiscard]] double integral() const noexcept { return integral_; }
  [[nodiscard]] double current_value() const noexcept { return value_; }

 private:
  double integral_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double start_t_ = 0.0;
  bool started_ = false;
};

/// Fixed-number-of-batches batch-means CI for autocorrelated series.
/// Observations stream in; the class maintains `k` batches of growing size
/// by pairwise collapsing, the standard approach when the run length is not
/// known in advance.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batches = 32);
  void push(double x);
  [[nodiscard]] double mean() const noexcept;
  /// Half-width using Student-t with (k-1) dof; requires >= 2 full batches.
  [[nodiscard]] double ci_halfwidth(double alpha = 0.05) const;
  [[nodiscard]] std::size_t complete_batches() const noexcept;

 private:
  void collapse();

  std::size_t target_batches_;
  std::size_t batch_size_ = 1;
  std::vector<double> sums_;     // completed batch sums
  double current_sum_ = 0.0;
  std::size_t current_count_ = 0;
};

/// Student-t upper quantile t_{1-alpha/2, dof}; dof>=1. Uses the normal
/// quantile plus Cornish–Fisher correction — accurate to ~1e-3 for dof>=3,
/// plenty for CI reporting.
double student_t_quantile(double alpha_two_sided, std::size_t dof);

/// Summary of a Monte-Carlo estimate: point value and 95% CI half-width.
struct Estimate {
  double value = 0.0;
  double half_width = 0.0;
  std::size_t replications = 0;

  [[nodiscard]] double lo() const noexcept { return value - half_width; }
  [[nodiscard]] double hi() const noexcept { return value + half_width; }
  /// True if `x` lies inside the interval.
  [[nodiscard]] bool covers(double x) const noexcept {
    return x >= lo() && x <= hi();
  }
};

/// Build an Estimate from a RunningStat (95% CI by default).
Estimate make_estimate(const RunningStat& s, double alpha = 0.05);

}  // namespace stosched
