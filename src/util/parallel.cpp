#include "util/parallel.hpp"

#include "experiment/engine.hpp"

namespace stosched {

unsigned monte_carlo_threads() noexcept {
  return experiment::engine_threads();
}

RunningStat monte_carlo(std::size_t replications, std::uint64_t seed,
                        const std::function<double(std::size_t, Rng&)>& body) {
  const auto res = experiment::run_fixed(
      replications, seed, 1,
      [&](std::size_t r, Rng& rng, std::span<double> out) {
        out[0] = body(r, rng);
      });
  return res.metrics[0];
}

std::vector<RunningStat> monte_carlo_vec(
    std::size_t replications, std::uint64_t seed, std::size_t dims,
    const std::function<void(std::size_t, Rng&, std::vector<double>&)>& body) {
  STOSCHED_REQUIRE(dims > 0, "need at least one output dimension");
  // The engine hands bodies a span; the legacy interface promised a vector,
  // so each call goes through a reusable thread-local buffer.
  const auto res = experiment::run(
      [&] {
        experiment::EngineOptions opt;
        opt.seed = seed;
        opt.max_replications = replications;
        return opt;
      }(),
      dims, [&](std::size_t r, Rng& rng, std::span<double> out) {
        thread_local std::vector<double> buf;
        buf.assign(out.size(), 0.0);
        body(r, rng, buf);
        for (std::size_t d = 0; d < out.size(); ++d) out[d] = buf[d];
      });
  return res.metrics;
}

}  // namespace stosched
