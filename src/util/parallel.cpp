#include "util/parallel.hpp"

#include <algorithm>

#ifdef STOSCHED_HAVE_OPENMP
#include <omp.h>
#endif

#include "util/check.hpp"

namespace stosched {

unsigned monte_carlo_threads() noexcept {
#ifdef STOSCHED_HAVE_OPENMP
  return static_cast<unsigned>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

RunningStat monte_carlo(std::size_t replications, std::uint64_t seed,
                        const std::function<double(std::size_t, Rng&)>& body) {
  const Rng master(seed);
  const unsigned nthreads = monte_carlo_threads();
  std::vector<RunningStat> partial(nthreads);

#ifdef STOSCHED_HAVE_OPENMP
#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<unsigned>(omp_get_thread_num());
    RunningStat local;
    // Static cyclic assignment: replication r belongs to thread r % nthreads.
    // Determinism does not depend on this choice (streams are per
    // replication), but a fixed schedule keeps per-thread load even when
    // replication costs drift with the index.
    for (std::size_t r = tid; r < replications; r += nthreads) {
      Rng rng = master.stream(r);
      local.push(body(r, rng));
    }
    partial[tid] = local;
  }
#else
  for (std::size_t r = 0; r < replications; ++r) {
    Rng rng = master.stream(r);
    partial[0].push(body(r, rng));
  }
#endif

  // Deterministic merge order (thread id ascending). Note: merging in thread
  // order makes the *aggregate mean* identical regardless of how many
  // threads executed, because Chan merging of disjoint index sets is exact
  // up to the fixed association order used here.
  RunningStat total;
  for (const auto& p : partial) total.merge(p);
  return total;
}

std::vector<RunningStat> monte_carlo_vec(
    std::size_t replications, std::uint64_t seed, std::size_t dims,
    const std::function<void(std::size_t, Rng&, std::vector<double>&)>& body) {
  STOSCHED_REQUIRE(dims > 0, "need at least one output dimension");
  const Rng master(seed);
  const unsigned nthreads = monte_carlo_threads();
  std::vector<std::vector<RunningStat>> partial(
      nthreads, std::vector<RunningStat>(dims));

#ifdef STOSCHED_HAVE_OPENMP
#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<unsigned>(omp_get_thread_num());
    std::vector<double> out(dims, 0.0);
    auto& local = partial[tid];
    for (std::size_t r = tid; r < replications; r += nthreads) {
      Rng rng = master.stream(r);
      std::fill(out.begin(), out.end(), 0.0);
      body(r, rng, out);
      for (std::size_t d = 0; d < dims; ++d) local[d].push(out[d]);
    }
  }
#else
  {
    std::vector<double> out(dims, 0.0);
    for (std::size_t r = 0; r < replications; ++r) {
      Rng rng = master.stream(r);
      std::fill(out.begin(), out.end(), 0.0);
      body(r, rng, out);
      for (std::size_t d = 0; d < dims; ++d) partial[0][d].push(out[d]);
    }
  }
#endif

  std::vector<RunningStat> total(dims);
  for (const auto& p : partial)
    for (std::size_t d = 0; d < dims; ++d) total[d].merge(p[d]);
  return total;
}

}  // namespace stosched
