#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace stosched {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::columns(std::vector<std::string> names) {
  STOSCHED_REQUIRE(rows_.empty(), "define columns before adding rows");
  header_ = std::move(names);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  STOSCHED_REQUIRE(cells.size() == header_.size(),
                   "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

Table& Table::verdict(bool pass, std::string what) {
  verdicts_.push_back({pass, std::move(what)});
  all_pass_ = all_pass_ && pass;
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  os << "== " << title_ << " ==\n";
  auto hline = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << "| " << std::setw(static_cast<int>(width[c])) << std::left
         << row[c] << ' ';
    os << "|\n";
  };
  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
  for (const auto& n : notes_) os << "  note: " << n << '\n';
  for (const auto& v : verdicts_)
    os << "  check: " << (v.pass ? "PASS" : "FAIL") << "  " << v.what << '\n';
  os << '\n';
}

std::string fmt(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

std::string fmt_pct(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << 100.0 * x << '%';
  return os.str();
}

std::string fmt_ci(double value, double half, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << " ± "
     << std::setprecision(precision) << half;
  return os.str();
}

}  // namespace stosched
