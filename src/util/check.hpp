// check.hpp — error handling primitives used across libstosched.
//
// The library distinguishes two failure categories:
//   * contract violations by the caller (bad arguments, inconsistent model
//     definitions) -> throw std::invalid_argument / std::logic_error via
//     STOSCHED_REQUIRE, always on, cheap to test;
//   * internal invariant breaks (algorithm bugs) -> STOSCHED_ASSERT, compiled
//     out in release builds only if STOSCHED_NO_ASSERT is defined. Numerical
//     simulation bugs are notoriously silent, so asserts default to ON even
//     in Release.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stosched {

/// Exception thrown when an internal invariant fails. Deriving from
/// std::logic_error keeps it catchable by generic handlers while remaining
/// distinguishable in tests.
class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}

}  // namespace detail
}  // namespace stosched

/// Validate a caller-supplied precondition; always enabled.
#define STOSCHED_REQUIRE(cond, msg)                                       \
  do {                                                                    \
    if (!(cond))                                                          \
      ::stosched::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Validate an internal invariant; enabled unless STOSCHED_NO_ASSERT.
#ifdef STOSCHED_NO_ASSERT
#define STOSCHED_ASSERT(cond, msg) ((void)0)
#else
#define STOSCHED_ASSERT(cond, msg)                                       \
  do {                                                                   \
    if (!(cond))                                                         \
      ::stosched::detail::throw_assert(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
#endif
