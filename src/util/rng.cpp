#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace stosched {

double Rng::exponential(double rate) noexcept {
  // Inversion: -log(U)/rate with U in (0,1]; avoids the platform-dependent
  // ziggurat in libstdc++.
  return -std::log(uniform_pos()) / rate;
}

double inverse_normal_cdf(double p) {
  STOSCHED_REQUIRE(p > 0.0 && p < 1.0, "probability must lie in (0,1)");
  // Acklam's rational approximation with one Halley refinement step.
  // Max abs error after refinement ~1e-13 over (1e-300, 1-1e-16).
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step against the exact CDF brings the error to ~1e-13.
  const double e =
      0.5 * std::erfc(-x / std::sqrt(2.0)) - p;  // CDF(x) - p
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double Rng::normal() noexcept { return inverse_normal_cdf(uniform_pos()); }

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost the shape (Marsaglia-Tsang trick): X ~ Gamma(a+1) * U^{1/a}.
    const double u = uniform_pos();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang: d = a - 1/3, c = 1/sqrt(9d), squeeze acceptance.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform_pos();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

std::size_t Rng::categorical(const double* weights, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  double u = uniform() * total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return n == 0 ? 0 : n - 1;
}

}  // namespace stosched
