// rng.hpp — deterministic, splittable pseudo-random number generation.
//
// Every stochastic experiment in libstosched consumes randomness through
// `Rng`, a xoshiro256++ generator. Design goals, in order:
//
//   1. *Reproducibility*: a (seed, stream) pair fully determines the draw
//      sequence, independent of platform, thread count and optimization
//      level. All distribution sampling built on top uses only arithmetic
//      that is exact or IEEE-754-deterministic (no std::normal_distribution,
//      whose algorithm is implementation-defined).
//   2. *Splittability*: Monte-Carlo replications run concurrently, so each
//      replication derives an independent stream via `Rng::stream(i)`,
//      seeded through SplitMix64 (the recommended seeding for xoshiro) plus
//      a stream-salt, giving 2^64 well-separated streams.
//   3. *Speed*: xoshiro256++ is ~0.8 ns/draw and passes BigCrush.
//
// The class satisfies std::uniform_random_bit_generator, so it can also be
// plugged into <random> machinery where determinism is not required.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace stosched {

/// SplitMix64 step — used for seeding and stream derivation. Public because
/// tests and hashing utilities reuse it.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with SplitMix64 seeding and cheap stream splitting.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Equal (seed, stream) pairs yield equal sequences.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL,
               std::uint64_t stream = 0) noexcept
      : seed_material_(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1))) {
    // Mix the stream id into the seed sequence with a distinct salt so that
    // streams with nearby ids are statistically independent.
    std::uint64_t sm = seed_material_;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Derive the i-th child stream of this generator deterministically. The
  /// child depends only on the parent's *seed material*, not on how many
  /// numbers the parent has drawn — callers can hand out streams first and
  /// draw later.
  [[nodiscard]] Rng stream(std::uint64_t i) const noexcept {
    Rng child;
    std::uint64_t sm =
        seed_material_ ^ (0xd1b54a32d192ed03ULL * (i + 1) + 0x1234567);
    child.seed_material_ = sm;
    for (auto& w : child.state_) w = splitmix64(sm);
    return child;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits (strictly less than 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe to pass to log() for exponentials.
  double uniform_pos() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method: unbiased and typically a single multiplication.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli(p) draw.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential(rate) draw via inversion; deterministic across platforms.
  double exponential(double rate) noexcept;

  /// Standard normal draw via the rational-polynomial inverse-CDF
  /// (Acklam / Wichura-style), deterministic across platforms; accurate to
  /// ~1e-9 which is far below Monte-Carlo noise.
  double normal() noexcept;

  /// Gamma(shape k >= 0.01, scale theta) via Marsaglia–Tsang squeeze with
  /// inversion fallback for k < 1. Deterministic across platforms.
  double gamma(double shape, double scale) noexcept;

  /// Sample an index from a discrete distribution given its (non-normalized)
  /// weights. Linear scan — intended for small supports (job classes,
  /// project states).
  std::size_t categorical(const double* weights, std::size_t n) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_material_ = 0;  ///< immutable; used for stream splitting
};

/// Inverse standard-normal CDF (quantile function). Exposed for tests and
/// for the confidence-interval code in stats.hpp.
double inverse_normal_cdf(double p);

}  // namespace stosched
