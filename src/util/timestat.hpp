// timestat.hpp — near-zero-cost phase-timing statistics for hot paths.
//
// The DES event loop is the multiplier on every experiment in the library,
// so before flattening it we need to know where the nanoseconds go. This
// header provides the measurement layer: named per-phase accumulators
// (`TimeStat`) plus three macros in the pasched `STM_*` style that wrap a
// region of code:
//
//   STOSCHED_TIME_DECLARE(mg1_fes);          // at namespace scope, once
//   ...
//   STOSCHED_TIME_START(mg1_fes);
//   const Event e = events.pop();
//   STOSCHED_TIME_STOP(mg1_fes);
//
// The macros compile to NOTHING unless STOSCHED_TIME_STATS is defined
// (CMake option of the same name), so instrumented hot paths carry zero
// cost in normal builds — the repo lint rule `hot-loop-clock` additionally
// forbids any direct clock read inside src/queueing and src/des, so timing
// can only enter the hot path through this compiled-out layer. In a stats
// build, every process exit prints a table of phase totals to stderr
// (calls, total time, per-call cost), which is what the CI time-stats leg
// captures on the smoke benches.
//
// Thread safety: simulators run concurrently under the OpenMP replication
// driver. START records the clock in a *local* variable (so concurrent
// regions never share start timestamps) and STOP accumulates into the named
// TimeStat with relaxed atomics — totals are exact, ordering is irrelevant.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace stosched::timestat {

/// Monotonic wall clock in nanoseconds (steady_clock; origin arbitrary).
std::uint64_t now_ns() noexcept;

/// One named phase accumulator. Registers itself in a process-wide registry
/// at construction and flushes its totals into the registry's dead-stat
/// aggregate at destruction, so report() sees every phase that ever ran —
/// including short-lived instances created by tests.
class TimeStat {
 public:
  explicit TimeStat(const char* name) noexcept;
  ~TimeStat();

  TimeStat(const TimeStat&) = delete;
  TimeStat& operator=(const TimeStat&) = delete;

  /// Record one timed region of `ns` nanoseconds. Hot-path safe: two
  /// relaxed fetch_adds, no locks.
  void add(std::uint64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  const char* name_;
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Print the phase table (name, calls, total, per-call) for every phase
/// with at least one recorded region, merging live accumulators with the
/// flushed totals of destroyed ones. No output when nothing was recorded.
void report(std::ostream& os);

}  // namespace stosched::timestat

// ---- instrumentation macros ------------------------------------------------
// DECLARE at namespace scope in the instrumented translation unit; START and
// STOP bracket a region inside one scope. Compiled out (including the clock
// reads) unless STOSCHED_TIME_STATS is defined.
#ifdef STOSCHED_TIME_STATS
#define STOSCHED_TIME_DECLARE(name)                         \
  namespace {                                               \
  ::stosched::timestat::TimeStat stosched_ts_##name(#name); \
  }                                                         \
  static_assert(true, "")
#define STOSCHED_TIME_START(name) \
  const std::uint64_t stosched_ts_start_##name = ::stosched::timestat::now_ns()
#define STOSCHED_TIME_STOP(name)                          \
  stosched_ts_##name.add(::stosched::timestat::now_ns() - \
                         stosched_ts_start_##name)
#else
#define STOSCHED_TIME_DECLARE(name) static_assert(true, "")
#define STOSCHED_TIME_START(name) static_cast<void>(0)
#define STOSCHED_TIME_STOP(name) static_cast<void>(0)
#endif
