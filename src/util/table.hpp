// table.hpp — fixed-width ASCII tables for the benchmark harness.
//
// Every experiment binary regenerates one "table" or "figure" of the paper.
// Tables render as aligned monospace columns; "figures" render as the series
// of (x, y...) rows that would be plotted, which is the convention used by
// the EXPERIMENTS.md comparison. A final `verdict` row states whether the
// paper's qualitative prediction held (PASS/FAIL), so the whole bench suite
// is greppable for regressions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace stosched {

/// Column-aligned ASCII table with a title, header and typed cells.
class Table {
 public:
  explicit Table(std::string title);

  /// Define the column headers. Must be called before any add_row.
  Table& columns(std::vector<std::string> names);

  /// Append a row of preformatted cells; size must match the header.
  Table& add_row(std::vector<std::string> cells);

  /// Append a free-form annotation line rendered under the table body.
  Table& note(std::string text);

  /// Record the PASS/FAIL verdict for the experiment's shape check.
  Table& verdict(bool pass, std::string what);

  /// Render to a stream (column widths computed from content).
  void print(std::ostream& os) const;

  /// One recorded PASS/FAIL check.
  struct Verdict {
    bool pass = false;
    std::string what;
  };

  // Structured accessors for machine consumers (the JSON bench exporter).
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_cells()
      const noexcept {
    return rows_;
  }
  [[nodiscard]] const std::vector<std::string>& notes() const noexcept {
    return notes_;
  }
  [[nodiscard]] const std::vector<Verdict>& verdicts() const noexcept {
    return verdicts_;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] bool all_checks_passed() const noexcept { return all_pass_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
  std::vector<Verdict> verdicts_;
  bool all_pass_ = true;
};

/// Format helpers shared by bench binaries.
std::string fmt(double x, int precision = 4);
std::string fmt_pct(double x, int precision = 2);           // 0.123 -> "12.30%"
std::string fmt_ci(double value, double half, int precision = 4);  // "a ± b"

}  // namespace stosched
