#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stosched {

void RunningStat::merge(const RunningStat& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStat::ci_halfwidth(double alpha) const {
  if (n_ < 2) return 0.0;
  return student_t_quantile(alpha, n_ - 1) * sem();
}

void TimeAverage::observe(double t, double value) noexcept {
  if (!started_) {
    started_ = true;
    start_t_ = t;
    last_t_ = t;
    value_ = value;
    return;
  }
  integral_ += value_ * (t - last_t_);
  last_t_ = t;
  value_ = value;
}

void TimeAverage::reset(double t) noexcept {
  integral_ = 0.0;
  start_t_ = t;
  last_t_ = t;
  started_ = true;
}

double TimeAverage::finish(double t_end) noexcept {
  if (!started_ || t_end <= start_t_) return 0.0;
  integral_ += value_ * (t_end - last_t_);
  last_t_ = t_end;
  return integral_ / (t_end - start_t_);
}

BatchMeans::BatchMeans(std::size_t batches) : target_batches_(batches) {
  STOSCHED_REQUIRE(batches >= 4 && batches % 2 == 0,
                   "batch-means needs an even batch count >= 4");
  sums_.reserve(batches);
}

void BatchMeans::push(double x) {
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    sums_.push_back(current_sum_);
    current_sum_ = 0.0;
    current_count_ = 0;
    if (sums_.size() == target_batches_) collapse();
  }
}

void BatchMeans::collapse() {
  // Pairwise-merge adjacent batches; doubles the batch size, halves count.
  std::vector<double> merged;
  merged.reserve(sums_.size() / 2);
  for (std::size_t i = 0; i + 1 < sums_.size(); i += 2)
    merged.push_back(sums_[i] + sums_[i + 1]);
  sums_ = std::move(merged);
  batch_size_ *= 2;
}

double BatchMeans::mean() const noexcept {
  double total = current_sum_;
  std::size_t count = current_count_;
  for (double s : sums_) total += s;
  count += sums_.size() * batch_size_;
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

std::size_t BatchMeans::complete_batches() const noexcept {
  return sums_.size();
}

double BatchMeans::ci_halfwidth(double alpha) const {
  const std::size_t k = sums_.size();
  if (k < 2) return 0.0;
  RunningStat bs;
  for (double s : sums_) bs.push(s / static_cast<double>(batch_size_));
  return student_t_quantile(alpha, k - 1) * bs.sem();
}

double student_t_quantile(double alpha_two_sided, std::size_t dof) {
  STOSCHED_REQUIRE(alpha_two_sided > 0.0 && alpha_two_sided < 1.0,
                   "alpha must lie in (0,1)");
  STOSCHED_REQUIRE(dof >= 1, "dof must be >= 1");
  const double p = 1.0 - alpha_two_sided / 2.0;
  const double z = inverse_normal_cdf(p);
  if (dof > 300) return z;
  // Cornish–Fisher expansion of the t quantile around the normal quantile
  // (Abramowitz & Stegun 26.7.5, first four correction terms).
  const double n = static_cast<double>(dof);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z + (z3 + z) / (4.0 * n) +
             (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
             (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) /
                 (384.0 * n * n * n);
  // Exact small-dof values matter for batch-means CIs; patch the worst cases.
  if (dof == 1) t = std::tan(3.14159265358979323846 * (p - 0.5));
  if (dof == 2) {
    const double a = 2.0 * p - 1.0;
    t = a * std::sqrt(2.0 / (1.0 - a * a));
  }
  return t;
}

Estimate make_estimate(const RunningStat& s, double alpha) {
  Estimate e;
  e.value = s.mean();
  e.half_width = s.ci_halfwidth(alpha);
  e.replications = s.count();
  return e;
}

}  // namespace stosched
