#include "queueing/klimov.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/adaptive_greedy.hpp"
#include "mdp/solve.hpp"
#include "util/check.hpp"

namespace stosched::queueing {

void KlimovNetwork::validate() const {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(n >= 1, "network needs at least one class");
  STOSCHED_REQUIRE(feedback.size() == n, "feedback matrix shape mismatch");
  for (const auto& row : feedback) {
    STOSCHED_REQUIRE(row.size() == n, "feedback matrix must be square");
    double total = 0.0;
    for (const double p : row) {
      STOSCHED_REQUIRE(p >= 0.0, "feedback probabilities must be >= 0");
      total += p;
    }
    STOSCHED_REQUIRE(total <= 1.0 + 1e-9, "feedback rows must sum to <= 1");
  }
}

std::vector<double> exit_work(const std::vector<double>& service_means,
                              const std::vector<std::vector<double>>& feedback,
                              const std::vector<char>& in_set) {
  const std::size_t n = service_means.size();
  STOSCHED_REQUIRE(feedback.size() == n && in_set.size() == n,
                   "shape mismatch");
  // Gather members of S.
  std::vector<std::size_t> members;
  for (std::size_t j = 0; j < n; ++j)
    if (in_set[j]) members.push_back(j);
  const std::size_t k = members.size();
  std::vector<double> tau(n, 0.0);
  if (k == 0) return tau;

  // Solve (I - P_SS) t = beta_S.
  std::vector<double> a(k * k, 0.0), b(k, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c)
      a[r * k + c] =
          (r == c ? 1.0 : 0.0) - feedback[members[r]][members[c]];
    b[r] = service_means[members[r]];
  }
  const bool ok = mdp::solve_linear_system(a, b, k);
  STOSCHED_REQUIRE(ok, "feedback submatrix is singular (absorbing loop?)");
  for (std::size_t r = 0; r < k; ++r) tau[members[r]] = b[r];
  return tau;
}

KlimovResult klimov_indices(const std::vector<double>& service_means,
                            const std::vector<std::vector<double>>& feedback,
                            const std::vector<double>& holding_costs) {
  const std::size_t n = service_means.size();
  STOSCHED_REQUIRE(holding_costs.size() == n, "shape mismatch");
  const auto ag = lp::adaptive_greedy(
      n,
      [&](const std::vector<char>& in_set) {
        return exit_work(service_means, feedback, in_set);
      },
      holding_costs);
  KlimovResult out;
  out.index = ag.index;
  out.priority = ag.priority;
  return out;
}

KlimovResult klimov_indices(const KlimovNetwork& net) {
  net.validate();
  std::vector<double> means, costs;
  for (const auto& c : net.classes) {
    means.push_back(c.service->mean());
    costs.push_back(c.holding_cost);
  }
  return klimov_indices(means, net.feedback, costs);
}

std::vector<double> effective_arrival_rates(const KlimovNetwork& net) {
  net.validate();
  const std::size_t n = net.num_classes();
  // lambda_eff = alpha + P^T lambda_eff  =>  (I - P^T) lambda_eff = alpha.
  std::vector<double> a(n * n, 0.0), b(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c)
      a[r * n + c] = (r == c ? 1.0 : 0.0) - net.feedback[c][r];
    b[r] = class_arrival_rate(net.classes[r]);
  }
  const bool ok = mdp::solve_linear_system(a, b, n);
  STOSCHED_REQUIRE(ok, "feedback matrix has spectral radius >= 1");
  return b;
}

double klimov_traffic_intensity(const KlimovNetwork& net) {
  const auto rates = effective_arrival_rates(net);
  double rho = 0.0;
  for (std::size_t j = 0; j < net.num_classes(); ++j)
    rho += rates[j] * net.classes[j].service->mean();
  return rho;
}

SimResult simulate_klimov(const KlimovNetwork& net,
                          const std::vector<std::size_t>& priority,
                          double horizon, double warmup, Rng& rng) {
  net.validate();
  SimOptions opt;
  opt.horizon = horizon;
  opt.warmup = warmup;
  opt.discipline = Discipline::kPriorityNonPreemptive;
  opt.priority = priority;
  opt.feedback = net.feedback;
  return simulate_mg1(net.classes, opt, rng);
}

void run_replication(const KlimovNetwork& net,
                     const std::vector<std::size_t>& priority, double horizon,
                     double warmup, Rng& rng, std::span<double> out) {
  net.validate();
  SimOptions opt;
  opt.horizon = horizon;
  opt.warmup = warmup;
  opt.discipline = Discipline::kPriorityNonPreemptive;
  opt.priority = priority;
  opt.feedback = net.feedback;
  run_replication(net.classes, opt, rng, out);
}

// ---------------------------------------------------------------------------
// Truncated exact baseline (exponential services).
// ---------------------------------------------------------------------------

namespace {

struct TruncSpace {
  std::size_t n = 0, cap = 0, total = 1;

  TruncSpace(std::size_t classes, std::size_t cap_) : n(classes), cap(cap_) {
    for (std::size_t j = 0; j < n; ++j) {
      STOSCHED_REQUIRE(total < (std::size_t{1} << 22) / (cap + 1),
                       "truncated state space too large");
      total *= cap + 1;
    }
  }

  void decode(std::size_t code, std::vector<std::size_t>& q) const {
    q.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      q[j] = code % (cap + 1);
      code /= cap + 1;
    }
  }
  [[nodiscard]] std::size_t encode(const std::vector<std::size_t>& q) const {
    std::size_t code = 0;
    for (std::size_t j = n; j-- > 0;) code = code * (cap + 1) + q[j];
    return code;
  }
};

}  // namespace

mdp::FiniteMdp build_truncated_mdp(const KlimovNetwork& net, std::size_t cap) {
  net.validate();
  const std::size_t n = net.num_classes();
  const TruncSpace space(n, cap);

  std::vector<double> lambda(n), mu(n);
  double unif = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    lambda[j] = class_arrival_rate(net.classes[j]);
    mu[j] = 1.0 / net.classes[j].service->mean();
    unif += lambda[j];
  }
  unif += *std::max_element(mu.begin(), mu.end());

  mdp::FiniteMdp m(space.total);
  std::vector<std::size_t> q;
  for (std::size_t code = 0; code < space.total; ++code) {
    space.decode(code, q);
    double cost = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      cost += net.classes[j].holding_cost * static_cast<double>(q[j]);

    auto make_action = [&](std::size_t serve, int label) {
      mdp::Action a;
      a.label = label;
      a.reward = -cost;
      double stay = 1.0;
      // Arrivals (blocked at cap: self-loop keeps the probability mass).
      for (std::size_t j = 0; j < n; ++j) {
        if (lambda[j] <= 0.0) continue;
        const double p = lambda[j] / unif;
        if (q[j] < cap) {
          auto next = q;
          ++next[j];
          a.transitions.push_back({space.encode(next), p});
          stay -= p;
        }
      }
      // Service completion with feedback routing.
      if (serve < n) {
        const double p_served = mu[serve] / unif;
        double exit_prob = 1.0;
        for (std::size_t k = 0; k < n; ++k) {
          const double pr = net.feedback[serve][k];
          if (pr <= 0.0) continue;
          exit_prob -= pr;
          auto next = q;
          --next[serve];
          if (next[k] < cap) ++next[k];  // full target: fed-back job lost
          a.transitions.push_back({space.encode(next), p_served * pr});
          stay -= p_served * pr;
        }
        if (exit_prob > 0.0) {
          auto next = q;
          --next[serve];
          a.transitions.push_back({space.encode(next), p_served * exit_prob});
          stay -= p_served * exit_prob;
        }
      }
      STOSCHED_ASSERT(stay > -1e-9, "uniformization mass overflow");
      if (stay > 0.0) a.transitions.push_back({code, stay});
      m.add_action(code, std::move(a));
    };

    bool any = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (q[j] > 0) {
        make_action(j, static_cast<int>(j));
        any = true;
      }
    }
    if (!any) make_action(n, -1);  // empty system: idle
  }
  return m;
}

namespace {

double truncated_cost(const KlimovNetwork& net, std::size_t cap,
                      const std::vector<std::size_t>* priority) {
  const auto m = build_truncated_mdp(net, cap);
  const std::size_t n = net.num_classes();
  const TruncSpace space(n, cap);

  std::vector<double> lambda(n), mu(n);
  double unif = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    lambda[j] = class_arrival_rate(net.classes[j]);
    mu[j] = 1.0 / net.classes[j].service->mean();
    unif += lambda[j];
  }
  unif += *std::max_element(mu.begin(), mu.end());

  if (!priority) {
    const auto sol = mdp::relative_value_iteration(m, 1e-10);
    return -sol.gain;
  }

  STOSCHED_REQUIRE(priority->size() == n, "priority must cover all classes");
  std::vector<std::size_t> rank(n);
  for (std::size_t pos = 0; pos < n; ++pos) rank[(*priority)[pos]] = pos;

  std::vector<std::size_t> policy(space.total, 0);
  std::vector<std::size_t> q;
  for (std::size_t code = 0; code < space.total; ++code) {
    space.decode(code, q);
    // Action list order == nonempty classes in index order (or single idle).
    std::size_t best_class = n;
    for (std::size_t j = 0; j < n; ++j)
      if (q[j] > 0 && (best_class == n || rank[j] < rank[best_class]))
        best_class = j;
    if (best_class == n) {
      policy[code] = 0;  // idle
    } else {
      std::size_t action = 0;
      for (std::size_t j = 0; j < best_class; ++j)
        if (q[j] > 0) ++action;
      policy[code] = action;
    }
  }
  return -mdp::average_reward_of_policy_iterative(m, policy);
}

}  // namespace

double truncated_priority_cost(const KlimovNetwork& net, std::size_t cap,
                               const std::vector<std::size_t>& priority) {
  return truncated_cost(net, cap, &priority);
}

double truncated_optimal_cost(const KlimovNetwork& net, std::size_t cap) {
  return truncated_cost(net, cap, nullptr);
}

}  // namespace stosched::queueing
