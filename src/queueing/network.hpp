// network.hpp — multistation multiclass queueing networks and the stability
// problem (survey §3, [9]).
//
// The survey highlights that for MQNs with multiple stations "in general it
// is not known what conditions on model parameters ensure that a given
// policy is stable". The canonical demonstration is the Lu–Kumar network:
// one route through four classes,
//     class 1 @ station A -> class 2 @ station B ->
//     class 3 @ station B -> class 4 @ station A,
// with priorities (4 over 1 at A, 2 over 3 at B). Even when both stations
// satisfy ρ < 1, the priority pair starves itself through a "virtual
// station" effect whenever λ (m2 + m4) > 1, and the backlog grows linearly.
// FCFS at both stations is stable for this network. Experiment F6 reproduces
// the divergence/stability contrast.
//
// The simulator handles general feed-forward-or-cyclic class routes over a
// set of stations with per-station nonpreemptive priority or FCFS. Services
// default to exponential (`service_mean`, the historical path, reproduced
// bit-for-bit) but any `DistPtr` law can be attached per class — the
// heavy-tailed-service stability experiments ride on that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dist/arrival.hpp"
#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace stosched::queueing {

/// One class of a multistation network.
struct NetworkClass {
  NetworkClass() = default;
  NetworkClass(std::size_t serving_station, double mean, std::size_t next_cls,
               double rate = 0.0, ArrivalPtr arrival_process = nullptr)
      : station(serving_station),
        service_mean(mean),
        next(next_cls),
        arrival_rate(rate),
        arrival(std::move(arrival_process)) {}

  std::size_t station = 0;      ///< which station serves this class
  double service_mean = 1.0;    ///< exponential mean (ignored if `service`)
  /// Next class on the route (kExit to leave the system).
  std::size_t next = SIZE_MAX;
  double arrival_rate = 0.0;    ///< external Poisson arrivals (0 = none)
  /// Optional non-Poisson external arrival process (renewal / MMPP /
  /// batch); when set it replaces the Poisson(arrival_rate) default and
  /// `arrival->rate()` is the class's effective external rate.
  ArrivalPtr arrival;
  /// Optional non-exponential service law. When set it *replaces* the
  /// exponential(service_mean) default entirely: `service_mean` is ignored
  /// and `service->mean()` is the class's effective mean. When null,
  /// services are exponential — the historical construction path,
  /// bit-identical to the pre-DistPtr simulator on a fixed seed.
  DistPtr service;

  static constexpr std::size_t kExit = SIZE_MAX;
};

/// Effective external arrival rate of a network class.
double network_class_rate(const NetworkClass& c);

/// Effective mean service time of a network class: `service->mean()` when a
/// law is attached, `service_mean` otherwise.
double network_class_service_mean(const NetworkClass& c);

/// The external arrival process the simulator actually runs for a class:
/// the attached process, or Poisson(arrival_rate) when none is set (null
/// for purely internal classes).
ArrivalPtr effective_arrival(const NetworkClass& c);

struct NetworkConfig {
  std::vector<NetworkClass> classes;
  std::size_t num_stations = 0;
  /// Per-station priority over classes (highest first); empty = FCFS at every
  /// station. When non-empty, each station's list must be a *permutation of
  /// exactly the classes served at that station*: a class omitted from its
  /// station's list would never be picked by the priority scan and its jobs
  /// would accumulate unboundedly — fake "instability". validate() rejects
  /// partial lists.
  std::vector<std::vector<std::size_t>> station_priority;

  void validate() const;
};

/// Snapshot series of total jobs in system, sampled at fixed intervals —
/// the raw material of the stability plot (experiment F6).
struct NetworkTrace {
  std::vector<double> times;
  std::vector<double> total_jobs;
  double mean_total = 0.0;       ///< time-average over the run
  double final_total = 0.0;
  /// Least-squares slope of total_jobs vs time — ~0 for stable systems,
  /// > 0 for divergence.
  double growth_rate = 0.0;
};

/// Run one replication. Deterministic in (config, horizon, samples, rng
/// state).
///
/// Randomness is split into per-purpose substreams derived from one draw of
/// `rng` (per-class arrival stream, per-class service stream), so two
/// priority assignments replaying the same `rng` state see the *same*
/// external arrival epochs and the same k-th service requirement per class —
/// the synchronization that makes common-random-number policy comparisons
/// (experiment::run_paired) effective for stability studies.
NetworkTrace simulate_network(const NetworkConfig& config, double horizon,
                              std::size_t samples, Rng& rng);

/// Experiment-engine adapter: metric vector layout is
///   [mean_total, final_total, growth_rate].
std::size_t network_metric_count();
std::vector<std::string> network_metric_names();

/// Uniform replication entry point: one simulate_network run, metrics
/// written into `out` (size network_metric_count()).
void run_replication(const NetworkConfig& config, double horizon,
                     std::size_t samples, Rng& rng, std::span<double> out);

/// The Lu–Kumar network with the destabilizing priorities (or FCFS).
NetworkConfig lu_kumar_network(double lambda, double m1, double m2, double m3,
                               double m4, bool bad_priority);

/// The Rybko–Stolyar network: two symmetric routes crossing two stations,
///   route A: class 0 @ station 0 -> class 1 @ station 1 -> exit,
///   route B: class 2 @ station 1 -> class 3 @ station 0 -> exit,
/// each fed by external rate `lambda`; first-stage means `m_in`, second-
/// stage (exit-class) means `m_out`. Prioritizing the exit classes (1 at
/// station 1, 3 at station 0) destabilizes the network whenever
/// 2 lambda m_out > 1 even though both stations satisfy
/// lambda (m_in + m_out) < 1 — the two-route cousin of Lu–Kumar. The
/// priority assignment is the policy arm (station_priority left empty).
NetworkConfig rybko_stolyar_network(double lambda, double m_in, double m_out);

/// A single-route re-entrant line (Dai–Wang-style topology): class i is
/// served at `stations[i]` with exponential mean `means[i]` and feeds
/// class i+1 (the last class exits); only class 0 has external arrivals,
/// at rate `lambda`. Requires matching nonempty shapes. The per-station
/// priority (FBFS/LBFS/...) is the policy arm.
NetworkConfig reentrant_line_network(double lambda,
                                     const std::vector<std::size_t>& stations,
                                     const std::vector<double>& means);

/// Nominal per-station traffic intensities (ρ_A, ρ_B, ...) of a config.
std::vector<double> station_intensities(const NetworkConfig& config);

}  // namespace stosched::queueing
