// mg1.hpp — multiclass M/G/1 queue simulation (survey §3).
//
// N job classes share one server: class j arrives Poisson(α_j), brings i.i.d.
// service from G_j, and costs c_j per unit time in the system. The module
// simulates the disciplines the survey's results speak to:
//   * nonpreemptive static priority (the cµ rule's setting [15]),
//   * preemptive-resume static priority (optimal under exponential laws),
//   * FCFS (the work-conserving baseline of the conservation laws [14]),
// optionally with Markovian (Bernoulli) feedback routing — Klimov's model
// [24] — under nonpreemptive priorities.
//
// Estimation: time-averaged number-in-system per class (warm-up discarded),
// per-visit waits, server utilization. The experiments validate these
// against Pollaczek–Khinchine and Cobham closed forms (mg1_analytic.hpp),
// so the simulator itself is under analytic test, not just eyeballed.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dist/arrival.hpp"
#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace stosched::queueing {

/// One job class of the multiclass queue.
struct ClassSpec {
  ClassSpec() = default;
  ClassSpec(double rate, DistPtr service_law, double cost = 1.0,
            ArrivalPtr arrival_process = nullptr)
      : arrival_rate(rate),
        service(std::move(service_law)),
        holding_cost(cost),
        arrival(std::move(arrival_process)) {}

  double arrival_rate = 0.0;  ///< Poisson rate α_j (ignored if `arrival` set)
  DistPtr service;            ///< service law G_j
  double holding_cost = 1.0;  ///< c_j per unit time in system
  /// Optional non-Poisson arrival process (renewal / MMPP / batch). When
  /// set it *replaces* the Poisson(arrival_rate) default entirely:
  /// `arrival_rate` is ignored and `arrival->rate()` is the class's
  /// effective job rate. When null, arrivals are Poisson(arrival_rate) —
  /// the historical construction path, bit-identical to the pre-arrival-
  /// process simulators on a fixed seed.
  ArrivalPtr arrival;
};

/// Effective job arrival rate of a class: `arrival->rate()` when a process
/// is attached, `arrival_rate` otherwise.
double class_arrival_rate(const ClassSpec& c);

/// The per-class arrival process the simulators actually run: the attached
/// process, or Poisson(arrival_rate) when none is set (null if the class
/// has no external arrivals at all).
ArrivalPtr effective_arrival(const ClassSpec& c);

/// Traffic intensity ρ = Σ α_j E[S_j] (α_j the effective rate).
double traffic_intensity(const std::vector<ClassSpec>& classes);

enum class Discipline {
  kFcfs,
  kPriorityNonPreemptive,
  kPriorityPreemptiveResume,
};

/// Simulation controls.
struct SimOptions {
  double horizon = 2e5;  ///< measured time after warm-up
  double warmup = 2e4;   ///< discarded transient
  Discipline discipline = Discipline::kPriorityNonPreemptive;
  /// Priority list, highest first; required for priority disciplines.
  std::vector<std::size_t> priority;
  /// Optional Bernoulli feedback: feedback[j][k] = P(class j -> class k on
  /// service completion); row sums <= 1, deficit exits. Empty = no feedback.
  /// Only supported with the nonpreemptive discipline (Klimov's model).
  std::vector<std::vector<double>> feedback;
};

/// Per-class steady-state estimates.
struct ClassStats {
  double mean_in_system = 0.0;  ///< E[L_j], time average
  double mean_wait = 0.0;       ///< E[wait before first service], per visit
  double mean_sojourn = 0.0;    ///< E[time in class], per visit
  std::size_t completions = 0;  ///< service completions counted
  double throughput = 0.0;      ///< completions / horizon
};

struct SimResult {
  std::vector<ClassStats> per_class;
  double cost_rate = 0.0;     ///< Σ c_j E[L_j]
  double utilization = 0.0;   ///< fraction of time the server is busy
  double time_simulated = 0.0;
};

/// Run one replication. Deterministic in (classes, options, rng state).
///
/// Randomness is split into per-purpose substreams derived from one draw of
/// `rng` (per-class arrival stream, per-class service stream, feedback
/// stream). Two disciplines replaying the same `rng` state therefore see
/// the *same* arrival epochs and the same k-th service requirement per
/// class — the synchronization that makes common-random-number policy
/// comparisons (experiment::run_paired) effective.
SimResult simulate_mg1(const std::vector<ClassSpec>& classes,
                       const SimOptions& options, Rng& rng);

/// Experiment-engine adapter: metric vector layout is
///   [cost_rate, utilization,
///    then per class j: mean_in_system_j, mean_wait_j, throughput_j].
std::size_t mg1_metric_count(std::size_t num_classes);
std::vector<std::string> mg1_metric_names(std::size_t num_classes);

/// Uniform replication entry point: one simulate_mg1 run, metrics written
/// into `out` (size mg1_metric_count(classes.size())).
void run_replication(const std::vector<ClassSpec>& classes,
                     const SimOptions& options, Rng& rng,
                     std::span<double> out);

/// Rebuild the SimResult summary fields from engine metric means (for
/// consumers of SimResult such as core::audit_conservation). Per-class
/// `completions` is not representable as a mean and is left zero.
SimResult mg1_result_from_metrics(const std::vector<ClassSpec>& classes,
                                  std::span<const double> metric_means);

}  // namespace stosched::queueing
