#include "queueing/mg1_analytic.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace stosched::queueing {

double mean_residual_work(const std::vector<ClassSpec>& classes) {
  double w0 = 0.0;
  for (const auto& c : classes)
    w0 += class_arrival_rate(c) * c.service->second_moment() / 2.0;
  return w0;
}

double pk_fcfs_wait(const std::vector<ClassSpec>& classes) {
  const double rho = traffic_intensity(classes);
  STOSCHED_REQUIRE(rho < 1.0, "queue must be stable (rho < 1)");
  return mean_residual_work(classes) / (1.0 - rho);
}

std::vector<double> cobham_waits(const std::vector<ClassSpec>& classes,
                                 const std::vector<std::size_t>& priority) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(priority.size() == n, "priority must cover all classes");
  const double w0 = mean_residual_work(classes);
  std::vector<double> wait(n, 0.0);
  double sigma_above = 0.0;  // ρ of classes strictly above the current one
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t j = priority[pos];
    const double rho_j =
        class_arrival_rate(classes[j]) * classes[j].service->mean();
    const double sigma_j = sigma_above + rho_j;
    STOSCHED_REQUIRE(sigma_j < 1.0,
                     "classes at this priority level must be stable");
    wait[j] = w0 / ((1.0 - sigma_above) * (1.0 - sigma_j));
    sigma_above = sigma_j;
  }
  return wait;
}

std::vector<double> preemptive_resume_sojourns(
    const std::vector<ClassSpec>& classes,
    const std::vector<std::size_t>& priority) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(priority.size() == n, "priority must cover all classes");
  std::vector<double> sojourn(n, 0.0);
  double sigma_above = 0.0;
  double w0_above_incl = 0.0;  // residual work of classes at or above j
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t j = priority[pos];
    const double rho_j =
        class_arrival_rate(classes[j]) * classes[j].service->mean();
    const double sigma_j = sigma_above + rho_j;
    STOSCHED_REQUIRE(sigma_j < 1.0,
                     "classes at this priority level must be stable");
    w0_above_incl +=
        class_arrival_rate(classes[j]) *
        classes[j].service->second_moment() / 2.0;
    // Conway/Takagi preemptive-resume sojourn:
    //   T_j = [ E[S_j] + W0_j / (1 - sigma_j) ] / (1 - sigma_{j-}),
    // with W0_j the residual work of classes at or above j.
    sojourn[j] = (classes[j].service->mean() +
                  w0_above_incl / (1.0 - sigma_j)) /
                 (1.0 - sigma_above);
    sigma_above = sigma_j;
  }
  return sojourn;
}

std::vector<double> cobham_numbers(const std::vector<ClassSpec>& classes,
                                   const std::vector<std::size_t>& priority) {
  const auto waits = cobham_waits(classes, priority);
  std::vector<double> numbers(classes.size(), 0.0);
  for (std::size_t j = 0; j < classes.size(); ++j)
    numbers[j] = class_arrival_rate(classes[j]) *
                 (waits[j] + classes[j].service->mean());
  return numbers;
}

double cobham_cost_rate(const std::vector<ClassSpec>& classes,
                        const std::vector<std::size_t>& priority) {
  const auto numbers = cobham_numbers(classes, priority);
  double cost = 0.0;
  for (std::size_t j = 0; j < classes.size(); ++j)
    cost += classes[j].holding_cost * numbers[j];
  return cost;
}

std::vector<std::size_t> cmu_order(const std::vector<ClassSpec>& classes) {
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return classes[a].holding_cost / classes[a].service->mean() >
                            classes[b].holding_cost / classes[b].service->mean();
                   });
  return order;
}

double kleinrock_invariant(const std::vector<ClassSpec>& classes) {
  const double rho = traffic_intensity(classes);
  STOSCHED_REQUIRE(rho < 1.0, "queue must be stable (rho < 1)");
  return rho * mean_residual_work(classes) / (1.0 - rho);
}

}  // namespace stosched::queueing
