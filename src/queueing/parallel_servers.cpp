#include "queueing/parallel_servers.hpp"

#include <algorithm>
#include <cstdint>

#include "des/event_queue.hpp"
#include "des/fifo_arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/timestat.hpp"

namespace stosched::queueing {

// Hot-path phase accounting (zero-cost unless -DSTOSCHED_TIME_STATS).
STOSCHED_TIME_DECLARE(mmm_fes);
STOSCHED_TIME_DECLARE(mmm_sampling);
STOSCHED_TIME_DECLARE(mmm_bookkeeping);

namespace {

constexpr std::uint32_t kArrival = 0;
constexpr std::uint32_t kDeparture = 1;

}  // namespace

MmmResult simulate_mmm(const std::vector<ClassSpec>& classes,
                       unsigned servers,
                       const std::vector<std::size_t>& priority,
                       double horizon, double warmup, Rng& rng) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(n >= 1, "need at least one class");
  STOSCHED_REQUIRE(servers >= 1, "need at least one server");
  STOSCHED_REQUIRE(priority.size() == n, "priority must cover all classes");
  STOSCHED_REQUIRE(horizon > 0.0, "horizon must be > 0");
  STOSCHED_REQUIRE(warmup >= 0.0, "warmup must be >= 0");
  STOSCHED_TRACE_SPAN("sim", "simulate_mmm");

  // An out-of-range entry would write rank[] out of bounds; a duplicate
  // would silently leave some class with a stale rank. Require a
  // permutation of 0..n-1 outright.
  std::vector<std::size_t> rank(n);
  {
    std::vector<char> seen(n, 0);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::size_t cls = priority[pos];
      STOSCHED_REQUIRE(cls < n && !seen[cls],
                       "priority must be a permutation of 0..n-1");
      seen[cls] = 1;
      rank[cls] = pos;
    }
  }

  // Per-purpose substreams (see the header comment): class j's arrivals and
  // services each draw from their own stream derived from one draw of the
  // caller's Rng, so the k-th class-j service requirement is the same number
  // under every priority order.
  const Rng root(rng());
  std::vector<Rng> arrival_rng, service_rng;
  arrival_rng.reserve(n);
  service_rng.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    arrival_rng.push_back(root.stream(2 * j));
    service_rng.push_back(root.stream(2 * j + 1));
  }

  // Effective per-class arrival processes (Poisson default) + per-
  // replication sampler state; see dist/arrival.hpp.
  std::vector<ArrivalPtr> arrival;
  arrival.reserve(n);
  for (const auto& spec : classes) arrival.push_back(effective_arrival(spec));
  std::vector<ArrivalState> arrival_state(n);

  // Sampling procedures resolved once per class (bit-identical draws; see
  // FlatSampler / CachedGapSampler).
  std::vector<CachedGapSampler> gap(n);
  std::vector<FlatSampler> service_flat(n);
  for (std::size_t j = 0; j < n; ++j) {
    gap[j] = CachedGapSampler(arrival[j].get());
    service_flat[j] = classes[j].service->flat();
  }

  EventQueue events;
  std::vector<FifoArena<double>> queue(n);  // arrival times per class
  std::vector<long> in_system(n, 0);
  std::vector<TimeAverage> count_ta(n);
  TimeAverage busy_ta;
  unsigned busy = 0;
  double now = 0.0;
  bool warm = false;
  obs::LocalHistogram wait_hist;  // post-warmup waits, merged once at the end

  for (std::size_t j = 0; j < n; ++j) count_ta[j].observe(0.0, 0.0);
  busy_ta.observe(0.0, 0.0);

  auto bump = [&](std::size_t cls, long d) {
    in_system[cls] += d;
    STOSCHED_ASSERT(in_system[cls] >= 0, "negative class population");
    STOSCHED_TIME_START(mmm_bookkeeping);
    count_ta[cls].observe(now, static_cast<double>(in_system[cls]));
    STOSCHED_TIME_STOP(mmm_bookkeeping);
  };

  auto start_if_possible = [&]() {
    while (busy < servers) {
      std::size_t best = SIZE_MAX;
      for (std::size_t j = 0; j < n; ++j) {
        if (queue[j].empty()) continue;
        if (best == SIZE_MAX || rank[j] < rank[best]) best = j;
      }
      if (best == SIZE_MAX) break;
      const double arrived = queue[best].front();
      queue[best].pop_front();
      if (warm) wait_hist.record(now - arrived);
      ++busy;
      busy_ta.observe(now, static_cast<double>(busy));
      STOSCHED_TIME_START(mmm_sampling);
      const double duration = service_flat[best].sample(service_rng[best]);
      STOSCHED_TIME_STOP(mmm_sampling);
      events.push(now + duration, kDeparture,
                  static_cast<std::uint32_t>(best));
    }
  };

  for (std::size_t j = 0; j < n; ++j)
    if (arrival[j])
      events.push(gap[j].next_gap(arrival_state[j], arrival_rng[j]), kArrival,
                  static_cast<std::uint32_t>(j));

  // Restart the time-averages at the warmup *epoch*, not at the first event
  // at-or-after it: TimeAverage::reset keeps the current level, so the
  // segment [warmup, next event) is credited at the pre-warmup state. An
  // event-triggered reset would drop that segment (biased when events are
  // sparse) and never fire at all if no event follows warmup.
  auto warm_up = [&] {
    warm = true;
    for (auto& ta : count_ta) ta.reset(warmup);
    busy_ta.reset(warmup);
  };

  const double t_end = warmup + horizon;
  while (!events.empty() && events.top().time <= t_end) {
    STOSCHED_TIME_START(mmm_fes);
    const Event e = events.pop();
    STOSCHED_TIME_STOP(mmm_fes);
    now = e.time;
    if (!warm && now >= warmup) warm_up();
    const auto cls = static_cast<std::size_t>(e.a);
    if (e.type == kArrival) {
      STOSCHED_TIME_START(mmm_sampling);
      const double g =
          gap[cls].next_gap(arrival_state[cls], arrival_rng[cls]);
      STOSCHED_TIME_STOP(mmm_sampling);
      events.push(now + g, kArrival, e.a);
      // Batch processes deliver several simultaneous jobs per epoch (the
      // default batch_size() is 1 and draws nothing).
      const std::size_t jobs =
          arrival[cls]->batch_size(arrival_state[cls], arrival_rng[cls]);
      for (std::size_t i = 0; i < jobs; ++i) {
        bump(cls, +1);
        queue[cls].push_back(now);
      }
      start_if_possible();
    } else {
      bump(cls, -1);
      --busy;
      busy_ta.observe(now, static_cast<double>(busy));
      start_if_possible();
    }
  }
  now = t_end;
  if (!warm) warm_up();  // no event reached the warmup epoch

  MmmResult out;
  out.mean_in_system.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    out.mean_in_system[j] = count_ta[j].finish(t_end);
    out.cost_rate += classes[j].holding_cost * out.mean_in_system[j];
  }
  out.utilization = busy_ta.finish(t_end) / servers;
  obs::wait_time_histogram().merge(wait_hist);
  return out;
}

std::size_t mmm_metric_count(std::size_t num_classes) {
  return 2 + num_classes;
}

std::vector<std::string> mmm_metric_names(std::size_t num_classes) {
  std::vector<std::string> names{"cost_rate", "utilization"};
  for (std::size_t j = 0; j < num_classes; ++j)
    names.push_back("L_" + std::to_string(j));
  return names;
}

void run_replication(const std::vector<ClassSpec>& classes, unsigned servers,
                     const std::vector<std::size_t>& priority, double horizon,
                     double warmup, Rng& rng, std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == mmm_metric_count(classes.size()),
                   "metric span size mismatch");
  const MmmResult res =
      simulate_mmm(classes, servers, priority, horizon, warmup, rng);
  out[0] = res.cost_rate;
  out[1] = res.utilization;
  for (std::size_t j = 0; j < classes.size(); ++j)
    out[2 + j] = res.mean_in_system[j];
}

double pooled_lower_bound(const std::vector<ClassSpec>& classes,
                          unsigned servers) {
  STOSCHED_REQUIRE(servers >= 1, "need at least one server");
  // Pooled system: one server running `servers` times faster. Exponential
  // services scale exactly: mean/m, second moment 2 (mean/m)^2.
  std::vector<ClassSpec> pooled;
  pooled.reserve(classes.size());
  for (const auto& c : classes) {
    ClassSpec p = c;
    // The Cobham closed forms below are Poisson-rate formulas: collapse any
    // attached arrival process to its effective rate.
    p.arrival_rate = class_arrival_rate(c);
    p.arrival = nullptr;
    p.service = exponential_dist(servers / c.service->mean());
    pooled.push_back(std::move(p));
  }
  STOSCHED_REQUIRE(traffic_intensity(pooled) < 1.0,
                   "pooled system must be stable");
  // cµ is optimal for the pooled M/M/1; its cost is a valid lower bound for
  // the queueing (waiting) portion. Add the in-service population of the
  // original system (ρ_j per class, unaffected by scheduling) to keep the
  // bound in number-in-system units comparable with simulate_mmm.
  const auto order = cmu_order(pooled);
  const auto waits = cobham_waits(pooled, order);
  double bound = 0.0;
  for (std::size_t j = 0; j < classes.size(); ++j) {
    const double lq = pooled[j].arrival_rate * waits[j];  // waiting jobs
    const double in_service =
        pooled[j].arrival_rate * classes[j].service->mean();  // original ρ_j
    bound += classes[j].holding_cost * (lq + in_service / servers);
  }
  return bound;
}

}  // namespace stosched::queueing
