// polling.hpp — polling systems: queues with changeover (switchover) times
// (survey §3, [25, 32]).
//
// A single server attends N queues; moving its attention from one queue to
// another costs a random switchover time during which no work is done. With
// setups, pure index rules thrash: the cµ rule would switch on every
// comparison flip and burn capacity in setups. The classical service
// disciplines compared in experiment T11:
//   * exhaustive — serve the polled queue until empty, then switch;
//   * gated      — serve only the jobs present at the polling instant;
//   * k-limited  — serve at most k jobs per visit;
//   * greedy-cµ  — always move toward the globally highest cµ job,
//                  paying the setup each time the argmax changes queue.
// The simulator also reports the fraction of time spent switching, which
// explains *why* the greedy rule loses as setups grow.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "queueing/mg1.hpp"

namespace stosched::queueing {

enum class PollingDiscipline {
  kExhaustive,
  kGated,
  kLimited,   ///< at most `limit` services per visit
  kGreedyCmu, ///< chase the global cµ argmax, paying setups
};

struct PollingOptions {
  PollingDiscipline discipline = PollingDiscipline::kExhaustive;
  std::size_t limit = 1;        ///< for kLimited
  DistPtr switchover;           ///< setup time law (required)
  double horizon = 2e5;
  double warmup = 2e4;
};

struct PollingResult {
  std::vector<double> mean_in_system;  ///< per queue
  double cost_rate = 0.0;
  double switching_fraction = 0.0;  ///< time spent in setups
  double serving_fraction = 0.0;
};

/// Run one replication. Like simulate_mg1, randomness is split into
/// per-purpose substreams (per-queue arrivals, per-queue services,
/// switchovers) derived from one draw of `rng`, so disciplines compared
/// under common random numbers see identical workloads.
PollingResult simulate_polling(const std::vector<ClassSpec>& classes,
                               const PollingOptions& options, Rng& rng);

/// Experiment-engine adapter: metric vector layout is
///   [cost_rate, switching_fraction, serving_fraction,
///    then per queue j: mean_in_system_j].
std::size_t polling_metric_count(std::size_t num_queues);
std::vector<std::string> polling_metric_names(std::size_t num_queues);

/// Uniform replication entry point for the experiment engine.
void run_replication(const std::vector<ClassSpec>& classes,
                     const PollingOptions& options, Rng& rng,
                     std::span<double> out);

}  // namespace stosched::queueing
