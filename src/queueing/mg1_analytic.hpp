// mg1_analytic.hpp — closed-form steady-state quantities for the multiclass
// M/G/1 queue (survey §3).
//
// These formulas serve two roles: (1) analytic ground truth for validating
// the simulator (tests assert the simulated means land inside confidence
// intervals around these values), and (2) noise-free evaluation of every
// static priority order in experiments T9/F4, which is how the cµ-rule's
// optimality is certified without Monte-Carlo ambiguity.
//
// Notation: α_j arrival rate, ρ_j = α_j E[S_j], ρ = Σ ρ_j (must be < 1),
// W0 = Σ_j α_j E[S_j^2] / 2 (mean residual work found by a Poisson arrival).
//
// α_j is always the class's *effective* rate (class_arrival_rate), so specs
// carrying an attached ArrivalProcess get consistent rates — but the
// formulas themselves are exact only for Poisson input (PASTA); for
// renewal/MMPP/batch arrivals they are the rate-matched Poisson
// approximation, not ground truth.
#pragma once

#include <cstddef>
#include <vector>

#include "queueing/mg1.hpp"

namespace stosched::queueing {

/// Mean residual work W0 = Σ α_j E[S_j²] / 2.
double mean_residual_work(const std::vector<ClassSpec>& classes);

/// Pollaczek–Khinchine: FCFS mean wait (same for all classes)
///   W = W0 / (1 - ρ).
double pk_fcfs_wait(const std::vector<ClassSpec>& classes);

/// Cobham's formula: nonpreemptive static priority mean waits.
/// `priority` lists classes highest-first; returns W_j per class:
///   W_j = W0 / ((1 - σ_{j-}) (1 - σ_j)),
/// σ_j = Σ_{i at or above j's priority} ρ_i, σ_{j-} excludes j itself.
std::vector<double> cobham_waits(const std::vector<ClassSpec>& classes,
                                 const std::vector<std::size_t>& priority);

/// Preemptive-resume priority mean *sojourn* times (time in system):
///   T_j = [ E[S_j] (1 - σ_{j-}) + W0_j ] / ((1 - σ_{j-})(1 - σ_j)),
/// with W0_j counting residual work of classes at or above j only.
std::vector<double> preemptive_resume_sojourns(
    const std::vector<ClassSpec>& classes,
    const std::vector<std::size_t>& priority);

/// Expected number in system per class under nonpreemptive priorities
/// (Little: L_j = α_j (W_j + E[S_j])).
std::vector<double> cobham_numbers(const std::vector<ClassSpec>& classes,
                                   const std::vector<std::size_t>& priority);

/// Holding-cost rate Σ c_j L_j of a nonpreemptive static priority order.
double cobham_cost_rate(const std::vector<ClassSpec>& classes,
                        const std::vector<std::size_t>& priority);

/// The cµ priority order (highest c_j µ_j = c_j / E[S_j] first) — optimal
/// among nonpreemptive policies [15].
std::vector<std::size_t> cmu_order(const std::vector<ClassSpec>& classes);

/// Kleinrock's conservation law: for every work-conserving nonpreemptive
/// discipline, Σ_j ρ_j W_j = ρ W0 / (1 - ρ). Returns that invariant value.
double kleinrock_invariant(const std::vector<ClassSpec>& classes);

}  // namespace stosched::queueing
