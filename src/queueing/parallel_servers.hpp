// parallel_servers.hpp — multiclass M/M/m scheduling (survey §3, [22]).
//
// N job classes share m identical exponential servers under a static
// priority order. No index rule is exactly optimal here, but Glazebrook and
// Niño-Mora showed the cµ/Klimov priority is asymptotically optimal in heavy
// traffic, with a suboptimality gap bounded via the achievable-region LP of
// a relaxed single-server system. Experiment F5 reproduces the shape: the
// relative gap between the simulated cµ cost and the lower bound vanishes
// as ρ -> 1.
//
// The lower bound implemented is the standard *resource-pooling relaxation*:
// an M/G/1 server working m times faster can emulate any m-server schedule
// (it can split its effort), so the optimal cost of the pooled system —
// attained by cµ there [15], evaluated with Cobham — lower-bounds the
// m-server optimum after adding back the irreducible in-service cost
// difference. We report the plain pooled-cµ bound, which is what the
// heavy-traffic argument needs (the queueing terms dominate as ρ -> 1).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "queueing/mg1.hpp"

namespace stosched::queueing {

/// Simulate a multiclass M/M/m queue under a static nonpreemptive priority.
/// Service rates are per class; every server serves at rate 1.
struct MmmResult {
  std::vector<double> mean_in_system;  ///< per class
  double cost_rate = 0.0;
  double utilization = 0.0;  ///< mean busy servers / m
};

/// Run one replication. `priority` must be a permutation of 0..n-1 (highest
/// first). Statistics cover exactly [warmup, warmup + horizon]: the
/// time-averages restart at the warmup *epoch* (not at the first event after
/// it), so sparse-traffic runs are unbiased.
///
/// Randomness is split into per-purpose substreams derived from one draw of
/// `rng` (per-class arrival stream, per-class service stream), so two
/// priority orders replaying the same `rng` state see the *same* workload —
/// the synchronization behind common-random-number policy comparisons.
MmmResult simulate_mmm(const std::vector<ClassSpec>& classes,
                       unsigned servers,
                       const std::vector<std::size_t>& priority,
                       double horizon, double warmup, Rng& rng);

/// Experiment-engine adapter: metric vector layout is
///   [cost_rate, utilization, then per class j: mean_in_system_j].
std::size_t mmm_metric_count(std::size_t num_classes);
std::vector<std::string> mmm_metric_names(std::size_t num_classes);

/// Uniform replication entry point: one simulate_mmm run, metrics written
/// into `out` (size mmm_metric_count(classes.size())).
void run_replication(const std::vector<ClassSpec>& classes, unsigned servers,
                     const std::vector<std::size_t>& priority, double horizon,
                     double warmup, Rng& rng, std::span<double> out);

/// Pooled-server lower bound on the holding-cost rate: optimal (cµ) cost of
/// the single m-times-faster M/M/1 with the same classes, minus nothing —
/// see header comment. Requires Σ ρ_j < m.
double pooled_lower_bound(const std::vector<ClassSpec>& classes,
                          unsigned servers);

}  // namespace stosched::queueing
