#include "queueing/network.hpp"

#include <algorithm>

#include "des/event_queue.hpp"
#include "des/fifo_arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/timestat.hpp"

namespace stosched::queueing {

void NetworkConfig::validate() const {
  STOSCHED_REQUIRE(!classes.empty(), "network needs at least one class");
  STOSCHED_REQUIRE(num_stations >= 1, "network needs at least one station");
  for (const auto& c : classes) {
    STOSCHED_REQUIRE(c.station < num_stations, "class station out of range");
    STOSCHED_REQUIRE(network_class_service_mean(c) > 0.0,
                     "service mean must be positive");
    STOSCHED_REQUIRE(c.next == NetworkClass::kExit || c.next < classes.size(),
                     "route target out of range");
    STOSCHED_REQUIRE(c.arrival_rate >= 0.0, "arrival rate must be >= 0");
  }
  if (!station_priority.empty()) {
    STOSCHED_REQUIRE(station_priority.size() == num_stations,
                     "per-station priority shape mismatch");
    // Each list must be a permutation of exactly the classes at its station:
    // the dispatch scan only looks at listed classes, so an omitted class
    // would silently never be served (unbounded backlog, bogus growth rate).
    std::vector<char> listed(classes.size(), 0);
    for (std::size_t st = 0; st < num_stations; ++st) {
      for (const std::size_t cls : station_priority[st]) {
        STOSCHED_REQUIRE(cls < classes.size(), "priority class out of range");
        STOSCHED_REQUIRE(classes[cls].station == st,
                         "priority lists classes of another station");
        STOSCHED_REQUIRE(!listed[cls],
                         "priority lists a class more than once");
        listed[cls] = 1;
      }
    }
    for (std::size_t c = 0; c < classes.size(); ++c)
      STOSCHED_REQUIRE(
          listed[c],
          "station priority must list every class at the station exactly "
          "once; an omitted class would never be served (silent starvation)");
  }
}

double network_class_rate(const NetworkClass& c) {
  return c.arrival ? c.arrival->rate() : c.arrival_rate;
}

double network_class_service_mean(const NetworkClass& c) {
  return c.service ? c.service->mean() : c.service_mean;
}

ArrivalPtr effective_arrival(const NetworkClass& c) {
  if (c.arrival) return c.arrival;
  return c.arrival_rate > 0.0 ? poisson_arrivals(c.arrival_rate) : nullptr;
}

std::vector<double> station_intensities(const NetworkConfig& config) {
  config.validate();
  // Effective class rates along deterministic routes: accumulate from
  // external arrivals down each chain.
  std::vector<double> rate(config.classes.size(), 0.0);
  for (std::size_t c = 0; c < config.classes.size(); ++c) {
    double lambda = network_class_rate(config.classes[c]);
    if (lambda <= 0.0) continue;
    std::size_t cur = c, hops = 0;
    while (cur != NetworkClass::kExit) {
      rate[cur] += lambda;
      cur = config.classes[cur].next;
      STOSCHED_REQUIRE(++hops <= config.classes.size(),
                       "routes must be acyclic chains");
    }
  }
  std::vector<double> rho(config.num_stations, 0.0);
  for (std::size_t c = 0; c < config.classes.size(); ++c)
    rho[config.classes[c].station] +=
        rate[c] * network_class_service_mean(config.classes[c]);
  return rho;
}

// Hot-path phase accounting (zero-cost unless -DSTOSCHED_TIME_STATS).
STOSCHED_TIME_DECLARE(network_fes);
STOSCHED_TIME_DECLARE(network_sampling);
STOSCHED_TIME_DECLARE(network_bookkeeping);

namespace {

constexpr std::uint32_t kArrival = 0;
constexpr std::uint32_t kServiceDone = 1;
constexpr std::uint32_t kSample = 2;

}  // namespace

NetworkTrace simulate_network(const NetworkConfig& config, double horizon,
                              std::size_t samples, Rng& rng) {
  config.validate();
  STOSCHED_REQUIRE(horizon > 0.0 && samples >= 2, "need a horizon and samples");
  STOSCHED_TRACE_SPAN("sim", "simulate_network");
  const std::size_t nc = config.classes.size();
  const std::size_t ns = config.num_stations;
  const bool fcfs = config.station_priority.empty();

  // Per-purpose substreams (see the header comment): class c's external
  // arrivals and its service requirements each draw from their own stream,
  // so the workload is identical under every priority assignment — the
  // common-random-number synchronization for policy comparisons.
  const Rng root(rng());
  std::vector<Rng> arrival_rng, service_rng;
  arrival_rng.reserve(nc);
  service_rng.reserve(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    arrival_rng.push_back(root.stream(2 * c));
    service_rng.push_back(root.stream(2 * c + 1));
  }

  // Effective per-class external arrival processes (Poisson default; null
  // for internal classes) + per-replication state; see dist/arrival.hpp.
  std::vector<ArrivalPtr> arrival(nc);
  std::vector<ArrivalState> arrival_state(nc);
  for (std::size_t c = 0; c < nc; ++c)
    arrival[c] = effective_arrival(config.classes[c]);

  // Per-class sampling procedures resolved once (tagged-POD switch for the
  // common laws, virtual fallback otherwise; draws are bit-identical). The
  // legacy `service_mean`-only classes get the historical exponential draw
  // as a flat exponential — the same `rng.exponential(1/mean)` either way.
  std::vector<CachedGapSampler> gap(nc);
  std::vector<FlatSampler> service_flat(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    gap[c] = CachedGapSampler(arrival[c].get());
    const auto& cls = config.classes[c];
    service_flat[c] = cls.service
                          ? cls.service->flat()
                          : FlatSampler::exponential(1.0 / cls.service_mean);
  }

  EventQueue events;
  // Per class FIFO (arrival times); per station FCFS order (class ids).
  std::vector<FifoArena<double>> queue(nc);
  std::vector<FifoArena<std::size_t>> station_fifo(ns);
  std::vector<char> busy(ns, 0);
  std::vector<std::size_t> serving(ns, 0);  // class being served
  std::vector<std::size_t> rank(nc, 0);
  if (!fcfs) {
    for (std::size_t st = 0; st < ns; ++st)
      for (std::size_t pos = 0; pos < config.station_priority[st].size(); ++pos)
        rank[config.station_priority[st][pos]] = pos;
  }

  long total_jobs = 0;
  TimeAverage total_ta;
  total_ta.observe(0.0, 0.0);
  double now = 0.0;
  obs::LocalHistogram wait_hist;  // queueing delays, merged once at the end

  auto start_if_idle = [&](std::size_t st) {
    if (busy[st]) return;
    std::size_t pick = SIZE_MAX;
    if (fcfs) {
      if (!station_fifo[st].empty()) {
        pick = station_fifo[st].front();
        station_fifo[st].pop_front();
      }
    } else {
      for (const std::size_t cls : config.station_priority[st]) {
        if (!queue[cls].empty()) {
          pick = cls;
          break;
        }
      }
    }
    if (pick == SIZE_MAX) return;
    STOSCHED_ASSERT(!queue[pick].empty(), "station FIFO out of sync");
    wait_hist.record(now - queue[pick].front());  // queued-at timestamp
    queue[pick].pop_front();
    busy[st] = 1;
    serving[st] = pick;
    STOSCHED_TIME_START(network_sampling);
    const double duration = service_flat[pick].sample(service_rng[pick]);
    STOSCHED_TIME_STOP(network_sampling);
    events.push(now + duration, kServiceDone, static_cast<std::uint32_t>(st));
  };

  auto enqueue_job = [&](std::size_t cls) {
    queue[cls].push_back(now);
    if (fcfs) station_fifo[config.classes[cls].station].push_back(cls);
    start_if_idle(config.classes[cls].station);
  };

  for (std::size_t c = 0; c < nc; ++c)
    if (arrival[c])
      events.push(gap[c].next_gap(arrival_state[c], arrival_rng[c]), kArrival,
                  static_cast<std::uint32_t>(c));
  for (std::size_t s = 1; s <= samples; ++s)
    events.push(horizon * static_cast<double>(s) / static_cast<double>(samples),
                kSample, 0);

  NetworkTrace trace;
  trace.times.reserve(samples);
  trace.total_jobs.reserve(samples);

  while (!events.empty() && events.top().time <= horizon) {
    STOSCHED_TIME_START(network_fes);
    const Event e = events.pop();
    STOSCHED_TIME_STOP(network_fes);
    now = e.time;
    switch (e.type) {
      case kArrival: {
        const auto cls = static_cast<std::size_t>(e.a);
        STOSCHED_TIME_START(network_sampling);
        const double g =
            gap[cls].next_gap(arrival_state[cls], arrival_rng[cls]);
        STOSCHED_TIME_STOP(network_sampling);
        events.push(now + g, kArrival, e.a);
        // Batch processes deliver several simultaneous jobs per epoch (the
        // default batch_size() is 1 and draws nothing).
        const std::size_t jobs =
            arrival[cls]->batch_size(arrival_state[cls], arrival_rng[cls]);
        total_jobs += static_cast<long>(jobs);
        STOSCHED_TIME_START(network_bookkeeping);
        total_ta.observe(now, static_cast<double>(total_jobs));
        STOSCHED_TIME_STOP(network_bookkeeping);
        for (std::size_t i = 0; i < jobs; ++i) enqueue_job(cls);
        break;
      }
      case kServiceDone: {
        const auto st = static_cast<std::size_t>(e.a);
        const std::size_t cls = serving[st];
        busy[st] = 0;
        const std::size_t next = config.classes[cls].next;
        if (next == NetworkClass::kExit) {
          --total_jobs;
          total_ta.observe(now, static_cast<double>(total_jobs));
        } else {
          enqueue_job(next);
        }
        start_if_idle(st);
        break;
      }
      case kSample:
        trace.times.push_back(now);
        trace.total_jobs.push_back(static_cast<double>(total_jobs));
        break;
    }
  }

  trace.mean_total = total_ta.finish(horizon);
  trace.final_total = trace.total_jobs.empty() ? 0.0 : trace.total_jobs.back();
  obs::wait_time_histogram().merge(wait_hist);

  // Least-squares slope of the sampled totals.
  const std::size_t m = trace.times.size();
  if (m >= 2) {
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      sx += trace.times[i];
      sy += trace.total_jobs[i];
      sxx += trace.times[i] * trace.times[i];
      sxy += trace.times[i] * trace.total_jobs[i];
    }
    const double d = static_cast<double>(m) * sxx - sx * sx;
    trace.growth_rate = d > 0.0 ? (static_cast<double>(m) * sxy - sx * sy) / d
                                : 0.0;
  }
  return trace;
}

std::size_t network_metric_count() { return 3; }

std::vector<std::string> network_metric_names() {
  return {"mean_total", "final_total", "growth_rate"};
}

void run_replication(const NetworkConfig& config, double horizon,
                     std::size_t samples, Rng& rng, std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == network_metric_count(),
                   "metric span size mismatch");
  const NetworkTrace trace = simulate_network(config, horizon, samples, rng);
  out[0] = trace.mean_total;
  out[1] = trace.final_total;
  out[2] = trace.growth_rate;
}

NetworkConfig lu_kumar_network(double lambda, double m1, double m2, double m3,
                               double m4, bool bad_priority) {
  NetworkConfig cfg;
  cfg.num_stations = 2;
  cfg.classes = {
      // class 0: station A, feeds class 1
      {0, m1, 1, lambda},
      // class 1: station B, feeds class 2
      {1, m2, 2, 0.0},
      // class 2: station B, feeds class 3
      {1, m3, 3, 0.0},
      // class 3: station A, exits
      {0, m4, NetworkClass::kExit, 0.0},
  };
  if (bad_priority) {
    // The destabilizing pair: 4 over 1 at A (classes 3 > 0), 2 over 3 at B
    // (classes 1 > 2).
    cfg.station_priority = {{3, 0}, {1, 2}};
  }
  return cfg;
}

NetworkConfig rybko_stolyar_network(double lambda, double m_in, double m_out) {
  STOSCHED_REQUIRE(lambda > 0.0 && m_in > 0.0 && m_out > 0.0,
                   "Rybko-Stolyar parameters must be positive");
  NetworkConfig cfg;
  cfg.num_stations = 2;
  cfg.classes = {
      // route A: class 0 @ station 0 -> class 1 @ station 1 -> exit
      {0, m_in, 1, lambda, nullptr},
      {1, m_out, NetworkClass::kExit, 0.0, nullptr},
      // route B: class 2 @ station 1 -> class 3 @ station 0 -> exit
      {1, m_in, 3, lambda, nullptr},
      {0, m_out, NetworkClass::kExit, 0.0, nullptr},
  };
  return cfg;
}

NetworkConfig reentrant_line_network(double lambda,
                                     const std::vector<std::size_t>& stations,
                                     const std::vector<double>& means) {
  STOSCHED_REQUIRE(lambda > 0.0, "re-entrant line needs a positive rate");
  STOSCHED_REQUIRE(!stations.empty() && stations.size() == means.size(),
                   "re-entrant line needs matching, nonempty stations/means");
  NetworkConfig cfg;
  cfg.num_stations = 0;
  cfg.classes.reserve(stations.size());
  for (std::size_t i = 0; i < stations.size(); ++i) {
    NetworkClass c;
    c.station = stations[i];
    c.service_mean = means[i];
    c.next = i + 1 < stations.size() ? i + 1 : NetworkClass::kExit;
    c.arrival_rate = i == 0 ? lambda : 0.0;
    cfg.classes.push_back(std::move(c));
    cfg.num_stations = std::max(cfg.num_stations, stations[i] + 1);
  }
  return cfg;
}

}  // namespace stosched::queueing
