#include "queueing/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace stosched::queueing {

std::vector<double> FluidTrajectory::at(double t) const {
  STOSCHED_REQUIRE(!times.empty(), "empty trajectory");
  if (t <= times.front()) return levels.front();
  if (t >= times.back()) return levels.back();
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times.begin());
  const std::size_t lo = hi - 1;
  const double span = times[hi] - times[lo];
  const double w = span > 0.0 ? (t - times[lo]) / span : 0.0;
  std::vector<double> q(levels[lo].size());
  for (std::size_t j = 0; j < q.size(); ++j)
    q[j] = (1.0 - w) * levels[lo][j] + w * levels[hi][j];
  return q;
}

FluidTrajectory fluid_drain(const std::vector<FluidClass>& classes,
                            const std::vector<double>& initial,
                            const std::vector<std::size_t>& priority,
                            double t_max) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(initial.size() == n && priority.size() == n,
                   "shape mismatch");
  for (const auto& c : classes) {
    STOSCHED_REQUIRE(c.lambda >= 0.0 && c.mu > 0.0, "bad fluid class");
  }

  FluidTrajectory out;
  std::vector<double> q = initial;
  double now = 0.0;
  out.times.push_back(now);
  out.levels.push_back(q);

  const std::size_t max_segments = 16 * n + 64;
  for (std::size_t seg = 0; seg < max_segments; ++seg) {
    // Effort allocation down the priority order: empty classes reserve
    // enough effort to stay empty; the first backlogged class takes all the
    // remaining effort; everyone below gets none.
    std::vector<double> deriv(n, 0.0);
    double effort = 1.0;
    bool someone_positive = false;
    for (const std::size_t j : priority) {
      if (q[j] > 1e-12) {
        someone_positive = true;
        deriv[j] = classes[j].lambda - classes[j].mu * effort;
        effort = 0.0;
      } else {
        const double hold = std::min(effort, classes[j].lambda / classes[j].mu);
        deriv[j] = classes[j].lambda - classes[j].mu * hold;
        effort -= hold;
        if (deriv[j] < 1e-12) deriv[j] = 0.0;  // held at zero
      }
    }
    if (!someone_positive) {
      out.drain_time = now;
      return out;  // drained; subcritical holding keeps it empty
    }

    // Next breakpoint: the earliest emptying among draining classes, a
    // formerly-empty class starting to grow counts as an immediate regime
    // change only through the emptying of the class above it, so emptying
    // events are sufficient breakpoints.
    double dt = t_max - now;
    for (std::size_t j = 0; j < n; ++j)
      if (q[j] > 1e-12 && deriv[j] < -1e-15)
        dt = std::min(dt, q[j] / -deriv[j]);
    STOSCHED_REQUIRE(dt >= 0.0, "negative fluid step");

    // Cost of the linear segment: trapezoid per class.
    double cost_now = 0.0, cost_next = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      cost_now += classes[j].cost * q[j];
      cost_next += classes[j].cost * std::max(0.0, q[j] + deriv[j] * dt);
    }
    out.cost_integral += 0.5 * (cost_now + cost_next) * dt;

    now += dt;
    for (std::size_t j = 0; j < n; ++j)
      q[j] = std::max(0.0, q[j] + deriv[j] * dt);
    out.times.push_back(now);
    out.levels.push_back(q);
    if (now >= t_max) {
      out.drain_time = t_max;
      return out;
    }
  }
  STOSCHED_ASSERT(false, "fluid integrator failed to converge (overload?)");
  return out;
}

std::vector<std::size_t> fluid_cmu_priority(
    const std::vector<FluidClass>& classes) {
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return classes[a].cost * classes[a].mu >
                            classes[b].cost * classes[b].mu;
                   });
  return order;
}

std::vector<std::vector<double>> simulate_backlog_path(
    const std::vector<FluidClass>& classes,
    const std::vector<std::size_t>& initial,
    const std::vector<std::size_t>& priority,
    const std::vector<double>& sample_times, Rng& rng) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(initial.size() == n && priority.size() == n,
                   "shape mismatch");
  STOSCHED_REQUIRE(!sample_times.empty(), "need at least one sample time");
  STOSCHED_REQUIRE(std::is_sorted(sample_times.begin(), sample_times.end()),
                   "sample times must be sorted");

  // Per-purpose substreams off a bootstrap root (the CRN discipline shared
  // by every event-driven simulator): the competing-clock holding times and
  // the which-clock-fired selector draw from separate named streams, so
  // priority arms replaying the same caller stream see maximally aligned
  // event skeletons.
  const Rng root(rng());
  Rng clock_rng = root.stream(0);
  Rng select_rng = root.stream(1);

  std::vector<long> q(n);
  for (std::size_t j = 0; j < n; ++j) q[j] = static_cast<long>(initial[j]);

  std::vector<std::vector<double>> samples;
  samples.reserve(sample_times.size());
  std::size_t next_sample = 0;
  double now = 0.0;
  const double t_end = sample_times.back();

  auto record_until = [&](double t) {
    while (next_sample < sample_times.size() && sample_times[next_sample] <= t) {
      std::vector<double> snap(n);
      for (std::size_t j = 0; j < n; ++j) snap[j] = static_cast<double>(q[j]);
      samples.push_back(std::move(snap));
      ++next_sample;
    }
  };

  while (now <= t_end && next_sample < sample_times.size()) {
    // Preemptive priority M/M/1: serve the highest-priority nonempty class;
    // memorylessness makes the competing-clock simulation exact.
    std::size_t serving = SIZE_MAX;
    for (const std::size_t j : priority)
      if (q[j] > 0) {
        serving = j;
        break;
      }
    double total_rate = 0.0;
    for (const auto& c : classes) total_rate += c.lambda;
    if (serving != SIZE_MAX) total_rate += classes[serving].mu;

    if (total_rate <= 0.0) {
      record_until(t_end);
      break;
    }
    const double dt = clock_rng.exponential(total_rate);
    record_until(std::min(now + dt, t_end));
    now += dt;
    if (now > t_end) break;

    // Which clock fired?
    double u = select_rng.uniform() * total_rate;
    bool handled = false;
    for (std::size_t j = 0; j < n; ++j) {
      u -= classes[j].lambda;
      if (u < 0.0) {
        ++q[j];
        handled = true;
        break;
      }
    }
    if (!handled && serving != SIZE_MAX) --q[serving];
  }
  record_until(t_end);
  STOSCHED_ASSERT(samples.size() == sample_times.size(),
                  "sample bookkeeping mismatch");
  return samples;
}

}  // namespace stosched::queueing
