// fluid.hpp — fluid approximations of multiclass queues (survey §3,
// [11, 3]).
//
// The fluid model replaces the stochastic queue by a deterministic ODE:
//     dq_j/dt = λ_j − µ_j u_j(t),   Σ_j u_j(t) <= 1,  u_j >= 0 while q_j > 0,
// whose optimal draining control for linear holding costs is the greedy
// cµ allocation (serve the nonempty class with the largest c_j µ_j at full
// effort). Trajectories are piecewise linear, so the integrator is exact:
// it steps from emptying event to emptying event.
//
// Experiment F7 checks the functional law of large numbers underpinning
// fluid heuristics: the scaled stochastic backlog q(nt)/n under the cµ rule
// converges to the fluid trajectory, and the fluid cost ranking of policies
// predicts the stochastic one.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace stosched::queueing {

/// One fluid class: arrival rate λ, service rate µ (at full effort), cost c.
struct FluidClass {
  double lambda = 0.0;
  double mu = 1.0;
  double cost = 1.0;
};

/// A piecewise-linear fluid trajectory.
struct FluidTrajectory {
  std::vector<double> times;                 ///< breakpoints, starting at 0
  std::vector<std::vector<double>> levels;   ///< per breakpoint, per class
  double cost_integral = 0.0;                ///< ∫ Σ c_j q_j(t) dt to drain
  double drain_time = 0.0;

  /// Level vector at an arbitrary time (linear interpolation; constant 0
  /// after draining when the system is subcritical).
  [[nodiscard]] std::vector<double> at(double t) const;
};

/// Integrate the fluid model from initial levels under a static priority
/// order (highest first); exact piecewise-linear stepping until drained (or
/// `t_max`). Requires Σ λ_j/µ_j < 1 for guaranteed draining.
FluidTrajectory fluid_drain(const std::vector<FluidClass>& classes,
                            const std::vector<double>& initial,
                            const std::vector<std::size_t>& priority,
                            double t_max = 1e9);

/// The fluid-optimal priority for linear costs: nonincreasing c_j µ_j.
std::vector<std::size_t> fluid_cmu_priority(
    const std::vector<FluidClass>& classes);

/// Simulate the *stochastic* counterpart (multiclass M/M/1, preemptive
/// priority, no further arrivals counted after t_max) from an initial
/// backlog, returning class levels sampled at the given times. Used to
/// overlay scaled sample paths on the fluid trajectory.
std::vector<std::vector<double>> simulate_backlog_path(
    const std::vector<FluidClass>& classes,
    const std::vector<std::size_t>& initial,
    const std::vector<std::size_t>& priority,
    const std::vector<double>& sample_times, Rng& rng);

}  // namespace stosched::queueing
