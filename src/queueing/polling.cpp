#include "queueing/polling.hpp"

#include <algorithm>
#include <cstdint>

#include "des/event_queue.hpp"
#include "des/fifo_arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"
#include "util/timestat.hpp"

namespace stosched::queueing {

// Hot-path phase accounting (zero-cost unless -DSTOSCHED_TIME_STATS).
STOSCHED_TIME_DECLARE(polling_fes);
STOSCHED_TIME_DECLARE(polling_sampling);
STOSCHED_TIME_DECLARE(polling_bookkeeping);

namespace {

constexpr std::uint32_t kArrival = 0;
constexpr std::uint32_t kServiceDone = 1;
constexpr std::uint32_t kSwitchDone = 2;

enum class ServerState { kIdle, kSwitching, kServing };

struct PollingSim {
  const std::vector<ClassSpec>& classes;
  const PollingOptions& opt;
  std::size_t n;

  // Per-purpose substreams (as in mg1.cpp): queue j's arrivals and services
  // draw from their own streams and setups from a third, so every polling
  // discipline sees the identical workload under common random numbers.
  std::vector<Rng> arrival_rng;
  std::vector<Rng> service_rng;
  Rng switch_rng;

  // Effective per-queue arrival processes (Poisson default; null = no
  // arrivals) + per-replication sampler state; see dist/arrival.hpp.
  std::vector<ArrivalPtr> arrival;
  std::vector<ArrivalState> arrival_state;

  // Sampling procedures resolved once per queue (bit-identical draws; see
  // FlatSampler / CachedGapSampler).
  std::vector<CachedGapSampler> gap;
  std::vector<FlatSampler> service_flat;
  FlatSampler switch_flat;

  EventQueue events;
  std::vector<FifoArena<double>> queue;
  std::vector<long> in_system;
  std::vector<TimeAverage> count_ta;
  TimeAverage switch_ta, serve_ta;
  std::vector<double> cmu;  // static priority index per queue

  ServerState state = ServerState::kIdle;
  std::size_t at = 0;       // queue the server is at (or moving toward)
  std::size_t gate = 0;     // gated discipline: jobs admitted this visit
  std::size_t served_this_visit = 0;
  double now = 0.0;
  bool warm = false;
  obs::LocalHistogram wait_hist;  // post-warmup waits, merged once per run

  PollingSim(const std::vector<ClassSpec>& c, const PollingOptions& o, Rng& r)
      : classes(c), opt(o), n(c.size()) {
    STOSCHED_REQUIRE(n >= 1, "need at least one queue");
    STOSCHED_REQUIRE(opt.switchover != nullptr, "switchover law required");
    STOSCHED_REQUIRE(opt.horizon > 0.0, "horizon must be > 0");
    STOSCHED_REQUIRE(opt.warmup >= 0.0, "warmup must be >= 0");
    const Rng root(r());
    arrival_rng.reserve(n);
    service_rng.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      arrival_rng.push_back(root.stream(2 * j));
      service_rng.push_back(root.stream(2 * j + 1));
    }
    switch_rng = root.stream(2 * n);
    arrival.reserve(n);
    for (const auto& spec : classes) arrival.push_back(effective_arrival(spec));
    arrival_state.resize(n);
    gap.reserve(n);
    service_flat.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      gap.emplace_back(arrival[j].get());
      service_flat.push_back(classes[j].service->flat());
    }
    switch_flat = opt.switchover->flat();
    events.reserve(2 * n + 16);
    queue.resize(n);
    in_system.assign(n, 0);
    count_ta.resize(n);
    cmu.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      count_ta[j].observe(0.0, 0.0);
      cmu[j] = classes[j].holding_cost / classes[j].service->mean();
    }
    switch_ta.observe(0.0, 0.0);
    serve_ta.observe(0.0, 0.0);
  }

  void bump(std::size_t q, long d) {
    in_system[q] += d;
    STOSCHED_ASSERT(in_system[q] >= 0, "negative queue population");
    STOSCHED_TIME_START(polling_bookkeeping);
    count_ta[q].observe(now, static_cast<double>(in_system[q]));
    STOSCHED_TIME_STOP(polling_bookkeeping);
  }

  void set_state(ServerState s) {
    state = s;
    switch_ta.observe(now, s == ServerState::kSwitching ? 1.0 : 0.0);
    serve_ta.observe(now, s == ServerState::kServing ? 1.0 : 0.0);
  }

  /// Queue the server should work on next, or SIZE_MAX to idle in place.
  std::size_t choose_target() const {
    if (opt.discipline == PollingDiscipline::kGreedyCmu) {
      std::size_t best = SIZE_MAX;
      for (std::size_t j = 0; j < n; ++j) {
        if (queue[j].empty()) continue;
        if (best == SIZE_MAX || cmu[j] > cmu[best]) best = j;
      }
      return best;
    }
    // Cyclic order starting after the current position (so `at` itself is
    // reconsidered last, after a full tour).
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t q = (at + 1 + step) % n;
      if (!queue[q].empty()) return q;
    }
    return SIZE_MAX;
  }

  void start_service() {
    const std::size_t q = at;
    STOSCHED_ASSERT(!queue[q].empty(), "serving an empty queue");
    const double arrived = queue[q].front();
    queue[q].pop_front();
    if (warm) wait_hist.record(now - arrived);
    set_state(ServerState::kServing);
    ++served_this_visit;
    if (gate > 0) --gate;
    STOSCHED_TIME_START(polling_sampling);
    const double duration = service_flat[q].sample(service_rng[q]);
    STOSCHED_TIME_STOP(polling_sampling);
    events.push(now + duration, kServiceDone, static_cast<std::uint32_t>(q));
  }

  void begin_switch(std::size_t target) {
    at = target;
    set_state(ServerState::kSwitching);
    STOSCHED_TIME_START(polling_sampling);
    const double duration = switch_flat.sample(switch_rng);
    STOSCHED_TIME_STOP(polling_sampling);
    events.push(now + duration, kSwitchDone,
                static_cast<std::uint32_t>(target));
  }

  /// Decide what to do when the server becomes free at `at`.
  void decide() {
    switch (opt.discipline) {
      case PollingDiscipline::kExhaustive:
        if (!queue[at].empty()) {
          start_service();
          return;
        }
        break;
      case PollingDiscipline::kGated:
        if (gate > 0 && !queue[at].empty()) {
          start_service();
          return;
        }
        break;
      case PollingDiscipline::kLimited:
        if (served_this_visit < opt.limit && !queue[at].empty()) {
          start_service();
          return;
        }
        break;
      case PollingDiscipline::kGreedyCmu: {
        const std::size_t target = choose_target();
        if (target == SIZE_MAX) {
          set_state(ServerState::kIdle);
          return;
        }
        if (target == at) {
          start_service();
        } else {
          begin_switch(target);
        }
        return;
      }
    }
    // Visit over: move to the next nonempty queue (cyclic), or idle.
    const std::size_t target = choose_target();
    if (target == SIZE_MAX) {
      set_state(ServerState::kIdle);
      return;
    }
    begin_switch(target);
  }

  void on_poll() {
    // Server finished switching and now polls queue `at`.
    gate = queue[at].size();
    served_this_visit = 0;
    decide();
  }

  PollingResult run() {
    for (std::size_t j = 0; j < n; ++j)
      if (arrival[j])
        events.push(gap[j].next_gap(arrival_state[j], arrival_rng[j]),
                    kArrival, static_cast<std::uint32_t>(j));

    const double t_end = opt.warmup + opt.horizon;
    while (!events.empty() && events.top().time <= t_end) {
      STOSCHED_TIME_START(polling_fes);
      const Event e = events.pop();
      STOSCHED_TIME_STOP(polling_fes);
      now = e.time;
      if (!warm && now >= opt.warmup) {
        warm = true;
        for (auto& ta : count_ta) ta.reset(now);
        switch_ta.reset(now);
        serve_ta.reset(now);
      }
      const auto q = static_cast<std::size_t>(e.a);
      switch (e.type) {
        case kArrival: {
          STOSCHED_TIME_START(polling_sampling);
          const double g =
              gap[q].next_gap(arrival_state[q], arrival_rng[q]);
          STOSCHED_TIME_STOP(polling_sampling);
          events.push(now + g, kArrival, e.a);
          // Batch processes deliver several simultaneous jobs per epoch
          // (the default batch_size() is 1 and draws nothing).
          const std::size_t jobs =
              arrival[q]->batch_size(arrival_state[q], arrival_rng[q]);
          for (std::size_t i = 0; i < jobs; ++i) {
            bump(q, +1);
            queue[q].push_back(now);
          }
          if (state == ServerState::kIdle) {
            // The idle server reacts as if re-polling its current position.
            if (q == at &&
                opt.discipline != PollingDiscipline::kGreedyCmu) {
              gate = queue[at].size();
              served_this_visit = 0;
              decide();
            } else {
              decide();
            }
          }
          break;
        }
        case kServiceDone:
          bump(q, -1);
          decide();
          break;
        case kSwitchDone:
          on_poll();
          break;
      }
    }
    now = t_end;

    PollingResult out;
    out.mean_in_system.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      out.mean_in_system[j] = count_ta[j].finish(t_end);
      out.cost_rate += classes[j].holding_cost * out.mean_in_system[j];
    }
    out.switching_fraction = switch_ta.finish(t_end);
    out.serving_fraction = serve_ta.finish(t_end);
    obs::wait_time_histogram().merge(wait_hist);
    return out;
  }
};

}  // namespace

PollingResult simulate_polling(const std::vector<ClassSpec>& classes,
                               const PollingOptions& options, Rng& rng) {
  STOSCHED_EXPECTS(!classes.empty(),
                   "simulate_polling needs at least one queue");
  STOSCHED_TRACE_SPAN("sim", "simulate_polling");
  PollingSim sim(classes, options, rng);
  const PollingResult res = sim.run();
  // The server partitions time into serving / switching / idle, so the two
  // reported fractions are each in [0, 1] and sum to at most 1.
  STOSCHED_ENSURES(res.serving_fraction >= 0.0 && res.switching_fraction >= 0.0,
                   "polling time fractions must be nonnegative");
  STOSCHED_ENSURES(res.serving_fraction + res.switching_fraction <= 1.0 + 1e-9,
                   "polling serving+switching fractions exceed 1");
  return res;
}

std::size_t polling_metric_count(std::size_t num_queues) {
  return 3 + num_queues;
}

std::vector<std::string> polling_metric_names(std::size_t num_queues) {
  std::vector<std::string> names{"cost_rate", "switching_fraction",
                                 "serving_fraction"};
  for (std::size_t j = 0; j < num_queues; ++j)
    names.push_back("L_" + std::to_string(j));
  return names;
}

void run_replication(const std::vector<ClassSpec>& classes,
                     const PollingOptions& options, Rng& rng,
                     std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == polling_metric_count(classes.size()),
                   "metric span size mismatch");
  const PollingResult res = simulate_polling(classes, options, rng);
  out[0] = res.cost_rate;
  out[1] = res.switching_fraction;
  out[2] = res.serving_fraction;
  for (std::size_t j = 0; j < classes.size(); ++j)
    out[3 + j] = res.mean_in_system[j];
}

}  // namespace stosched::queueing
