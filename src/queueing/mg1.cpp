#include "queueing/mg1.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "des/event_queue.hpp"
#include "des/fifo_arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"
#include "util/timestat.hpp"

namespace stosched::queueing {

double class_arrival_rate(const ClassSpec& c) {
  return c.arrival ? c.arrival->rate() : c.arrival_rate;
}

ArrivalPtr effective_arrival(const ClassSpec& c) {
  if (c.arrival) return c.arrival;
  return c.arrival_rate > 0.0 ? poisson_arrivals(c.arrival_rate) : nullptr;
}

double traffic_intensity(const std::vector<ClassSpec>& classes) {
  double rho = 0.0;
  for (const auto& c : classes) rho += class_arrival_rate(c) * c.service->mean();
  return rho;
}

// Hot-path phase accounting (zero-cost unless -DSTOSCHED_TIME_STATS):
// FES pops vs random-variate draws vs statistics bookkeeping.
STOSCHED_TIME_DECLARE(mg1_fes);
STOSCHED_TIME_DECLARE(mg1_sampling);
STOSCHED_TIME_DECLARE(mg1_bookkeeping);

namespace {

constexpr std::uint32_t kArrival = 0;
constexpr std::uint32_t kDeparture = 1;

/// A waiting or preempted job: when it joined its current class queue and
/// (for preempted jobs) the unfinished service.
struct WaitingJob {
  double class_arrival = 0.0;
  double remaining = -1.0;   ///< <0: not yet started
  bool started = false;      ///< wait already credited
};

struct Sim {
  const std::vector<ClassSpec>& classes;
  const SimOptions& opt;
  std::size_t n;

  // Per-purpose substreams (see simulate_mg1's header comment): class j's
  // arrivals and services each draw from their own stream, so the k-th
  // class-j service requirement is the same number under every discipline —
  // the synchronization common-random-number comparisons rely on.
  std::vector<Rng> arrival_rng;
  std::vector<Rng> service_rng;
  Rng feedback_rng;

  // Effective per-class arrival processes (Poisson default when the spec
  // has no explicit process; null = no external arrivals) plus their
  // per-replication sampler state (MMPP phase).
  std::vector<ArrivalPtr> arrival;
  std::vector<ArrivalState> arrival_state;

  // Per-class sampling procedures resolved once at setup (tagged-POD switch
  // for the common laws, virtual fallback otherwise — bit-identical draws
  // either way; see FlatSampler).
  std::vector<CachedGapSampler> gap;
  std::vector<FlatSampler> service_flat;

  EventQueue events;
  std::vector<FifoArena<WaitingJob>> queue;  // per class; FCFS within class
  FifoArena<std::pair<std::size_t, WaitingJob>> fcfs;  // global FCFS queue

  bool busy = false;
  std::size_t cur_class = 0;
  WaitingJob cur_job;
  double service_started = 0.0;
  double departure_time = 0.0;
  std::uint64_t departure_gen = 0;  // lazy cancellation for preemption

  std::vector<std::size_t> rank;    // rank[class] = priority position
  std::vector<long> in_system;      // current count per class
  std::vector<TimeAverage> count_ta;
  TimeAverage busy_ta;
  std::vector<RunningStat> wait_stat, sojourn_stat;
  // Post-warmup tail samples, flushed into the obs registry once per run()
  // (plain increments here, one atomic merge at the end — never per event).
  obs::LocalHistogram wait_hist, sojourn_hist;
  std::vector<std::size_t> completions;
  bool warm = false;
  double now = 0.0;

  Sim(const std::vector<ClassSpec>& c, const SimOptions& o, Rng& r)
      : classes(c), opt(o), n(c.size()) {
    STOSCHED_REQUIRE(n >= 1, "need at least one class");
    STOSCHED_REQUIRE(opt.horizon > 0.0, "horizon must be > 0");
    STOSCHED_REQUIRE(opt.warmup >= 0.0, "warmup must be >= 0");
    for (const auto& spec : classes) {
      STOSCHED_REQUIRE(spec.arrival_rate >= 0.0, "arrival rate must be >= 0");
      STOSCHED_REQUIRE(spec.service != nullptr, "every class needs a service law");
    }
    const bool priority_based = opt.discipline != Discipline::kFcfs;
    if (priority_based) {
      STOSCHED_REQUIRE(opt.priority.size() == n,
                       "priority list must cover all classes");
      rank.assign(n, 0);
      std::vector<char> seen(n, 0);
      for (std::size_t pos = 0; pos < n; ++pos) {
        const std::size_t cls = opt.priority[pos];
        STOSCHED_REQUIRE(cls < n && !seen[cls],
                         "priority list must be a permutation");
        seen[cls] = 1;
        rank[cls] = pos;
      }
    }
    if (!opt.feedback.empty()) {
      STOSCHED_REQUIRE(opt.discipline == Discipline::kPriorityNonPreemptive,
                       "feedback requires the nonpreemptive discipline");
      STOSCHED_REQUIRE(opt.feedback.size() == n, "feedback matrix shape");
      for (const auto& row : opt.feedback) {
        STOSCHED_REQUIRE(row.size() == n, "feedback matrix shape");
        double total = 0.0;
        for (const double p : row) {
          STOSCHED_REQUIRE(p >= 0.0, "feedback probabilities must be >= 0");
          total += p;
        }
        STOSCHED_REQUIRE(total <= 1.0 + 1e-9, "feedback row sums must be <= 1");
      }
    }
    // One draw decouples back-to-back simulations sharing a caller Rng;
    // everything below derives from it, so copies of the same caller state
    // replay identical substreams.
    const Rng root(r());
    arrival_rng.reserve(n);
    service_rng.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      arrival_rng.push_back(root.stream(2 * j));
      service_rng.push_back(root.stream(2 * j + 1));
    }
    feedback_rng = root.stream(2 * n);
    arrival.reserve(n);
    for (const auto& spec : classes) arrival.push_back(effective_arrival(spec));
    arrival_state.resize(n);
    gap.reserve(n);
    service_flat.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      gap.emplace_back(arrival[j].get());
      service_flat.push_back(classes[j].service->flat());
    }
    // Steady state holds ~2 events per class (next arrival + departure);
    // reserving up front keeps multi-replication engine runs allocation-free
    // after the first few events.
    events.reserve(4 * n + 16);
    queue.resize(n);
    in_system.assign(n, 0);
    count_ta.resize(n);
    wait_stat.resize(n);
    sojourn_stat.resize(n);
    completions.assign(n, 0);
    for (std::size_t j = 0; j < n; ++j) count_ta[j].observe(0.0, 0.0);
    busy_ta.observe(0.0, 0.0);
  }

  void set_count(std::size_t cls, long delta) {
    in_system[cls] += delta;
    STOSCHED_ASSERT(in_system[cls] >= 0, "negative class population");
    STOSCHED_TIME_START(mg1_bookkeeping);
    count_ta[cls].observe(now, static_cast<double>(in_system[cls]));
    STOSCHED_TIME_STOP(mg1_bookkeeping);
  }

  void set_busy(bool b) {
    busy = b;
    busy_ta.observe(now, b ? 1.0 : 0.0);
  }

  void schedule_arrival(std::size_t cls) {
    if (!arrival[cls]) return;
    STOSCHED_TIME_START(mg1_sampling);
    const double g = gap[cls].next_gap(arrival_state[cls], arrival_rng[cls]);
    STOSCHED_TIME_STOP(mg1_sampling);
    events.push(now + g, kArrival, static_cast<std::uint32_t>(cls));
  }

  /// Pick the next class to serve; SIZE_MAX if all queues empty.
  std::size_t pick_class() {
    if (opt.discipline == Discipline::kFcfs) {
      return fcfs.empty() ? SIZE_MAX : fcfs.front().first;
    }
    std::size_t best = SIZE_MAX;
    for (std::size_t j = 0; j < n; ++j) {
      if (queue[j].empty()) continue;
      if (best == SIZE_MAX || rank[j] < rank[best]) best = j;
    }
    return best;
  }

  void start_service() {
    const std::size_t cls = pick_class();
    if (cls == SIZE_MAX) {
      set_busy(false);
      return;
    }
    WaitingJob job;
    if (opt.discipline == Discipline::kFcfs) {
      job = fcfs.front().second;
      fcfs.pop_front();
    } else {
      job = queue[cls].front();
      queue[cls].pop_front();
    }
    if (!job.started) {
      if (warm) {
        wait_stat[cls].push(now - job.class_arrival);
        wait_hist.record(now - job.class_arrival);
      }
      job.started = true;
    }
    STOSCHED_TIME_START(mg1_sampling);
    const double service = job.remaining >= 0.0
                               ? job.remaining
                               : service_flat[cls].sample(service_rng[cls]);
    STOSCHED_TIME_STOP(mg1_sampling);
    cur_class = cls;
    cur_job = job;
    service_started = now;
    departure_time = now + service;
    ++departure_gen;
    events.push(departure_time, kDeparture, static_cast<std::uint32_t>(cls),
                departure_gen);
    set_busy(true);
  }

  void enqueue(std::size_t cls, WaitingJob job) {
    if (opt.discipline == Discipline::kFcfs)
      fcfs.push_back({cls, job});
    else
      queue[cls].push_back(job);
  }

  void on_arrival(std::size_t cls) {
    schedule_arrival(cls);
    // Batch processes deliver several simultaneous jobs per epoch; the
    // default batch_size() is 1 and consumes no randomness, so non-batch
    // configurations keep the historical draw sequence exactly.
    const std::size_t jobs =
        arrival[cls]->batch_size(arrival_state[cls], arrival_rng[cls]);
    for (std::size_t i = 0; i < jobs; ++i) admit(cls);
  }

  void admit(std::size_t cls) {
    set_count(cls, +1);
    WaitingJob job;
    job.class_arrival = now;

    if (!busy) {
      enqueue(cls, job);
      start_service();
      return;
    }
    if (opt.discipline == Discipline::kPriorityPreemptiveResume &&
        rank[cls] < rank[cur_class]) {
      // Preempt: bank the incumbent's remaining service and requeue it at
      // the *front* of its class (resume order within class is LCFS-PR on
      // the preempted stack; any order is fine for class-level stats).
      WaitingJob preempted = cur_job;
      preempted.remaining = departure_time - now;
      preempted.started = true;
      queue[cur_class].push_front(preempted);
      ++departure_gen;  // invalidate the in-flight departure event
      enqueue(cls, job);
      start_service();
      return;
    }
    enqueue(cls, job);
  }

  void on_departure(const Event& e) {
    if (!busy || e.b != departure_gen) return;  // stale (preempted) event
    const std::size_t cls = cur_class;
    if (warm) {
      ++completions[cls];
      sojourn_stat[cls].push(now - cur_job.class_arrival);
      sojourn_hist.record(now - cur_job.class_arrival);
    }
    set_count(cls, -1);

    // Feedback routing: job may re-enter as another class.
    if (!opt.feedback.empty()) {
      const auto& row = opt.feedback[cls];
      double u = feedback_rng.uniform();
      for (std::size_t k = 0; k < n; ++k) {
        u -= row[k];
        if (u < 0.0) {
          set_count(k, +1);
          WaitingJob back;
          back.class_arrival = now;
          enqueue(k, back);
          break;
        }
      }
    }
    start_service();
  }

  SimResult run() {
    for (std::size_t j = 0; j < n; ++j) schedule_arrival(j);
    const double t_end = opt.warmup + opt.horizon;

    while (!events.empty() && events.top().time <= t_end) {
      STOSCHED_TIME_START(mg1_fes);
      const Event e = events.pop();
      STOSCHED_TIME_STOP(mg1_fes);
      now = e.time;
      if (!warm && now >= opt.warmup) reset_statistics();
      if (e.type == kArrival)
        on_arrival(e.a);
      else
        on_departure(e);
    }
    now = t_end;

    SimResult out;
    out.per_class.resize(n);
    out.time_simulated = opt.horizon;
    for (std::size_t j = 0; j < n; ++j) {
      auto& s = out.per_class[j];
      s.mean_in_system = count_ta[j].finish(t_end);
      s.mean_wait = wait_stat[j].mean();
      s.mean_sojourn = sojourn_stat[j].mean();
      s.completions = completions[j];
      s.throughput = static_cast<double>(completions[j]) / opt.horizon;
      out.cost_rate += classes[j].holding_cost * s.mean_in_system;
    }
    out.utilization = busy_ta.finish(t_end);
    obs::wait_time_histogram().merge(wait_hist);
    obs::sojourn_time_histogram().merge(sojourn_hist);
    return out;
  }

  void reset_statistics() {
    warm = true;
    for (std::size_t j = 0; j < n; ++j) count_ta[j].reset(now);
    busy_ta.reset(now);
  }
};

}  // namespace

SimResult simulate_mg1(const std::vector<ClassSpec>& classes,
                       const SimOptions& options, Rng& rng) {
  STOSCHED_EXPECTS(!classes.empty(), "simulate_mg1 needs at least one class");
  STOSCHED_TRACE_SPAN("sim", "simulate_mg1");
  Sim sim(classes, options, rng);
  const SimResult res = sim.run();
  // A single server's busy fraction is a time average of an indicator.
  STOSCHED_ENSURES(res.utilization >= 0.0 && res.utilization <= 1.0 + 1e-9,
                   "M/G/1 utilization outside [0, 1]");
  return res;
}

std::size_t mg1_metric_count(std::size_t num_classes) {
  return 2 + 3 * num_classes;
}

std::vector<std::string> mg1_metric_names(std::size_t num_classes) {
  std::vector<std::string> names{"cost_rate", "utilization"};
  for (std::size_t j = 0; j < num_classes; ++j) {
    const std::string cls = std::to_string(j);
    names.push_back("L_" + cls);
    names.push_back("wait_" + cls);
    names.push_back("throughput_" + cls);
  }
  return names;
}

void run_replication(const std::vector<ClassSpec>& classes,
                     const SimOptions& options, Rng& rng,
                     std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == mg1_metric_count(classes.size()),
                   "metric span size mismatch");
  const SimResult res = simulate_mg1(classes, options, rng);
  out[0] = res.cost_rate;
  out[1] = res.utilization;
  for (std::size_t j = 0; j < classes.size(); ++j) {
    out[2 + 3 * j] = res.per_class[j].mean_in_system;
    out[2 + 3 * j + 1] = res.per_class[j].mean_wait;
    out[2 + 3 * j + 2] = res.per_class[j].throughput;
  }
}

SimResult mg1_result_from_metrics(const std::vector<ClassSpec>& classes,
                                  std::span<const double> metric_means) {
  STOSCHED_REQUIRE(metric_means.size() == mg1_metric_count(classes.size()),
                   "metric span size mismatch");
  SimResult res;
  res.cost_rate = metric_means[0];
  res.utilization = metric_means[1];
  res.per_class.resize(classes.size());
  for (std::size_t j = 0; j < classes.size(); ++j) {
    res.per_class[j].mean_in_system = metric_means[2 + 3 * j];
    res.per_class[j].mean_wait = metric_means[2 + 3 * j + 1];
    res.per_class[j].throughput = metric_means[2 + 3 * j + 2];
  }
  return res;
}

}  // namespace stosched::queueing
