// klimov.hpp — Klimov's problem: M/G/1 with Bernoulli feedback (survey §3,
// [24, 38]).
//
// On completing service, a class-j job becomes class k with probability
// p_jk and leaves with probability 1 - Σ_k p_jk. Klimov proved the optimal
// nonpreemptive policy is a *static priority order* whose indices are
// computed by an N-step algorithm using only (service means, feedback
// matrix, holding costs) — notably *not* the arrival rates. The library
// computes the indices with the adaptive-greedy algorithm of the achievable
// region method [4] (core/achievable_region.hpp) instantiated with the set
// function
//     A_j^S = τ_j^S = E[total service a class-j job receives before its
//                       class first leaves S]  =  [(I - P_SS)^{-1} β]_j,
// which reduces to the cµ rule when there is no feedback (tests assert
// this), and is cross-checked against the exact MDP optimum on truncated
// exponential instances (experiment T10).
#pragma once

#include <cstddef>
#include <vector>

#include "mdp/mdp.hpp"
#include "queueing/mg1.hpp"

namespace stosched::queueing {

/// A Klimov network: multiclass M/G/1 plus a feedback matrix.
struct KlimovNetwork {
  std::vector<ClassSpec> classes;
  std::vector<std::vector<double>> feedback;  ///< rows sum to <= 1

  [[nodiscard]] std::size_t num_classes() const { return classes.size(); }
  void validate() const;
};

/// Expected total service before first exit from S, per class in S:
/// solves (I - P_SS) τ = β_S. `in_set[j]` marks membership.
std::vector<double> exit_work(const std::vector<double>& service_means,
                              const std::vector<std::vector<double>>& feedback,
                              const std::vector<char>& in_set);

/// Klimov's indices and the induced priority order (highest first).
struct KlimovResult {
  std::vector<double> index;          ///< per class
  std::vector<std::size_t> priority;  ///< classes, highest index first
};

KlimovResult klimov_indices(const std::vector<double>& service_means,
                            const std::vector<std::vector<double>>& feedback,
                            const std::vector<double>& holding_costs);

/// Convenience overload pulling the data out of a network.
KlimovResult klimov_indices(const KlimovNetwork& net);

/// Effective arrival rate per class, λ_eff = (I - P^T)^{-1} α — the visit
/// rates including feedback; used for stability checks (Σ λ_eff,j β_j < 1).
std::vector<double> effective_arrival_rates(const KlimovNetwork& net);

/// Total traffic intensity including feedback visits.
double klimov_traffic_intensity(const KlimovNetwork& net);

/// Simulate a static priority order on the network (wraps simulate_mg1).
SimResult simulate_klimov(const KlimovNetwork& net,
                          const std::vector<std::size_t>& priority,
                          double horizon, double warmup, Rng& rng);

/// Experiment-engine adapter; metric layout is mg1_metric_names(N) — one
/// simulate_klimov replication written into `out`.
void run_replication(const KlimovNetwork& net,
                     const std::vector<std::size_t>& priority, double horizon,
                     double warmup, Rng& rng, std::span<double> out);

/// Exact baseline for exponential services: build the uniformized MDP of the
/// truncated (queue lengths <= cap) preemptive system; action = class to
/// serve; reward = -holding cost rate. Used by tests/benches to certify the
/// Klimov order. States: (cap+1)^N.
mdp::FiniteMdp build_truncated_mdp(const KlimovNetwork& net, std::size_t cap);

/// Average holding-cost rate of a static priority on the truncated MDP.
double truncated_priority_cost(const KlimovNetwork& net, std::size_t cap,
                               const std::vector<std::size_t>& priority);

/// Optimal average holding-cost rate on the truncated MDP.
double truncated_optimal_cost(const KlimovNetwork& net, std::size_t cap);

}  // namespace stosched::queueing
