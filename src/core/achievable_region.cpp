#include "core/achievable_region.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "queueing/mg1_analytic.hpp"
#include "util/check.hpp"

namespace stosched::core {

double mg1_region_b(const std::vector<queueing::ClassSpec>& classes,
                    const std::vector<char>& in_set) {
  STOSCHED_REQUIRE(in_set.size() == classes.size(), "shape mismatch");
  // Nonpreemptive M/G/1: even top-priority jobs wait behind the residual
  // work of *any* in-service job, so b(S) carries the total W0, not just
  // the subset's share (Coffman–Mitrani [14]). Equality at S is attained by
  // giving S absolute priority (Cobham algebra; see test_core).
  double rho_s = 0.0;
  for (std::size_t j = 0; j < classes.size(); ++j)
    if (in_set[j])
      rho_s += queueing::class_arrival_rate(classes[j]) *
               classes[j].service->mean();
  STOSCHED_REQUIRE(rho_s < 1.0, "subset must be stable");
  return rho_s * queueing::mean_residual_work(classes) / (1.0 - rho_s);
}

std::vector<double> mg1_region_vertex(
    const std::vector<queueing::ClassSpec>& classes,
    const std::vector<std::size_t>& priority) {
  const auto waits = queueing::cobham_waits(classes, priority);
  std::vector<double> x(classes.size(), 0.0);
  for (std::size_t j = 0; j < classes.size(); ++j)
    x[j] = queueing::class_arrival_rate(classes[j]) *
           classes[j].service->mean() * waits[j];
  return x;
}

bool mg1_region_contains(const std::vector<queueing::ClassSpec>& classes,
                         const std::vector<double>& x, double tol) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(n <= 16, "region check limited to n <= 16");
  STOSCHED_REQUIRE(x.size() == n, "performance vector shape mismatch");
  std::vector<char> in_set(n, 0);
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      in_set[j] = (mask >> j) & 1u;
      if (in_set[j]) lhs += x[j];
    }
    const double rhs = mg1_region_b(classes, in_set);
    const bool base = mask == (1u << n) - 1;
    if (lhs < rhs - tol) return false;
    if (base && std::abs(lhs - rhs) > tol) return false;
  }
  return true;
}

}  // namespace stosched::core
