#include "core/achievable_region.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "queueing/mg1_analytic.hpp"
#include "util/check.hpp"

namespace stosched::core {

AdaptiveGreedyResult adaptive_greedy(
    std::size_t n,
    const std::function<std::vector<double>(const std::vector<char>&)>& coeffs,
    const std::vector<double>& costs) {
  STOSCHED_REQUIRE(n >= 1, "need at least one class");
  STOSCHED_REQUIRE(costs.size() == n, "cost vector shape mismatch");

  AdaptiveGreedyResult out;
  out.index.assign(n, 0.0);
  out.priority.assign(n, 0);
  out.y.assign(n, 0.0);

  // Peel from the *lowest* priority class upward. At step k (k = n..1) the
  // candidate set S_k holds the classes not yet peeled; the peeled class
  // minimizes the adjusted cost rate
  //     ( c_j - Σ_{peeled sets L} A_j^L y_L ) / A_j^{S_k}.
  // Its index is the cumulative sum of the dual increments y.
  std::vector<char> in_set(n, 1);
  // adjusted[j] accumulates Σ_L A_j^L y_L over already-peeled sets L.
  std::vector<double> adjusted(n, 0.0);
  double index_sum = 0.0;

  for (std::size_t step = n; step-- > 0;) {
    const std::vector<double> a = coeffs(in_set);
    double best = std::numeric_limits<double>::infinity();
    std::size_t pick = n;
    // Scan high ids first so ties peel the larger id into lower priority,
    // matching the convention "stable sort by index descending".
    for (std::size_t j = n; j-- > 0;) {
      if (!in_set[j]) continue;
      STOSCHED_REQUIRE(a[j] > 0.0,
                       "conservation-law coefficients must be positive");
      const double rate = (costs[j] - adjusted[j]) / a[j];
      if (rate < best) {
        best = rate;
        pick = j;
      }
    }
    STOSCHED_ASSERT(pick < n, "no class picked in adaptive greedy");

    out.y[step] = best;
    index_sum += best;
    out.index[pick] = index_sum;
    out.priority[step] = pick;

    // Update the adjustment with this set's coefficients before shrinking.
    for (std::size_t j = 0; j < n; ++j)
      if (in_set[j]) adjusted[j] += a[j] * best;
    in_set[pick] = 0;
  }
  return out;
}

double mg1_region_b(const std::vector<queueing::ClassSpec>& classes,
                    const std::vector<char>& in_set) {
  STOSCHED_REQUIRE(in_set.size() == classes.size(), "shape mismatch");
  // Nonpreemptive M/G/1: even top-priority jobs wait behind the residual
  // work of *any* in-service job, so b(S) carries the total W0, not just
  // the subset's share (Coffman–Mitrani [14]). Equality at S is attained by
  // giving S absolute priority (Cobham algebra; see test_core).
  double rho_s = 0.0;
  for (std::size_t j = 0; j < classes.size(); ++j)
    if (in_set[j])
      rho_s += queueing::class_arrival_rate(classes[j]) *
               classes[j].service->mean();
  STOSCHED_REQUIRE(rho_s < 1.0, "subset must be stable");
  return rho_s * queueing::mean_residual_work(classes) / (1.0 - rho_s);
}

std::vector<double> mg1_region_vertex(
    const std::vector<queueing::ClassSpec>& classes,
    const std::vector<std::size_t>& priority) {
  const auto waits = queueing::cobham_waits(classes, priority);
  std::vector<double> x(classes.size(), 0.0);
  for (std::size_t j = 0; j < classes.size(); ++j)
    x[j] = queueing::class_arrival_rate(classes[j]) *
           classes[j].service->mean() * waits[j];
  return x;
}

bool mg1_region_contains(const std::vector<queueing::ClassSpec>& classes,
                         const std::vector<double>& x, double tol) {
  const std::size_t n = classes.size();
  STOSCHED_REQUIRE(n <= 16, "region check limited to n <= 16");
  STOSCHED_REQUIRE(x.size() == n, "performance vector shape mismatch");
  std::vector<char> in_set(n, 0);
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      in_set[j] = (mask >> j) & 1u;
      if (in_set[j]) lhs += x[j];
    }
    const double rhs = mg1_region_b(classes, in_set);
    const bool base = mask == (1u << n) - 1;
    if (lhs < rhs - tol) return false;
    if (base && std::abs(lhs - rhs) > tol) return false;
  }
  return true;
}

}  // namespace stosched::core
