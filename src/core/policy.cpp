#include "core/policy.hpp"

#include <algorithm>
#include <numeric>

#include "bandit/gittins.hpp"
#include "restless/whittle.hpp"
#include "util/check.hpp"

namespace stosched::core {

std::vector<std::size_t> IndexRule::priority_order() const {
  std::vector<std::size_t> order(index.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return index[a] > index[b];
                   });
  return order;
}

IndexRule wsept_rule(const batch::Batch& jobs) {
  IndexRule rule{"WSEPT", {}};
  rule.index.reserve(jobs.size());
  for (const auto& j : jobs)
    rule.index.push_back(j.weight / j.processing->mean());
  return rule;
}

IndexRule sept_rule(const batch::Batch& jobs) {
  IndexRule rule{"SEPT", {}};
  rule.index.reserve(jobs.size());
  for (const auto& j : jobs) rule.index.push_back(1.0 / j.processing->mean());
  return rule;
}

IndexRule lept_rule(const batch::Batch& jobs) {
  IndexRule rule{"LEPT", {}};
  rule.index.reserve(jobs.size());
  for (const auto& j : jobs) rule.index.push_back(j.processing->mean());
  return rule;
}

IndexRule cmu_rule(const std::vector<queueing::ClassSpec>& classes) {
  IndexRule rule{"c-mu", {}};
  rule.index.reserve(classes.size());
  for (const auto& c : classes)
    rule.index.push_back(c.holding_cost / c.service->mean());
  return rule;
}

IndexRule klimov_rule(const queueing::KlimovNetwork& net) {
  IndexRule rule{"Klimov", {}};
  rule.index = queueing::klimov_indices(net).index;
  return rule;
}

IndexRule gittins_rule(const bandit::MarkovProject& project, double beta) {
  IndexRule rule{"Gittins", {}};
  rule.index = bandit::gittins_largest_index(project, beta);
  return rule;
}

IndexRule whittle_rule(const restless::RestlessProject& project) {
  const auto res = restless::whittle_index(project);
  STOSCHED_REQUIRE(res.indexable,
                   "project is not indexable; use the primal-dual heuristic");
  IndexRule rule{"Whittle", {}};
  rule.index = res.index;
  return rule;
}

}  // namespace stosched::core
