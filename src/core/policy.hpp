// policy.hpp — the unified priority-index policy abstraction.
//
// The survey's through-line is that across all three model families the
// good policies share one shape: *compute an index per class/state, serve
// the largest*. This header gives that shape a single vocabulary used by
// the examples and the experiment harness:
//   * IndexRule — a named assignment of indices to classes;
//   * rule catalog — constructors for the rules the library implements
//     (WSEPT/Smith, SEPT, LEPT, cµ, Klimov, Gittins, Whittle, myopic), each
//     delegating to the subsystem that computes it;
//   * ranking helpers to turn indices into priority orders.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bandit/project.hpp"
#include "batch/job.hpp"
#include "queueing/klimov.hpp"
#include "queueing/mg1.hpp"
#include "restless/restless_project.hpp"

namespace stosched::core {

/// A named static index rule over n classes.
struct IndexRule {
  std::string name;
  std::vector<double> index;  ///< higher = served first

  /// Priority order induced by the indices (ties: lower class id first).
  [[nodiscard]] std::vector<std::size_t> priority_order() const;
};

/// Smith/Rothkopf WSEPT rule for a batch: index w_j / E[P_j] [34, 37].
IndexRule wsept_rule(const batch::Batch& jobs);
/// SEPT: index 1 / E[P_j].
IndexRule sept_rule(const batch::Batch& jobs);
/// LEPT: index E[P_j].
IndexRule lept_rule(const batch::Batch& jobs);
/// cµ rule for a multiclass queue: index c_j / E[S_j] [15].
IndexRule cmu_rule(const std::vector<queueing::ClassSpec>& classes);
/// Klimov's rule for a feedback network [24].
IndexRule klimov_rule(const queueing::KlimovNetwork& net);
/// Gittins indices of one project's states [19] (largest-index algorithm).
IndexRule gittins_rule(const bandit::MarkovProject& project, double beta);
/// Whittle indices of one restless project's states [48]; throws
/// std::invalid_argument when the project is not indexable.
IndexRule whittle_rule(const restless::RestlessProject& project);

}  // namespace stosched::core
