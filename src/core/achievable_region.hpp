// achievable_region.hpp — conservation laws, polymatroids and the
// adaptive-greedy index algorithm (the survey's unifying principle, [4, 14,
// 17, 36]).
//
// The achievable region method characterizes the performance vectors
// x = (x_1..x_n) attainable by admissible scheduling policies as a polytope
// defined by *conservation laws*:
//     Σ_{j∈S} A_j^S x_j >= b(S)   for all S ⊂ N,   with equality at S = N,
// whose vertices are exactly the static priority rules. Optimizing a linear
// cost over such an (extended) polymatroid is done by a greedy dual peeling
// — the *adaptive greedy* algorithm of Bertsimas–Niño-Mora [4] — which
// yields both the optimal priority order and a set of priority *indices*:
// cµ for the plain M/G/1, Klimov's indices with feedback, Gittins' indices
// for branching bandits. The engine below needs only the coefficient
// callback A and the cost vector; b(S) never enters the index computation.
//
// This module also instantiates the region itself for the multiclass M/G/1
// (performance x_j = ρ_j W_j, a genuine polymatroid) so experiment F4 can
// check simulated points against the polytope.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/adaptive_greedy.hpp"
#include "queueing/mg1.hpp"

namespace stosched::core {

// The adaptive-greedy peeling engine itself is pure LP-duality machinery and
// lives in lp/adaptive_greedy.hpp so lower modules (queueing/klimov) can use
// it without a queueing -> core back-edge; re-exported here because it is
// the survey's unifying algorithm and core/ is its natural API home.
using lp::AdaptiveGreedyResult;
using lp::adaptive_greedy;

// ---------------------------------------------------------------------------
// The multiclass M/G/1 polymatroid (no feedback).
// ---------------------------------------------------------------------------

/// Set function of the M/G/1 region for x_j = ρ_j W_j:
///   b(S) = ρ(S) · W0(S) / (1 - ρ(S)),
/// the total ρ-weighted wait when S has absolute priority [14].
double mg1_region_b(const std::vector<queueing::ClassSpec>& classes,
                    const std::vector<char>& in_set);

/// The region's vertex for a given priority order: x_j = ρ_j W_j with W from
/// Cobham's formula. Equals the greedy polymatroid vertex.
std::vector<double> mg1_region_vertex(
    const std::vector<queueing::ClassSpec>& classes,
    const std::vector<std::size_t>& priority);

/// Verify a performance point lies inside the region (all 2^n - 1 lower
/// constraints + the base equality within `tol`). n <= 16.
bool mg1_region_contains(const std::vector<queueing::ClassSpec>& classes,
                         const std::vector<double>& x, double tol);

}  // namespace stosched::core
