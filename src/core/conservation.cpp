#include "core/conservation.hpp"

#include <cmath>

#include "queueing/mg1_analytic.hpp"
#include "util/check.hpp"

namespace stosched::core {

ConservationAudit audit_conservation(
    const std::vector<queueing::ClassSpec>& classes,
    const queueing::SimResult& result) {
  STOSCHED_REQUIRE(result.per_class.size() == classes.size(),
                   "result/classes shape mismatch");
  ConservationAudit audit;
  audit.invariant = queueing::kleinrock_invariant(classes);
  for (std::size_t j = 0; j < classes.size(); ++j) {
    const double rho_j =
        class_arrival_rate(classes[j]) * classes[j].service->mean();
    audit.observed += rho_j * result.per_class[j].mean_wait;
  }
  audit.rel_error =
      std::abs(audit.observed - audit.invariant) / audit.invariant;
  return audit;
}

}  // namespace stosched::core
