// conservation.hpp — work-conservation identities (survey §3, [14]).
//
// For every work-conserving nonpreemptive discipline in a stable multiclass
// M/G/1 queue, the ρ-weighted waits satisfy Kleinrock's conservation law
//     Σ_j ρ_j W_j = ρ W0 / (1 - ρ)  — a single linear invariant that every
// simulated policy must hit. The experiments use it as a built-in
// cross-check: a scheduling policy can shift waiting time between classes
// but cannot create or destroy it. This module scores simulation results
// against the invariant and reports the relative violation.
#pragma once

#include <vector>

#include "queueing/mg1.hpp"

namespace stosched::core {

/// Result of a conservation-law audit.
struct ConservationAudit {
  double invariant = 0.0;   ///< theoretical Σ ρ_j W_j
  double observed = 0.0;    ///< simulated Σ ρ_j W_j
  double rel_error = 0.0;   ///< |observed - invariant| / invariant
};

/// Audit a simulation result against Kleinrock's conservation law.
ConservationAudit audit_conservation(
    const std::vector<queueing::ClassSpec>& classes,
    const queueing::SimResult& result);

}  // namespace stosched::core
