// stosched.hpp — umbrella header for libstosched.
//
// One include gives the full public API:
//   * §1 batch scheduling: jobs, WSEPT/Sevcik, parallel machines, exact DPs,
//     uniform machines, flow shops, precedence trees;
//   * §2 bandits: Gittins indices (three algorithms), bandit simulation,
//     switching costs, restless bandits (Whittle index, LP relaxation,
//     primal-dual heuristic);
//   * §3 queueing control: multiclass M/G/1 (simulation + closed forms),
//     Klimov networks, parallel servers, polling, multistation stability,
//     fluid models;
//   * stochastic online scheduling: jobs arriving over time to identical /
//     related / unrelated machines, greedy & index assignment policies,
//     offline lower bounds and empirical competitive ratios;
//   * unifying machinery: conservation laws, achievable regions, adaptive
//     greedy indices, priority-rule catalog;
//   * observability: metrics registry (counters/gauges/deterministic
//     latency histograms), compiled-out Chrome-trace spans, run
//     provenance, structured progress sink, phase timers;
//   * the experiment engine: replication driver, CRN paired comparisons,
//     sequential-precision stopping, scenario registry and adapters;
//   * substrates: distributions, RNG, statistics, discrete-event kernel,
//     LP solver, finite MDP solvers.
#pragma once

#include "util/check.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timestat.hpp"

#include "obs/obs.hpp"

#include "dist/arrival.hpp"
#include "dist/distribution.hpp"

#include "des/calendar_queue.hpp"
#include "des/event_queue.hpp"
#include "des/fifo_arena.hpp"
#include "des/simulator.hpp"

#include "lp/adaptive_greedy.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"

#include "mdp/mdp.hpp"
#include "mdp/solve.hpp"

#include "batch/job.hpp"
#include "batch/single_machine.hpp"
#include "batch/parallel_machines.hpp"
#include "batch/subset_dp.hpp"
#include "batch/uniform_machines.hpp"
#include "batch/flow_shop.hpp"
#include "batch/precedence.hpp"

#include "bandit/project.hpp"
#include "bandit/gittins.hpp"
#include "bandit/bandit_sim.hpp"
#include "bandit/switching.hpp"

#include "restless/restless_project.hpp"
#include "restless/whittle.hpp"
#include "restless/relaxation.hpp"
#include "restless/restless_sim.hpp"

#include "online/model.hpp"
#include "online/policies.hpp"
#include "online/lower_bound.hpp"
#include "online/simulate.hpp"

#include "queueing/mg1.hpp"
#include "queueing/mg1_analytic.hpp"
#include "queueing/klimov.hpp"
#include "queueing/parallel_servers.hpp"
#include "queueing/polling.hpp"
#include "queueing/network.hpp"
#include "queueing/fluid.hpp"

#include "core/conservation.hpp"
#include "core/achievable_region.hpp"
#include "core/policy.hpp"

#include "experiment/engine.hpp"
#include "experiment/scenario.hpp"
#include "experiment/adapters.hpp"
