// scenario.hpp — the named scenario registry of the experiment subsystem.
//
// Before this registry every bench and example hand-built its workload
// inline: the same three-class traffic mix, the same symmetric polling
// system and the same restless prototype were re-typed dozens of times,
// and load sweeps re-derived arrival-rate scalings ad hoc. A scenario is a
// *named, parameterized workload* — classes/laws/feedback plus run lengths —
// looked up by string, so benches, examples and tests draw from one
// catalogue and new workloads become one registration instead of N edits.
//
// Families:
//   * QueueScenario    — multiclass M/G/1 workloads, optionally with a
//                        Bernoulli feedback matrix (Klimov networks);
//   * PollingScenario  — queues plus a switchover law;
//   * RestlessScenario — a restless prototype replicated into a symmetric
//                        N-project instance with an activation budget;
//   * BatchScenario    — a fixed batch of stochastic jobs on one or more
//                        identical machines;
//   * NetworkScenario  — a multistation multiclass network workload (the
//                        stability experiments); the per-station priority is
//                        the *policy arm*, not part of the scenario;
//   * MmmScenario      — a multiclass M/M/m workload (parallel pooling);
//   * FluidScenario    — a fluid-scaled draining workload (FLLN
//                        experiments);
//   * TreeScenario     — an in-tree precedence instance on parallel
//                        machines;
//   * OnlineScenario   — stochastic online scheduling: jobs arriving over
//                        time (any ArrivalProcess) to identical / related /
//                        unrelated machines, assigned irrevocably by an
//                        OnlinePolicy and benchmarked against the offline
//                        lower bound (empirical competitive ratios).
//
// Helpers derive swept variants (scale_to_load, with_switchover,
// with_servers, with_arrival_scv, with_burstiness, turnpike_scenario(n),
// intree_scenario(n), ...) without mutating the registered base scenario.
// Arrival-process variants (bursty MMPP, interarrival-SCV renewal) ride on
// the same ClassSpec/NetworkClass fields, so every simulator family and
// every CRN comparison accepts them unchanged.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "batch/job.hpp"
#include "batch/precedence.hpp"
#include "online/lower_bound.hpp"
#include "online/model.hpp"
#include "queueing/fluid.hpp"
#include "queueing/mg1.hpp"
#include "queueing/network.hpp"
#include "queueing/parallel_servers.hpp"
#include "queueing/polling.hpp"
#include "restless/restless_project.hpp"

namespace stosched::experiment {

/// A multiclass M/G/1 workload (feedback empty => plain M/G/1; nonempty =>
/// Klimov network).
struct QueueScenario {
  std::string name;
  std::string description;
  std::vector<queueing::ClassSpec> classes;
  std::vector<std::vector<double>> feedback;
  double horizon = 2e5;
  double warmup = 2e4;

  /// Traffic intensity of the base workload (ignores feedback revisits).
  [[nodiscard]] double load() const;
  /// SimOptions preset with this scenario's horizon/warmup/feedback filled
  /// in; caller sets discipline and priority (the policy arm).
  [[nodiscard]] queueing::SimOptions options() const;
};

/// A polling workload: queues plus the switchover law.
struct PollingScenario {
  std::string name;
  std::string description;
  std::vector<queueing::ClassSpec> classes;
  DistPtr switchover;
  double horizon = 2e5;
  double warmup = 2e4;

  [[nodiscard]] queueing::PollingOptions options(
      queueing::PollingDiscipline discipline, std::size_t limit = 1) const;
};

/// A symmetric restless-bandit workload: N copies of a prototype project,
/// `activate` of which run per epoch.
struct RestlessScenario {
  std::string name;
  std::string description;
  restless::RestlessProject prototype;
  std::size_t projects = 4;
  std::size_t activate = 1;
  std::size_t horizon = 60000;
  std::size_t burnin = 6000;

  [[nodiscard]] restless::RestlessInstance instance() const;
  /// Variant scaled to n projects with budget n * activate / projects.
  [[nodiscard]] RestlessScenario with_population(std::size_t n) const;
};

/// A fixed batch of stochastic jobs scheduled by a list order on `machines`
/// identical machines (1 = the single-machine experiments).
struct BatchScenario {
  std::string name;
  std::string description;
  batch::Batch jobs;
  unsigned machines = 1;
};

/// A multistation multiclass network workload. `config.station_priority` is
/// deliberately left empty: the priority assignment is the policy arm (see
/// experiment::NetworkPolicy), so CRN comparisons replay one workload under
/// several priority choices.
struct NetworkScenario {
  std::string name;
  std::string description;
  queueing::NetworkConfig config;
  double horizon = 4e4;
  std::size_t samples = 80;  ///< trace snapshots per run

  /// Nominal per-station traffic intensities of the workload.
  [[nodiscard]] std::vector<double> intensities() const;
};

/// A multiclass M/M/m workload; the priority order is the policy arm.
struct MmmScenario {
  std::string name;
  std::string description;
  std::vector<queueing::ClassSpec> classes;
  unsigned servers = 2;
  double horizon = 2e5;
  double warmup = 2e4;

  /// Per-server traffic intensity rho = sum_j rho_j / m.
  [[nodiscard]] double load() const;
};

/// A fluid-scaled draining workload: initial backlog `scale * initial`,
/// sampled along the (cmu-priority) fluid drain. One replication reports the
/// fluid-scaled cost integral plus the scaled backlog path at
/// `path_fractions` of the reference drain time.
struct FluidScenario {
  std::string name;
  std::string description;
  std::vector<queueing::FluidClass> classes;
  std::vector<double> initial;  ///< fluid-scale initial levels
  double scale = 400.0;         ///< FLLN scaling factor n
  /// Fractions of the reference drain time at which the scaled path is
  /// reported as metrics (may be empty for cost-only scenarios).
  std::vector<double> path_fractions;
  /// Simulated horizon: `horizon_factor * drain_time * scale`, unless
  /// `t_end > 0` fixes an absolute horizon instead.
  double horizon_factor = 2.0;
  double t_end = 0.0;
  std::size_t cost_samples = 60;  ///< Riemann grid for the cost integral

  /// Drain time of the fluid trajectory under the cmu priority — the
  /// reference clock for path fractions and the default horizon.
  [[nodiscard]] double reference_drain_time() const;
};

/// An in-tree precedence instance: i.i.d. Exp(rate) tasks on `machines`
/// identical machines; the TreePolicy is the policy arm.
struct TreeScenario {
  std::string name;
  std::string description;
  batch::InTree tree;
  unsigned machines = 3;
  double rate = 1.0;
};

/// A stochastic online scheduling workload: jobs arrive on [0, horizon)
/// driven by `arrival`, draw a type from the mix, and must be assigned to a
/// machine of `env` the moment they arrive. The OnlinePolicy is the policy
/// arm; `bound` controls the offline lower bound of the ratio metric.
struct OnlineScenario {
  std::string name;
  std::string description;
  ArrivalPtr arrival;
  std::vector<online::JobType> types;
  online::Environment env;
  double horizon = 60.0;
  online::OfflineBoundOptions bound;

  /// Nominal load: job rate × mean size / mix service capacity (the
  /// identical-machine λ E[S] / m, generalized through mix_capacity).
  [[nodiscard]] double load() const;
};

/// Registry lookups. Unknown names throw std::invalid_argument listing the
/// known scenarios; *_names() enumerate the catalogue for sweeps/tools.
const QueueScenario& queue_scenario(std::string_view name);
const PollingScenario& polling_scenario(std::string_view name);
const RestlessScenario& restless_scenario(std::string_view name);
const BatchScenario& batch_scenario(std::string_view name);
const NetworkScenario& network_scenario(std::string_view name);
const MmmScenario& mmm_scenario(std::string_view name);
const FluidScenario& fluid_scenario(std::string_view name);
const TreeScenario& tree_scenario(std::string_view name);
const OnlineScenario& online_scenario(std::string_view name);

std::vector<std::string> queue_scenario_names();
std::vector<std::string> polling_scenario_names();
std::vector<std::string> restless_scenario_names();
std::vector<std::string> batch_scenario_names();
std::vector<std::string> network_scenario_names();
std::vector<std::string> mmm_scenario_names();
std::vector<std::string> fluid_scenario_names();
std::vector<std::string> tree_scenario_names();
std::vector<std::string> online_scenario_names();

/// Rescale every arrival rate by a common factor so the base traffic
/// intensity becomes `rho` — the standard load-sweep transform. Classes
/// with an attached arrival process are rescaled in time
/// (ArrivalProcess::scaled), preserving their SCV/burstiness exactly.
QueueScenario scale_to_load(QueueScenario s, double rho);

/// Replace every class's arrivals with a renewal process whose
/// interarrival law is the exact two-moment fit (dist::with_mean_scv) to
/// the class's current effective rate and the target SCV — the
/// interarrival-variability sweep. SCV 1 recovers Poisson exactly.
QueueScenario with_arrival_scv(QueueScenario s, double scv);

/// Replace every class's arrivals with a symmetric on-off MMPP
/// (bursty_arrivals) at the class's current effective rate and the target
/// asymptotic index of dispersion (> 1) — the burstiness sweep.
QueueScenario with_burstiness(QueueScenario s, double burstiness);

/// Network variant of the burstiness sweep: every externally-fed class's
/// arrivals become a bursty MMPP at its current effective rate.
NetworkScenario with_burstiness(NetworkScenario s, double burstiness);

/// Polling variant of the burstiness sweep: every queue's arrivals become a
/// symmetric on-off MMPP at its current effective rate.
PollingScenario with_burstiness(PollingScenario s, double burstiness);

/// Parallel-server variant of the burstiness sweep.
MmmScenario with_burstiness(MmmScenario s, double burstiness);

/// Swap in a different switchover law (setup-time sweeps).
PollingScenario with_switchover(PollingScenario s, DistPtr law);

/// Rescale arrival rates so the per-server load becomes `rho` (the heavy-
/// traffic sweep of experiment F5).
MmmScenario mmm_scale_to_load(MmmScenario s, double rho);

/// Server-count sweep: set the pool size to `m`, scaling arrival rates so
/// the per-server load is unchanged.
MmmScenario with_servers(MmmScenario s, unsigned m);

/// The F1 turnpike batch of size n on 3 machines: exponential jobs with
/// U(0.5, 4) means and U(0.5, 3) weights, generated deterministically from
/// the registered family seed (the registry's "turnpike" entry is this at
/// n = 100).
BatchScenario turnpike_scenario(std::size_t n);

/// The T5 two-point counterexample instance family on 2 machines (the
/// registry's "t5-twopoint" entry is instance 0).
BatchScenario twopoint_scenario(std::size_t instance);

/// The F8 random in-tree on n nodes, 3 machines, Exp(1) tasks (the
/// registry's "intree" entry is this at n = 100).
TreeScenario intree_scenario(std::size_t n);

/// Rescale the arrival process in time (ArrivalProcess::scaled, preserving
/// burstiness) so the nominal load becomes `rho`.
OnlineScenario scale_to_load(OnlineScenario s, double rho);

/// Online variant of the burstiness sweep: the job stream becomes a
/// symmetric on-off MMPP at its current effective rate.
OnlineScenario with_burstiness(OnlineScenario s, double burstiness);

/// Machine-count sweep: grow/shrink the environment to `m` machines by
/// cycling its speed rows, rescaling the arrival stream so the nominal
/// per-capacity load is unchanged.
OnlineScenario with_machines(OnlineScenario s, std::size_t m);

/// Size-variability sweep: every type's size law becomes the exact
/// two-moment fit (dist::with_mean_scv) to its current mean and the target
/// SCV. SCV 1 recovers exponential sizes exactly.
OnlineScenario with_size_scv(OnlineScenario s, double scv);

}  // namespace stosched::experiment
