// scenario.hpp — the named scenario registry of the experiment subsystem.
//
// Before this registry every bench and example hand-built its workload
// inline: the same three-class traffic mix, the same symmetric polling
// system and the same restless prototype were re-typed dozens of times,
// and load sweeps re-derived arrival-rate scalings ad hoc. A scenario is a
// *named, parameterized workload* — classes/laws/feedback plus run lengths —
// looked up by string, so benches, examples and tests draw from one
// catalogue and new workloads become one registration instead of N edits.
//
// Families:
//   * QueueScenario    — multiclass M/G/1 workloads, optionally with a
//                        Bernoulli feedback matrix (Klimov networks);
//   * PollingScenario  — queues plus a switchover law;
//   * RestlessScenario — a restless prototype replicated into a symmetric
//                        N-project instance with an activation budget;
//   * BatchScenario    — a fixed batch of stochastic jobs.
//
// Helpers derive swept variants (scale_to_load, with_switchover) without
// mutating the registered base scenario.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "batch/job.hpp"
#include "queueing/mg1.hpp"
#include "queueing/polling.hpp"
#include "restless/restless_project.hpp"

namespace stosched::experiment {

/// A multiclass M/G/1 workload (feedback empty => plain M/G/1; nonempty =>
/// Klimov network).
struct QueueScenario {
  std::string name;
  std::string description;
  std::vector<queueing::ClassSpec> classes;
  std::vector<std::vector<double>> feedback;
  double horizon = 2e5;
  double warmup = 2e4;

  /// Traffic intensity of the base workload (ignores feedback revisits).
  [[nodiscard]] double load() const;
  /// SimOptions preset with this scenario's horizon/warmup/feedback filled
  /// in; caller sets discipline and priority (the policy arm).
  [[nodiscard]] queueing::SimOptions options() const;
};

/// A polling workload: queues plus the switchover law.
struct PollingScenario {
  std::string name;
  std::string description;
  std::vector<queueing::ClassSpec> classes;
  DistPtr switchover;
  double horizon = 2e5;
  double warmup = 2e4;

  [[nodiscard]] queueing::PollingOptions options(
      queueing::PollingDiscipline discipline, std::size_t limit = 1) const;
};

/// A symmetric restless-bandit workload: N copies of a prototype project,
/// `activate` of which run per epoch.
struct RestlessScenario {
  std::string name;
  std::string description;
  restless::RestlessProject prototype;
  std::size_t projects = 4;
  std::size_t activate = 1;
  std::size_t horizon = 60000;
  std::size_t burnin = 6000;

  [[nodiscard]] restless::RestlessInstance instance() const;
  /// Variant scaled to n projects with budget n * activate / projects.
  [[nodiscard]] RestlessScenario with_population(std::size_t n) const;
};

/// A fixed batch of stochastic jobs (single-machine experiments).
struct BatchScenario {
  std::string name;
  std::string description;
  batch::Batch jobs;
};

/// Registry lookups. Unknown names throw std::invalid_argument listing the
/// known scenarios; *_names() enumerate the catalogue for sweeps/tools.
const QueueScenario& queue_scenario(std::string_view name);
const PollingScenario& polling_scenario(std::string_view name);
const RestlessScenario& restless_scenario(std::string_view name);
const BatchScenario& batch_scenario(std::string_view name);

std::vector<std::string> queue_scenario_names();
std::vector<std::string> polling_scenario_names();
std::vector<std::string> restless_scenario_names();
std::vector<std::string> batch_scenario_names();

/// Rescale every arrival rate by a common factor so the base traffic
/// intensity becomes `rho` — the standard load-sweep transform.
QueueScenario scale_to_load(QueueScenario s, double rho);

/// Swap in a different switchover law (setup-time sweeps).
PollingScenario with_switchover(PollingScenario s, DistPtr law);

}  // namespace stosched::experiment
