#include "experiment/scenario.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace stosched::experiment {

double QueueScenario::load() const {
  return queueing::traffic_intensity(classes);
}

queueing::SimOptions QueueScenario::options() const {
  queueing::SimOptions opt;
  opt.horizon = horizon;
  opt.warmup = warmup;
  opt.feedback = feedback;
  return opt;
}

queueing::PollingOptions PollingScenario::options(
    queueing::PollingDiscipline discipline, std::size_t limit) const {
  queueing::PollingOptions opt;
  opt.discipline = discipline;
  opt.limit = limit;
  opt.switchover = switchover;
  opt.horizon = horizon;
  opt.warmup = warmup;
  return opt;
}

restless::RestlessInstance RestlessScenario::instance() const {
  return restless::symmetric_instance(prototype, projects, activate);
}

RestlessScenario RestlessScenario::with_population(std::size_t n) const {
  STOSCHED_REQUIRE(n >= 1 && projects >= 1, "population must be >= 1");
  RestlessScenario out = *this;
  out.projects = n;
  out.activate = std::max<std::size_t>(1, n * activate / projects);
  out.name = name + "-N" + std::to_string(n);
  return out;
}

namespace {

/// Generic name -> scenario map with a helpful unknown-name error.
template <class S>
class Registry {
 public:
  void add(S s) { entries_.emplace(s.name, std::move(s)); }

  const S& get(std::string_view name, const char* family) const {
    const auto it = entries_.find(std::string(name));
    if (it == entries_.end()) {
      std::ostringstream os;
      os << "unknown " << family << " scenario '" << name << "'; known:";
      for (const auto& [k, v] : entries_) os << ' ' << k;
      throw std::invalid_argument(os.str());
    }
    return it->second;
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [k, v] : entries_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, S> entries_;  // ordered => deterministic names()
};

Registry<QueueScenario> build_queue_registry() {
  Registry<QueueScenario> reg;
  // The T9 instance: three classes with distinct cµ indices spanning IFR
  // (Erlang), memoryless and DFR (hyperexponential) service.
  reg.add({"t9-three-class",
           "3-class M/G/1, distinct c-mu indices (bench T9)",
           {{0.25, exponential_dist(1.0), 1.0},
            {0.20, erlang_dist(2, 3.0), 2.5},
            {0.15, hyperexp2_dist(1.3, 3.0), 0.7}},
           {},
           2e5,
           2e4});
  // The F4 instance: two classes tracing the achievable-region segment.
  reg.add({"f4-two-class",
           "2-class M/G/1 achievable-region instance (bench F4)",
           {{0.3, exponential_dist(1.0), 2.0},
            {0.25, hyperexp2_dist(1.2, 2.5), 1.0}},
           {},
           3e5,
           3e4});
  // The call-center example: urgent/standard/bulk caller mix at rho ~ 0.9.
  reg.add({"call-center",
           "3-class contact-center mix, rho ~ 0.9 (example)",
           {{8.0, exponential_dist(30.0), 12.0},
            {5.0, exponential_dist(15.0), 3.0},
            {1.5, hyperexp2_dist(0.2, 4.0), 1.0}},
           {},
           4e3,
           4e2});
  // The T10 Klimov network: 3 classes with Bernoulli feedback.
  reg.add({"klimov-t10",
           "3-class Klimov feedback network (bench T10)",
           {{0.15, exponential_dist(2.0), 2.0},
            {0.10, exponential_dist(1.0), 1.0},
            {0.10, exponential_dist(1.5), 3.0}},
           {{0.0, 0.4, 0.0}, {0.0, 0.0, 0.3}, {0.1, 0.0, 0.0}},
           2e5,
           2e4});
  // Heavy-tail mix: a Pareto class (alpha = 2.5, finite variance but high
  // SCV) against light-tailed competitors — the regime where priority
  // choices move the cost most.
  reg.add({"heavy-tail",
           "2-class M/G/1 with a Pareto heavy-tail class",
           {{0.30, pareto_dist(0.6, 2.5), 1.0},
            {0.35, exponential_dist(1.25), 2.0}},
           {},
           2e5,
           2e4});
  return reg;
}

Registry<PollingScenario> build_polling_registry() {
  Registry<PollingScenario> reg;
  // The T11 system: two near-symmetric queues, class 1 with the higher cµ.
  reg.add({"t11-two-queue",
           "2-queue polling system, deterministic setups (bench T11)",
           {{0.30, exponential_dist(1.0), 1.0},
            {0.25, exponential_dist(0.8), 2.0}},
           deterministic_dist(0.4),
           2e5,
           2e4});
  return reg;
}

Registry<RestlessScenario> build_restless_registry() {
  Registry<RestlessScenario> reg;
  // The F3 prototype: active work improves the state, passivity decays it;
  // indexable, with a binding activation budget at m/N = 1/4.
  RestlessScenario f3;
  f3.name = "f3-decay";
  f3.description =
      "4-state improve/decay restless prototype, m/N = 1/4 (bench F3)";
  f3.prototype.reward_passive = {0.0, 0.0, 0.0, 0.0};
  f3.prototype.reward_active = {0.1, 0.4, 0.7, 1.0};
  f3.prototype.trans_active = {{0.1, 0.6, 0.2, 0.1},
                               {0.05, 0.15, 0.6, 0.2},
                               {0.05, 0.1, 0.25, 0.6},
                               {0.05, 0.1, 0.15, 0.7}};
  f3.prototype.trans_passive = {{0.9, 0.1, 0.0, 0.0},
                                {0.5, 0.4, 0.1, 0.0},
                                {0.2, 0.5, 0.25, 0.05},
                                {0.1, 0.3, 0.4, 0.2}};
  f3.projects = 4;
  f3.activate = 1;
  f3.horizon = 60000;
  f3.burnin = 6000;
  reg.add(std::move(f3));
  return reg;
}

Registry<BatchScenario> build_batch_registry() {
  Registry<BatchScenario> reg;
  // The quickstart batch: four jobs whose weights and means disagree, so
  // index rules have something to decide.
  reg.add({"quickstart-four-jobs",
           "4 mixed-law jobs for single-machine WSEPT demos",
           {{3.0, exponential_dist(0.5)},
            {1.0, deterministic_dist(1.0)},
            {2.0, erlang_dist(3, 1.0)},
            {0.5, hyperexp2_dist(4.0, 3.0)}}});
  return reg;
}

const Registry<QueueScenario>& queue_registry() {
  static const Registry<QueueScenario> reg = build_queue_registry();
  return reg;
}

const Registry<PollingScenario>& polling_registry() {
  static const Registry<PollingScenario> reg = build_polling_registry();
  return reg;
}

const Registry<RestlessScenario>& restless_registry() {
  static const Registry<RestlessScenario> reg = build_restless_registry();
  return reg;
}

const Registry<BatchScenario>& batch_registry() {
  static const Registry<BatchScenario> reg = build_batch_registry();
  return reg;
}

}  // namespace

const QueueScenario& queue_scenario(std::string_view name) {
  return queue_registry().get(name, "queue");
}

const PollingScenario& polling_scenario(std::string_view name) {
  return polling_registry().get(name, "polling");
}

const RestlessScenario& restless_scenario(std::string_view name) {
  return restless_registry().get(name, "restless");
}

const BatchScenario& batch_scenario(std::string_view name) {
  return batch_registry().get(name, "batch");
}

std::vector<std::string> queue_scenario_names() {
  return queue_registry().names();
}

std::vector<std::string> polling_scenario_names() {
  return polling_registry().names();
}

std::vector<std::string> restless_scenario_names() {
  return restless_registry().names();
}

std::vector<std::string> batch_scenario_names() {
  return batch_registry().names();
}

QueueScenario scale_to_load(QueueScenario s, double rho) {
  STOSCHED_REQUIRE(rho > 0.0, "target load must be > 0");
  const double base = s.load();
  STOSCHED_REQUIRE(base > 0.0, "scenario has zero load");
  const double factor = rho / base;
  for (auto& c : s.classes) c.arrival_rate *= factor;
  std::ostringstream os;
  os << s.name << "@rho=" << rho;
  s.name = os.str();
  return s;
}

PollingScenario with_switchover(PollingScenario s, DistPtr law) {
  STOSCHED_REQUIRE(law != nullptr, "switchover law required");
  s.switchover = std::move(law);
  return s;
}

}  // namespace stosched::experiment
