#include "experiment/scenario.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace stosched::experiment {

double QueueScenario::load() const {
  return queueing::traffic_intensity(classes);
}

queueing::SimOptions QueueScenario::options() const {
  queueing::SimOptions opt;
  opt.horizon = horizon;
  opt.warmup = warmup;
  opt.feedback = feedback;
  return opt;
}

queueing::PollingOptions PollingScenario::options(
    queueing::PollingDiscipline discipline, std::size_t limit) const {
  queueing::PollingOptions opt;
  opt.discipline = discipline;
  opt.limit = limit;
  opt.switchover = switchover;
  opt.horizon = horizon;
  opt.warmup = warmup;
  return opt;
}

restless::RestlessInstance RestlessScenario::instance() const {
  return restless::symmetric_instance(prototype, projects, activate);
}

std::vector<double> NetworkScenario::intensities() const {
  return queueing::station_intensities(config);
}

double MmmScenario::load() const {
  return queueing::traffic_intensity(classes) / servers;
}

double OnlineScenario::load() const {
  STOSCHED_REQUIRE(arrival != nullptr,
                   "online scenario needs an arrival process");
  online::validate_types(types);
  env.validate(types.size());
  return arrival->rate() * online::mean_size(types) /
         env.mix_capacity(types);
}

double FluidScenario::reference_drain_time() const {
  return queueing::fluid_drain(classes, initial,
                               queueing::fluid_cmu_priority(classes))
      .drain_time;
}

RestlessScenario RestlessScenario::with_population(std::size_t n) const {
  STOSCHED_REQUIRE(n >= 1 && projects >= 1, "population must be >= 1");
  RestlessScenario out = *this;
  out.projects = n;
  out.activate = std::max<std::size_t>(1, n * activate / projects);
  out.name = name + "-N" + std::to_string(n);
  return out;
}

namespace {

/// Generic name -> scenario map with a helpful unknown-name error.
template <class S>
class Registry {
 public:
  void add(S s) { entries_.emplace(s.name, std::move(s)); }

  const S& get(std::string_view name, const char* family) const {
    const auto it = entries_.find(std::string(name));
    if (it == entries_.end()) {
      std::ostringstream os;
      os << "unknown " << family << " scenario '" << name << "'; known:";
      for (const auto& [k, v] : entries_) os << ' ' << k;
      throw std::invalid_argument(os.str());
    }
    return it->second;
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [k, v] : entries_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, S> entries_;  // ordered => deterministic names()
};

Registry<QueueScenario> build_queue_registry() {
  Registry<QueueScenario> reg;
  // The T9 instance: three classes with distinct cµ indices spanning IFR
  // (Erlang), memoryless and DFR (hyperexponential) service.
  reg.add({"t9-three-class",
           "3-class M/G/1, distinct c-mu indices (bench T9)",
           {{0.25, exponential_dist(1.0), 1.0},
            {0.20, erlang_dist(2, 3.0), 2.5},
            {0.15, hyperexp2_dist(1.3, 3.0), 0.7}},
           {},
           2e5,
           2e4});
  // The F4 instance: two classes tracing the achievable-region segment.
  reg.add({"f4-two-class",
           "2-class M/G/1 achievable-region instance (bench F4)",
           {{0.3, exponential_dist(1.0), 2.0},
            {0.25, hyperexp2_dist(1.2, 2.5), 1.0}},
           {},
           3e5,
           3e4});
  // The call-center example: urgent/standard/bulk caller mix at rho ~ 0.9.
  reg.add({"call-center",
           "3-class contact-center mix, rho ~ 0.9 (example)",
           {{8.0, exponential_dist(30.0), 12.0},
            {5.0, exponential_dist(15.0), 3.0},
            {1.5, hyperexp2_dist(0.2, 4.0), 1.0}},
           {},
           4e3,
           4e2});
  // The T10 Klimov network: 3 classes with Bernoulli feedback.
  reg.add({"klimov-t10",
           "3-class Klimov feedback network (bench T10)",
           {{0.15, exponential_dist(2.0), 2.0},
            {0.10, exponential_dist(1.0), 1.0},
            {0.10, exponential_dist(1.5), 3.0}},
           {{0.0, 0.4, 0.0}, {0.0, 0.0, 0.3}, {0.1, 0.0, 0.0}},
           2e5,
           2e4});
  // Heavy-tail mix: a Pareto class (alpha = 2.5, finite variance but high
  // SCV) against light-tailed competitors — the regime where priority
  // choices move the cost most.
  reg.add({"heavy-tail",
           "2-class M/G/1 with a Pareto heavy-tail class",
           {{0.30, pareto_dist(0.6, 2.5), 1.0},
            {0.35, exponential_dist(1.25), 2.0}},
           {},
           2e5,
           2e4});
  // Bursty (MMPP) and interarrival-SCV variants of the registered mixes:
  // same effective rates and service laws, non-memoryless input. These are
  // the fixed representatives of the with_burstiness / with_arrival_scv
  // sweeps (asymptotic IDC 9 ~ strongly correlated traffic; interarrival
  // SCV 4 ~ a high-variability renewal stream).
  {
    QueueScenario bursty = with_burstiness(reg.get("t9-three-class", "queue"),
                                           9.0);
    bursty.name = "t9-bursty";
    bursty.description =
        "T9 mix under symmetric on-off MMPP arrivals, IDC = 9";
    reg.add(std::move(bursty));
  }
  {
    QueueScenario scv = with_arrival_scv(reg.get("t9-three-class", "queue"),
                                         4.0);
    scv.name = "t9-scv4";
    scv.description =
        "T9 mix under renewal arrivals with interarrival SCV = 4";
    reg.add(std::move(scv));
  }
  {
    QueueScenario bursty = with_burstiness(reg.get("call-center", "queue"),
                                           6.0);
    bursty.name = "call-center-bursty";
    bursty.description =
        "contact-center mix under bursty MMPP caller arrivals, IDC = 6";
    reg.add(std::move(bursty));
  }
  return reg;
}

Registry<PollingScenario> build_polling_registry() {
  Registry<PollingScenario> reg;
  // The T11 system: two near-symmetric queues, class 1 with the higher cµ.
  reg.add({"t11-two-queue",
           "2-queue polling system, deterministic setups (bench T11)",
           {{0.30, exponential_dist(1.0), 1.0},
            {0.25, exponential_dist(0.8), 2.0}},
           deterministic_dist(0.4),
           2e5,
           2e4});
  // Bursty variant: identical queues and setups, MMPP input (IDC 6) — the
  // non-Poisson polling configuration the simulators already support, now
  // reachable by name.
  {
    PollingScenario bursty =
        with_burstiness(reg.get("t11-two-queue", "polling"), 6.0);
    bursty.name = "t11-bursty";
    bursty.description =
        "T11 polling system under bursty MMPP arrivals, IDC = 6";
    reg.add(std::move(bursty));
  }
  return reg;
}

Registry<RestlessScenario> build_restless_registry() {
  Registry<RestlessScenario> reg;
  // The F3 prototype: active work improves the state, passivity decays it;
  // indexable, with a binding activation budget at m/N = 1/4.
  RestlessScenario f3;
  f3.name = "f3-decay";
  f3.description =
      "4-state improve/decay restless prototype, m/N = 1/4 (bench F3)";
  f3.prototype.reward_passive = {0.0, 0.0, 0.0, 0.0};
  f3.prototype.reward_active = {0.1, 0.4, 0.7, 1.0};
  f3.prototype.trans_active = {{0.1, 0.6, 0.2, 0.1},
                               {0.05, 0.15, 0.6, 0.2},
                               {0.05, 0.1, 0.25, 0.6},
                               {0.05, 0.1, 0.15, 0.7}};
  f3.prototype.trans_passive = {{0.9, 0.1, 0.0, 0.0},
                                {0.5, 0.4, 0.1, 0.0},
                                {0.2, 0.5, 0.25, 0.05},
                                {0.1, 0.3, 0.4, 0.2}};
  f3.projects = 4;
  f3.activate = 1;
  f3.horizon = 60000;
  f3.burnin = 6000;
  reg.add(std::move(f3));
  return reg;
}

Registry<BatchScenario> build_batch_registry() {
  Registry<BatchScenario> reg;
  // The quickstart batch: four jobs whose weights and means disagree, so
  // index rules have something to decide.
  reg.add({"quickstart-four-jobs",
           "4 mixed-law jobs for single-machine WSEPT demos",
           {{3.0, exponential_dist(0.5)},
            {1.0, deterministic_dist(1.0)},
            {2.0, erlang_dist(3, 1.0)},
            {0.5, hyperexp2_dist(4.0, 3.0)}},
           1});
  // Representative members of the generated families; the sweeps call the
  // generators directly (turnpike_scenario(n), twopoint_scenario(i)).
  {
    BatchScenario turnpike = turnpike_scenario(100);
    turnpike.name = "turnpike";
    reg.add(std::move(turnpike));
  }
  {
    BatchScenario twopoint = twopoint_scenario(0);
    twopoint.name = "t5-twopoint";
    reg.add(std::move(twopoint));
  }
  return reg;
}

Registry<NetworkScenario> build_network_registry() {
  Registry<NetworkScenario> reg;
  // The Lu–Kumar instance of bench F6: rho ~ 0.68 at both stations, yet
  // m2 + m4 = 4/3 > 1 destabilizes the "bad" priority pair. The priority
  // assignment is the policy arm (lu_kumar_policies() in adapters.hpp).
  NetworkScenario lk;
  lk.name = "lu-kumar";
  lk.description =
      "Lu-Kumar 4-class 2-station network, rho ~ 0.68 < 1 (bench F6)";
  lk.config = queueing::lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01,
                                         2.0 / 3.0, /*bad_priority=*/false);
  lk.horizon = 4e4;
  lk.samples = 80;
  NetworkScenario lk_bursty = with_burstiness(lk, 9.0);
  reg.add(std::move(lk));
  // Bursty Lu–Kumar: identical topology and rates, MMPP external input
  // (IDC 9) — the stability contrast under correlated traffic.
  lk_bursty.name = "lu-kumar-bursty";
  lk_bursty.description =
      "Lu-Kumar network under bursty MMPP external arrivals, IDC = 9";
  reg.add(std::move(lk_bursty));
  // The Rybko–Stolyar network: two crossing routes, both stations at
  // rho = 0.61, yet the exit-priority pair self-starves whenever
  // 2 lambda m_out = 1.2 > 1 (virtual-station effect). The priority
  // assignment is the policy arm (rybko_stolyar_policies()).
  NetworkScenario rs;
  rs.name = "rybko-stolyar";
  rs.description =
      "Rybko-Stolyar 4-class 2-station crossing-routes network, rho = 0.61";
  rs.config = queueing::rybko_stolyar_network(1.0, 0.01, 0.6);
  rs.horizon = 4e4;
  rs.samples = 80;
  reg.add(std::move(rs));
  // A Dai–Wang-style re-entrant line: one route visiting the two stations
  // alternately (0,1,0,1,0), both stations subcritical; FBFS/LBFS/FCFS are
  // the policy arms (reentrant_policies()).
  NetworkScenario dw;
  dw.name = "dai-wang-reentrant";
  dw.description =
      "5-class 2-station re-entrant line (Dai-Wang-style), rho = (0.85, 0.9)";
  dw.config = queueing::reentrant_line_network(
      1.0, {0, 1, 0, 1, 0}, {0.1, 0.45, 0.1, 0.45, 0.65});
  dw.horizon = 4e4;
  dw.samples = 80;
  reg.add(std::move(dw));
  // Heavy-tailed Lu–Kumar: identical topology and rates, but the exit-stage
  // classes draw hyperexponential services (SCV 6) — the stability contrast
  // when the virtual-station workload is dominated by rare huge jobs.
  NetworkScenario ht;
  ht.name = "lu-kumar-ht";
  ht.description =
      "Lu-Kumar network with heavy-tailed (SCV 6) exit-stage services";
  ht.config = queueing::lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01,
                                         2.0 / 3.0, /*bad_priority=*/false);
  ht.config.classes[1].service = hyperexp2_dist(2.0 / 3.0, 6.0);
  ht.config.classes[3].service = hyperexp2_dist(2.0 / 3.0, 6.0);
  ht.horizon = 4e4;
  ht.samples = 80;
  reg.add(std::move(ht));
  return reg;
}

Registry<MmmScenario> build_mmm_registry() {
  Registry<MmmScenario> reg;
  // The F5 instance: two classes carrying 60%/40% of the offered load of an
  // M/M/2, distinct c-mu indices. Sweeps derive variants via
  // mmm_scale_to_load (heavy traffic) and with_servers (pool size).
  MmmScenario pooling;
  pooling.name = "parallel-pooling";
  pooling.description =
      "2-class M/M/2 c-mu pooling workload, rho = 0.85 (bench F5)";
  pooling.servers = 2;
  const double rho = 0.85;
  pooling.classes = {
      {0.6 * rho * pooling.servers * 1.5, exponential_dist(1.5), 2.0},
      {0.4 * rho * pooling.servers * 2.25, exponential_dist(2.25), 1.0}};
  pooling.horizon = 2e5;
  pooling.warmup = 2e4;
  MmmScenario bursty = with_burstiness(pooling, 6.0);
  reg.add(std::move(pooling));
  // Bursty pooling: the same two-class workload under MMPP input (IDC 6) —
  // the non-Poisson parallel-server configuration, reachable by name.
  bursty.name = "parallel-pooling-bursty";
  bursty.description =
      "2-class M/M/2 pooling workload under bursty MMPP arrivals, IDC = 6";
  reg.add(std::move(bursty));
  return reg;
}

Registry<FluidScenario> build_fluid_registry() {
  Registry<FluidScenario> reg;
  // The F7 instance: a 2-class priority queue drained from a fluid-scaled
  // backlog; path sampled at 8 fractions of the cmu drain time.
  FluidScenario f7;
  f7.name = "f7-fluid";
  f7.description =
      "2-class fluid-limit draining workload, scale n = 400 (bench F7)";
  f7.classes = {{0.3, 1.0, 2.0}, {0.2, 0.8, 1.0}};
  f7.initial = {1.0, 1.5};
  f7.scale = 400.0;
  for (int i = 1; i <= 8; ++i)
    f7.path_fractions.push_back(0.1 * static_cast<double>(i));
  f7.horizon_factor = 2.0;
  f7.cost_samples = 60;
  reg.add(std::move(f7));
  return reg;
}

Registry<TreeScenario> build_tree_registry() {
  Registry<TreeScenario> reg;
  TreeScenario t = intree_scenario(100);
  t.name = "intree";
  reg.add(std::move(t));
  return reg;
}

Registry<OnlineScenario> build_online_registry() {
  Registry<OnlineScenario> reg;
  // Identical machines: a 3-type mix whose weights and size laws disagree
  // (urgent short exponentials, standard Erlang, heavy hyperexponential),
  // so assignment and WSEPT sequencing both matter. rho = 0.75 at m = 4.
  {
    OnlineScenario s;
    s.name = "online-identical";
    s.description =
        "3-type online mix on 4 identical machines, rho = 0.75";
    s.types = {{0.50, 3.0, exponential_dist(2.0)},
               {0.35, 1.0, erlang_dist(2, 2.0)},
               {0.15, 0.5, hyperexp2_dist(2.0, 4.0)}};
    s.env = online::identical_machines(4, s.types.size());
    // load = rate * E[S] / m with E[S] = 0.9.
    s.arrival = poisson_arrivals(0.75 * 4.0 / 0.9);
    s.horizon = 45.0;
    reg.add(std::move(s));
  }
  // Unrelated machines: three specialists (3x fast on their own type,
  // slow elsewhere) plus one generalist — the regime where informed
  // assignment dominates and random routing pays the misrouting price.
  {
    OnlineScenario s;
    s.name = "online-unrelated";
    s.description =
        "3-type online mix on 3 specialists + 1 generalist, rho = 0.75";
    s.types = {{0.40, 2.0, exponential_dist(1.0)},
               {0.35, 1.0, erlang_dist(2, 5.0 / 3.0)},
               {0.25, 0.6, hyperexp2_dist(1.5, 3.0)}};
    s.env = online::unrelated_machines({{3.0, 0.8, 0.8},
                                        {0.8, 3.0, 0.8},
                                        {0.8, 0.8, 3.0},
                                        {1.2, 1.2, 1.2}});
    OnlineScenario base = s;  // reuse the mix for the load computation
    base.arrival = poisson_arrivals(1.0);
    s.arrival = poisson_arrivals(0.75 / base.load());
    s.horizon = 40.0;
    reg.add(std::move(s));
  }
  // Bursty variant of the unrelated workload: identical mix and machines,
  // MMPP job stream (IDC 6) — arrivals pile up exactly when assignment
  // mistakes are most expensive.
  {
    OnlineScenario bursty =
        with_burstiness(reg.get("online-unrelated", "online"), 6.0);
    bursty.name = "online-bursty";
    bursty.description =
        "unrelated online workload under bursty MMPP arrivals, IDC = 6";
    reg.add(std::move(bursty));
  }
  // Bernoulli-type jobs (Antoniadis–Hoeksma–Schewior–Uetz): two-point
  // sizes that are tiny with high probability and huge otherwise, on two
  // specialists plus a generalist — the regime where a single observed
  // sample is genuinely informative (it reveals which branch the job is
  // likely from) and moment-based rules face extreme residual risk.
  {
    OnlineScenario s;
    s.name = "online-bernoulli";
    s.description =
        "two-point Bernoulli-type jobs on 2 specialists + 1 generalist, "
        "rho = 0.7";
    s.types = {{0.55, 2.0, two_point_dist(0.1, 0.75, 4.0)},
               {0.45, 1.0, two_point_dist(0.05, 0.5, 2.0)}};
    s.env = online::unrelated_machines(
        {{2.5, 0.6}, {0.6, 2.5}, {1.0, 1.0}});
    OnlineScenario base = s;
    base.arrival = poisson_arrivals(1.0);
    s.arrival = poisson_arrivals(0.7 / base.load());
    s.horizon = 40.0;
    reg.add(std::move(s));
  }
  return reg;
}

const Registry<QueueScenario>& queue_registry() {
  static const Registry<QueueScenario> reg = build_queue_registry();
  return reg;
}

const Registry<PollingScenario>& polling_registry() {
  static const Registry<PollingScenario> reg = build_polling_registry();
  return reg;
}

const Registry<RestlessScenario>& restless_registry() {
  static const Registry<RestlessScenario> reg = build_restless_registry();
  return reg;
}

const Registry<BatchScenario>& batch_registry() {
  static const Registry<BatchScenario> reg = build_batch_registry();
  return reg;
}

const Registry<NetworkScenario>& network_registry() {
  static const Registry<NetworkScenario> reg = build_network_registry();
  return reg;
}

const Registry<MmmScenario>& mmm_registry() {
  static const Registry<MmmScenario> reg = build_mmm_registry();
  return reg;
}

const Registry<FluidScenario>& fluid_registry() {
  static const Registry<FluidScenario> reg = build_fluid_registry();
  return reg;
}

const Registry<TreeScenario>& tree_registry() {
  static const Registry<TreeScenario> reg = build_tree_registry();
  return reg;
}

const Registry<OnlineScenario>& online_registry() {
  static const Registry<OnlineScenario> reg = build_online_registry();
  return reg;
}

}  // namespace

const QueueScenario& queue_scenario(std::string_view name) {
  return queue_registry().get(name, "queue");
}

const PollingScenario& polling_scenario(std::string_view name) {
  return polling_registry().get(name, "polling");
}

const RestlessScenario& restless_scenario(std::string_view name) {
  return restless_registry().get(name, "restless");
}

const BatchScenario& batch_scenario(std::string_view name) {
  return batch_registry().get(name, "batch");
}

const NetworkScenario& network_scenario(std::string_view name) {
  return network_registry().get(name, "network");
}

const MmmScenario& mmm_scenario(std::string_view name) {
  return mmm_registry().get(name, "parallel-server");
}

const FluidScenario& fluid_scenario(std::string_view name) {
  return fluid_registry().get(name, "fluid");
}

const TreeScenario& tree_scenario(std::string_view name) {
  return tree_registry().get(name, "tree");
}

const OnlineScenario& online_scenario(std::string_view name) {
  return online_registry().get(name, "online");
}

std::vector<std::string> queue_scenario_names() {
  return queue_registry().names();
}

std::vector<std::string> polling_scenario_names() {
  return polling_registry().names();
}

std::vector<std::string> restless_scenario_names() {
  return restless_registry().names();
}

std::vector<std::string> batch_scenario_names() {
  return batch_registry().names();
}

std::vector<std::string> network_scenario_names() {
  return network_registry().names();
}

std::vector<std::string> mmm_scenario_names() { return mmm_registry().names(); }

std::vector<std::string> fluid_scenario_names() {
  return fluid_registry().names();
}

std::vector<std::string> tree_scenario_names() {
  return tree_registry().names();
}

std::vector<std::string> online_scenario_names() {
  return online_registry().names();
}

namespace {

/// Multiply a class's effective arrival rate by `factor`, whichever way the
/// class encodes its arrivals (plain Poisson rate or attached process).
void scale_class_rate(queueing::ClassSpec& c, double factor) {
  if (c.arrival)
    c.arrival = c.arrival->scaled(factor);
  else
    c.arrival_rate *= factor;
}

std::string suffixed(const std::string& name, const char* tag, double value) {
  std::ostringstream os;
  os << name << tag << value;
  return os.str();
}

/// Shared body of the ClassSpec-based burstiness sweeps: every externally
/// fed class's arrivals become a symmetric on-off MMPP at its current
/// effective rate.
template <class Scenario>
Scenario burstify_classes(Scenario s, double burstiness) {
  for (auto& c : s.classes) {
    const double rate = queueing::class_arrival_rate(c);
    if (rate <= 0.0) continue;
    c.arrival = bursty_arrivals(rate, burstiness);
  }
  s.name = suffixed(s.name, "@idc=", burstiness);
  return s;
}

}  // namespace

QueueScenario scale_to_load(QueueScenario s, double rho) {
  STOSCHED_REQUIRE(rho > 0.0, "target load must be > 0");
  const double base = s.load();
  STOSCHED_REQUIRE(base > 0.0, "scenario has zero load");
  const double factor = rho / base;
  for (auto& c : s.classes) scale_class_rate(c, factor);
  s.name = suffixed(s.name, "@rho=", rho);
  return s;
}

QueueScenario with_arrival_scv(QueueScenario s, double scv) {
  for (auto& c : s.classes) {
    const double rate = queueing::class_arrival_rate(c);
    if (rate <= 0.0) continue;
    c.arrival = renewal_arrivals(with_mean_scv(1.0 / rate, scv));
  }
  s.name = suffixed(s.name, "@ascv=", scv);
  return s;
}

QueueScenario with_burstiness(QueueScenario s, double burstiness) {
  return burstify_classes(std::move(s), burstiness);
}

NetworkScenario with_burstiness(NetworkScenario s, double burstiness) {
  for (auto& c : s.config.classes) {
    const double rate = queueing::network_class_rate(c);
    if (rate <= 0.0) continue;
    c.arrival = bursty_arrivals(rate, burstiness);
  }
  s.name = suffixed(s.name, "@idc=", burstiness);
  return s;
}

PollingScenario with_burstiness(PollingScenario s, double burstiness) {
  return burstify_classes(std::move(s), burstiness);
}

MmmScenario with_burstiness(MmmScenario s, double burstiness) {
  return burstify_classes(std::move(s), burstiness);
}

PollingScenario with_switchover(PollingScenario s, DistPtr law) {
  STOSCHED_REQUIRE(law != nullptr, "switchover law required");
  s.switchover = std::move(law);
  return s;
}

MmmScenario mmm_scale_to_load(MmmScenario s, double rho) {
  STOSCHED_REQUIRE(rho > 0.0, "target load must be > 0");
  const double base = s.load();
  STOSCHED_REQUIRE(base > 0.0, "scenario has zero load");
  const double factor = rho / base;
  for (auto& c : s.classes) scale_class_rate(c, factor);
  s.name = suffixed(s.name, "@rho=", rho);
  return s;
}

MmmScenario with_servers(MmmScenario s, unsigned m) {
  STOSCHED_REQUIRE(m >= 1, "need at least one server");
  const double factor = static_cast<double>(m) / s.servers;
  for (auto& c : s.classes) scale_class_rate(c, factor);
  s.servers = m;
  s.name += "-m" + std::to_string(m);
  return s;
}

BatchScenario turnpike_scenario(std::size_t n) {
  STOSCHED_REQUIRE(n >= 1, "need at least one job");
  // Deterministic family seed: matches the F1 scaling panel's historical
  // generation, so bench values are comparable across commits.
  const Rng master(4242);
  Rng rng = master.stream(1000 + n);
  BatchScenario s;
  s.name = "turnpike-n" + std::to_string(n);
  s.description = "F1 turnpike batch: exponential jobs on 3 machines";
  s.machines = 3;
  s.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = rng.uniform(0.5, 4.0);
    s.jobs.push_back({rng.uniform(0.5, 3.0), exponential_dist(1.0 / mean)});
  }
  return s;
}

BatchScenario twopoint_scenario(std::size_t instance) {
  // Deterministic family seed: matches the T5 counterexample instances.
  const Rng master(77);
  Rng rng = master.stream(instance);
  BatchScenario s;
  s.name = "t5-twopoint-" + std::to_string(instance);
  s.description =
      "T5 two-point counterexample instance on 2 machines (Coffman-Hofri-"
      "Weiss family)";
  s.machines = 2;
  const std::size_t n = 5 + rng.below(2);  // 5..6 (exhaustive opt is n!)
  s.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.05, 0.5);
    const double b = a + rng.uniform(2.0, 12.0);
    const double pa = rng.uniform(0.5, 0.95);
    s.jobs.push_back({1.0, two_point_dist(a, pa, b)});
  }
  return s;
}

TreeScenario intree_scenario(std::size_t n) {
  const Rng master(1234);
  Rng tree_rng = master.stream(n);
  TreeScenario s;
  s.name = "intree-n" + std::to_string(n);
  s.description = "F8 random in-tree: Exp(1) tasks on 3 machines";
  s.tree = batch::random_in_tree(n, tree_rng);
  s.machines = 3;
  s.rate = 1.0;
  return s;
}

OnlineScenario scale_to_load(OnlineScenario s, double rho) {
  STOSCHED_REQUIRE(rho > 0.0, "target load must be > 0");
  const double base = s.load();
  STOSCHED_REQUIRE(base > 0.0, "scenario has zero load");
  s.arrival = s.arrival->scaled(rho / base);
  s.name = suffixed(s.name, "@rho=", rho);
  return s;
}

OnlineScenario with_burstiness(OnlineScenario s, double burstiness) {
  STOSCHED_REQUIRE(s.arrival != nullptr,
                   "online scenario needs an arrival process");
  s.arrival = bursty_arrivals(s.arrival->rate(), burstiness);
  s.name = suffixed(s.name, "@idc=", burstiness);
  return s;
}

OnlineScenario with_machines(OnlineScenario s, std::size_t m) {
  STOSCHED_REQUIRE(m >= 1, "need at least one machine");
  const double old_capacity = s.env.mix_capacity(s.types);
  std::vector<std::vector<double>> rows;
  rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    rows.push_back(s.env.speed[i % s.env.machines()]);
  s.env.speed = std::move(rows);
  // Keep the nominal per-capacity load unchanged under the new pool.
  s.arrival = s.arrival->scaled(s.env.mix_capacity(s.types) / old_capacity);
  s.name += "-m" + std::to_string(m);
  return s;
}

OnlineScenario with_size_scv(OnlineScenario s, double scv) {
  for (auto& t : s.types) t.size = with_mean_scv(t.size->mean(), scv);
  s.name = suffixed(s.name, "@sscv=", scv);
  return s;
}

}  // namespace stosched::experiment
