#include "experiment/adapters.hpp"

#include <algorithm>
#include <utility>

#include "batch/parallel_machines.hpp"
#include "batch/single_machine.hpp"
#include "util/check.hpp"
#include "util/contract.hpp"

namespace stosched::experiment {

namespace {

queueing::SimOptions arm_options(const QueueScenario& s,
                                 const QueuePolicy& policy) {
  queueing::SimOptions opt = s.options();
  opt.discipline = policy.discipline;
  opt.priority = policy.priority;
  return opt;
}

queueing::NetworkConfig arm_config(const NetworkScenario& s,
                                   const NetworkPolicy& policy) {
  queueing::NetworkConfig cfg = s.config;
  cfg.station_priority = policy.station_priority;
  cfg.validate();
  return cfg;
}

/// The merged, sorted sample grid of a fluid replication: the cost-integral
/// Riemann points plus the reported path points, with per-entry provenance.
struct FluidGrid {
  std::vector<double> times;
  std::vector<int> path_slot;  ///< metric offset of a path point, -1 = cost
  double t_end = 0.0;
  double dt = 0.0;  ///< cost Riemann step
};

FluidGrid fluid_grid(const FluidScenario& s) {
  STOSCHED_REQUIRE(s.scale > 0.0 && s.cost_samples >= 1,
                   "fluid scenario needs a scale and a cost grid");
  const double drain = s.reference_drain_time();
  FluidGrid g;
  g.t_end = s.t_end > 0.0 ? s.t_end : s.horizon_factor * drain * s.scale;
  STOSCHED_REQUIRE(g.t_end > 0.0, "fluid horizon must be positive");
  g.dt = g.t_end / static_cast<double>(s.cost_samples);
  const std::size_t nc = s.classes.size();
  std::vector<std::pair<double, int>> grid;
  grid.reserve(s.cost_samples + s.path_fractions.size());
  for (std::size_t i = 1; i <= s.cost_samples; ++i)
    grid.emplace_back(g.dt * static_cast<double>(i), -1);
  for (std::size_t i = 0; i < s.path_fractions.size(); ++i)
    grid.emplace_back(s.path_fractions[i] * drain * s.scale,
                      static_cast<int>(1 + i * nc));
  std::stable_sort(grid.begin(), grid.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  g.times.reserve(grid.size());
  g.path_slot.reserve(grid.size());
  for (const auto& [t, slot] : grid) {
    g.times.push_back(t);
    g.path_slot.push_back(slot);
  }
  return g;
}

void fluid_replication(const FluidScenario& s, const FluidGrid& grid,
                       const std::vector<std::size_t>& priority, Rng& rng,
                       std::span<double> out) {
  const std::size_t nc = s.classes.size();
  STOSCHED_REQUIRE(s.initial.size() == nc && priority.size() == nc,
                   "fluid scenario shape mismatch");
  std::vector<std::size_t> init(nc);
  for (std::size_t j = 0; j < nc; ++j)
    init[j] = static_cast<std::size_t>(s.scale * s.initial[j]);
  const auto path =
      queueing::simulate_backlog_path(s.classes, init, priority, grid.times,
                                      rng);
  double cost = 0.0;
  for (std::size_t i = 0; i < grid.times.size(); ++i) {
    if (grid.path_slot[i] < 0) {
      for (std::size_t j = 0; j < nc; ++j)
        cost += s.classes[j].cost * path[i][j] * grid.dt;
    } else {
      for (std::size_t j = 0; j < nc; ++j)
        out[static_cast<std::size_t>(grid.path_slot[i]) + j] =
            path[i][j] / s.scale;
    }
  }
  out[0] = cost / (s.scale * s.scale);  // fluid scaling of the cost integral
}

}  // namespace

std::vector<NetworkPolicy> lu_kumar_policies() {
  return {{"bad priority (2>3, 4>1)", {{3, 0}, {1, 2}}},
          {"FCFS", {}},
          {"safe priority (1>4, 3>2)", {{0, 3}, {2, 1}}}};
}

std::vector<NetworkPolicy> rybko_stolyar_policies() {
  // Station 0 serves classes {0, 3}, station 1 serves {1, 2}; the exit
  // classes (1 and 3) form the virtual station that self-starves under the
  // "bad" pair.
  return {{"exit priority (3>0, 1>2)", {{3, 0}, {1, 2}}},
          {"FCFS", {}},
          {"entry priority (0>3, 2>1)", {{0, 3}, {2, 1}}}};
}

std::vector<online::OnlinePolicyPtr> online_policy_arms() {
  return {online::greedy_wsept_policy(), online::min_increase_policy(),
          online::single_sample_policy(), online::random_assignment_policy()};
}

std::vector<NetworkPolicy> reentrant_policies(
    const queueing::NetworkConfig& config) {
  // Group each station's classes in buffer (= class index) order; FBFS is
  // that order, LBFS its reverse.
  std::vector<std::vector<std::size_t>> fbfs(config.num_stations);
  for (std::size_t c = 0; c < config.classes.size(); ++c)
    fbfs[config.classes[c].station].push_back(c);
  std::vector<std::vector<std::size_t>> lbfs = fbfs;
  for (auto& station : lbfs) std::reverse(station.begin(), station.end());
  return {{"LBFS", std::move(lbfs)}, {"FBFS", std::move(fbfs)}, {"FCFS", {}}};
}

std::size_t metric_count(const QueueScenario& s) {
  return queueing::mg1_metric_count(s.classes.size());
}

std::vector<std::string> metric_names(const QueueScenario& s) {
  return queueing::mg1_metric_names(s.classes.size());
}

std::size_t metric_count(const PollingScenario& s) {
  return queueing::polling_metric_count(s.classes.size());
}

std::vector<std::string> metric_names(const PollingScenario& s) {
  return queueing::polling_metric_names(s.classes.size());
}

std::size_t metric_count(const NetworkScenario&) {
  return queueing::network_metric_count();
}

std::vector<std::string> metric_names(const NetworkScenario&) {
  return queueing::network_metric_names();
}

std::size_t metric_count(const MmmScenario& s) {
  return queueing::mmm_metric_count(s.classes.size());
}

std::vector<std::string> metric_names(const MmmScenario& s) {
  return queueing::mmm_metric_names(s.classes.size());
}

std::size_t metric_count(const OnlineScenario&) {
  return online::online_metric_count();
}

std::vector<std::string> metric_names(const OnlineScenario&) {
  return online::online_metric_names();
}

std::size_t metric_count(const FluidScenario& s) {
  return 1 + s.path_fractions.size() * s.classes.size();
}

std::vector<std::string> metric_names(const FluidScenario& s) {
  std::vector<std::string> names{"cost_integral"};
  for (std::size_t i = 0; i < s.path_fractions.size(); ++i)
    for (std::size_t j = 0; j < s.classes.size(); ++j) {
      // Built piecewise: GCC 12's -Wrestrict trips on chained string
      // concatenation here.
      std::string n = "q";
      n += std::to_string(j);
      n += "_at_f";
      n += std::to_string(i);
      names.push_back(std::move(n));
    }
  return names;
}

void run_replication(const QueueScenario& s, const QueuePolicy& policy,
                     Rng& rng, std::span<double> out) {
  queueing::run_replication(s.classes, arm_options(s, policy), rng, out);
}

void run_replication(const PollingScenario& s, const PollingPolicy& policy,
                     Rng& rng, std::span<double> out) {
  queueing::run_replication(s.classes,
                            s.options(policy.discipline, policy.limit), rng,
                            out);
}

void run_replication(const RestlessScenario& s,
                     const restless::PriorityTable& priority, Rng& rng,
                     std::span<double> out) {
  restless::run_replication(s.instance(), priority, s.horizon, s.burnin, rng,
                            out);
}

void run_replication(const BatchScenario& s, const batch::Order& order,
                     Rng& rng, std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == 1, "batch replication reports one metric");
  // machines == 1 keeps the original single-machine draw sequence so
  // existing seeds reproduce bit-for-bit.
  out[0] = s.machines == 1
               ? batch::simulate_weighted_flowtime(s.jobs, order, rng)
               : batch::simulate_list_policy(s.jobs, order, s.machines, rng)
                     .weighted_flowtime;
}

void run_replication(const NetworkScenario& s, const NetworkPolicy& policy,
                     Rng& rng, std::span<double> out) {
  queueing::run_replication(arm_config(s, policy), s.horizon, s.samples, rng,
                            out);
}

void run_replication(const MmmScenario& s, const MmmPolicy& policy, Rng& rng,
                     std::span<double> out) {
  queueing::run_replication(s.classes, s.servers, policy.priority, s.horizon,
                            s.warmup, rng, out);
}

void run_replication(const FluidScenario& s,
                     const std::vector<std::size_t>& priority, Rng& rng,
                     std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == metric_count(s), "metric span size mismatch");
  fluid_replication(s, fluid_grid(s), priority, rng, out);
}

void run_replication(const TreeScenario& s, batch::TreePolicy policy,
                     Rng& rng, std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == 1, "tree replication reports one metric");
  out[0] =
      batch::simulate_tree_makespan(s.tree, s.machines, s.rate, policy, rng);
}

void run_replication(const OnlineScenario& s,
                     const online::OnlinePolicy& policy, Rng& rng,
                     std::span<double> out) {
  STOSCHED_REQUIRE(s.arrival != nullptr,
                   "online scenario needs an arrival process");
  online::run_online_replication(*s.arrival, s.types, s.env, s.horizon,
                                 s.bound, policy, rng, out);
}

EngineResult run_queue(const QueueScenario& s, const QueuePolicy& policy,
                       const EngineOptions& opt) {
  const queueing::SimOptions sim_opt = arm_options(s, policy);
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               queueing::run_replication(s.classes, sim_opt, rng, out);
             });
}

EngineResult run_polling(const PollingScenario& s, const PollingPolicy& policy,
                         const EngineOptions& opt) {
  const queueing::PollingOptions sim_opt =
      s.options(policy.discipline, policy.limit);
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               queueing::run_replication(s.classes, sim_opt, rng, out);
             });
}

EngineResult run_restless(const RestlessScenario& s,
                          const restless::PriorityTable& priority,
                          const EngineOptions& opt) {
  const restless::RestlessInstance inst = s.instance();
  return run(opt, 1, [&](std::size_t, Rng& rng, std::span<double> out) {
    restless::run_replication(inst, priority, s.horizon, s.burnin, rng, out);
  });
}

EngineResult run_batch(const BatchScenario& s, const batch::Order& order,
                       const EngineOptions& opt) {
  return run(opt, 1, [&](std::size_t, Rng& rng, std::span<double> out) {
    run_replication(s, order, rng, out);
  });
}

EngineResult run_network(const NetworkScenario& s, const NetworkPolicy& policy,
                         const EngineOptions& opt) {
  const queueing::NetworkConfig cfg = arm_config(s, policy);
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               queueing::run_replication(cfg, s.horizon, s.samples, rng, out);
             });
}

EngineResult run_mmm(const MmmScenario& s, const MmmPolicy& policy,
                     const EngineOptions& opt) {
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               run_replication(s, policy, rng, out);
             });
}

EngineResult run_fluid(const FluidScenario& s,
                       const std::vector<std::size_t>& priority,
                       const EngineOptions& opt) {
  const FluidGrid grid = fluid_grid(s);
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               fluid_replication(s, grid, priority, rng, out);
             });
}

EngineResult run_tree(const TreeScenario& s, batch::TreePolicy policy,
                      const EngineOptions& opt) {
  return run(opt, 1, [&](std::size_t, Rng& rng, std::span<double> out) {
    run_replication(s, policy, rng, out);
  });
}

EngineResult run_online(const OnlineScenario& s,
                        const online::OnlinePolicy& policy,
                        const EngineOptions& opt) {
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               run_replication(s, policy, rng, out);
             });
}

PairedResult compare_queue_policies(const QueueScenario& s,
                                    const std::vector<QueuePolicy>& arms,
                                    const EngineOptions& opt,
                                    Pairing pairing) {
  STOSCHED_EXPECTS(!arms.empty(), "paired comparison needs at least one arm");
  std::vector<queueing::SimOptions> sim_opts;
  sim_opts.reserve(arms.size());
  for (const auto& a : arms) sim_opts.push_back(arm_options(s, a));
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      queueing::run_replication(s.classes, sim_opts[k], rng,
                                                out);
                    });
}

PairedResult compare_polling_policies(const PollingScenario& s,
                                      const std::vector<PollingPolicy>& arms,
                                      const EngineOptions& opt,
                                      Pairing pairing) {
  std::vector<queueing::PollingOptions> sim_opts;
  sim_opts.reserve(arms.size());
  for (const auto& a : arms)
    sim_opts.push_back(s.options(a.discipline, a.limit));
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      queueing::run_replication(s.classes, sim_opts[k], rng,
                                                out);
                    });
}

PairedResult compare_restless_policies(
    const RestlessScenario& s,
    const std::vector<restless::PriorityTable>& arms, const EngineOptions& opt,
    Pairing pairing) {
  const restless::RestlessInstance inst = s.instance();
  return run_paired(opt, arms.size(), 1, pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      restless::run_replication(inst, arms[k], s.horizon,
                                                s.burnin, rng, out);
                    });
}

PairedResult compare_network_policies(const NetworkScenario& s,
                                      const std::vector<NetworkPolicy>& arms,
                                      const EngineOptions& opt,
                                      Pairing pairing) {
  std::vector<queueing::NetworkConfig> cfgs;
  cfgs.reserve(arms.size());
  for (const auto& a : arms) cfgs.push_back(arm_config(s, a));
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      queueing::run_replication(cfgs[k], s.horizon, s.samples,
                                                rng, out);
                    });
}

PairedResult compare_mmm_policies(const MmmScenario& s,
                                  const std::vector<MmmPolicy>& arms,
                                  const EngineOptions& opt, Pairing pairing) {
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      run_replication(s, arms[k], rng, out);
                    });
}

PairedResult compare_fluid_policies(
    const FluidScenario& s, const std::vector<std::vector<std::size_t>>& arms,
    const EngineOptions& opt, Pairing pairing) {
  const FluidGrid grid = fluid_grid(s);
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      fluid_replication(s, grid, arms[k], rng, out);
                    });
}

PairedResult compare_tree_policies(const TreeScenario& s,
                                   const std::vector<batch::TreePolicy>& arms,
                                   const EngineOptions& opt, Pairing pairing) {
  return run_paired(opt, arms.size(), 1, pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      run_replication(s, arms[k], rng, out);
                    });
}

PairedResult compare_online_policies(
    const OnlineScenario& s, const std::vector<online::OnlinePolicyPtr>& arms,
    const EngineOptions& opt, Pairing pairing) {
  STOSCHED_EXPECTS(!arms.empty(), "paired comparison needs at least one arm");
  for (const auto& a : arms)
    STOSCHED_REQUIRE(a != nullptr, "online policy arm must be non-null");
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      run_replication(s, *arms[k], rng, out);
                    });
}

}  // namespace stosched::experiment
