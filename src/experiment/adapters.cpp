#include "experiment/adapters.hpp"

#include "batch/single_machine.hpp"
#include "util/check.hpp"

namespace stosched::experiment {

namespace {

queueing::SimOptions arm_options(const QueueScenario& s,
                                 const QueuePolicy& policy) {
  queueing::SimOptions opt = s.options();
  opt.discipline = policy.discipline;
  opt.priority = policy.priority;
  return opt;
}

}  // namespace

std::size_t metric_count(const QueueScenario& s) {
  return queueing::mg1_metric_count(s.classes.size());
}

std::vector<std::string> metric_names(const QueueScenario& s) {
  return queueing::mg1_metric_names(s.classes.size());
}

std::size_t metric_count(const PollingScenario& s) {
  return queueing::polling_metric_count(s.classes.size());
}

std::vector<std::string> metric_names(const PollingScenario& s) {
  return queueing::polling_metric_names(s.classes.size());
}

void run_replication(const QueueScenario& s, const QueuePolicy& policy,
                     Rng& rng, std::span<double> out) {
  queueing::run_replication(s.classes, arm_options(s, policy), rng, out);
}

void run_replication(const PollingScenario& s, const PollingPolicy& policy,
                     Rng& rng, std::span<double> out) {
  queueing::run_replication(s.classes,
                            s.options(policy.discipline, policy.limit), rng,
                            out);
}

void run_replication(const RestlessScenario& s,
                     const restless::PriorityTable& priority, Rng& rng,
                     std::span<double> out) {
  restless::run_replication(s.instance(), priority, s.horizon, s.burnin, rng,
                            out);
}

void run_replication(const BatchScenario& s, const batch::Order& order,
                     Rng& rng, std::span<double> out) {
  STOSCHED_REQUIRE(out.size() == 1, "batch replication reports one metric");
  out[0] = batch::simulate_weighted_flowtime(s.jobs, order, rng);
}

EngineResult run_queue(const QueueScenario& s, const QueuePolicy& policy,
                       const EngineOptions& opt) {
  const queueing::SimOptions sim_opt = arm_options(s, policy);
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               queueing::run_replication(s.classes, sim_opt, rng, out);
             });
}

EngineResult run_polling(const PollingScenario& s, const PollingPolicy& policy,
                         const EngineOptions& opt) {
  const queueing::PollingOptions sim_opt =
      s.options(policy.discipline, policy.limit);
  return run(opt, metric_count(s),
             [&](std::size_t, Rng& rng, std::span<double> out) {
               queueing::run_replication(s.classes, sim_opt, rng, out);
             });
}

EngineResult run_restless(const RestlessScenario& s,
                          const restless::PriorityTable& priority,
                          const EngineOptions& opt) {
  const restless::RestlessInstance inst = s.instance();
  return run(opt, 1, [&](std::size_t, Rng& rng, std::span<double> out) {
    restless::run_replication(inst, priority, s.horizon, s.burnin, rng, out);
  });
}

EngineResult run_batch(const BatchScenario& s, const batch::Order& order,
                       const EngineOptions& opt) {
  return run(opt, 1, [&](std::size_t, Rng& rng, std::span<double> out) {
    out[0] = batch::simulate_weighted_flowtime(s.jobs, order, rng);
  });
}

PairedResult compare_queue_policies(const QueueScenario& s,
                                    const std::vector<QueuePolicy>& arms,
                                    const EngineOptions& opt,
                                    Pairing pairing) {
  std::vector<queueing::SimOptions> sim_opts;
  sim_opts.reserve(arms.size());
  for (const auto& a : arms) sim_opts.push_back(arm_options(s, a));
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      queueing::run_replication(s.classes, sim_opts[k], rng,
                                                out);
                    });
}

PairedResult compare_polling_policies(const PollingScenario& s,
                                      const std::vector<PollingPolicy>& arms,
                                      const EngineOptions& opt,
                                      Pairing pairing) {
  std::vector<queueing::PollingOptions> sim_opts;
  sim_opts.reserve(arms.size());
  for (const auto& a : arms)
    sim_opts.push_back(s.options(a.discipline, a.limit));
  return run_paired(opt, arms.size(), metric_count(s), pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      queueing::run_replication(s.classes, sim_opts[k], rng,
                                                out);
                    });
}

PairedResult compare_restless_policies(
    const RestlessScenario& s,
    const std::vector<restless::PriorityTable>& arms, const EngineOptions& opt,
    Pairing pairing) {
  const restless::RestlessInstance inst = s.instance();
  return run_paired(opt, arms.size(), 1, pairing,
                    [&](std::size_t, std::size_t k, Rng& rng,
                        std::span<double> out) {
                      restless::run_replication(inst, arms[k], s.horizon,
                                                s.burnin, rng, out);
                    });
}

}  // namespace stosched::experiment
