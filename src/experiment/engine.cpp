#include "experiment/engine.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace stosched::experiment {

unsigned engine_threads() noexcept {
#ifdef _OPENMP
  return static_cast<unsigned>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

namespace detail {

bool metric_precise(const RunningStat& s, const EngineOptions& opt) {
  if (s.count() < 2) return false;
  const double hw = s.ci_halfwidth(opt.alpha);
  const double mean = std::abs(s.mean());
  const double target =
      mean >= opt.abs_floor ? opt.rel_precision * mean : opt.rel_precision;
  return hw <= target;
}

bool precision_met(const std::vector<RunningStat>& stats,
                   const EngineOptions& opt) {
  if (opt.tracked.empty()) {
    for (const auto& s : stats)
      if (!metric_precise(s, opt)) return false;
    return true;
  }
  for (const std::size_t d : opt.tracked) {
    STOSCHED_REQUIRE(d < stats.size(), "tracked metric index out of range");
    if (!metric_precise(stats[d], opt)) return false;
  }
  return true;
}

bool paired_precision_met(const std::vector<std::vector<RunningStat>>& diff,
                          const EngineOptions& opt) {
  for (const auto& arm : diff)
    if (!precision_met(arm, opt)) return false;
  return true;
}

std::size_t cells_per_batch(std::size_t batch) {
  return std::max<std::size_t>(1, (batch + kCellSize - 1) / kCellSize);
}

}  // namespace detail

}  // namespace stosched::experiment
