#include "experiment/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/progress.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace stosched::experiment {

unsigned engine_threads() noexcept {
#ifdef _OPENMP
  return static_cast<unsigned>(std::max(1, omp_get_max_threads()));
#else
  return 1;
#endif
}

namespace detail {

bool metric_precise(const RunningStat& s, const EngineOptions& opt) {
  if (s.count() < 2) return false;
  const double hw = s.ci_halfwidth(opt.alpha);
  const double mean = std::abs(s.mean());
  const double target =
      mean >= opt.abs_floor ? opt.rel_precision * mean : opt.rel_precision;
  return hw <= target;
}

namespace {

// When the STOSCHED_PROGRESS sink is armed, every stopping check reports
// each tracked metric's live CI half-width — and keeps checking past the
// first imprecise metric so the line stream covers all of them. With the
// sink off, the early-exit fast path is untouched.
bool check_metric(const std::vector<RunningStat>& stats, std::size_t d,
                  const EngineOptions& opt) {
  const RunningStat& s = stats[d];
  const bool precise = metric_precise(s, opt);
  if (obs::progress_enabled())
    obs::progress_line(
        "ci", {{"metric", static_cast<double>(d)},
               {"n", static_cast<double>(s.count())},
               {"mean", s.count() > 0 ? s.mean() : 0.0},
               {"halfwidth", s.count() >= 2 ? s.ci_halfwidth(opt.alpha) : 0.0},
               {"target", opt.rel_precision},
               {"precise", precise ? 1.0 : 0.0}});
  return precise;
}

}  // namespace

bool precision_met(const std::vector<RunningStat>& stats,
                   const EngineOptions& opt) {
  const bool report_all = obs::progress_enabled();
  bool ok = true;
  if (opt.tracked.empty()) {
    for (std::size_t d = 0; d < stats.size(); ++d) {
      if (!check_metric(stats, d, opt)) {
        ok = false;
        if (!report_all) return false;
      }
    }
    return ok;
  }
  for (const std::size_t d : opt.tracked) {
    STOSCHED_REQUIRE(d < stats.size(), "tracked metric index out of range");
    if (!check_metric(stats, d, opt)) {
      ok = false;
      if (!report_all) return false;
    }
  }
  return ok;
}

bool paired_precision_met(const std::vector<std::vector<RunningStat>>& diff,
                          const EngineOptions& opt) {
  for (const auto& arm : diff)
    if (!precision_met(arm, opt)) return false;
  return true;
}

std::size_t cells_per_batch(std::size_t batch) {
  return std::max<std::size_t>(1, (batch + kCellSize - 1) / kCellSize);
}

}  // namespace detail

}  // namespace stosched::experiment
