// adapters.hpp — glue between scenarios, simulators and the engine.
//
// Each simulator family exposes a `run_replication(model, Rng&, out)` entry
// point in its own module; this layer pairs that with the scenario registry
// and a *policy arm* type, so an experiment reads as
//
//     auto res = run_queue(queue_scenario("t9-three-class"),
//                          {"c-mu", Discipline::kPriorityNonPreemptive, cmu},
//                          opts);
//     auto cmp = compare_queue_policies(scenario, {fcfs, cmu}, opts,
//                                       Pairing::kCommonRandomNumbers);
//
// The policy arm is deliberately separate from the scenario: a CRN
// comparison varies the arm while replaying the same workload randomness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "batch/job.hpp"
#include "experiment/engine.hpp"
#include "experiment/scenario.hpp"
#include "online/policies.hpp"
#include "online/simulate.hpp"
#include "restless/restless_sim.hpp"

namespace stosched::experiment {

/// One M/G/1 scheduling policy under comparison.
struct QueuePolicy {
  std::string name;
  queueing::Discipline discipline = queueing::Discipline::kFcfs;
  std::vector<std::size_t> priority;  ///< empty for FCFS
};

/// One polling discipline under comparison.
struct PollingPolicy {
  std::string name;
  queueing::PollingDiscipline discipline =
      queueing::PollingDiscipline::kExhaustive;
  std::size_t limit = 1;
};

/// One per-station priority assignment for a network scenario. Empty lists
/// mean FCFS at every station; non-empty lists must cover each station's
/// classes exactly (NetworkConfig::validate enforces it).
struct NetworkPolicy {
  std::string name;
  std::vector<std::vector<std::size_t>> station_priority;
};

/// One static priority order for an M/M/m scenario.
struct MmmPolicy {
  std::string name;
  std::vector<std::size_t> priority;
};

/// The named policy arms of the Lu–Kumar stability experiment, in bench F6
/// order: the destabilizing pair (arm 0), FCFS, and the safe first-stage
/// pair — the canonical bad/stable contrast on the "lu-kumar" scenario.
std::vector<NetworkPolicy> lu_kumar_policies();

/// The policy arms of the Rybko–Stolyar experiment: the destabilizing
/// exit-class priority pair (arm 0), FCFS, and the safe entry-class pair —
/// for the "rybko-stolyar" scenario.
std::vector<NetworkPolicy> rybko_stolyar_policies();

/// Buffer-order policy arms for a re-entrant line (single route, class
/// index = buffer position): LBFS (last buffer first served, arm 0), FBFS
/// (first buffer first), and FCFS. Derived generically from the config's
/// station/class layout, so any reentrant_line_network instance works.
std::vector<NetworkPolicy> reentrant_policies(
    const queueing::NetworkConfig& config);

/// The canonical online-scheduling arms, in bench F11 order: greedy WSEPT
/// (arm 0, the baseline paired differences are taken against),
/// MinIncrease, single-sample SEPT, and random assignment.
std::vector<online::OnlinePolicyPtr> online_policy_arms();

/// Metric layout of each scenario family (delegates to the simulator).
std::size_t metric_count(const QueueScenario& s);
std::vector<std::string> metric_names(const QueueScenario& s);
std::size_t metric_count(const PollingScenario& s);
std::vector<std::string> metric_names(const PollingScenario& s);
std::size_t metric_count(const NetworkScenario& s);
std::vector<std::string> metric_names(const NetworkScenario& s);
std::size_t metric_count(const MmmScenario& s);
std::vector<std::string> metric_names(const MmmScenario& s);
/// Fluid layout: [cost_integral, then per path fraction i, per class j:
/// scaled level q_j(t_i)/n].
std::size_t metric_count(const FluidScenario& s);
std::vector<std::string> metric_names(const FluidScenario& s);
/// Online layout: [ratio, weighted_completion, lower_bound, jobs].
std::size_t metric_count(const OnlineScenario& s);
std::vector<std::string> metric_names(const OnlineScenario& s);

/// Uniform replication entry points on scenario types.
void run_replication(const QueueScenario& s, const QueuePolicy& policy,
                     Rng& rng, std::span<double> out);
void run_replication(const PollingScenario& s, const PollingPolicy& policy,
                     Rng& rng, std::span<double> out);
/// Restless: single metric, the average per-epoch reward.
void run_replication(const RestlessScenario& s,
                     const restless::PriorityTable& priority, Rng& rng,
                     std::span<double> out);
/// Batch: single metric, the realized weighted flowtime of `order` (list
/// policy on s.machines machines; the exact single-machine path when
/// machines == 1).
void run_replication(const BatchScenario& s, const batch::Order& order,
                     Rng& rng, std::span<double> out);
void run_replication(const NetworkScenario& s, const NetworkPolicy& policy,
                     Rng& rng, std::span<double> out);
void run_replication(const MmmScenario& s, const MmmPolicy& policy, Rng& rng,
                     std::span<double> out);
/// Fluid: the policy arm is a priority order over the fluid classes.
void run_replication(const FluidScenario& s,
                     const std::vector<std::size_t>& priority, Rng& rng,
                     std::span<double> out);
/// Tree: single metric, the realized makespan under `policy`.
void run_replication(const TreeScenario& s, batch::TreePolicy policy,
                     Rng& rng, std::span<double> out);
void run_replication(const OnlineScenario& s,
                     const online::OnlinePolicy& policy, Rng& rng,
                     std::span<double> out);

/// Engine drivers: replications of one policy on one scenario.
EngineResult run_queue(const QueueScenario& s, const QueuePolicy& policy,
                       const EngineOptions& opt);
EngineResult run_polling(const PollingScenario& s, const PollingPolicy& policy,
                         const EngineOptions& opt);
EngineResult run_restless(const RestlessScenario& s,
                          const restless::PriorityTable& priority,
                          const EngineOptions& opt);
EngineResult run_batch(const BatchScenario& s, const batch::Order& order,
                       const EngineOptions& opt);
EngineResult run_network(const NetworkScenario& s, const NetworkPolicy& policy,
                         const EngineOptions& opt);
EngineResult run_mmm(const MmmScenario& s, const MmmPolicy& policy,
                     const EngineOptions& opt);
EngineResult run_fluid(const FluidScenario& s,
                       const std::vector<std::size_t>& priority,
                       const EngineOptions& opt);
EngineResult run_tree(const TreeScenario& s, batch::TreePolicy policy,
                      const EngineOptions& opt);
EngineResult run_online(const OnlineScenario& s,
                        const online::OnlinePolicy& policy,
                        const EngineOptions& opt);

/// Paired policy comparisons (arm 0 is the baseline the differences are
/// taken against).
PairedResult compare_queue_policies(const QueueScenario& s,
                                    const std::vector<QueuePolicy>& arms,
                                    const EngineOptions& opt, Pairing pairing);
PairedResult compare_polling_policies(const PollingScenario& s,
                                      const std::vector<PollingPolicy>& arms,
                                      const EngineOptions& opt,
                                      Pairing pairing);
PairedResult compare_restless_policies(
    const RestlessScenario& s,
    const std::vector<restless::PriorityTable>& arms, const EngineOptions& opt,
    Pairing pairing);
PairedResult compare_network_policies(const NetworkScenario& s,
                                      const std::vector<NetworkPolicy>& arms,
                                      const EngineOptions& opt,
                                      Pairing pairing);
PairedResult compare_mmm_policies(const MmmScenario& s,
                                  const std::vector<MmmPolicy>& arms,
                                  const EngineOptions& opt, Pairing pairing);
PairedResult compare_fluid_policies(
    const FluidScenario& s, const std::vector<std::vector<std::size_t>>& arms,
    const EngineOptions& opt, Pairing pairing);
PairedResult compare_tree_policies(const TreeScenario& s,
                                   const std::vector<batch::TreePolicy>& arms,
                                   const EngineOptions& opt, Pairing pairing);
PairedResult compare_online_policies(
    const OnlineScenario& s, const std::vector<online::OnlinePolicyPtr>& arms,
    const EngineOptions& opt, Pairing pairing);

}  // namespace stosched::experiment
