// adapters.hpp — glue between scenarios, simulators and the engine.
//
// Each simulator family exposes a `run_replication(model, Rng&, out)` entry
// point in its own module; this layer pairs that with the scenario registry
// and a *policy arm* type, so an experiment reads as
//
//     auto res = run_queue(queue_scenario("t9-three-class"),
//                          {"c-mu", Discipline::kPriorityNonPreemptive, cmu},
//                          opts);
//     auto cmp = compare_queue_policies(scenario, {fcfs, cmu}, opts,
//                                       Pairing::kCommonRandomNumbers);
//
// The policy arm is deliberately separate from the scenario: a CRN
// comparison varies the arm while replaying the same workload randomness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "batch/job.hpp"
#include "experiment/engine.hpp"
#include "experiment/scenario.hpp"
#include "restless/restless_sim.hpp"

namespace stosched::experiment {

/// One M/G/1 scheduling policy under comparison.
struct QueuePolicy {
  std::string name;
  queueing::Discipline discipline = queueing::Discipline::kFcfs;
  std::vector<std::size_t> priority;  ///< empty for FCFS
};

/// One polling discipline under comparison.
struct PollingPolicy {
  std::string name;
  queueing::PollingDiscipline discipline =
      queueing::PollingDiscipline::kExhaustive;
  std::size_t limit = 1;
};

/// Metric layout of each scenario family (delegates to the simulator).
std::size_t metric_count(const QueueScenario& s);
std::vector<std::string> metric_names(const QueueScenario& s);
std::size_t metric_count(const PollingScenario& s);
std::vector<std::string> metric_names(const PollingScenario& s);

/// Uniform replication entry points on scenario types.
void run_replication(const QueueScenario& s, const QueuePolicy& policy,
                     Rng& rng, std::span<double> out);
void run_replication(const PollingScenario& s, const PollingPolicy& policy,
                     Rng& rng, std::span<double> out);
/// Restless: single metric, the average per-epoch reward.
void run_replication(const RestlessScenario& s,
                     const restless::PriorityTable& priority, Rng& rng,
                     std::span<double> out);
/// Batch: single metric, the realized weighted flowtime of `order`.
void run_replication(const BatchScenario& s, const batch::Order& order,
                     Rng& rng, std::span<double> out);

/// Engine drivers: replications of one policy on one scenario.
EngineResult run_queue(const QueueScenario& s, const QueuePolicy& policy,
                       const EngineOptions& opt);
EngineResult run_polling(const PollingScenario& s, const PollingPolicy& policy,
                         const EngineOptions& opt);
EngineResult run_restless(const RestlessScenario& s,
                          const restless::PriorityTable& priority,
                          const EngineOptions& opt);
EngineResult run_batch(const BatchScenario& s, const batch::Order& order,
                       const EngineOptions& opt);

/// Paired policy comparisons (arm 0 is the baseline the differences are
/// taken against).
PairedResult compare_queue_policies(const QueueScenario& s,
                                    const std::vector<QueuePolicy>& arms,
                                    const EngineOptions& opt, Pairing pairing);
PairedResult compare_polling_policies(const PollingScenario& s,
                                      const std::vector<PollingPolicy>& arms,
                                      const EngineOptions& opt,
                                      Pairing pairing);
PairedResult compare_restless_policies(
    const RestlessScenario& s,
    const std::vector<restless::PriorityTable>& arms, const EngineOptions& opt,
    Pairing pairing);

}  // namespace stosched::experiment
