// engine.hpp — the unified replication engine of the experiment subsystem.
//
// Every simulator in the library answers one question per replication: "run
// the model once on this RNG stream and report a metric vector". The engine
// owns everything around that call, uniformly for all simulators:
//
//   * *Substreams*: replication r always draws from `Rng(seed).stream(r)`,
//     so an experiment is a pure function of (seed, replication count) —
//     independent of thread count, scheduling and batch boundaries.
//   * *Fan-out*: replications are grouped into fixed-size cells of
//     `kCellSize`; cells run concurrently under OpenMP (serially otherwise)
//     and are merged in cell order with the exact Chan–Golub–LeVeque
//     combination, so the aggregate is bit-identical for 1 or N threads.
//   * *Common random numbers* (`run_paired`): K policy arms replay the
//     *same* substream per replication, turning a policy comparison into a
//     paired-difference estimate whose variance drops by the (usually
//     large) common-variation term — see the CRN tests for the measured
//     factor on M/G/1 discipline comparisons.
//   * *Sequential stopping*: instead of guessing a replication count, run
//     batches until every tracked metric's (1-alpha) CI half-width falls
//     below `rel_precision * |mean|`, with a hard cap. Deterministic in
//     (options, body) because substreams are indexed, not consumed.
//
// The body parameter is a template, not a std::function: the hot loop
// inlines the replication call. (The former `util/parallel.hpp` shim over
// this engine is gone; run_fixed is the drop-in replacement.)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stosched::experiment {

/// Replications per merge cell. A cell is the unit of parallel work *and*
/// of deterministic merging: results never depend on how cells map onto
/// threads, only on the (fixed) cell boundaries. 16 is small enough that
/// even a 32-replication run of an expensive simulator fans out, and large
/// enough to amortize the per-cell accumulator over cheap bodies.
inline constexpr std::size_t kCellSize = 16;

/// Controls for a replication run. With `rel_precision == 0` the engine
/// runs exactly `max_replications` (a classical fixed-length design);
/// otherwise it adds `batch`-sized rounds until every metric's CI is tight
/// enough or the cap is hit.
struct EngineOptions {
  std::uint64_t seed = 1;
  std::size_t max_replications = 1024;  ///< hard cap (and fixed-run length)
  std::size_t min_replications = 64;    ///< no stopping check before this
  std::size_t batch = 256;              ///< replications per stopping check
  double rel_precision = 0.0;  ///< target: halfwidth <= rel * |mean|; 0 = off
  double alpha = 0.05;         ///< CI level for the stopping rule
  /// Metrics with |mean| < abs_floor are judged on absolute half-width
  /// (halfwidth <= rel_precision) instead — a relative target is
  /// meaningless at zero.
  double abs_floor = 1e-9;
  /// Metric dimensions the stopping rule watches (empty = all). Paired runs
  /// apply this to the difference statistics: typically the one or two
  /// metrics a comparison is about, not every bookkeeping column.
  std::vector<std::size_t> tracked;
};

/// Aggregated outcome of a replication run.
struct EngineResult {
  std::vector<RunningStat> metrics;  ///< one accumulator per dimension
  std::size_t replications = 0;
  bool converged = true;  ///< false only if the precision target was missed

  [[nodiscard]] Estimate estimate(std::size_t metric = 0,
                                  double alpha = 0.05) const {
    STOSCHED_REQUIRE(metric < metrics.size(), "metric index out of range");
    return make_estimate(metrics[metric], alpha);
  }
};

/// How `run_paired` feeds randomness to the K policy arms.
enum class Pairing {
  kCommonRandomNumbers,  ///< all arms replay replication r's substream
  kIndependentStreams,   ///< every (replication, arm) gets its own substream
};

/// Outcome of a K-arm comparison: per-arm metric statistics plus the
/// paired-difference statistics of every arm against arm 0.
struct PairedResult {
  std::vector<std::vector<RunningStat>> arm;   ///< [k][metric]
  std::vector<std::vector<RunningStat>> diff;  ///< [k-1][metric]: arm k − arm 0
  std::size_t replications = 0;
  bool converged = true;
};

/// Worker threads the engine fans out over (1 without OpenMP).
unsigned engine_threads() noexcept;

namespace detail {

/// True iff one accumulator meets the precision target of `opt`.
bool metric_precise(const RunningStat& s, const EngineOptions& opt);

/// True iff every tracked accumulator meets the precision target of `opt`.
bool precision_met(const std::vector<RunningStat>& stats,
                   const EngineOptions& opt);

/// Paired variant: every tracked dimension of every arm-vs-baseline
/// difference must be precise.
bool paired_precision_met(
    const std::vector<std::vector<RunningStat>>& diff,
    const EngineOptions& opt);

/// Round `batch` up to a whole number of cells (at least one).
std::size_t cells_per_batch(std::size_t batch);

/// Run `cell_body(c)` for c in [0, ncells), concurrently when OpenMP is
/// available. Each cell writes only its own slot, so no synchronization is
/// needed beyond the implicit barrier.
template <class CellBody>
void for_each_cell(std::size_t ncells, CellBody&& cell_body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
  for (long long c = 0; c < static_cast<long long>(ncells); ++c)
    cell_body(static_cast<std::size_t>(c));
#else
  for (std::size_t c = 0; c < ncells; ++c) cell_body(c);
#endif
}

/// The shared batching/cell/merge/stopping orchestration behind run() and
/// run_paired(). `cell_body(lo, hi, acc)` executes replications [lo, hi)
/// into a cell accumulator of `slots` stats; `merge_cell(acc)` folds a
/// finished cell into the caller's cumulative state (called in cell order —
/// that fixed left-fold is the determinism guarantee); `stop()` reports
/// whether the tracked statistics meet the precision target. Returns
/// (replications run, converged).
template <class CellBody, class Merge, class Stop>
std::pair<std::size_t, bool> drive(const EngineOptions& opt,
                                   std::size_t slots, CellBody&& cell_body,
                                   Merge&& merge_cell, Stop&& stop) {
  STOSCHED_REQUIRE(opt.max_replications > 0, "need at least one replication");
  STOSCHED_REQUIRE(opt.rel_precision >= 0.0, "rel_precision must be >= 0");
  const bool sequential = opt.rel_precision > 0.0;
  const std::size_t batch = sequential
                                ? cells_per_batch(opt.batch) * kCellSize
                                : opt.max_replications;
  std::size_t done = 0;
  bool converged = true;
  for (;;) {
    const std::size_t want = std::min(batch, opt.max_replications - done);
    const std::size_t ncells = (want + kCellSize - 1) / kCellSize;
    std::vector<std::vector<RunningStat>> cell(
        ncells, std::vector<RunningStat>(slots));
    for_each_cell(ncells, [&](std::size_t c) {
      STOSCHED_TRACE_SPAN("engine", "cell");
      const std::size_t lo = done + c * kCellSize;
      const std::size_t hi = std::min(lo + kCellSize, done + want);
      cell_body(lo, hi, cell[c]);
    });
    for (const auto& acc : cell) merge_cell(acc);
    done += want;
    if (obs::progress_enabled())
      obs::progress_line(
          "batch", {{"replications", static_cast<double>(done)},
                    {"cap", static_cast<double>(opt.max_replications)}});

    if (!sequential) break;
    if (done >= opt.min_replications && stop()) break;
    if (done >= opt.max_replications) {
      converged = false;
      break;
    }
  }
  return {done, converged};
}

}  // namespace detail

/// Run replications of `body(rep, rng, out)` where `out` is a zeroed span of
/// `dims` doubles holding the replication's metric vector. Deterministic in
/// (opt, body); thread count never changes the result.
template <class Body>
EngineResult run(const EngineOptions& opt, std::size_t dims, Body&& body) {
  STOSCHED_REQUIRE(dims > 0, "need at least one metric dimension");
  const Rng master(opt.seed);
  EngineResult res;
  res.metrics.assign(dims, RunningStat{});
  const auto [done, converged] = detail::drive(
      opt, dims,
      [&](std::size_t lo, std::size_t hi, std::vector<RunningStat>& acc) {
        std::vector<double> out(dims, 0.0);
        for (std::size_t r = lo; r < hi; ++r) {
          STOSCHED_TRACE_SPAN("engine", "replication");
          Rng rng = master.stream(r);
          std::fill(out.begin(), out.end(), 0.0);
          body(r, rng, std::span<double>(out));
          for (std::size_t d = 0; d < dims; ++d) acc[d].push(out[d]);
        }
      },
      [&](const std::vector<RunningStat>& acc) {
        for (std::size_t d = 0; d < dims; ++d) res.metrics[d].merge(acc[d]);
      },
      [&] { return detail::precision_met(res.metrics, opt); });
  res.replications = done;
  res.converged = converged;
  return res;
}

/// Fixed-length convenience: exactly `replications` runs, no stopping rule.
template <class Body>
EngineResult run_fixed(std::size_t replications, std::uint64_t seed,
                       std::size_t dims, Body&& body) {
  EngineOptions opt;
  opt.seed = seed;
  opt.max_replications = replications;
  opt.rel_precision = 0.0;
  return run(opt, dims, static_cast<Body&&>(body));
}

/// K-arm comparison of `body(rep, arm, rng, out)`. Under
/// `Pairing::kCommonRandomNumbers` every arm replays the same substream for
/// replication r (the CRN design); under `kIndependentStreams` each
/// (replication, arm) pair draws from its own substream. The stopping rule
/// tracks the *difference* metrics (arm k − arm 0) — those are what a
/// comparison wants tight — and the run is deterministic in (opt, body).
template <class Body>
PairedResult run_paired(const EngineOptions& opt, std::size_t arms,
                        std::size_t dims, Pairing pairing, Body&& body) {
  STOSCHED_REQUIRE(arms >= 2, "a paired comparison needs at least two arms");
  STOSCHED_REQUIRE(dims > 0, "need at least one metric dimension");
  const Rng master(opt.seed);
  PairedResult res;
  res.arm.assign(arms, std::vector<RunningStat>(dims));
  res.diff.assign(arms - 1, std::vector<RunningStat>(dims));

  // Flat per-cell accumulators: arms*dims arm stats then (arms-1)*dims
  // difference stats.
  const std::size_t slots = arms * dims + (arms - 1) * dims;
  const auto [done, converged] = detail::drive(
      opt, slots,
      [&](std::size_t lo, std::size_t hi, std::vector<RunningStat>& acc) {
        std::vector<double> out(dims, 0.0);
        std::vector<double> base(dims, 0.0);
        for (std::size_t r = lo; r < hi; ++r) {
          STOSCHED_TRACE_SPAN("engine", "replication");
          const Rng rep_stream = master.stream(r);
          for (std::size_t k = 0; k < arms; ++k) {
            STOSCHED_TRACE_SPAN("engine", "arm");
            Rng rng = pairing == Pairing::kCommonRandomNumbers
                          ? rep_stream
                          : master.stream(r * arms + k);
            std::fill(out.begin(), out.end(), 0.0);
            body(r, k, rng, std::span<double>(out));
            for (std::size_t d = 0; d < dims; ++d) {
              acc[k * dims + d].push(out[d]);
              if (k == 0)
                base[d] = out[d];
              else
                acc[arms * dims + (k - 1) * dims + d].push(out[d] - base[d]);
            }
          }
        }
      },
      [&](const std::vector<RunningStat>& acc) {
        for (std::size_t k = 0; k < arms; ++k)
          for (std::size_t d = 0; d < dims; ++d)
            res.arm[k][d].merge(acc[k * dims + d]);
        for (std::size_t k = 0; k + 1 < arms; ++k)
          for (std::size_t d = 0; d < dims; ++d)
            res.diff[k][d].merge(acc[arms * dims + k * dims + d]);
      },
      [&] { return detail::paired_precision_met(res.diff, opt); });
  res.replications = done;
  res.converged = converged;
  return res;
}

}  // namespace stosched::experiment
