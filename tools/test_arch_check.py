#!/usr/bin/env python3
"""Self-test for tools/arch_check.py (tier-1 ctest `arch_check_selftest`).

Two proof obligations, mirroring test_lint_stosched.py:
  * every rule FIRES on a deliberately-bad input (the committed fixture
    tree under tests/lint_fixtures/arch/ plus synthetic temp trees), so a
    regression that silently disables a rule fails here;
  * the real tree is CLEAN, including DOT freshness, so the manifest can
    never drift from the actual include graph unnoticed.
"""

from __future__ import annotations

import json
import tempfile
import unittest
from pathlib import Path

import arch_check

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_ROOT = REPO_ROOT / "tests" / "lint_fixtures" / "arch"


def write_tree(root: Path, manifest: dict, files: dict) -> None:
    (root / "tools").mkdir(parents=True, exist_ok=True)
    (root / "tools" / "arch_layers.json").write_text(
        json.dumps(manifest), encoding="utf-8")
    for rel, text in files.items():
        path = root / "src" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


def run_graph(root: Path, check_dot: bool = False) -> list:
    manifest = arch_check.load_manifest(root / "tools" / "arch_layers.json")
    dot = (root / "docs" / "arch.dot") if check_dot else None
    return arch_check.check_graph(root, manifest, dot)


def rules_of(violations) -> set:
    return {v.rule for v in violations}


class FixtureTreeFires(unittest.TestCase):
    """The committed fixture's upward include trips both edge rules."""

    def test_back_edge_and_undeclared_edge_fire(self):
        manifest = arch_check.load_manifest(FIXTURE_ROOT / "arch_layers.json")
        violations = arch_check.check_graph(FIXTURE_ROOT, manifest, None)
        rules = rules_of(violations)
        self.assertIn("arch-undeclared-edge", rules)
        self.assertIn("arch-back-edge", rules)
        witnesses = [v.path for v in violations
                     if v.rule == "arch-back-edge"]
        self.assertEqual(witnesses, ["src/util/bad.hpp"])


class SyntheticTreesFire(unittest.TestCase):
    def test_stale_declared_edge_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["util"], ["des"]],
                        "edges": {"des": ["util"]}, "umbrella": []},
                       {"util/a.hpp": "#pragma once\n",
                        "des/b.hpp": "#pragma once\n"})  # edge gone
            violations = run_graph(root)
            self.assertEqual(rules_of(violations), {"arch-stale-edge"})

    def test_include_cycle_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["util"]], "edges": {}, "umbrella": []},
                       {"util/x.hpp": '#pragma once\n#include "util/y.hpp"\n',
                        "util/y.hpp": '#pragma once\n#include "util/x.hpp"\n'})
            violations = run_graph(root)
            self.assertEqual(rules_of(violations), {"arch-include-cycle"})

    def test_unknown_module_fires_both_directions(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["util"], ["ghost"]],
                        "edges": {}, "umbrella": []},
                       {"util/a.hpp": "#pragma once\n",
                        "rogue/r.hpp": "#pragma once\n"})
            violations = run_graph(root)
            self.assertEqual(rules_of(violations), {"arch-unknown-module"})
            self.assertEqual(len(violations), 2)  # rogue undeclared + ghost

    def test_same_layer_edge_is_a_back_edge(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["a", "b"]],
                        "edges": {"a": ["b"]}, "umbrella": []},
                       {"a/a.hpp": '#pragma once\n#include "b/b.hpp"\n',
                        "b/b.hpp": "#pragma once\n"})
            violations = run_graph(root)
            self.assertEqual(rules_of(violations), {"arch-back-edge"})

    def test_umbrella_header_is_exempt(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["util"], ["core"]],
                        "edges": {}, "umbrella": ["core/all.hpp"]},
                       {"util/a.hpp": "#pragma once\n",
                        "core/all.hpp":
                            '#pragma once\n#include "util/a.hpp"\n'})
            self.assertEqual(run_graph(root), [])

    def test_dot_staleness_fires_and_write_repairs(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["util"], ["des"]],
                        "edges": {"des": ["util"]}, "umbrella": []},
                       {"util/a.hpp": "#pragma once\n",
                        "des/b.hpp":
                            '#pragma once\n#include "util/a.hpp"\n'})
            self.assertEqual(rules_of(run_graph(root, check_dot=True)),
                             {"arch-dot-stale"})
            self.assertEqual(arch_check.main(
                ["--root", str(root), "--write-dot"]), 0)
            self.assertEqual(run_graph(root, check_dot=True), [])


class HeaderSelfContainment(unittest.TestCase):
    def test_leaky_header_fires(self):
        if arch_check.find_compiler() is None:
            self.skipTest("no C++ compiler on PATH")
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root,
                       {"layers": [["util"]], "edges": {}, "umbrella": []},
                       {"util/leaky.hpp":
                            "#pragma once\n"
                            "inline std::size_t f() { return 0; }\n"})
            manifest = arch_check.load_manifest(
                root / "tools" / "arch_layers.json")
            violations = arch_check.check_headers(root, manifest, jobs=2)
            self.assertEqual(rules_of(violations),
                             {"arch-header-not-self-contained"})


class RealTreeIsClean(unittest.TestCase):
    def test_graph_matches_manifest_and_dot_is_fresh(self):
        self.assertEqual(run_graph(REPO_ROOT, check_dot=True), [])

    def test_manifest_is_strictly_layered(self):
        # The declared DAG itself must honor the layering, independently of
        # the tree: a manifest edit cannot smuggle in an upward allowance.
        manifest = arch_check.load_manifest(
            REPO_ROOT / "tools" / "arch_layers.json")
        layer_of = manifest["_layer_of"]
        for mod, deps in manifest["_edges"].items():
            for dep in deps:
                self.assertGreater(
                    layer_of[mod], layer_of[dep],
                    f"declared edge {mod} -> {dep} is not strictly downward")


if __name__ == "__main__":
    unittest.main()
