#!/usr/bin/env python3
"""arch_check.py -- architecture-DAG enforcement for libstosched.

The module layering of src/ is data, not folklore: tools/arch_layers.json
declares the layers (bottom-up) and every allowed cross-module #include
edge. This tool extracts the REAL include graph from the tree -- quoted
includes only, which are project-internal by repo convention -- and fails
when manifest and reality disagree in either direction:

  arch-unknown-module    a src/ module missing from the manifest (or a
                         declared module with no directory behind it)
  arch-undeclared-edge   a cross-module include the manifest does not allow,
                         even if it points to a lower layer
  arch-stale-edge        a declared edge no longer present in the tree (the
                         manifest must match the graph exactly, so deleted
                         dependencies cannot silently stay "allowed")
  arch-back-edge         an include that does not go to a strictly lower
                         layer (same-layer edges are back-edges too: they
                         are how cycles start)
  arch-include-cycle     a cycle in the file-level include graph (headers
                         including each other compile under #pragma once
                         but make the DAG a lie)
  arch-transitive        a module transitively reaching one the declared
                         DAG's closure does not allow (implied by edge
                         exactness; kept as a distinct belt-and-braces
                         check over the full transitive graph)
  arch-dot-stale         docs/arch.dot no longer matches the graph
                         (regenerate with --write-dot)

Umbrella headers (declared in the manifest) are exempt from edge
extraction: src/core/stosched.hpp exists to include everything.

Modes:
  arch_check.py [--root DIR]              run the graph checks + dot freshness
  arch_check.py --write-dot               regenerate docs/arch.dot
  arch_check.py --headers                 header self-containment: compile
                                          each public header alone with
                                          -fsyntax-only (needs a C++ compiler)

Stdlib-only; runs as the tier-1 ctests `arch_check` / `arch_check_selftest`.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)

SOURCE_SUFFIXES = (".hpp", ".cpp", ".h", ".cc")


class Violation:
    def __init__(self, rule: str, path: str, message: str):
        self.rule = rule
        self.path = path
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}: [{self.rule}] {self.message}"


def load_manifest(path: Path) -> dict:
    with open(path, encoding="utf-8") as f:
        manifest = json.load(f)
    layers = manifest["layers"]
    layer_of = {}
    for i, layer in enumerate(layers):
        for mod in layer:
            if mod in layer_of:
                raise ValueError(f"module {mod!r} listed in two layers")
            layer_of[mod] = i
    manifest["_layer_of"] = layer_of
    manifest["_edges"] = {m: set(deps) for m, deps in manifest["edges"].items()}
    manifest["_umbrella"] = set(manifest.get("umbrella", []))
    return manifest


def scan_includes(src: Path, umbrella: set) -> dict:
    """Map src-relative file path -> list of quoted include targets.

    Umbrella files are scanned (their own includes must still resolve for
    the self-containment mode) but tagged so edge extraction can skip them.
    """
    graph = {}
    for dirpath, _, files in os.walk(src):
        for name in sorted(files):
            if not name.endswith(SOURCE_SUFFIXES):
                continue
            path = Path(dirpath) / name
            rel = path.relative_to(src).as_posix()
            text = path.read_text(encoding="utf-8")
            graph[rel] = INCLUDE_RE.findall(text)
    return graph


def module_of(rel: str) -> str:
    return rel.split("/", 1)[0]


def module_edges(graph: dict, umbrella: set) -> dict:
    """Real module-level edge set: {module: {dep_module: [witness files]}}."""
    edges = {}
    for rel, includes in graph.items():
        if rel in umbrella:
            continue
        mod = module_of(rel)
        for inc in includes:
            dep = module_of(inc)
            if dep == mod:
                continue
            edges.setdefault(mod, {}).setdefault(dep, []).append(rel)
    return edges


def transitive_closure(edges: dict) -> dict:
    """{node: set of transitively reachable nodes} for a {node: iterable}."""
    closure = {}

    def reach(node, stack):
        if node in closure:
            return closure[node]
        if node in stack:  # cycle: handled by the cycle check, not here
            return set()
        stack.add(node)
        out = set()
        for dep in edges.get(node, ()):
            out.add(dep)
            out |= reach(dep, stack)
        stack.discard(node)
        closure[node] = out
        return out

    for node in list(edges):
        reach(node, set())
    return closure


def find_file_cycle(graph: dict) -> list | None:
    """One cycle in the file-level include graph, as a path, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in graph}
    stack = []

    def dfs(rel):
        color[rel] = GRAY
        stack.append(rel)
        for inc in graph.get(rel, ()):
            if inc not in graph:
                continue  # include of a file outside src/ (none today)
            if color[inc] == GRAY:
                return stack[stack.index(inc):] + [inc]
            if color[inc] == WHITE:
                cycle = dfs(inc)
                if cycle:
                    return cycle
        stack.pop()
        color[rel] = BLACK
        return None

    for rel in sorted(graph):
        if color[rel] == WHITE:
            cycle = dfs(rel)
            if cycle:
                return cycle
    return None


def render_dot(manifest: dict, real_edges: dict) -> str:
    """Deterministic DOT of the module DAG, layers as ranks (bottom-up)."""
    lines = [
        "// Generated by tools/arch_check.py --write-dot. Do not edit:",
        "// the ctest `arch_check` fails when this file goes stale.",
        "digraph stosched_arch {",
        "  rankdir=BT;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    for i, layer in enumerate(manifest["layers"]):
        members = " ".join(f'"{m}";' for m in sorted(layer))
        lines.append(f"  {{ rank=same; {members} }}  // layer {i}")
    for mod in sorted(real_edges):
        for dep in sorted(real_edges[mod]):
            lines.append(f'  "{mod}" -> "{dep}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def check_graph(root: Path, manifest: dict, dot_path: Path | None) -> list:
    src = root / "src"
    umbrella = manifest["_umbrella"]
    layer_of = manifest["_layer_of"]
    declared = manifest["_edges"]
    graph = scan_includes(src, umbrella)
    real = module_edges(graph, umbrella)
    violations = []

    real_modules = {module_of(rel) for rel in graph}
    for mod in sorted(real_modules - layer_of.keys()):
        violations.append(Violation(
            "arch-unknown-module", f"src/{mod}",
            "module has no layer in tools/arch_layers.json"))
    for mod in sorted(layer_of.keys() - real_modules):
        violations.append(Violation(
            "arch-unknown-module", "tools/arch_layers.json",
            f"declared module '{mod}' has no files under src/"))

    for mod in sorted(real):
        for dep in sorted(real[mod]):
            witness = f"src/{real[mod][dep][0]}"
            if dep not in declared.get(mod, set()):
                violations.append(Violation(
                    "arch-undeclared-edge", witness,
                    f"edge {mod} -> {dep} is not declared in the manifest"))
            if mod in layer_of and dep in layer_of and \
                    layer_of[mod] <= layer_of[dep]:
                violations.append(Violation(
                    "arch-back-edge", witness,
                    f"{mod} (layer {layer_of[mod]}) includes {dep} "
                    f"(layer {layer_of[dep]}): edges must point strictly "
                    "down the layering"))

    for mod in sorted(declared):
        for dep in sorted(declared[mod]):
            if dep not in real.get(mod, {}):
                violations.append(Violation(
                    "arch-stale-edge", "tools/arch_layers.json",
                    f"declared edge {mod} -> {dep} no longer exists in the "
                    "tree; remove it so the manifest matches reality"))

    cycle = find_file_cycle(graph)
    if cycle:
        violations.append(Violation(
            "arch-include-cycle", f"src/{cycle[0]}",
            "include cycle: " + " -> ".join(cycle)))

    declared_closure = transitive_closure(declared)
    real_closure = transitive_closure(
        {m: set(deps) for m, deps in real.items()})
    for mod in sorted(real_closure):
        extra = real_closure[mod] - declared_closure.get(mod, set())
        for dep in sorted(extra):
            violations.append(Violation(
                "arch-transitive", f"src/{mod}",
                f"{mod} transitively reaches {dep}, outside the declared "
                "DAG's closure"))

    if dot_path is not None:
        want = render_dot(manifest, real)
        have = dot_path.read_text(encoding="utf-8") if dot_path.exists() \
            else None
        if have != want:
            violations.append(Violation(
                "arch-dot-stale", str(dot_path.relative_to(root)),
                "module-graph DOT is stale; regenerate with "
                "tools/arch_check.py --write-dot"))
    return violations


def find_compiler() -> list | None:
    cxx = os.environ.get("CXX")
    candidates = ([cxx] if cxx else []) + ["g++", "clang++"]
    for c in candidates:
        path = shutil.which(c)
        if path:
            return [path]
    return None


def check_headers(root: Path, manifest: dict, jobs: int) -> list:
    """Header self-containment: each public header must compile alone.

    A header that leans on its includer's earlier includes works until
    someone includes it first; one-include translation units with
    -fsyntax-only make the property a gate instead of an accident.
    """
    compiler = find_compiler()
    if compiler is None:
        print("arch_check --headers: no C++ compiler found; skipping",
              file=sys.stderr)
        return []
    src = root / "src"
    headers = sorted(p.relative_to(src).as_posix()
                     for p in src.rglob("*.hpp"))
    violations = []

    def compile_one(header: str):
        with tempfile.TemporaryDirectory() as tmp:
            tu = Path(tmp) / "tu.cpp"
            tu.write_text(f'#include "{header}"\n', encoding="utf-8")
            cmd = compiler + ["-std=c++20", "-fsyntax-only",
                              "-I", str(src), str(tu)]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compiler error"
                return Violation(
                    "arch-header-not-self-contained", f"src/{header}",
                    f"does not compile as a one-include TU: {detail}")
        return None

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(compile_one, headers):
            if result is not None:
                violations.append(result)
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--manifest", type=Path, default=None,
                        help="layer manifest (default: ROOT/tools/"
                             "arch_layers.json)")
    parser.add_argument("--dot", type=Path, default=None,
                        help="DOT artifact path (default: ROOT/docs/arch.dot)")
    parser.add_argument("--no-dot-check", action="store_true",
                        help="skip the DOT freshness check")
    parser.add_argument("--write-dot", action="store_true",
                        help="regenerate the DOT artifact and exit")
    parser.add_argument("--headers", action="store_true",
                        help="run the header self-containment mode instead "
                             "of the graph checks")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 4)
    args = parser.parse_args(argv)

    root = args.root.resolve()
    manifest_path = args.manifest or root / "tools" / "arch_layers.json"
    manifest = load_manifest(manifest_path)
    dot_path = args.dot or root / "docs" / "arch.dot"

    if args.write_dot:
        graph = scan_includes(root / "src", manifest["_umbrella"])
        dot_path.parent.mkdir(parents=True, exist_ok=True)
        dot_path.write_text(
            render_dot(manifest, module_edges(graph, manifest["_umbrella"])),
            encoding="utf-8")
        print(f"wrote {dot_path}")
        return 0

    if args.headers:
        violations = check_headers(root, manifest, args.jobs)
    else:
        violations = check_graph(
            root, manifest, None if args.no_dot_check else dot_path)

    for v in violations:
        print(v)
    if violations:
        print(f"\narch_check: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
