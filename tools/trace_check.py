#!/usr/bin/env python3
"""trace_check.py — validate a Chrome trace_event JSON file.

The obs tracing layer (src/obs/trace.hpp, armed via -DSTOSCHED_TRACE=ON and
STOSCHED_TRACE_FILE=<path>) emits the JSON Array Format of the Chrome
trace_event spec so Perfetto / chrome://tracing can load it directly. The CI
trace-smoke job runs a bench with tracing armed and pushes the artifact
through this script, which fails loudly if the emitter ever drifts from the
spec:

  * the file parses as JSON and is either an array of events or an object
    with a "traceEvents" array;
  * every event carries a string "name", a known one-char "ph" phase, a
    finite non-negative numeric "ts" (microseconds), and integer "pid"/"tid";
  * complete events (ph "X") carry a finite non-negative "dur";
  * counter events (ph "C") carry an "args" object with numeric values;
  * instant events (ph "i") carry a scope "s" in {"g", "p", "t"} when present.

Usage:
  trace_check.py TRACE.json [--min-events N]

Exit 0 when valid (prints a one-line summary), 1 on any violation, 2 on a
missing/unreadable file. Stdlib only.
"""

import argparse
import json
import math
import sys

# Phases from the trace_event format doc; the obs emitter uses X, i and C,
# but a valid artifact may legitimately contain others (metadata "M" etc.).
KNOWN_PHASES = set("BEXiICsnftPNODMVvRabce(),")

INSTANT_SCOPES = {"g", "p", "t"}


def fail(msg):
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    return 1


def is_finite_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) \
        and math.isfinite(v)


def check_event(i, ev):
    """All violations in event #i (list of strings)."""
    errs = []
    if not isinstance(ev, dict):
        return [f"event {i}: not a JSON object"]
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        errs.append(f"event {i}: missing/empty string 'name'")
    ph = ev.get("ph")
    if not isinstance(ph, str) or len(ph) != 1 or ph not in KNOWN_PHASES:
        errs.append(f"event {i} ({name!r}): bad phase {ph!r}")
        ph = None
    ts = ev.get("ts")
    if not is_finite_number(ts) or ts < 0:
        errs.append(f"event {i} ({name!r}): 'ts' must be a finite "
                    f"non-negative number, got {ts!r}")
    for key in ("pid", "tid"):
        v = ev.get(key)
        if not isinstance(v, int) or isinstance(v, bool):
            errs.append(f"event {i} ({name!r}): '{key}' must be an integer, "
                        f"got {v!r}")
    if ph == "X":
        dur = ev.get("dur")
        if not is_finite_number(dur) or dur < 0:
            errs.append(f"event {i} ({name!r}): complete event needs a "
                        f"finite non-negative 'dur', got {dur!r}")
    if ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not args:
            errs.append(f"event {i} ({name!r}): counter event needs a "
                        f"non-empty 'args' object")
        else:
            for k, v in args.items():
                if not is_finite_number(v):
                    errs.append(f"event {i} ({name!r}): counter series "
                                f"{k!r} must be numeric, got {v!r}")
    if ph == "i" and "s" in ev and ev["s"] not in INSTANT_SCOPES:
        errs.append(f"event {i} ({name!r}): instant scope 's' must be one "
                    f"of g/p/t, got {ev['s']!r}")
    return errs


def check_trace(doc, min_events):
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["object form must carry a 'traceEvents' array"]
    elif isinstance(doc, list):
        events = doc
    else:
        return ["top level must be an array or an object with 'traceEvents'"]

    errs = []
    phases = {}
    tids = set()
    for i, ev in enumerate(events):
        errs.extend(check_event(i, ev))
        if isinstance(ev, dict):
            phases[ev.get("ph")] = phases.get(ev.get("ph"), 0) + 1
            tids.add(ev.get("tid"))
    if len(events) < min_events:
        errs.append(f"expected at least {min_events} events, got "
                    f"{len(events)}")
    if not errs:
        counts = ", ".join(f"{p}:{c}" for p, c in sorted(phases.items()))
        print(f"trace_check: OK — {len(events)} events "
              f"({counts or 'empty'}) across {len(tids)} thread lane(s)")
    return errs


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument("--min-events", type=int, default=1,
                    help="fail unless the trace has at least N events "
                         "(default 1; 0 accepts an empty trace)")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"trace_check: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    errs = check_trace(doc, args.min_events)
    for e in errs:
        print(f"trace_check: {e}", file=sys.stderr)
    return 1 if errs else 0


if __name__ == "__main__":
    sys.exit(main())
