#!/usr/bin/env python3
"""Accumulate STOSCHED_BENCH_JSON results into a cross-commit history file.

`bench_compare.py` diffs exactly two commits; this tool gives the bench
trajectory *depth*: every run appends one JSON line per bench to a
history file (bench/history.jsonl by convention, carried forward by the CI
artifact), so drift is visible over any window, not just one commit back.

Each line is a compact summary of one (commit, bench) pair:

  {"commit": ..., "bench": ..., "wall_seconds": ..., "passed": ...,
   "arrival": {...}, "verdicts": {what: pass, ...},
   "wait_p50": ..., "wait_p99": ..., "sojourn_p99": ...,   (obs tails;
   None for rows written before the observability layer existed)
   "metrics": {column: [numeric cells in row order], ...}}

Only numeric cells are kept (label columns are dropped), so a metric's
trajectory across commits is `[line["metrics"][col] for line in lines]`.
Appending is idempotent per (commit, bench): re-running on the same commit
replaces nothing and adds nothing.

Usage:
  bench_history.py --history bench/history.jsonl --commit SHA BENCH_*.json...
  bench_history.py --history bench/history.jsonl --summary [--tail N]

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import os
import sys


def load_bench(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("bench", "columns", "rows", "verdicts"):
        if key not in doc:
            raise SystemExit(f"{path}: not a STOSCHED_BENCH_JSON file "
                             f"(missing '{key}')")
    return doc


def load_history(path):
    if not os.path.exists(path):
        return []
    lines = []
    with open(path, "r", encoding="utf-8") as f:
        for i, raw in enumerate(f):
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{i + 1}: bad history line: {e}")
    return lines


def summarize(doc, commit):
    """One history line: numeric columns only, keyed by column name."""
    metrics = {}
    for c, col in enumerate(doc["columns"]):
        values = []
        numeric = False
        for row in doc["rows"]:
            cell = row[c] if c < len(row) else None
            if isinstance(cell, (int, float)) and not isinstance(cell, bool):
                values.append(cell)
                numeric = True
            else:
                values.append(None)
        if numeric:
            metrics[col] = values
    return {
        "commit": commit,
        "bench": doc["bench"],
        "wall_seconds": doc.get("wall_seconds"),
        "events": doc.get("events"),
        "events_per_sec": doc.get("events_per_sec"),
        "lp_solves": doc.get("lp_solves"),
        "lp_iterations": doc.get("lp_iterations"),
        "lp_solves_per_sec": doc.get("lp_solves_per_sec"),
        # Deterministic latency-tail percentiles (obs histograms); absent
        # in pre-observability bench JSONs, recorded as None.
        "wait_count": doc.get("wait_count"),
        "wait_p50": doc.get("wait_p50"),
        "wait_p90": doc.get("wait_p90"),
        "wait_p99": doc.get("wait_p99"),
        "wait_p999": doc.get("wait_p999"),
        "sojourn_count": doc.get("sojourn_count"),
        "sojourn_p50": doc.get("sojourn_p50"),
        "sojourn_p90": doc.get("sojourn_p90"),
        "sojourn_p99": doc.get("sojourn_p99"),
        "sojourn_p999": doc.get("sojourn_p999"),
        "passed": doc.get("passed"),
        "arrival": doc.get("arrival"),
        "verdicts": {v["what"]: v["pass"] for v in doc["verdicts"]},
        "metrics": metrics,
    }


def append(history_path, commit, bench_files):
    lines = load_history(history_path)
    seen = {(ln.get("commit"), ln.get("bench")) for ln in lines}
    added = 0
    os.makedirs(os.path.dirname(history_path) or ".", exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as f:
        for path in bench_files:
            line = summarize(load_bench(path), commit)
            key = (line["commit"], line["bench"])
            if key in seen:
                print(f"  skip (already recorded): {line['bench']}")
                continue
            f.write(json.dumps(line, sort_keys=True) + "\n")
            seen.add(key)
            added += 1
            print(f"  append: {line['bench']} @ {commit[:12]}")
    total = len(lines) + added
    print(f"history: {history_path}: +{added} line(s), {total} total")


def show_summary(history_path, tail):
    lines = load_history(history_path)
    if not lines:
        print(f"history: {history_path}: empty")
        return
    by_bench = {}
    for ln in lines:
        by_bench.setdefault(ln.get("bench", "<unnamed>"), []).append(ln)
    for bench in sorted(by_bench):
        entries = by_bench[bench][-tail:]
        print(f"== {bench} ({len(by_bench[bench])} commit(s))")
        for ln in entries:
            commit = (ln.get("commit") or "?")[:12]
            wall = ln.get("wall_seconds")
            wall_s = f"{wall:.3f}s" if isinstance(wall, (int, float)) else "?"
            rate = ln.get("events_per_sec")
            rate_s = (f"{rate:,.0f} ev/s"
                      if isinstance(rate, (int, float)) and rate > 0
                      else "-")  # pre-counter history lines have no rate
            lp = ln.get("lp_solves_per_sec")
            lp_s = (f"{lp:,.0f} lp/s"
                    if isinstance(lp, (int, float)) and lp > 0
                    else "-")  # benches that solve no LPs have no rate
            p99 = ln.get("wait_p99")
            p99_s = (f"p99 {p99:.4g}"
                     if isinstance(p99, (int, float))
                     else "-")  # pre-observability lines have no tails
            verdicts = ln.get("verdicts", {})
            failed = [w for w, ok in verdicts.items() if not ok]
            status = "PASS" if not failed else f"FAIL({len(failed)})"
            print(f"  {commit}  wall {wall_s:>9}  {rate_s:>16}  {lp_s:>12}  "
                  f"{p99_s:>12}  {status}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench_files", nargs="*", help="BENCH_*.json files")
    ap.add_argument("--history", required=True,
                    help="history JSONL file to append to / read")
    ap.add_argument("--commit", help="commit SHA the bench files belong to")
    ap.add_argument("--summary", action="store_true",
                    help="print the per-bench trajectory instead of appending")
    ap.add_argument("--tail", type=int, default=10,
                    help="entries per bench in --summary (default 10)")
    args = ap.parse_args()

    if args.summary:
        show_summary(args.history, args.tail)
        return 0
    if not args.commit:
        ap.error("--commit is required when appending")
    if not args.bench_files:
        ap.error("no bench files to append")
    append(args.history, args.commit, args.bench_files)
    return 0


if __name__ == "__main__":
    sys.exit(main())
