#!/usr/bin/env python3
"""Self-test for tools/lint_stosched.py (runnable via ctest or directly).

Two halves:

  * every rule is proven *live* by copying its deliberately-bad fixture from
    tests/lint_fixtures/ into a minimal skeleton repo and asserting the rule
    fires there (plus a negative control where the rule's exemption or a
    conforming file must stay silent);
  * the real tree is asserted clean under all rules, so the ctest leg fails
    the moment drift is reintroduced.

Stdlib only. Run: python3 tools/test_lint_stosched.py
"""

import shutil
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
ROOT = TOOLS.parent
FIXTURES = ROOT / "tests" / "lint_fixtures"

sys.path.insert(0, str(TOOLS))
import lint_stosched as lint  # noqa: E402


class Skeleton:
    """A throwaway minimal repo layout to drop one fixture into."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_skel_")
        self.root = Path(self._tmp.name)
        (self.root / "src" / "core").mkdir(parents=True)
        (self.root / "src" / "util").mkdir(parents=True)
        (self.root / "bench").mkdir()
        (self.root / "tests").mkdir()
        (self.root / "CMakeLists.txt").write_text(
            "add_library(stosched STATIC\n  src/core/listed.cpp\n)\n",
            encoding="utf-8")
        (self.root / "src" / "core" / "listed.cpp").write_text(
            "int listed() { return 0; }\n", encoding="utf-8")
        (self.root / "src" / "core" / "stosched.hpp").write_text(
            '#pragma once\n#include "util/ok.hpp"\n', encoding="utf-8")
        (self.root / "src" / "util" / "ok.hpp").write_text(
            "#pragma once\n", encoding="utf-8")

    def add(self, fixture, dest):
        target = self.root / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / fixture, target)
        return target

    def cleanup(self):
        self._tmp.cleanup()


class RuleFiresOnFixture(unittest.TestCase):
    """Each rule must flag its bad fixture and stay silent on controls."""

    def setUp(self):
        self.skel = Skeleton()
        self.addCleanup(self.skel.cleanup)

    def run_rule(self, name):
        return lint.RULES[name](self.skel.root)

    def test_raw_random_fires(self):
        self.skel.add("raw_random.cpp", "src/dist/raw_random.cpp")
        found = self.run_rule("raw-random")
        self.assertTrue(found, "raw-random must fire on the fixture")
        self.assertTrue(all(v.rule == "raw-random" for v in found))
        # <random>, random_device, mt19937 and the distribution adaptor are
        # four distinct findings.
        self.assertGreaterEqual(len(found), 4)

    def test_raw_random_exempts_util(self):
        self.skel.add("raw_random.cpp", "src/util/raw_random.cpp")
        self.assertEqual(self.run_rule("raw-random"), [],
                         "src/util/ owns the RNG and is exempt")

    def test_substream_discipline_fires(self):
        self.skel.add("substream_discipline.cpp",
                      "src/queueing/substream_discipline.cpp")
        found = self.run_rule("substream-discipline")
        kinds = {v.message.split(" — ")[0] for v in found}
        self.assertGreaterEqual(len(found), 2,
                                "direct draw AND sample() must both fire")
        self.assertTrue(any("direct draw" in k for k in kinds))
        self.assertTrue(any("sampled from" in k for k in kinds))

    def test_substream_discipline_accepts_bootstrap(self):
        (self.skel.root / "src" / "queueing").mkdir(parents=True,
                                                    exist_ok=True)
        (self.skel.root / "src" / "queueing" / "good.cpp").write_text(
            "double simulate_good(Rng& rng) {\n"
            "  const Rng root(rng());\n"
            "  Rng clock_rng = root.stream(0);\n"
            "  return clock_rng.exponential(1.0);\n"
            "}\n", encoding="utf-8")
        self.assertEqual(self.run_rule("substream-discipline"), [],
                         "the bootstrap + named-substream pattern is the "
                         "conforming idiom")

    def test_umbrella_header_fires(self):
        self.skel.add("orphan_header.hpp", "src/queueing/orphan_header.hpp")
        found = self.run_rule("umbrella-header")
        self.assertEqual(len(found), 1)
        self.assertIn("orphan_header.hpp", found[0].path)

    def test_umbrella_header_accepts_reachable(self):
        self.assertEqual(self.run_rule("umbrella-header"), [],
                         "skeleton's util/ok.hpp is reachable")

    def test_bench_finish_fires(self):
        self.skel.add("bench_bad_exit.cpp", "bench/bench_bad_exit.cpp")
        found = self.run_rule("bench-finish")
        msgs = " ".join(v.message for v in found)
        self.assertGreaterEqual(len(found), 2,
                                "missing finish AND hand-rolled exit")
        self.assertIn("never calls", msgs)
        self.assertIn("all_checks_passed", msgs)

    def test_bench_finish_skips_micro_and_accepts_finish(self):
        self.skel.add("bench_bad_exit.cpp", "bench/bench_micro_bad.cpp")
        (self.skel.root / "bench" / "bench_good.cpp").write_text(
            "int main() { return stosched::bench::finish(table); }\n",
            encoding="utf-8")
        self.assertEqual(self.run_rule("bench-finish"), [],
                         "micro benches are exempt; finish() satisfies")

    def test_float_accumulator_fires(self):
        self.skel.add("float_accumulator.cpp", "src/core/float_acc.cpp")
        found = self.run_rule("float-accumulator")
        self.assertGreaterEqual(len(found), 3,
                                "every float token is a finding")

    def test_float_accumulator_ignores_comments(self):
        (self.skel.root / "src" / "core" / "cmt.cpp").write_text(
            "// clamp float noise at 0\nint x = 0;  /* float */\n",
            encoding="utf-8")
        self.assertEqual(self.run_rule("float-accumulator"), [],
                         "float in comments must not fire")

    def test_hot_loop_clock_fires(self):
        self.skel.add("hot_loop_clock.cpp", "src/des/hot_loop_clock.cpp")
        found = self.run_rule("hot-loop-clock")
        msgs = " ".join(v.message for v in found)
        self.assertGreaterEqual(
            len(found), 4, "<chrono>, std::chrono, clock_gettime, "
            "gettimeofday and *_clock are distinct findings")
        self.assertIn("<chrono>", msgs)
        self.assertIn("clock_gettime", msgs)

    def test_hot_loop_clock_fires_in_lp(self):
        # The simplex pivot loop is a hot path too: a clock read per pivot
        # would tax every interval-indexed-bound solve.
        self.skel.add("hot_loop_clock.cpp", "src/lp/hot_loop_clock.cpp")
        found = self.run_rule("hot-loop-clock")
        self.assertGreaterEqual(len(found), 4,
                                "src/lp is inside the scanned hot paths")

    def test_hot_loop_clock_allows_clocks_outside_hot_path(self):
        # util/timestat.cpp and bench_common.hpp legitimately read clocks;
        # the rule only polices src/des, src/queueing and src/lp.
        self.skel.add("hot_loop_clock.cpp", "src/util/timed.cpp")
        self.skel.add("hot_loop_clock.cpp", "bench/bench_timed.cpp")
        self.assertEqual(self.run_rule("hot-loop-clock"), [],
                         "clock reads outside the hot paths are fine")

    def test_cmake_coverage_fires(self):
        self.skel.add("unlisted_source.cpp", "src/core/unlisted_source.cpp")
        (self.skel.root / "tests" / "test_unlisted.cpp").write_text(
            "int main() {}\n", encoding="utf-8")
        found = self.run_rule("cmake-coverage")
        paths = " ".join(v.path for v in found)
        self.assertEqual(len(found), 2)
        self.assertIn("unlisted_source.cpp", paths)
        self.assertIn("test_unlisted.cpp", paths)

    def test_cmake_coverage_accepts_listed(self):
        self.assertEqual(self.run_rule("cmake-coverage"), [],
                         "the listed skeleton source is covered")

    def test_metrics_registry_fires(self):
        self.skel.add("atomic_telemetry.cpp", "src/des/atomic_telemetry.cpp")
        found = self.run_rule("metrics-registry")
        msgs = " ".join(v.message for v in found)
        self.assertGreaterEqual(len(found), 2,
                                "<atomic> include AND the std::atomic "
                                "declarations are distinct findings")
        self.assertTrue(all(v.rule == "metrics-registry" for v in found))
        self.assertIn("obs registry", msgs)

    def test_metrics_registry_exempts_obs_and_util(self):
        # The registry's own implementation and the low-level substrate are
        # where the atomics are SUPPOSED to live.
        self.skel.add("atomic_telemetry.cpp", "src/obs/metrics_impl.cpp")
        self.skel.add("atomic_telemetry.cpp", "src/util/substrate.cpp")
        self.assertEqual(self.run_rule("metrics-registry"), [],
                         "src/obs/ and src/util/ own the atomics")


class StripCodeLexer(unittest.TestCase):
    """strip_code must survive the literal forms that once blanked to EOF
    (every text rule in this file and in ast_audit.py reads its output)."""

    def test_digit_separators_open_no_char_literal(self):
        src = ("constexpr long kReps = 1'000'000'0;\n"
               "std::mt19937 gen;\n")
        self.assertEqual(lint.strip_code(src), src,
                         "an odd count of digit separators must not "
                         "swallow the rest of the file")

    def test_char_literals_still_blank(self):
        src = "char c = 'x'; char q = '\\''; int after = 1;\n"
        stripped = lint.strip_code(src)
        self.assertNotIn("x", stripped)
        self.assertIn("int after = 1;", stripped)

    def test_prefixed_raw_strings_blank_to_their_delimiter(self):
        src = ('const char* q = u8R"sql(SELECT "seed")sql";\n'
               'const wchar_t* w = LR"(raw \\" text)";\n'
               "std::mt19937 gen;\n")
        stripped = lint.strip_code(src)
        self.assertNotIn("SELECT", stripped)
        self.assertNotIn("raw", stripped)
        self.assertIn("std::mt19937 gen;", stripped)

    def test_identifier_glued_quote_is_an_ordinary_string(self):
        # FOO_R"(...)"  is the identifier FOO_R followed by a plain string:
        # the body must be blanked as a *non-raw* literal (the old lexer
        # raw-matched it, so an embedded )" changed where it stopped).
        src = 'FOO_R"(a)\\" tail)" int after = 2;\n'
        stripped = lint.strip_code(src)
        self.assertIn("FOO_R", stripped)
        self.assertNotIn("tail", stripped)
        self.assertIn("int after = 2;", stripped)

    def test_lexer_fixture_hides_nothing_from_raw_random(self):
        skel = Skeleton()
        try:
            skel.add("raw_string_strip.cpp", "src/core/tricky.cpp")
            found = lint.run_rules(skel.root, ["raw-random"])
            self.assertEqual(len(found), 2,
                             "<random> and the mt19937 sentinel behind the "
                             "lexer traps must both fire")
            # The engine sentinel sits BELOW every trap: seeing it proves
            # the lexer walked the separators and raw strings intact.
            self.assertTrue(any("random engine" in v.message and v.line > 24
                                for v in found))
        finally:
            skel.cleanup()


class RealTreeIsClean(unittest.TestCase):
    """The actual repository passes every rule (fixtures are excluded)."""

    def test_tree_clean(self):
        violations = lint.run_rules(ROOT)
        self.assertEqual(
            [str(v) for v in violations], [],
            "lint_stosched must be clean on the tree — fix the findings or "
            "the invariant they guard")

    def test_fixture_per_rule_exists(self):
        """Every rule keeps a fixture proving it can fire."""
        expected = {
            "raw-random": "raw_random.cpp",
            "substream-discipline": "substream_discipline.cpp",
            "umbrella-header": "orphan_header.hpp",
            "bench-finish": "bench_bad_exit.cpp",
            "float-accumulator": "float_accumulator.cpp",
            "hot-loop-clock": "hot_loop_clock.cpp",
            "cmake-coverage": "unlisted_source.cpp",
            "metrics-registry": "atomic_telemetry.cpp",
        }
        self.assertEqual(set(expected), set(lint.RULES),
                         "rules and fixture map must stay in sync")
        for fixture in expected.values():
            self.assertTrue((FIXTURES / fixture).is_file(),
                            f"missing fixture {fixture}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
