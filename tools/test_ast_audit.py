#!/usr/bin/env python3
"""Self-test for tools/ast_audit.py (tier-1 ctest `ast_audit_selftest`).

Proof obligations:
  * each rule FIRES on its committed fixture under tests/lint_fixtures/;
  * the rng-laundering fixture is PASSED by the regex rule
    `substream-discipline` in lint_stosched.py — the loophole (helpers that
    draw on a routed stream) is exactly what the AST-grade rule adds;
  * the allowed Rng uses (bootstrap, .stream(i), whole-argument forwarding)
    and the `// rng-audit: sink(reason)` escape hatch do NOT fire;
  * the real tree is clean.
"""

from __future__ import annotations

import unittest
from pathlib import Path

import ast_audit
import lint_stosched as lint
from test_lint_stosched import Skeleton

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def run_rng(text: str, rel: str = "src/bandit/fixture.cpp") -> list:
    return ast_audit.check_rng_laundering(rel, text,
                                          lint.strip_code(text))


def read_fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


class RngLaunderingFires(unittest.TestCase):
    def test_fixture_fires_on_the_helper_only(self):
        violations = run_rng(read_fixture("rng_laundering.cpp"))
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0].rule, "rng-laundering")
        self.assertIn(".uniform", violations[0].message)

    def test_regex_substream_rule_passes_the_same_fixture(self):
        """The loophole this rule closes: substream-discipline only audits
        simulate_* entry points, and the fixture's entry point forwards its
        stream whole — so the regex rule finds nothing."""
        skel = Skeleton()
        try:
            skel.add("rng_laundering.cpp", "src/bandit/helper.cpp")
            findings = lint.run_rules(skel.root, ["substream-discipline"])
            self.assertEqual(findings, [],
                             "regex rule unexpectedly caught the fixture — "
                             "update the loophole documentation")
        finally:
            skel.cleanup()

    def test_sink_annotation_with_reason_exempts(self):
        text = read_fixture("rng_laundering.cpp").replace(
            "double jitter_helper",
            "// rng-audit: sink(fixture sink test)\ndouble jitter_helper")
        self.assertEqual(run_rng(text), [])

    def test_sink_annotation_without_reason_does_not_exempt(self):
        text = read_fixture("rng_laundering.cpp").replace(
            "double jitter_helper",
            "// rng-audit: sink()\ndouble jitter_helper")
        self.assertEqual(len(run_rng(text)), 1)

    def test_allowed_uses_are_clean(self):
        text = """
            double route(Rng& rng, Rng& other) {
              const Rng root(rng());           // bootstrap
              Rng sub = root.stream(3);        // substream off the root
              Rng direct = other.stream(1);    // substream off the param
              return consume(sub, other) + direct.uniform(0.0, 1.0);
            }
        """
        self.assertEqual(run_rng(text), [])

    def test_raw_draw_and_alias_fire(self):
        text = """
            double bad_raw(Rng& rng) { return double(rng()) * 0.5; }
            void bad_alias(Rng& rng) { Rng& same = rng; use(same); }
        """
        rules = [v.message for v in run_rng(text)]
        self.assertEqual(len(rules), 2)
        self.assertIn("raw", rules[0])
        self.assertIn("aliased", rules[1])

    def test_constructor_init_list_is_audited(self):
        clean = """
            struct Sim {
              Rng arrivals;
              Sim(int n, Rng& r) : arrivals(r.stream(0)) { go(n); }
            };
        """
        self.assertEqual(run_rng(clean), [])
        dirty = """
            struct Sim {
              double x;
              Sim(Rng& r) : x(r.uniform(0.0, 1.0)) {}
            };
        """
        self.assertEqual(len(run_rng(dirty)), 1)

    def test_sampling_layer_is_out_of_scope(self):
        self.assertFalse(ast_audit.in_rng_scope("src/util/rng.hpp"))
        self.assertFalse(ast_audit.in_rng_scope("src/dist/distribution.cpp"))
        self.assertTrue(ast_audit.in_rng_scope("src/batch/job.cpp"))


class UnorderedIterationFires(unittest.TestCase):
    def test_fixture_fires_twice(self):
        text = read_fixture("unordered_iteration.cpp")
        violations = ast_audit.check_unordered_iteration(
            "src/x/f.cpp", lint.strip_code(text))
        self.assertEqual([v.rule for v in violations],
                         ["unordered-iteration", "unordered-iteration"])
        messages = " | ".join(v.message for v in violations)
        self.assertIn("range-for", messages)
        self.assertIn("pointer-keyed", messages)

    def test_lookups_and_ordered_iteration_are_clean(self):
        text = """
            #include <map>
            #include <unordered_map>
            std::unordered_map<int, double> memo_a, memo_b;
            double ok(int k) {
              const auto it = memo_a.find(k);      // lookup: fine
              if (it != memo_a.end()) return it->second;
              std::map<int, double> ordered;
              double t = 0.0;
              for (const auto& kv : ordered) t += kv.second;  // fine
              return t;
            }
        """
        self.assertEqual(ast_audit.check_unordered_iteration(
            "src/x/f.cpp", lint.strip_code(text)), [])

    def test_multi_declarator_iteration_fires(self):
        text = """
            #include <unordered_map>
            std::unordered_map<int, int> memo_a, memo_b;
            int walk() {
              int n = 0;
              for (auto it = memo_b.begin(); it != memo_b.end(); ++it) ++n;
              return n;
            }
        """
        violations = ast_audit.check_unordered_iteration(
            "src/x/f.cpp", lint.strip_code(text))
        self.assertEqual(len(violations), 1)
        self.assertIn("memo_b", violations[0].message)


class EntryContractFires(unittest.TestCase):
    def test_fixture_fires(self):
        text = read_fixture("contract_free_entry.cpp")
        violations = ast_audit.check_entry_contract(
            "src/queueing/f.cpp", lint.strip_code(text))
        self.assertEqual(len(violations), 1)
        self.assertIn("simulate_widget", violations[0].message)

    def test_each_validation_form_passes(self):
        for opening in ('STOSCHED_REQUIRE(n > 0, "n");',
                        'STOSCHED_EXPECTS(n > 0, "n");',
                        "config.validate();",
                        "validate_types(types);"):
            text = ("double simulate_widget(int n) {\n  " + opening +
                    "\n  return n * 2.0;\n}\n")
            self.assertEqual(ast_audit.check_entry_contract(
                "src/queueing/f.cpp", lint.strip_code(text)), [],
                f"{opening!r} should satisfy the entry contract")

    def test_validation_too_late_fires(self):
        stmts = "  x += 1.0;\n" * ast_audit.ENTRY_OPENING_STATEMENTS
        text = ("double run_widget(int n) {\n  double x = 0.0;\n" + stmts +
                '  STOSCHED_REQUIRE(n > 0, "n");\n  return x;\n}\n')
        violations = ast_audit.check_entry_contract(
            "src/batch/f.cpp", lint.strip_code(text))
        self.assertEqual(len(violations), 1)

    def test_declarations_and_calls_are_skipped(self):
        text = """
            double simulate_widget(int n);
            double driver(int n) {
              STOSCHED_REQUIRE(n > 0, "n");
              return simulate_widget(n) + run_widget(n);
            }
        """
        self.assertEqual(ast_audit.check_entry_contract(
            "src/online/f.cpp", lint.strip_code(text)), [])

    def test_scope_is_queueing_batch_online(self):
        self.assertTrue(ast_audit.in_entry_scope("src/queueing/mg1.cpp"))
        self.assertTrue(ast_audit.in_entry_scope("src/online/simulate.cpp"))
        self.assertFalse(ast_audit.in_entry_scope("src/experiment/x.cpp"))
        self.assertFalse(ast_audit.in_entry_scope("src/core/x.cpp"))


class RealTreeIsClean(unittest.TestCase):
    def test_textual_backend_is_clean(self):
        violations = ast_audit.run_textual(
            REPO_ROOT, ast_audit.source_files(REPO_ROOT))
        self.assertEqual(
            [str(v) for v in violations], [],
            "ast_audit must be clean on the tree — fix the findings or "
            "annotate a deliberate sink with its reason")

    def test_fixture_per_rule_exists(self):
        for fixture in ("rng_laundering.cpp", "unordered_iteration.cpp",
                        "contract_free_entry.cpp"):
            self.assertTrue((FIXTURES / fixture).is_file(),
                            f"missing fixture {fixture}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
