#!/usr/bin/env python3
"""ast_audit.py -- semantic determinism/RNG audits for libstosched.

Three rules that line-oriented regexes cannot express (they need function
extents, parameter identity and use-site context), enforced as the tier-1
ctest `ast_audit`:

  rng-laundering
      A function that RECEIVES an `Rng&` parameter is a router, not a
      consumer: the reproducibility contract (bit-identical results per
      (seed, stream), see util/rng.hpp) only survives if such functions
      either carve named substreams or hand the stream on whole. Allowed
      uses of an `Rng&` parameter `p`:
        * bootstrap a substream root:   [const] Rng root(p());
        * carve a named substream:      p.stream(i)
        * forward it whole:             f(..., p, ...)
      Everything else -- drawing via `p.uniform(...)`/`p.below(...)`/...,
      raw `p()` outside a bootstrap, aliasing -- is laundering: the draw
      count silently couples the caller's stream to this function's control
      flow, which is exactly how CRN pairings rot. Functions that ARE the
      draw site by design (instance generators, the random-assignment
      policy) declare it with an annotation carrying a mandatory reason:

          // rng-audit: sink(<why this function legitimately draws>)

      placed on or up to three lines above the definition. The regex rule
      `substream-discipline` in lint_stosched.py only inspects
      simulate_* entry points; this rule closes the helper-function
      loophole it leaves open (proved by tests/lint_fixtures/
      rng_laundering.cpp, which that regex passes and this rule flags).

  unordered-iteration
      Iterating a std::unordered_{map,set} (range-for or .begin()) makes
      results a function of libstdc++'s hash seed and growth history;
      pointer-keyed std::{map,set,multimap,multiset} sort by allocation
      address, which varies run to run. Both break the determinism-gate CI
      leg. Unordered lookups (find/emplace/operator[]) stay fine -- only
      iteration order is nondeterministic, so only iteration is flagged.

  entry-contract
      Public entry points (simulate_*/run_*/compare_* definitions under
      src/queueing, src/batch, src/online) must open with input
      validation: a STOSCHED_EXPECTS/STOSCHED_REQUIRE/STOSCHED_ASSERT
      contract or a validate()/validate_*() call within the first eight
      top-level statements. See src/util/contract.hpp for the
      REQUIRE-vs-EXPECTS division of labor.

Backends:
  --backend textual   (default) stdlib-only tokenizer + brace matching;
                      runs everywhere, gates the build as a ctest.
  --backend clang     drives `clang++ -Xclang -ast-dump=json` over a CMake
                      compile database (CMAKE_EXPORT_COMPILE_COMMANDS=ON)
                      for the two AST-shaped rules; entry-contract stays
                      textual even here because contracts are macros and
                      the AST only sees their expansion. Used by the
                      arch-and-ast CI job where clang-18 is installed.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_stosched  # noqa: E402  (shared strip_code / brace matching)

RNG_SCOPE_EXCLUDE = ("util", "dist")  # the sampling layer IS the draw site
ENTRY_SCOPE = ("queueing", "batch", "online")
ENTRY_NAME_RE = re.compile(r"\b((?:simulate|run|compare)_\w+)\s*\(")
ENTRY_OPENING_STATEMENTS = 8
ENTRY_VALIDATION_RE = re.compile(
    r"STOSCHED_EXPECTS|STOSCHED_REQUIRE|STOSCHED_ASSERT"
    r"|\.\s*validate\s*\(|\bvalidate_\w+\s*\(")
# The reason is mandatory (non-empty after the paren); it may continue onto
# the next comment line, so the closing paren is not required on this one.
SINK_RE = re.compile(r"//\s*rng-audit:\s*sink\(\s*([^\s)][^\n]*)")
UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<")
ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<")


class Violation:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_angle(text: str, start: int) -> int:
    """Index just past the `>` matching the `<` at start, or -1."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def prev_nonspace(text: str, i: int) -> str:
    while i >= 0 and text[i].isspace():
        i -= 1
    return text[i] if i >= 0 else ""


def next_nonspace(text: str, i: int) -> int:
    while i < len(text) and text[i].isspace():
        i += 1
    return i


# ---------------------------------------------------------------------------
# textual backend: function extraction
# ---------------------------------------------------------------------------

def rng_param_functions(stripped: str):
    """Yield (header_line, audit_start, audit_end, [param names]) for every
    function DEFINITION whose parameter list contains `Rng&`.

    The audit region covers a constructor's member-initializer list too
    (substream carving often happens there). Declarations, using-aliases
    and std::function types (no `{` after the parameter list) are skipped.
    """
    seen_parens = set()
    for m in re.finditer(r"\bRng\s*&", stripped):
        # Walk back to the parameter list's opening paren.
        depth = 0
        open_idx = -1
        for i in range(m.start() - 1, max(m.start() - 4000, -1), -1):
            c = stripped[i]
            if c == ")":
                depth += 1
            elif c == "(":
                if depth == 0:
                    open_idx = i
                    break
                depth -= 1
            elif c in ";}" and depth == 0:
                break  # statement boundary before any paren: not a param
        if open_idx < 0 or open_idx in seen_parens:
            continue
        seen_parens.add(open_idx)
        close_idx = match_paren(stripped, open_idx)
        if close_idx < 0:
            continue
        params = stripped[open_idx:close_idx + 1]
        names = [n for n in re.findall(r"\bRng\s*&\s*(\w*)", params) if n]
        if not names:
            continue

        # Skip qualifiers between `)` and the body / init list.
        i = close_idx + 1
        while True:
            i = next_nonspace(stripped, i)
            q = re.match(r"(?:const|noexcept|override|final|mutable)\b",
                         stripped[i:])
            if q:
                i += q.end()
                continue
            if stripped.startswith("->", i):  # trailing return type
                nxt = re.search(r"[{;]", stripped[i:])
                if not nxt or stripped[i + nxt.start()] != "{":
                    i = -1
                else:
                    i += nxt.start()
            break
        if i < 0 or i >= len(stripped):
            continue
        audit_start = None
        if stripped[i] == ":" and not stripped.startswith("::", i):
            audit_start = i  # constructor init list: audited too
            depth = 0
            while i < len(stripped):
                c = stripped[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                elif c == "{" and depth == 0:
                    break
                i += 1
        if i >= len(stripped) or stripped[i] != "{":
            continue
        body_close = match_brace(stripped, i)
        if body_close < 0:
            continue
        yield (line_of(stripped, open_idx),
               audit_start if audit_start is not None else i,
               body_close, names)


def audit_rng_uses(stripped: str, region_start: int, region_end: int,
                   name: str):
    """Yield (pos, message) for disallowed uses of parameter `name`."""
    region = stripped[region_start:region_end + 1]
    allowed = []
    for am in re.finditer(
            r"(?:const\s+)?Rng\s+\w+\s*\(\s*" + name + r"\s*\(\s*\)\s*\)",
            region):
        allowed.append((am.start(), am.end()))
    for am in re.finditer(r"\b" + name + r"\s*\.\s*stream\s*\(", region):
        allowed.append((am.start(), am.end()))

    for um in re.finditer(r"\b" + name + r"\b", region):
        if any(a <= um.start() < b for a, b in allowed):
            continue
        j = next_nonspace(region, um.end())
        nxt = region[j] if j < len(region) else ""
        if nxt == ".":
            k = next_nonspace(region, j + 1)
            member = re.match(r"\w+", region[k:])
            member_name = member.group(0) if member else "?"
            yield (region_start + um.start(),
                   f"'{name}' draws directly via .{member_name}(); carve a "
                   "substream or forward the stream whole "
                   "(// rng-audit: sink(reason) if this function is the "
                   "draw site by design)")
        elif nxt == "(":
            yield (region_start + um.start(),
                   f"raw '{name}()' outside an `Rng root({name}())` "
                   "bootstrap")
        else:
            prev = prev_nonspace(region, um.start() - 1)
            if prev in "(," and nxt in ",)":
                continue  # whole-argument forwarding
            yield (region_start + um.start(),
                   f"'{name}' aliased or used outside the substream "
                   "discipline (allowed: bootstrap, .stream(i), whole-"
                   "argument forwarding)")


def sink_lines(raw: str) -> set:
    lines = set()
    for i, text in enumerate(raw.splitlines(), start=1):
        m = SINK_RE.search(text)
        if m and m.group(1).strip():
            lines.add(i)
    return lines


def check_rng_laundering(rel: str, raw: str, stripped: str) -> list:
    sinks = sink_lines(raw)
    out = []
    for header_line, start, end, names in rng_param_functions(stripped):
        if any(s in sinks for s in range(header_line - 3, header_line + 1)):
            continue
        for name in names:
            for pos, msg in audit_rng_uses(stripped, start, end, name):
                out.append(Violation("rng-laundering", rel,
                                     line_of(stripped, pos), msg))
    return out


# ---------------------------------------------------------------------------
# textual backend: unordered iteration / pointer-keyed containers
# ---------------------------------------------------------------------------

def check_unordered_iteration(rel: str, stripped: str) -> list:
    out = []
    unordered_names = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        close = match_angle(stripped, m.end() - 1)
        if close < 0:
            continue
        # One or more declarators: `... memo_d, memo_r;`
        decl = re.match(r"\s*(\w+(?:\s*,\s*\w+)*)\s*[;={(]",
                        stripped[close:close + 200])
        if decl:
            for n in re.split(r"\s*,\s*", decl.group(1)):
                unordered_names.add(n)
    for name in sorted(unordered_names):
        for m in re.finditer(
                r"for\s*\([^;()]*:\s*" + name + r"\s*\)", stripped):
            out.append(Violation(
                "unordered-iteration", rel, line_of(stripped, m.start()),
                f"range-for over unordered container '{name}': iteration "
                "order depends on the hash seed and rehash history; use an "
                "ordered container or sort the keys first"))
        for m in re.finditer(r"\b" + name + r"\s*\.\s*c?begin\s*\(",
                             stripped):
            out.append(Violation(
                "unordered-iteration", rel, line_of(stripped, m.start()),
                f"iterator walk over unordered container '{name}': "
                "iteration order is not deterministic"))
    for m in ORDERED_DECL_RE.finditer(stripped):
        close = match_angle(stripped, m.end() - 1)
        if close < 0:
            continue
        args = stripped[m.end():close - 1]
        depth = 0
        key_end = len(args)
        for i, c in enumerate(args):
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
            elif c == "," and depth == 0:
                key_end = i
                break
        if "*" in args[:key_end]:
            out.append(Violation(
                "unordered-iteration", rel, line_of(stripped, m.start()),
                "pointer-keyed ordered container: iteration order is "
                "allocation-address order, which varies run to run; key by "
                "a stable id instead"))
    return out


# ---------------------------------------------------------------------------
# textual backend: entry contracts
# ---------------------------------------------------------------------------

def entry_opening(stripped: str, body_open: int) -> str:
    """The first ENTRY_OPENING_STATEMENTS top-level statements of a body."""
    depth_brace = 0
    depth_paren = 0
    statements = 0
    i = body_open + 1
    while i < len(stripped):
        c = stripped[i]
        if c == "{":
            depth_brace += 1
        elif c == "}":
            if depth_brace == 0:
                break
            depth_brace -= 1
        elif c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c == ";" and depth_brace == 0 and depth_paren == 0:
            statements += 1
            if statements >= ENTRY_OPENING_STATEMENTS:
                break
        i += 1
    return stripped[body_open + 1:i + 1]


def check_entry_contract(rel: str, stripped: str) -> list:
    out = []
    for m in ENTRY_NAME_RE.finditer(stripped):
        open_idx = m.end() - 1
        close_idx = match_paren(stripped, open_idx)
        if close_idx < 0:
            continue
        i = next_nonspace(stripped, close_idx + 1)
        while True:
            q = re.match(r"(?:const|noexcept)\b", stripped[i:])
            if not q:
                break
            i = next_nonspace(stripped, i + q.end())
        if i >= len(stripped) or stripped[i] != "{":
            continue  # declaration or call, not a definition
        opening = entry_opening(stripped, i)
        if not ENTRY_VALIDATION_RE.search(opening):
            out.append(Violation(
                "entry-contract", rel, line_of(stripped, m.start()),
                f"public entry '{m.group(1)}' must validate its inputs "
                f"within its first {ENTRY_OPENING_STATEMENTS} statements "
                "(STOSCHED_EXPECTS / STOSCHED_REQUIRE / a validate() "
                "call); see src/util/contract.hpp"))
    return out


# ---------------------------------------------------------------------------
# clang backend (CI): the two AST-shaped rules over a compile database
# ---------------------------------------------------------------------------

def find_clang():
    for c in ("clang++-18", "clang++", "clang-18", "clang"):
        path = shutil.which(c)
        if path:
            return path
    return None


def ast_nodes(node, parents):
    """Depth-first (node, parents) walk of a clang JSON AST."""
    yield node, parents
    for child in node.get("inner", ()) or ():
        if isinstance(child, dict):
            yield from ast_nodes(child, parents + [node])


def clang_ast(clang: str, entry: dict) -> dict:
    """Run one compile-db entry through -ast-dump=json."""
    args = [clang, "-x", "c++", "-fsyntax-only", "-Xclang",
            "-ast-dump=json"]
    it = iter(entry["command"].split() if "command" in entry
              else entry["arguments"])
    next(it, None)  # original compiler
    for tok in it:
        if tok.startswith(("-I", "-D", "-std=", "-isystem")):
            args.append(tok)
    args.append(entry["file"])
    proc = subprocess.run(args, capture_output=True, text=True,
                          cwd=entry.get("directory", "."))
    if proc.returncode != 0:
        raise RuntimeError(proc.stderr.strip().splitlines()[-1]
                           if proc.stderr.strip() else "clang failed")
    return json.loads(proc.stdout)


def is_rng_ref_type(qual: str) -> bool:
    return bool(re.search(r"\bRng\s*&$", qual or ""))


def clang_check_tu(tree: dict, rel: str, raw: str) -> list:
    """rng-laundering + unordered-iteration on one TU's JSON AST."""
    out = []
    sinks = sink_lines(raw)

    # Collect Rng& parameters of function definitions in this file.
    rng_params = {}  # decl id -> (name, fn line)
    for node, parents in ast_nodes(tree, []):
        if node.get("kind") != "ParmVarDecl":
            continue
        qual = (node.get("type") or {}).get("qualType", "")
        if not is_rng_ref_type(qual) or not node.get("name"):
            continue
        fn = next((p for p in reversed(parents)
                   if p.get("kind") in ("FunctionDecl", "CXXMethodDecl",
                                        "CXXConstructorDecl",
                                        "LambdaExpr")), None)
        if fn is None or not any(c.get("kind") == "CompoundStmt"
                                 for c in fn.get("inner", ())
                                 if isinstance(c, dict)):
            continue  # declaration only
        line = ((fn.get("loc") or {}).get("line")
                or (node.get("loc") or {}).get("line") or 0)
        rng_params[node["id"]] = (node["name"], line)

    for node, parents in ast_nodes(tree, []):
        kind = node.get("kind")
        if kind == "DeclRefExpr":
            ref = (node.get("referencedDecl") or {}).get("id")
            if ref not in rng_params:
                continue
            name, fn_line = rng_params[ref]
            if any(s in sinks for s in range(fn_line - 3, fn_line + 1)):
                continue
            line = ((node.get("loc") or {}).get("line") or fn_line)
            # Nearest structural ancestor, skipping implicit casts/parens.
            chain = [p for p in reversed(parents)
                     if p.get("kind") not in ("ImplicitCastExpr",
                                              "ParenExpr")]
            parent = chain[0] if chain else {}
            pk = parent.get("kind", "")
            if pk == "MemberExpr":
                member = parent.get("name", "?")
                if member != "stream":
                    out.append(Violation(
                        "rng-laundering", rel, line,
                        f"'{name}' draws directly via .{member}() "
                        "(clang backend)"))
            elif pk == "CXXOperatorCallExpr":
                # p(): allowed only when the result constructs an Rng.
                gp = chain[1] if len(chain) > 1 else {}
                ctor_type = ((gp.get("type") or {}).get("qualType", ""))
                if not (gp.get("kind") == "CXXConstructExpr"
                        and re.search(r"\bRng\b", ctor_type)):
                    out.append(Violation(
                        "rng-laundering", rel, line,
                        f"raw '{name}()' outside an Rng bootstrap "
                        "(clang backend)"))
            elif pk in ("CallExpr", "CXXConstructExpr",
                        "CXXMemberCallExpr"):
                pass  # whole-argument forwarding
            elif pk in ("VarDecl", "BinaryOperator", "InitListExpr"):
                out.append(Violation(
                    "rng-laundering", rel, line,
                    f"'{name}' aliased or stored (clang backend)"))
        elif kind == "CXXForRangeStmt":
            for child, _ in ast_nodes(node, []):
                qual = (child.get("type") or {}).get("qualType", "")
                if "unordered_map" in qual or "unordered_set" in qual:
                    line = ((node.get("range") or {}).get("begin") or
                            {}).get("line") or 0
                    out.append(Violation(
                        "unordered-iteration", rel, line,
                        "range-for over an unordered container "
                        "(clang backend)"))
                    break
        elif kind in ("VarDecl", "FieldDecl"):
            qual = (node.get("type") or {}).get("qualType", "")
            if re.search(r"\bstd::(?:multi)?(?:map|set)<[^,<]*\*", qual):
                line = ((node.get("loc") or {}).get("line") or 0)
                out.append(Violation(
                    "unordered-iteration", rel, line,
                    "pointer-keyed ordered container (clang backend)"))
    return out


def run_clang_backend(root: Path, db_path: Path, files: list) -> list:
    clang = find_clang()
    if clang is None:
        print("ast_audit --backend clang: no clang++ on PATH",
              file=sys.stderr)
        sys.exit(3)
    with open(db_path, encoding="utf-8") as f:
        db = {str(Path(e["file"]).resolve()): e for e in json.load(f)}
    out = []
    for rel in files:
        if not rel.endswith(".cpp"):
            continue
        entry = db.get(str((root / rel).resolve()))
        if entry is None:
            continue
        raw = (root / rel).read_text(encoding="utf-8")
        try:
            out.extend(clang_check_tu(clang_ast(clang, entry), rel, raw))
        except Exception as e:  # noqa: BLE001 -- report, don't crash CI
            out.append(Violation("ast-backend-error", rel, 0, str(e)))
    return out


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def source_files(root: Path) -> list:
    src = root / "src"
    return sorted(
        p.relative_to(root).as_posix()
        for p in list(src.rglob("*.cpp")) + list(src.rglob("*.hpp")))


def in_rng_scope(rel: str) -> bool:
    parts = rel.split("/")
    return len(parts) > 2 and parts[1] not in RNG_SCOPE_EXCLUDE


def in_entry_scope(rel: str) -> bool:
    parts = rel.split("/")
    return len(parts) > 2 and parts[1] in ENTRY_SCOPE


def run_textual(root: Path, files: list) -> list:
    out = []
    for rel in files:
        raw = (root / rel).read_text(encoding="utf-8")
        stripped = lint_stosched.strip_code(raw)
        if in_rng_scope(rel):
            out.extend(check_rng_laundering(rel, raw, stripped))
        out.extend(check_unordered_iteration(rel, stripped))
        if in_entry_scope(rel):
            out.extend(check_entry_contract(rel, stripped))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--backend", choices=("textual", "clang"),
                        default="textual")
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="compile_commands.json for --backend clang")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    files = source_files(root)

    if args.backend == "clang":
        db = args.compile_db or root / "build" / "compile_commands.json"
        violations = run_clang_backend(root, db, files)
        # entry-contract is macro-shaped: always checked textually.
        for rel in files:
            if in_entry_scope(rel):
                raw = (root / rel).read_text(encoding="utf-8")
                violations.extend(check_entry_contract(
                    rel, lint_stosched.strip_code(raw)))
    else:
        violations = run_textual(root, files)

    for v in violations:
        print(v)
    if violations:
        print(f"\nast_audit: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
