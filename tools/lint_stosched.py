#!/usr/bin/env python3
"""lint_stosched.py — repo-specific static lint for libstosched.

Enforces the invariants the codebase relies on but no compiler checks:

  raw-random            All randomness flows through util/Rng. Outside
                        src/util/, no <random>, std::mt19937/rand/srand/
                        random_device/default_random_engine and no std::*
                        distribution adaptors — their algorithms are
                        implementation-defined, which breaks the bit-identical
                        (seed, stream) replay every CRN test depends on.
  substream-discipline  Every simulate_* taking an Rng& must consume it only
                        by (a) one bootstrap draw `const Rng root(rng());`,
                        (b) deriving named substreams via .stream(i), or
                        (c) forwarding it whole to a callee. Direct draws on
                        the caller's stream entangle purposes and destroy the
                        common-random-numbers pairing of policy arms.
  umbrella-header       Every header under src/ is transitively reachable
                        from the core/stosched.hpp umbrella, so one include
                        really is the full public API.
  bench-finish          Every table-driven bench/bench_*.cpp exits through
                        bench_common::finish (and never re-implements the
                        exit via all_checks_passed), so STOSCHED_BENCH_JSON
                        mirrors and bench_history.jsonl stay complete.
  float-accumulator     No `float` in src/ or bench/: statistics paths
                        accumulate in double; single-precision accumulators
                        lose ~7 digits over 10^8-event runs.
  hot-loop-clock        No direct clock reads (<chrono>, clock_gettime,
                        gettimeofday, *_clock) in src/des, src/queueing or
                        src/lp: the DES event loop and the simplex pivot
                        loop are the multipliers on every experiment, so
                        timing enters them only through the compiled-out
                        STOSCHED_TIME_* macros (util/timestat).
  cmake-coverage        Every src/**/*.cpp is listed in the CMake library
                        sources and every tests/test_*.cpp in STOSCHED_TESTS
                        — an unlisted translation unit silently never builds.
  metrics-registry      No bespoke std::atomic telemetry in src/ outside
                        src/obs/ and src/util/: counters and histograms flow
                        through the obs registry so bench_common::finish can
                        export every instrument generically and the OMP 1-vs-8
                        determinism gate sees all of them.

Usage:
  lint_stosched.py [--root DIR] [--rules raw-random,bench-finish,...]
                   [--list-rules]

Exit code 0 when clean, 1 when any rule fires. Violations print as
`path:line: [rule] message`. Stdlib only — no third-party dependencies.
Deliberately-bad fixtures live in tests/lint_fixtures/ (excluded from tree
scans); tools/test_lint_stosched.py proves each rule fires on its fixture.
"""

import argparse
import re
import sys
from pathlib import Path


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# C++ text handling
# ---------------------------------------------------------------------------

# A literal can open with an encoding prefix (u8, u, U, L), an R for raw
# strings, or bare quotes. The prefix is only a prefix when the character
# before it is not part of an identifier — `FOO_R"(x)"` is the identifier
# FOO_R followed by an ordinary string, not a raw string.
_LIT_START_RE = re.compile(r'(?:u8|[uUL])?(R?)(["\'])')
_RAW_OPEN_RE = re.compile(r'(?:u8|[uUL])?R"([^\s()\\]{0,16})\(')


def strip_code(text):
    """Blank out comments and string/char literals, preserving newlines (and
    therefore line numbers and offsets). Handles //, /* */, "..." and '...'
    with escapes, encoding prefixes (u8/u/U/L), (prefixed) raw strings
    R"delim(...)delim", and digit separators (1'000'000 opens no char
    literal)."""
    out = list(text)
    i, n = 0, len(text)

    def blank(lo, hi):
        for k in range(lo, hi):
            if out[k] != "\n":
                out[k] = " "

    def skip_quoted(start, quote):
        """Blank a non-raw literal body whose opening quote is at `start`;
        return the index just past the closing quote."""
        j = start + 1
        while j < n and text[j] != quote:
            j += 2 if text[j] == "\\" else 1
        blank(start + 1, min(j, n))
        return min(j, n) + 1

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        prev = text[i - 1] if i else ""
        ident_prev = prev.isalnum() or prev == "_"
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif c in 'uULR\'"' and not ident_prev:
            m = _LIT_START_RE.match(text, i)
            if m is None:
                i += 1
                continue
            if m.group(1):
                raw = _RAW_OPEN_RE.match(text, i)
                if raw:
                    close = ")" + raw.group(1) + '"'
                    end = text.find(close, raw.end())
                    end = n if end == -1 else end + len(close)
                    blank(i, end)
                    i = end
                    continue
                # `R"` with a malformed delimiter: lex as an ordinary string.
            i = skip_quoted(m.end() - 1, m.group(2))
        elif c == '"':
            # Quote glued to an identifier (macro juxtaposition, operator""):
            # still an ordinary string boundary.
            i = skip_quoted(i, '"')
        elif c == "'":
            # Glued to an identifier/digit: a digit separator (1'000'000),
            # not the start of a char literal.
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def read(path):
    return path.read_text(encoding="utf-8")


def cxx_files(root, *subdirs, suffixes=(".cpp", ".hpp")):
    """All C++ files under the given subdirectories, sorted, excluding the
    deliberately-bad lint fixtures."""
    found = []
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in suffixes and "lint_fixtures" not in p.parts:
                found.append(p)
    return found


def rel(root, path):
    return path.relative_to(root).as_posix()


def match_paren(text, open_idx):
    """Index of the char after the parenthesis group opening at open_idx, or
    -1. `text` must already be comment/string-stripped."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(text, open_idx):
    """Index of the char after the brace block opening at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

RAW_RANDOM_PATTERNS = [
    (re.compile(r"#\s*include\s*<random>"), "includes <random>"),
    (re.compile(r"\bstd\s*::\s*(mt19937(?:_64)?|minstd_rand0?|ranlux\w*|"
                r"knuth_b|default_random_engine|random_device)\b"),
     "uses a std:: random engine"),
    (re.compile(r"\bstd\s*::\s*s?rand\b"), "uses std::rand/std::srand"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "uses C rand()/srand()"),
    (re.compile(r"(?<![\w:])random_device\b"), "uses random_device"),
    (re.compile(r"\b\w+_distribution\s*<"), "uses a <random> distribution "
                                            "adaptor"),
]


def rule_raw_random(root):
    """All randomness flows through util/Rng substreams."""
    out = []
    for path in cxx_files(root, "src", "bench", "tests", "examples"):
        if (root / "src" / "util") in path.parents:
            continue  # the Rng implementation itself
        code = strip_code(read(path))
        for pat, what in RAW_RANDOM_PATTERNS:
            for m in pat.finditer(code):
                out.append(Violation(
                    rel(root, path), line_of(code, m.start()), "raw-random",
                    f"{what} — all randomness must flow through util/Rng "
                    f"(deterministic (seed, stream) replay)"))
    return out


RNG_DRAW_METHODS = ("uniform_pos|uniform|exponential|normal|gamma|below|"
                    "bernoulli|categorical")


def rule_substream_discipline(root):
    """simulate_* must draw only via named per-purpose substreams."""
    out = []
    for path in cxx_files(root, "src"):
        code = strip_code(read(path))
        for m in re.finditer(r"\bsimulate_\w+\s*\(", code):
            popen = m.end() - 1
            pclose = match_paren(code, popen)
            if pclose == -1:
                continue
            after = code[pclose:]
            qual = re.match(r"\s*(?:const\s*)?(?:noexcept\s*)?\{", after)
            if not qual:
                continue  # declaration or call, not a definition
            pm = re.search(r"\bRng\s*&\s*(\w+)", code[popen:pclose])
            if not pm:
                continue
            p = pm.group(1)
            body_open = pclose + qual.end() - 1
            body_end = match_brace(code, body_open)
            if body_end == -1:
                continue
            body = code[body_open:body_end]
            # Mask the one allowed bootstrap draw `Rng root(rng());`.
            masked = re.sub(rf"\bRng\s+\w+\s*\(\s*{p}\s*\(\s*\)\s*\)",
                            lambda mo: " " * len(mo.group(0)), body)
            checks = [
                (rf"\b{p}\s*\.\s*(?:{RNG_DRAW_METHODS})\s*\(",
                 f"direct draw on the caller's Rng '{p}'"),
                (rf"\bsample\s*\(\s*{p}\s*\)",
                 f"distribution sampled from the caller's Rng '{p}'"),
                (rf"\b{p}\s*\(\s*\)",
                 f"raw invocation of the caller's Rng '{p}' outside the "
                 f"`const Rng root({p}());` bootstrap"),
            ]
            for pat, what in checks:
                for v in re.finditer(pat, masked):
                    out.append(Violation(
                        rel(root, path), line_of(code, body_open + v.start()),
                        "substream-discipline",
                        f"{what} — derive named per-purpose substreams via "
                        f".stream(i) so CRN arms replay identical workloads"))
    return out


def rule_umbrella_header(root):
    """Every src/**/*.hpp reachable from core/stosched.hpp."""
    src = root / "src"
    umbrella = src / "core" / "stosched.hpp"
    if not umbrella.is_file():
        return [Violation("src/core/stosched.hpp", 1, "umbrella-header",
                          "umbrella header missing")]
    reached = set()
    frontier = [umbrella]
    while frontier:
        hdr = frontier.pop()
        key = hdr.resolve()
        if key in reached:
            continue
        reached.add(key)
        code = strip_code(read(hdr))
        for m in re.finditer(r'#\s*include\s*"([^"]+)"', read(hdr)):
            # includes resolve against the src/ include dir or the including
            # file's own directory
            for cand in (src / m.group(1), hdr.parent / m.group(1)):
                if cand.is_file():
                    frontier.append(cand)
                    break
        del code  # includes parsed from raw text: they sit outside comments
    out = []
    for path in cxx_files(root, "src", suffixes=(".hpp",)):
        if path.resolve() not in reached:
            out.append(Violation(
                rel(root, path), 1, "umbrella-header",
                "header not reachable from core/stosched.hpp — add it to "
                "the umbrella so one include is the full public API"))
    return out


def rule_bench_finish(root):
    """Table-driven benches terminate via bench_common::finish."""
    out = []
    bench = root / "bench"
    if not bench.is_dir():
        return out
    for path in sorted(bench.glob("bench_*.cpp")):
        if path.name.startswith("bench_micro_"):
            continue  # Google Benchmark main, no table to mirror
        code = strip_code(read(path))
        if not re.search(r"\bfinish\s*\(", code):
            out.append(Violation(
                rel(root, path), 1, "bench-finish",
                "bench never calls bench_common::finish — its table is "
                "missing from STOSCHED_BENCH_JSON and bench_history.jsonl"))
        for m in re.finditer(r"\ball_checks_passed\s*\(", code):
            out.append(Violation(
                rel(root, path), line_of(code, m.start()), "bench-finish",
                "hand-rolled exit via all_checks_passed() — route the exit "
                "code through bench_common::finish instead"))
    return out


def rule_float_accumulator(root):
    """No single-precision arithmetic in src/ or bench/."""
    out = []
    for path in cxx_files(root, "src", "bench"):
        code = strip_code(read(path))
        for m in re.finditer(r"\bfloat\b", code):
            out.append(Violation(
                rel(root, path), line_of(code, m.start()),
                "float-accumulator",
                "`float` in a statistics path — accumulate in double "
                "(single precision loses ~7 digits over 10^8 events)"))
    return out


HOT_LOOP_CLOCK_PATTERNS = [
    (re.compile(r"#\s*include\s*<chrono>"), "includes <chrono>"),
    (re.compile(r"\bstd\s*::\s*chrono\b"), "uses std::chrono"),
    (re.compile(r"\bclock_gettime\b"), "calls clock_gettime"),
    (re.compile(r"\bgettimeofday\b"), "calls gettimeofday"),
    (re.compile(r"\b(?:steady|system|high_resolution)_clock\b"),
     "reads a wall clock"),
]


def rule_hot_loop_clock(root):
    """No direct clock reads in the hot paths (src/des, src/queueing,
    src/lp). Timing enters only through the util/timestat macros, which
    compile out unless STOSCHED_TIME_STATS is on — a stray
    steady_clock::now() in an event loop or a simplex pivot loop costs
    ~20ns per call in every build. Benches time LP solves from bench/,
    outside the scanned tree."""
    out = []
    for path in cxx_files(root, "src/des", "src/queueing", "src/lp"):
        code = strip_code(read(path))
        for pat, what in HOT_LOOP_CLOCK_PATTERNS:
            for m in pat.finditer(code):
                out.append(Violation(
                    rel(root, path), line_of(code, m.start()),
                    "hot-loop-clock",
                    f"{what} in a hot path — time only through the "
                    f"STOSCHED_TIME_* macros (compiled out by default)"))
    return out


def rule_cmake_coverage(root):
    """Every source file is wired into the build."""
    cmake = root / "CMakeLists.txt"
    if not cmake.is_file():
        return [Violation("CMakeLists.txt", 1, "cmake-coverage",
                          "CMakeLists.txt missing")]
    cmtext = read(cmake)
    out = []
    for path in cxx_files(root, "src", suffixes=(".cpp",)):
        if rel(root, path) not in cmtext:
            out.append(Violation(
                rel(root, path), 1, "cmake-coverage",
                "source file not listed in the CMake library sources — it "
                "silently never builds"))
    tests = root / "tests"
    if tests.is_dir():
        for path in sorted(tests.glob("test_*.cpp")):
            if path.stem not in cmtext:
                out.append(Violation(
                    rel(root, path), 1, "cmake-coverage",
                    "test file not listed in STOSCHED_TESTS — it silently "
                    "never builds or runs"))
    return out


METRICS_REGISTRY_PATTERNS = [
    (re.compile(r"#\s*include\s*<atomic>"), "includes <atomic>"),
    (re.compile(r"\bstd\s*::\s*atomic\b"), "declares a std::atomic"),
]


def rule_metrics_registry(root):
    """No bespoke std::atomic telemetry outside src/obs/ and src/util/."""
    out = []
    for path in cxx_files(root, "src"):
        parents = path.parents
        if (root / "src" / "obs") in parents or \
           (root / "src" / "util") in parents:
            continue  # the registry itself and the low-level substrate
        code = strip_code(read(path))
        for pat, what in METRICS_REGISTRY_PATTERNS:
            for m in pat.finditer(code):
                out.append(Violation(
                    rel(root, path), line_of(code, m.start()),
                    "metrics-registry",
                    f"{what} — telemetry goes through the obs registry "
                    f"(obs::counter/gauge/histogram), not ad-hoc atomics: "
                    f"the registry is what bench JSON export and the "
                    f"determinism gate see"))
    return out


RULES = {
    "raw-random": rule_raw_random,
    "substream-discipline": rule_substream_discipline,
    "umbrella-header": rule_umbrella_header,
    "bench-finish": rule_bench_finish,
    "float-accumulator": rule_float_accumulator,
    "hot-loop-clock": rule_hot_loop_clock,
    "cmake-coverage": rule_cmake_coverage,
    "metrics-registry": rule_metrics_registry,
}


def run_rules(root, names=None):
    violations = []
    for name in names or RULES:
        violations.extend(RULES[name](Path(root)))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                    help="repository root (default: the tools/ parent)")
    ap.add_argument("--rules", default="",
                    help="comma-separated subset of rules (default: all)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for name, fn in RULES.items():
            print(f"{name:22s} {fn.__doc__.splitlines()[0]}")
        return 0

    names = [r.strip() for r in args.rules.split(",") if r.strip()] or None
    for name in names or []:
        if name not in RULES:
            print(f"unknown rule: {name} (see --list-rules)", file=sys.stderr)
            return 2

    violations = run_rules(args.root, names)
    for v in violations:
        print(v)
    if violations:
        print(f"\n{len(violations)} violation(s) across "
              f"{len({v.rule for v in violations})} rule(s)")
        return 1
    print(f"lint_stosched: clean ({len(names or RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
