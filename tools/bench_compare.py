#!/usr/bin/env python3
"""Compare two STOSCHED_BENCH_JSON files (bench perf/result trajectories).

Each bench binary mirrors its table to JSON when STOSCHED_BENCH_JSON=<path>
is set: title, columns, per-row cells (numbers where the cell is a metric),
verdicts and wall-clock seconds. This tool diffs two such files — typically
the same bench at two commits — and reports:

  * verdict changes (PASS -> FAIL is a regression: exit code 1);
  * wall-clock drift beyond a threshold (reported, not fatal by default;
    --fail-on-slowdown makes it fatal);
  * numeric cell drift beyond a relative threshold, keyed by row label and
    column name;
  * mismatched run provenance (compiler, flags, build type, sanitizers,
    OMP thread count, scenario hash — the "provenance" block stamped by
    bench_common::finish): warn-only annotations flagging the comparison as
    apples-to-oranges. Files from before the block existed are tolerated.

Files carry an "arrival" block (process kind + burstiness) describing the
traffic configuration the bench ran under; two files with *different*
arrival blocks are refused outright (exit code 2) — a trajectory diff is
only meaningful against the same traffic. Files written before the block
existed are tolerated (treated as matching).

With --exact the tool instead enforces bit-identical results: any numeric
cell difference (at all), any verdict difference, or any row/column shape
difference is fatal (exit 1). Wall-clock is ignored — it is the one field
allowed to vary. This is the thread-count determinism gate: the same bench
run under OMP_NUM_THREADS=1 and =8 must produce byte-equal metrics, because
the engine's fixed 16-replication merge cells make results a pure function
of (seed, replication count). The deterministic-histogram tail keys
(wait_count/p50/p90/p99/p999, sojourn_*) join the gate when both files
carry them; the provenance block is excluded (thread counts legitimately
differ across the gate's two legs).

Usage:
  bench_compare.py OLD.json NEW.json [--rel-tol 0.05] [--time-tol 0.25]
                   [--fail-on-slowdown] [--exact]

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("bench", "columns", "rows", "verdicts"):
        if key not in doc:
            raise SystemExit(f"{path}: not a STOSCHED_BENCH_JSON file "
                             f"(missing '{key}')")
    return doc


def row_label(row):
    """First cell is the row's label column in every bench table."""
    return str(row[0]) if row else "<empty>"


def compare_verdicts(old, new):
    regressions, fixes, changes = [], [], []
    old_v = {v["what"]: v["pass"] for v in old["verdicts"]}
    new_v = {v["what"]: v["pass"] for v in new["verdicts"]}
    for what, passed in new_v.items():
        if what not in old_v:
            changes.append(f"new verdict: [{'PASS' if passed else 'FAIL'}] {what}")
        elif old_v[what] and not passed:
            regressions.append(f"PASS -> FAIL: {what}")
        elif not old_v[what] and passed:
            fixes.append(f"FAIL -> PASS: {what}")
    for what in old_v:
        if what not in new_v:
            changes.append(f"verdict removed: {what}")
    return regressions, fixes, changes


def compare_cells(old, new, rel_tol):
    """Yield (row label, column, old, new, rel drift) for drifted metrics."""
    cols = new["columns"]
    old_rows = {row_label(r): r for r in old["rows"]}
    for row in new["rows"]:
        label = row_label(row)
        if label not in old_rows:
            continue
        before = old_rows[label]
        for c, cell in enumerate(row):
            if c >= len(before) or c >= len(cols):
                break
            a, b = before[c], cell
            if not (isinstance(a, (int, float)) and isinstance(b, (int, float))):
                continue
            denom = max(abs(a), abs(b), 1e-12)
            drift = abs(b - a) / denom
            if drift > rel_tol:
                yield label, cols[c], a, b, drift


# Provenance facts whose mismatch makes a perf diff apples-to-oranges.
# Warn-only: the numbers are still shown, but every wall-clock / throughput
# line below them is suspect when one of these differs.
PROVENANCE_KEYS = ("compiler", "flags", "build_type", "sanitizers",
                   "contracts", "trace", "time_stats", "omp_max_threads")


def compare_provenance(old, new):
    """Warning lines for mismatched build/run provenance (empty when
    matching or when either file predates the provenance block)."""
    p_old, p_new = old.get("provenance"), new.get("provenance")
    if not isinstance(p_old, dict) or not isinstance(p_new, dict):
        return []
    warnings = []
    for key in PROVENANCE_KEYS:
        if key in p_old and key in p_new and p_old[key] != p_new[key]:
            warnings.append(f"{key}: {p_old[key]!r} != {p_new[key]!r}")
    if "scenario_hash" in p_old and "scenario_hash" in p_new \
            and p_old["scenario_hash"] != p_new["scenario_hash"]:
        warnings.append(f"scenario_hash: {p_old['scenario_hash']!r} != "
                        f"{p_new['scenario_hash']!r} (the bench table/"
                        f"traffic definition itself changed)")
    return warnings


def compare_exact(old, new):
    """Byte-equality over everything except wall_seconds; the list of
    mismatch descriptions is empty iff the two runs are bit-identical."""
    problems = []
    for key in ("bench", "columns", "arrival", "notes"):
        if old.get(key) != new.get(key):
            problems.append(f"'{key}' differs: {old.get(key)!r} "
                            f"!= {new.get(key)!r}")
    # The DES event count is deterministic and belongs in the gate — but
    # only when both files carry it (JSONs from before the counter existed
    # simply lack the key and must still compare clean).
    if "events" in old and "events" in new and old["events"] != new["events"]:
        problems.append(f"'events' differs: {old['events']!r} "
                        f"!= {new['events']!r}")
    # Same deal for LP effort: solve and simplex-iteration counts are pure
    # functions of the instances solved (relaxed-atomic sums commute, so
    # they are thread-schedule independent), hence part of the gate when
    # both files carry them. lp_solves_per_sec is wall-clock-like and stays
    # out of --exact.
    for key in ("lp_solves", "lp_iterations"):
        if key in old and key in new and old[key] != new[key]:
            problems.append(f"'{key}' differs: {old[key]!r} != {new[key]!r}")
    # Latency-tail percentiles come from the obs registry's deterministic
    # log2-bucketed histograms: bucket counts are commutative relaxed-atomic
    # sums and percentiles are bucket edges, so they are bit-identical across
    # thread schedules and belong in the gate (both-present, like the
    # counters above — old JSONs simply lack the keys). The "provenance"
    # block stays OUT of --exact: the determinism gate compares runs under
    # different OMP thread counts, so provenance legitimately differs.
    for prefix in ("wait", "sojourn"):
        for suffix in ("count", "p50", "p90", "p99", "p999"):
            key = f"{prefix}_{suffix}"
            if key in old and key in new and old[key] != new[key]:
                problems.append(f"'{key}' differs: {old[key]!r} "
                                f"!= {new[key]!r}")
    if old["verdicts"] != new["verdicts"]:
        problems.append(f"verdicts differ: {old['verdicts']!r} "
                        f"!= {new['verdicts']!r}")
    if len(old["rows"]) != len(new["rows"]):
        problems.append(f"row count differs: {len(old['rows'])} "
                        f"!= {len(new['rows'])}")
        return problems
    cols = new.get("columns", [])
    for i, (a_row, b_row) in enumerate(zip(old["rows"], new["rows"])):
        if len(a_row) != len(b_row):
            problems.append(f"row {i} ({row_label(a_row)}): cell count "
                            f"differs")
            continue
        for c, (a, b) in enumerate(zip(a_row, b_row)):
            if a != b:
                col = cols[c] if c < len(cols) else f"col{c}"
                problems.append(f"row {i} ({row_label(a_row)}) "
                                f"[{col}]: {a!r} != {b!r}")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--rel-tol", type=float, default=0.05,
                    help="relative metric-drift threshold (default 0.05)")
    ap.add_argument("--time-tol", type=float, default=0.25,
                    help="relative wall-clock drift threshold (default 0.25)")
    ap.add_argument("--fail-on-slowdown", action="store_true",
                    help="exit nonzero when wall clock regresses past "
                         "--time-tol")
    ap.add_argument("--exact", action="store_true",
                    help="determinism gate: fail on ANY difference except "
                         "wall_seconds")
    args = ap.parse_args()

    old, new = load(args.old), load(args.new)

    if args.exact:
        problems = compare_exact(old, new)
        print(f"bench: {new['bench']} (exact comparison)")
        for p in problems:
            print(f"  MISMATCH  {p}")
        if problems:
            print(f"\n{len(problems)} mismatch(es) — results are not "
                  f"bit-identical")
            return 1
        print(f"  bit-identical: {len(new['rows'])} rows, "
              f"{len(new['verdicts'])} verdicts")
        return 0
    if old["bench"] != new["bench"]:
        print(f"warning: comparing different benches:\n  old: {old['bench']}"
              f"\n  new: {new['bench']}")

    arr_old, arr_new = old.get("arrival"), new.get("arrival")
    if arr_old is not None and arr_new is not None and arr_old != arr_new:
        print(f"refusing to diff mismatched traffic configurations:\n"
              f"  old arrival: {arr_old}\n  new arrival: {arr_new}")
        return 2

    failed = False
    print(f"bench: {new['bench']}")

    for line in compare_provenance(old, new):
        print(f"  PROVENANCE MISMATCH (apples-to-oranges)  {line}")

    regressions, fixes, changes = compare_verdicts(old, new)
    for line in regressions:
        print(f"  VERDICT REGRESSION  {line}")
        failed = True
    for line in fixes:
        print(f"  verdict fixed       {line}")
    for line in changes:
        print(f"  verdict changed     {line}")
    if not (regressions or fixes or changes):
        print(f"  verdicts: {len(new['verdicts'])} unchanged "
              f"({sum(v['pass'] for v in new['verdicts'])} PASS)")

    t_old, t_new = old.get("wall_seconds"), new.get("wall_seconds")
    if isinstance(t_old, (int, float)) and isinstance(t_new, (int, float)) \
            and t_old > 0:
        drift = (t_new - t_old) / t_old
        marker = ""
        if drift > args.time_tol:
            marker = "  SLOWDOWN"
            if args.fail_on_slowdown:
                failed = True
        elif drift < -args.time_tol:
            marker = "  speedup"
        print(f"  wall: {t_old:.3f}s -> {t_new:.3f}s ({drift:+.1%}){marker}")

    # Throughput trajectory: warn-only (never fails the gate) — events/sec
    # is machine-noisy, but a sustained drop across commits is the first
    # symptom of a hot-path regression. Old JSONs without the key are fine.
    r_old, r_new = old.get("events_per_sec"), new.get("events_per_sec")
    if isinstance(r_old, (int, float)) and isinstance(r_new, (int, float)) \
            and r_old > 0 and r_new > 0:
        drift = (r_new - r_old) / r_old
        marker = "  THROUGHPUT DROP (warn-only)" if drift < -args.time_tol \
            else ""
        print(f"  events/sec: {r_old:,.0f} -> {r_new:,.0f} "
              f"({drift:+.1%}){marker}")

    # LP solve throughput: same warn-only treatment as events/sec.
    l_old, l_new = old.get("lp_solves_per_sec"), new.get("lp_solves_per_sec")
    if isinstance(l_old, (int, float)) and isinstance(l_new, (int, float)) \
            and l_old > 0 and l_new > 0:
        drift = (l_new - l_old) / l_old
        marker = "  THROUGHPUT DROP (warn-only)" if drift < -args.time_tol \
            else ""
        print(f"  lp solves/sec: {l_old:,.0f} -> {l_new:,.0f} "
              f"({drift:+.1%}){marker}")

    drifted = list(compare_cells(old, new, args.rel_tol))
    for label, col, a, b, drift in drifted:
        print(f"  metric drift        [{label}] {col}: {a} -> {b} "
              f"({drift:+.1%})")
    if not drifted:
        print(f"  metrics: no drift beyond {args.rel_tol:.0%}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
