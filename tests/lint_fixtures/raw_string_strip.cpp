// Fixture: strip_code lexer regressions (tools/lint_stosched.py).
//
// Three constructs the original lexer mis-tokenized, each able to blank the
// rest of the file and hide real violations from every text-based rule:
//   * digit separators — an odd count of ' across numeric literals opened a
//     bogus char literal that swallowed everything to end-of-file;
//   * prefixed raw strings (u8R / uR / UR / LR) — the encoding prefix broke
//     raw-string recognition;
//   * an identifier ending in R glued to a string (FIXTURE_TAG_R"(...)") —
//     not a raw string at all, but was lexed as one.
// The mt19937 at the bottom is the sentinel: raw-random must still see it
// after the lexer has walked every trap above.
#include <cstdint>
#include <random>

namespace fixture {

constexpr std::uint64_t kReps = 1'000'000'0;  // three separators: odd count
inline const char* kQuery = u8R"sql(SELECT "seed" FROM runs)sql";
inline const wchar_t* kWide = LR"(one more \" prefixed raw string)";

}  // namespace fixture

#define FIXTURE_TAG_R"(an ordinary string glued to the identifier)"

namespace fixture {

inline std::mt19937 hidden_generator;  // BAD: the sentinel the lexer exposes

}  // namespace fixture
