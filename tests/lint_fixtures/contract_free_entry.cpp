// Fixture: entry-contract (tools/ast_audit.py).
//
// A public entry point (simulate_* under src/queueing|batch|online) whose
// opening statements contain no STOSCHED_EXPECTS / STOSCHED_REQUIRE /
// validate() call: garbage inputs sail straight into the hot loop. The
// rule demands validation within the first eight top-level statements.
#include <vector>

namespace fixture {

inline double simulate_widget(const std::vector<double>& spans,
                              double horizon) {
  double area = 0.0;  // BAD: no input validation anywhere up front
  for (double s : spans) area += s;
  return area * horizon;
}

}  // namespace fixture
