// Fixture: rng-laundering (tools/ast_audit.py).
//
// The regex rule `substream-discipline` (tools/lint_stosched.py) audits
// only simulate_* definitions, so this file is regex-clean: the entry point
// forwards its Rng& whole, exactly as that rule demands. But the helper it
// forwards TO draws directly on the caller's stream — laundering the draw
// through one call level. The AST-grade rule follows every function with an
// Rng& parameter and flags the helper; tools/test_ast_audit.py asserts BOTH
// outcomes (regex passes, ast_audit fires) to pin the loophole closed.
#include "util/rng.hpp"

namespace fixture {

double jitter_helper(stosched::Rng& rng) {
  return rng.uniform(0.0, 1.0);  // BAD: direct draw on a routed stream
}

double simulate_fixture(stosched::Rng& rng) {
  return jitter_helper(rng);  // whole-argument forwarding: regex-clean
}

}  // namespace fixture
