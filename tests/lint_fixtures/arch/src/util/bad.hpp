// Fixture: the architectural sin arch_check exists to catch — a layer-0
// module reaching UP into layer 1 (util -> des). Both arch-undeclared-edge
// and arch-back-edge must fire on this include.
#pragma once

#include "des/b.hpp"

namespace fixture {
inline int bad() { return b() + 1; }
}  // namespace fixture
