// Fixture: a clean layer-0 header.
#pragma once

namespace fixture {
inline int a() { return 1; }
}  // namespace fixture
