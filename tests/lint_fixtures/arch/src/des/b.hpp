// Fixture: a legitimate downward edge (des -> util, declared).
#pragma once

#include "util/a.hpp"

namespace fixture {
inline int b() { return a() + 1; }
}  // namespace fixture
