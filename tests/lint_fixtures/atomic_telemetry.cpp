// Deliberately-bad fixture for the `metrics-registry` lint rule
// (tools/lint_stosched.py): bespoke file-scope std::atomic telemetry of the
// kind the obs registry replaced. The <atomic> include and the atomic
// declarations are distinct findings; tools/test_lint_stosched.py copies
// this file into src/des/ (fires) and into src/obs/ and src/util/ (exempt).
#include <atomic>
#include <cstdint>

namespace stosched {

// A shadow event counter: invisible to bench_common::finish, invisible to
// the OMP 1-vs-8 determinism gate — exactly what the rule forbids.
std::atomic<std::uint64_t> g_shadow_events{0};
std::atomic<std::uint64_t> g_shadow_retries{0};

void bump_shadow_telemetry() {
  g_shadow_events.fetch_add(1, std::memory_order_relaxed);
  g_shadow_retries.fetch_add(2, std::memory_order_relaxed);
}

}  // namespace stosched
