// lint fixture: violates umbrella-header — a src/ header that no include
// chain starting at core/stosched.hpp ever reaches. Never compiled.
#pragma once

namespace stosched {
inline int lint_fixture_orphan() { return 42; }
}  // namespace stosched
