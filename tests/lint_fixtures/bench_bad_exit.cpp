// lint fixture: violates bench-finish — a table-driven bench that never
// routes its exit through bench_common::finish, so no JSON mirror is ever
// written and bench_history.jsonl silently loses the bench. Never compiled.
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  stosched::Table table("fixture: hand-rolled exit");
  table.columns({"x"});
  table.add_row({"1"});
  table.verdict(true, "trivially true");
  table.print(std::cout);
  return table.all_checks_passed() ? 0 : 1;
}
