// lint fixture: violates raw-random — randomness drawn from <random>
// machinery instead of util/Rng substreams. Never compiled; consumed by
// tools/test_lint_stosched.py.
#include <random>

double bad_draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::uniform_real_distribution<double> u(0.0, 1.0);
  return u(gen);
}
