// Deliberately-bad fixture for the hot-loop-clock rule: direct clock reads
// inside the DES hot path (src/des, src/queueing), where timing must only
// enter through the compiled-out STOSCHED_TIME_* macros.
#include <chrono>

#include <ctime>
#include <sys/time.h>

double simulate_timed_loop() {
  const auto t0 = std::chrono::steady_clock::now();
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  timeval tv;
  gettimeofday(&tv, nullptr);
  const auto t1 = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
