// lint fixture: violates substream-discipline — a simulate_* function that
// draws directly on the caller's Rng (and samples a distribution from it)
// instead of deriving named per-purpose substreams. Never compiled.
#include "dist/distribution.hpp"
#include "util/rng.hpp"

double simulate_bad_direct_draw(const stosched::dist::Distribution& size_law,
                                int n, stosched::Rng& rng) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += rng.uniform();          // direct draw on the caller's stream
    total += size_law.sample(rng);   // distribution sampled from it
  }
  return total;
}
