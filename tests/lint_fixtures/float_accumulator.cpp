// lint fixture: violates float-accumulator — a statistics path accumulating
// in single precision, which loses ~7 significant digits over 10^8-event
// runs. Never compiled.
float running_mean(const float* xs, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) total += xs[i];
  return total / static_cast<float>(n);
}
