// Fixture: unordered-iteration (tools/ast_audit.py).
//
// Two flavors of order nondeterminism the rule must flag:
//   * range-for over a std::unordered_map — iteration order is a function
//     of the hash seed and rehash history, not of the data;
//   * a pointer-keyed std::map — ordered, but by allocation address, which
//     varies run to run.
// Lookups (find/emplace) on unordered containers stay legal and appear
// here unflagged.
#include <map>
#include <unordered_map>

namespace fixture {

inline double sum_rates() {
  std::unordered_map<int, double> rates;
  rates.emplace(0, 1.0);
  rates.emplace(1, 2.0);
  double total = 0.0;
  for (const auto& kv : rates) total += kv.second;  // BAD: hash order
  return total;
}

struct Registry {
  std::map<const char*, int> by_name;  // BAD: address-ordered iteration
};

}  // namespace fixture
