// lint fixture: violates cmake-coverage — a src/ translation unit absent
// from the CMake library sources, so it would silently never build. Never
// compiled.
int lint_fixture_unlisted() { return 42; }
