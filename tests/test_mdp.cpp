// Tests for mdp/: value iteration vs policy iteration agreement, closed-form
// chains, average-reward solvers, and the dense linear solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdp/mdp.hpp"
#include "mdp/solve.hpp"
#include "util/rng.hpp"

namespace stosched::mdp {
namespace {

/// Two-state chain where staying in state 0 earns 1, state 1 earns 0;
/// action "stay" keeps the state, "flip" toggles it.
FiniteMdp two_state_toy() {
  FiniteMdp m(2);
  m.add_action(0, {1.0, {{0, 1.0}}, 0});
  m.add_action(0, {1.0, {{1, 1.0}}, 1});
  m.add_action(1, {0.0, {{1, 1.0}}, 0});
  m.add_action(1, {0.0, {{0, 1.0}}, 1});
  return m;
}

TEST(ValueIteration, GeometricSeriesClosedForm) {
  const auto m = two_state_toy();
  const double beta = 0.9;
  const auto sol = value_iteration(m, beta, 1e-12);
  // Optimal: stay in 0 forever -> 1/(1-beta); from 1: flip then stay ->
  // beta/(1-beta).
  EXPECT_NEAR(sol.value[0], 1.0 / (1.0 - beta), 1e-8);
  EXPECT_NEAR(sol.value[1], beta / (1.0 - beta), 1e-8);
  EXPECT_EQ(m.actions(1)[sol.policy[1]].label, 1);  // flip
}

TEST(PolicyIteration, AgreesWithValueIteration) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.below(5);
    FiniteMdp m(n);
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t acts = 1 + rng.below(3);
      for (std::size_t a = 0; a < acts; ++a) {
        Action act;
        act.reward = rng.uniform(-1.0, 1.0);
        double total = 0.0;
        std::vector<double> w(n);
        for (auto& x : w) {
          x = rng.uniform_pos();
          total += x;
        }
        for (std::size_t t = 0; t < n; ++t)
          act.transitions.push_back({t, w[t] / total});
        m.add_action(s, std::move(act));
      }
    }
    m.validate();
    const auto vi = value_iteration(m, 0.92, 1e-11);
    const auto pi = policy_iteration(m, 0.92);
    for (std::size_t s = 0; s < n; ++s)
      EXPECT_NEAR(vi.value[s], pi.value[s], 1e-7);
  }
}

TEST(EvaluatePolicy, FixedPointOfItsOwnBackup) {
  const auto m = two_state_toy();
  const double beta = 0.8;
  const std::vector<std::size_t> policy{0, 1};  // stay in 0; flip from 1
  const auto v = evaluate_policy(m, beta, policy);
  // v0 = 1 + beta v0; v1 = 0 + beta v0.
  EXPECT_NEAR(v[0], 1.0 / (1.0 - beta), 1e-10);
  EXPECT_NEAR(v[1], beta / (1.0 - beta), 1e-10);
}

TEST(RelativeValueIteration, TwoStateAverageReward) {
  const auto m = two_state_toy();
  const auto sol = relative_value_iteration(m, 1e-11);
  EXPECT_NEAR(sol.gain, 1.0, 1e-7);  // park in state 0
}

TEST(RelativeValueIteration, ForcedCycleGain) {
  // Deterministic cycle 0 -> 1 -> 0 with rewards 2 and 0: gain = 1.
  FiniteMdp m(2);
  m.add_action(0, {2.0, {{1, 1.0}}, 0});
  m.add_action(1, {0.0, {{0, 1.0}}, 0});
  const auto sol = relative_value_iteration(m, 1e-11);
  EXPECT_NEAR(sol.gain, 1.0, 1e-7);
}

TEST(AverageRewardOfPolicy, MatchesRvi) {
  const auto m = two_state_toy();
  const std::vector<std::size_t> stay_flip{0, 1};
  EXPECT_NEAR(average_reward_of_policy(m, stay_flip), 1.0, 1e-9);
  // Forced flip-flop from both states: reward alternates 1, 0 -> gain 0.5.
  const std::vector<std::size_t> flip_flip{1, 1};
  EXPECT_NEAR(average_reward_of_policy(m, flip_flip), 0.5, 1e-9);
}

TEST(AverageRewardOfPolicy, IterativeAgreesWithDense) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 5 + rng.below(4);
    FiniteMdp m(n);
    std::vector<std::size_t> policy(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
      Action act;
      act.reward = rng.uniform(0.0, 2.0);
      double total = 0.0;
      std::vector<double> w(n);
      for (auto& x : w) {
        x = rng.uniform_pos();
        total += x;
      }
      for (std::size_t t = 0; t < n; ++t)
        act.transitions.push_back({t, w[t] / total});
      m.add_action(s, std::move(act));
    }
    EXPECT_NEAR(average_reward_of_policy(m, policy),
                average_reward_of_policy_iterative(m, policy), 1e-7);
  }
}

TEST(LinearSolver, SolvesRandomSystems) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(8);
    std::vector<double> a(n * n), x_true(n), b(n, 0.0);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) a[i * n + i] += 3.0;  // well-posed
    for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) b[r] += a[r * n + c] * x_true[c];
    auto a_copy = a;
    ASSERT_TRUE(solve_linear_system(a_copy, b, n));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
  }
}

TEST(LinearSolver, ReportsSingular) {
  std::vector<double> a{1.0, 2.0, 2.0, 4.0};  // rank 1
  std::vector<double> b{1.0, 2.0};
  EXPECT_FALSE(solve_linear_system(a, b, 2));
}

TEST(FiniteMdp, ValidateCatchesBadRows) {
  FiniteMdp m(2);
  m.add_action(0, {0.0, {{0, 0.7}}, 0});  // sums to 0.7
  m.add_action(1, {0.0, {{1, 1.0}}, 0});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(FiniteMdp, ValidateCatchesEmptyState) {
  FiniteMdp m(2);
  m.add_action(0, {0.0, {{0, 1.0}}, 0});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ValueIteration, RejectsBadDiscount) {
  const auto m = two_state_toy();
  EXPECT_THROW(value_iteration(m, 1.0), std::invalid_argument);
  EXPECT_THROW(value_iteration(m, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace stosched::mdp
