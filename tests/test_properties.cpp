// Cross-cutting property tests: invariances and monotonicities the theory
// guarantees, swept over parameter grids with TEST_P. These are the
// "failure injection" layer of the suite — a bug in any numeric path tends
// to break a scaling law or an ordering long before it breaks a point test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/stosched.hpp"

namespace stosched {
namespace {

// ---------------------------------------------------------------------------
// M/G/1 analytic sweeps: PK and Cobham as functions of load and variability.
// ---------------------------------------------------------------------------

class Mg1LoadSweep : public ::testing::TestWithParam<int> {
 protected:
  double rho() const { return 0.1 + 0.08 * GetParam(); }  // 0.1 .. 0.9
};

TEST_P(Mg1LoadSweep, PkWaitIncreasesWithLoad) {
  const double r = rho();
  std::vector<queueing::ClassSpec> lo{{r, exponential_dist(1.0), 1.0}};
  std::vector<queueing::ClassSpec> hi{{r + 0.05, exponential_dist(1.0), 1.0}};
  EXPECT_LT(queueing::pk_fcfs_wait(lo), queueing::pk_fcfs_wait(hi));
}

TEST_P(Mg1LoadSweep, PkWaitIncreasesWithScv) {
  const double r = rho();
  std::vector<queueing::ClassSpec> low_var{{r, erlang_dist(4, 4.0), 1.0}};
  std::vector<queueing::ClassSpec> exp_var{{r, exponential_dist(1.0), 1.0}};
  std::vector<queueing::ClassSpec> hi_var{{r, hyperexp2_dist(1.0, 6.0), 1.0}};
  EXPECT_LT(queueing::pk_fcfs_wait(low_var), queueing::pk_fcfs_wait(exp_var));
  EXPECT_LT(queueing::pk_fcfs_wait(exp_var), queueing::pk_fcfs_wait(hi_var));
}

TEST_P(Mg1LoadSweep, CobhamTopClassBeatsFcfsBottomClassPays) {
  // Splitting the load into two classes: priority helps the top class and
  // hurts the bottom one relative to FCFS; the rho-weighted sum is fixed.
  const double r = rho();
  std::vector<queueing::ClassSpec> classes{
      {r / 2.0, exponential_dist(1.0), 1.0},
      {r / 2.0, exponential_dist(1.0), 1.0}};
  const double fcfs = queueing::pk_fcfs_wait(classes);
  const auto waits = queueing::cobham_waits(classes, {0, 1});
  EXPECT_LT(waits[0], fcfs + 1e-12);
  EXPECT_GT(waits[1], fcfs - 1e-12);
  EXPECT_NEAR(0.5 * r * waits[0] + 0.5 * r * waits[1],
              queueing::kleinrock_invariant(classes), 1e-9);
}

TEST_P(Mg1LoadSweep, PreemptiveTopClassSeesIsolatedQueue) {
  const double r = rho();
  std::vector<queueing::ClassSpec> classes{
      {r / 2.0, exponential_dist(1.0), 1.0},
      {r / 2.0, exponential_dist(2.0), 1.0}};
  const auto sojourns = queueing::preemptive_resume_sojourns(classes, {0, 1});
  // Top class: M/M/1 alone with rho/2: T = E[S]/(1 - rho/2).
  EXPECT_NEAR(sojourns[0], 1.0 / (1.0 - r / 2.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LoadGrid, Mg1LoadSweep, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Gittins index: exact transformation laws.
// ---------------------------------------------------------------------------

class GittinsTransforms : public ::testing::TestWithParam<int> {
 protected:
  bandit::MarkovProject project() const {
    Rng rng(4000 + GetParam());
    return bandit::random_project(3 + rng.below(4), rng);
  }
};

TEST_P(GittinsTransforms, ShiftCovariance) {
  // gamma(R + c) = gamma(R) + c: adding a constant to every reward adds the
  // same constant to the index (both numerator and denominator are
  // discounted sums over the same stopping time).
  const auto p = project();
  auto shifted = p;
  const double c = 0.37;
  for (auto& r : shifted.reward) r += c;
  const auto g = bandit::gittins_largest_index(p, 0.9);
  const auto gs = bandit::gittins_largest_index(shifted, 0.9);
  for (std::size_t s = 0; s < p.num_states(); ++s)
    EXPECT_NEAR(gs[s], g[s] + c, 1e-9);
}

TEST_P(GittinsTransforms, ScaleEquivariance) {
  const auto p = project();
  auto scaled = p;
  const double a = 2.5;
  for (auto& r : scaled.reward) r *= a;
  const auto g = bandit::gittins_largest_index(p, 0.9);
  const auto gs = bandit::gittins_largest_index(scaled, 0.9);
  for (std::size_t s = 0; s < p.num_states(); ++s)
    EXPECT_NEAR(gs[s], a * g[s], 1e-9);
}

TEST_P(GittinsTransforms, SmallBetaApproachesMyopic) {
  // As beta -> 0 the index converges to the immediate reward.
  const auto p = project();
  const auto g = bandit::gittins_largest_index(p, 0.01);
  for (std::size_t s = 0; s < p.num_states(); ++s)
    EXPECT_NEAR(g[s], p.reward[s], 0.02);
}

TEST_P(GittinsTransforms, IndexDominatesReward) {
  // gamma_i >= R_i always (stopping after one pull is admissible).
  const auto p = project();
  const auto g = bandit::gittins_largest_index(p, 0.9);
  for (std::size_t s = 0; s < p.num_states(); ++s)
    EXPECT_GE(g[s], p.reward[s] - 1e-9);
}

TEST_P(GittinsTransforms, IndexMonotoneInBeta) {
  // For nonnegative rewards the index (as best reward *rate*) cannot drop
  // below max(R_i, ...) and empirically grows with patience toward the
  // best sustainable rate; check the max-state index is nondecreasing.
  const auto p = project();
  const auto g_low = bandit::gittins_largest_index(p, 0.3);
  const auto g_high = bandit::gittins_largest_index(p, 0.95);
  const double max_low = *std::max_element(g_low.begin(), g_low.end());
  const double max_high = *std::max_element(g_high.begin(), g_high.end());
  // The top state's index equals max R at every beta; others may move.
  EXPECT_NEAR(max_low, max_high, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Projects, GittinsTransforms, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Whittle index transformation laws.
// ---------------------------------------------------------------------------

TEST(WhittleTransforms, ActiveRewardShiftShiftsIndex) {
  // Adding c to every *active* reward raises every index by exactly c (the
  // subsidy compensates passivity).
  restless::RestlessProject p;
  p.reward_passive = {0.0, 0.1, 0.2};
  p.reward_active = {0.5, 0.4, 0.9};
  p.trans_passive = {{0.2, 0.5, 0.3}, {0.4, 0.4, 0.2}, {0.1, 0.3, 0.6}};
  p.trans_active = {{0.5, 0.3, 0.2}, {0.2, 0.5, 0.3}, {0.3, 0.3, 0.4}};
  const auto base = restless::whittle_index(p);
  ASSERT_TRUE(base.indexable);
  auto shifted = p;
  const double c = 0.4;
  for (auto& r : shifted.reward_active) r += c;
  const auto res = restless::whittle_index(shifted);
  ASSERT_TRUE(res.indexable);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_NEAR(res.index[s], base.index[s] + c, 1e-4);
}

TEST(WhittleTransforms, PassiveRewardShiftLowersIndex) {
  restless::RestlessProject p;
  p.reward_passive = {0.0, 0.1, 0.2};
  p.reward_active = {0.5, 0.4, 0.9};
  p.trans_passive = {{0.2, 0.5, 0.3}, {0.4, 0.4, 0.2}, {0.1, 0.3, 0.6}};
  p.trans_active = p.trans_passive;
  const auto base = restless::whittle_index(p);
  ASSERT_TRUE(base.indexable);
  auto shifted = p;
  const double c = 0.25;
  for (auto& r : shifted.reward_passive) r += c;
  const auto res = restless::whittle_index(shifted);
  ASSERT_TRUE(res.indexable);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_NEAR(res.index[s], base.index[s] - c, 1e-4);
}

// ---------------------------------------------------------------------------
// Subset DP structure.
// ---------------------------------------------------------------------------

class SubsetDpStructure : public ::testing::TestWithParam<int> {
 protected:
  std::vector<batch::ExpJob> jobs() const {
    Rng rng(5000 + GetParam());
    std::vector<batch::ExpJob> out(4 + rng.below(5));
    for (auto& j : out) {
      j.rate = rng.uniform(0.3, 3.0);
      j.weight = rng.uniform(0.5, 2.0);
    }
    return out;
  }
};

TEST_P(SubsetDpStructure, MoreMachinesNeverHurt) {
  const auto js = jobs();
  for (const auto obj :
       {batch::ExpObjective::kFlowtime, batch::ExpObjective::kMakespan}) {
    const double m1 = batch::exp_dp_optimal(js, 1, obj);
    const double m2 = batch::exp_dp_optimal(js, 2, obj);
    const double m3 = batch::exp_dp_optimal(js, 3, obj);
    EXPECT_GE(m1, m2 - 1e-9);
    EXPECT_GE(m2, m3 - 1e-9);
  }
}

TEST_P(SubsetDpStructure, MakespanAtLeastCriticalBounds) {
  const auto js = jobs();
  const unsigned m = 2;
  const double mk = batch::exp_dp_optimal(js, m, batch::ExpObjective::kMakespan);
  double total = 0.0, longest = 0.0;
  for (const auto& j : js) {
    total += 1.0 / j.rate;
    longest = std::max(longest, 1.0 / j.rate);
  }
  EXPECT_GE(mk, total / m - 1e-9);  // work bound
  EXPECT_GE(mk, longest - 1e-9);    // longest-job bound
}

TEST_P(SubsetDpStructure, FlowtimeDominatesMakespanTimesOne) {
  // sum C_j >= max C_j trivially; the DP values must respect it.
  const auto js = jobs();
  const double fl = batch::exp_dp_optimal(js, 2, batch::ExpObjective::kFlowtime);
  const double mk = batch::exp_dp_optimal(js, 2, batch::ExpObjective::kMakespan);
  EXPECT_GE(fl, mk - 1e-9);
}

TEST_P(SubsetDpStructure, PermutationInvariance) {
  auto js = jobs();
  const double before =
      batch::exp_dp_optimal(js, 2, batch::ExpObjective::kFlowtime);
  std::rotate(js.begin(), js.begin() + 1, js.end());
  const double after =
      batch::exp_dp_optimal(js, 2, batch::ExpObjective::kFlowtime);
  EXPECT_NEAR(before, after, 1e-9);
}

TEST_P(SubsetDpStructure, UnitWeightsReduceWeightedToPlain) {
  auto js = jobs();
  for (auto& j : js) j.weight = 1.0;
  EXPECT_NEAR(batch::exp_dp_optimal(js, 2, batch::ExpObjective::kFlowtime),
              batch::exp_dp_optimal(js, 2,
                                    batch::ExpObjective::kWeightedFlowtime),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Instances, SubsetDpStructure, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Klimov exit work: set monotonicity.
// ---------------------------------------------------------------------------

TEST(ExitWorkStructure, GrowingSetGrowsWork) {
  // tau_j^S is nondecreasing in S (more classes to wander through before
  // exiting).
  const std::vector<double> means{0.5, 1.0, 0.8};
  const std::vector<std::vector<double>> p{
      {0.1, 0.3, 0.2}, {0.2, 0.1, 0.3}, {0.3, 0.2, 0.1}};
  const auto t1 = queueing::exit_work(means, p, {1, 0, 0});
  const auto t2 = queueing::exit_work(means, p, {1, 1, 0});
  const auto t3 = queueing::exit_work(means, p, {1, 1, 1});
  EXPECT_LE(t1[0], t2[0] + 1e-12);
  EXPECT_LE(t2[0], t3[0] + 1e-12);
  EXPECT_LE(t2[1], t3[1] + 1e-12);
}

TEST(ExitWorkStructure, SingletonClosedForm) {
  // tau_j^{j} = beta_j / (1 - p_jj).
  const std::vector<double> means{2.0};
  const std::vector<std::vector<double>> p{{0.3}};
  EXPECT_NEAR(queueing::exit_work(means, p, {1})[0], 2.0 / 0.7, 1e-12);
}

// ---------------------------------------------------------------------------
// Simulator determinism and horizon scaling.
// ---------------------------------------------------------------------------

TEST(Determinism, MmmSimulator) {
  std::vector<queueing::ClassSpec> classes{
      {0.8, exponential_dist(1.0), 1.0}, {0.5, exponential_dist(1.5), 2.0}};
  Rng r1(9), r2(9);
  const auto a = queueing::simulate_mmm(classes, 2, {0, 1}, 1e4, 1e3, r1);
  const auto b = queueing::simulate_mmm(classes, 2, {0, 1}, 1e4, 1e3, r2);
  EXPECT_DOUBLE_EQ(a.cost_rate, b.cost_rate);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Determinism, PollingSimulator) {
  std::vector<queueing::ClassSpec> classes{
      {0.3, exponential_dist(1.0), 1.0}, {0.3, exponential_dist(1.0), 1.0}};
  queueing::PollingOptions opt;
  opt.switchover = deterministic_dist(0.2);
  opt.horizon = 1e4;
  opt.warmup = 1e3;
  Rng r1(11), r2(11);
  const auto a = queueing::simulate_polling(classes, opt, r1);
  const auto b = queueing::simulate_polling(classes, opt, r2);
  EXPECT_DOUBLE_EQ(a.cost_rate, b.cost_rate);
  EXPECT_DOUBLE_EQ(a.switching_fraction, b.switching_fraction);
}

TEST(Determinism, NetworkSimulator) {
  const auto cfg =
      queueing::lu_kumar_network(1.0, 0.01, 0.5, 0.01, 0.5, false);
  Rng r1(13), r2(13);
  const auto a = queueing::simulate_network(cfg, 5000.0, 20, r1);
  const auto b = queueing::simulate_network(cfg, 5000.0, 20, r2);
  EXPECT_EQ(a.total_jobs, b.total_jobs);
  EXPECT_DOUBLE_EQ(a.mean_total, b.mean_total);
}

TEST(Determinism, RestlessSimulator) {
  Rng prng(15);
  const auto proto = restless::random_restless_project(3, prng);
  const auto inst = restless::symmetric_instance(proto, 4, 1);
  restless::PriorityTable table(4, restless::myopic_index(proto));
  Rng r1(17), r2(17);
  EXPECT_DOUBLE_EQ(
      restless::simulate_priority_policy(inst, table, 5000, 500, r1),
      restless::simulate_priority_policy(inst, table, 5000, 500, r2));
}

// ---------------------------------------------------------------------------
// Fluid model conservation.
// ---------------------------------------------------------------------------

TEST(FluidStructure, WorkConservationAlongTrajectory) {
  // Total fluid mass changes at rate sum(lambda) - (service effort spent);
  // while any class is backlogged the server works at full rate, so total
  // d/dt = sum(lambda) - served rate. Check mass at drain time is 0 and
  // trajectory is nonincreasing once arrivals < capacity for the top class.
  std::vector<queueing::FluidClass> classes{{0.2, 1.5, 1.0}, {0.1, 1.0, 2.0}};
  const auto traj =
      queueing::fluid_drain(classes, {4.0, 2.0}, {1, 0});
  const auto& final_levels = traj.levels.back();
  for (const double q : final_levels) EXPECT_NEAR(q, 0.0, 1e-9);
  EXPECT_GT(traj.drain_time, 0.0);
  EXPECT_GT(traj.cost_integral, 0.0);
}

TEST(FluidStructure, CostScalesQuadraticallyWithInitialMass) {
  // Fluid draining from k-times the backlog costs ~k^2 (triangle area).
  std::vector<queueing::FluidClass> classes{{0.0, 1.0, 1.0}};
  const double c1 =
      queueing::fluid_drain(classes, {5.0}, {0}).cost_integral;
  const double c2 =
      queueing::fluid_drain(classes, {10.0}, {0}).cost_integral;
  EXPECT_NEAR(c2 / c1, 4.0, 1e-9);
}

// ---------------------------------------------------------------------------
// LP solver structure: scaling invariances.
// ---------------------------------------------------------------------------

TEST(SimplexStructure, ObjectiveScalingScalesSolution) {
  auto p1 = lp::Problem::maximize({3.0, 5.0});
  p1.subject_to({1.0, 2.0}, lp::Sense::kLe, 10.0)
      .subject_to({3.0, 1.0}, lp::Sense::kLe, 15.0);
  auto p2 = lp::Problem::maximize({6.0, 10.0});
  p2.constraints = p1.constraints;
  const auto s1 = lp::solve(p1);
  const auto s2 = lp::solve(p2);
  ASSERT_TRUE(s1.optimal() && s2.optimal());
  EXPECT_NEAR(s2.objective, 2.0 * s1.objective, 1e-8);
  for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(s2.x[j], s1.x[j], 1e-8);
}

TEST(SimplexStructure, RhsScalingScalesSolution) {
  auto p1 = lp::Problem::maximize({3.0, 5.0});
  p1.subject_to({1.0, 2.0}, lp::Sense::kLe, 10.0)
      .subject_to({3.0, 1.0}, lp::Sense::kLe, 15.0);
  auto p2 = p1;
  for (auto& c : p2.constraints) c.rhs *= 3.0;
  const auto s1 = lp::solve(p1);
  const auto s2 = lp::solve(p2);
  ASSERT_TRUE(s1.optimal() && s2.optimal());
  EXPECT_NEAR(s2.objective, 3.0 * s1.objective, 1e-8);
  // Duals are invariant to rhs scaling.
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(s2.duals[i], s1.duals[i], 1e-8);
}

// ---------------------------------------------------------------------------
// End-to-end: common random numbers sharpen policy comparisons.
// ---------------------------------------------------------------------------

TEST(CommonRandomNumbers, PairedComparisonHasLowerVariance) {
  Rng rng(19);
  const batch::Batch jobs = batch::random_batch(8, rng);
  const auto a = batch::wsept_order(jobs);
  const auto b = batch::lept_order(jobs);

  // Paired: same stream for both policies per replication.
  RunningStat paired, unpaired;
  const Rng master(23);
  for (std::size_t r = 0; r < 2000; ++r) {
    Rng s1 = master.stream(r);
    Rng s2 = master.stream(r);  // identical draws
    paired.push(batch::simulate_weighted_flowtime(jobs, a, s1) -
                batch::simulate_weighted_flowtime(jobs, b, s2));
    Rng u1 = master.stream(2 * r + 100000);
    Rng u2 = master.stream(2 * r + 100001);
    unpaired.push(batch::simulate_weighted_flowtime(jobs, a, u1) -
                  batch::simulate_weighted_flowtime(jobs, b, u2));
  }
  EXPECT_LT(paired.variance(), unpaired.variance());
  // Both estimate the same exact difference.
  const double exact = batch::exact_weighted_flowtime(jobs, a) -
                       batch::exact_weighted_flowtime(jobs, b);
  EXPECT_NEAR(paired.mean(), exact, 6.0 * paired.sem());
}

}  // namespace
}  // namespace stosched
