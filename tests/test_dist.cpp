// Tests for dist/: every law's sampled moments must match its closed-form
// moments (parameterized sweep), hazard classes must be correct, and the
// discrete-support accessor must round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stosched {
namespace {

struct LawCase {
  std::string name;
  DistPtr dist;
  HazardClass hazard;
};

std::vector<LawCase> all_laws() {
  return {
      {"exp", exponential_dist(0.7), HazardClass::kConstant},
      {"det", deterministic_dist(2.5), HazardClass::kIncreasing},
      {"uniform", uniform_dist(1.0, 3.0), HazardClass::kIncreasing},
      {"erlang", erlang_dist(3, 1.5), HazardClass::kIncreasing},
      {"erlang1", erlang_dist(1, 2.0), HazardClass::kConstant},
      {"hyperexp", hyperexp_dist({0.3, 0.7}, {2.0, 0.5}),
       HazardClass::kDecreasing},
      {"hyperexp2", hyperexp2_dist(2.0, 4.0), HazardClass::kDecreasing},
      {"twopoint", two_point_dist(1.0, 0.6, 5.0), HazardClass::kNonMonotone},
      {"weibull_ifr", weibull_dist(2.0, 1.0), HazardClass::kIncreasing},
      {"weibull_dfr", weibull_dist(0.6, 1.0), HazardClass::kDecreasing},
      {"lognormal", lognormal_dist(0.0, 0.5), HazardClass::kNonMonotone},
      {"pareto", pareto_dist(1.0, 3.0), HazardClass::kDecreasing},
      {"discrete", discrete_dist({1.0, 2.0, 4.0}, {0.2, 0.3, 0.5}),
       HazardClass::kNonMonotone},
  };
}

class LawMoments : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LawMoments, SampleMeanMatchesAnalytic) {
  const auto laws = all_laws();
  const auto& law = laws[GetParam()];
  Rng rng(1234 + GetParam());
  RunningStat s;
  const int n = 400000;
  for (int i = 0; i < n; ++i) s.push(law.dist->sample(rng));
  const double mean = law.dist->mean();
  // 6-sigma tolerance on the Monte-Carlo error.
  const double tol =
      6.0 * std::sqrt(law.dist->variance() / n) + 1e-12;
  EXPECT_NEAR(s.mean(), mean, tol) << law.name;
}

TEST_P(LawMoments, SampleVarianceMatchesAnalytic) {
  const auto laws = all_laws();
  const auto& law = laws[GetParam()];
  Rng rng(987 + GetParam());
  RunningStat s;
  const int n = 400000;
  for (int i = 0; i < n; ++i) s.push(law.dist->sample(rng));
  const double var = law.dist->variance();
  EXPECT_NEAR(s.variance(), var, 0.05 * var + 1e-9) << law.name;
}

TEST_P(LawMoments, SecondMomentConsistent) {
  const auto laws = all_laws();
  const auto& law = laws[GetParam()];
  const double m = law.dist->mean();
  EXPECT_NEAR(law.dist->second_moment(), law.dist->variance() + m * m,
              1e-9 * (1.0 + law.dist->second_moment()))
      << law.name;
}

TEST_P(LawMoments, HazardClassAsDocumented) {
  const auto laws = all_laws();
  const auto& law = laws[GetParam()];
  EXPECT_EQ(law.dist->hazard_class(), law.hazard) << law.name;
}

TEST_P(LawMoments, SamplesArePositive) {
  const auto laws = all_laws();
  const auto& law = laws[GetParam()];
  Rng rng(55 + GetParam());
  for (int i = 0; i < 10000; ++i) ASSERT_GT(law.dist->sample(rng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllLaws, LawMoments,
                         ::testing::Range<std::size_t>(0, 13));

TEST(Distribution, ScvMatchesDefinition) {
  const auto d = hyperexp2_dist(2.0, 4.0);
  EXPECT_NEAR(d->scv(), 4.0, 1e-9);
  EXPECT_NEAR(exponential_dist(3.0)->scv(), 1.0, 1e-12);
  EXPECT_NEAR(deterministic_dist(5.0)->scv(), 0.0, 1e-12);
}

TEST(Distribution, ClosedFormScvForEveryFactoryLaw) {
  // scv() against hand-derived closed forms for all 11 factory laws.
  EXPECT_NEAR(exponential_dist(0.7)->scv(), 1.0, 1e-12);
  EXPECT_NEAR(deterministic_dist(2.5)->scv(), 0.0, 1e-12);
  // uniform(1,3): var (hi-lo)^2/12 = 1/3, mean 2.
  EXPECT_NEAR(uniform_dist(1.0, 3.0)->scv(), (1.0 / 3.0) / 4.0, 1e-12);
  EXPECT_NEAR(erlang_dist(3, 1.5)->scv(), 1.0 / 3.0, 1e-12);
  // hyperexp: mean .3/2 + .7/.5 = 1.55, m2 = 2(.3/4 + .7/.25) = 5.75.
  EXPECT_NEAR(hyperexp_dist({0.3, 0.7}, {2.0, 0.5})->scv(),
              (5.75 - 1.55 * 1.55) / (1.55 * 1.55), 1e-9);
  EXPECT_NEAR(hyperexp2_dist(3.0, 2.5)->scv(), 2.5, 1e-9);
  // two-point(1, .6, 5): mean 2.6, m2 10.6.
  EXPECT_NEAR(two_point_dist(1.0, 0.6, 5.0)->scv(),
              (10.6 - 6.76) / 6.76, 1e-9);
  // Weibull(k=2): scv = Gamma(2)/Gamma(1.5)^2 - 1.
  const double g15 = std::tgamma(1.5);
  EXPECT_NEAR(weibull_dist(2.0, 1.7)->scv(), 1.0 / (g15 * g15) - 1.0, 1e-9);
  // lognormal: scv = exp(sigma^2) - 1, independent of mu.
  EXPECT_NEAR(lognormal_dist(0.4, 0.5)->scv(), std::exp(0.25) - 1.0, 1e-9);
  // Pareto(alpha=3): mean 1.5 x_m, m2 = 3 x_m^2 => scv = 1/3.
  EXPECT_NEAR(pareto_dist(2.0, 3.0)->scv(), 1.0 / 3.0, 1e-9);
  // discrete {1,3} @ {.5,.5}: mean 2, m2 5, var 1.
  EXPECT_NEAR(discrete_dist({1.0, 3.0}, {0.5, 0.5})->scv(), 0.25, 1e-12);
}

TEST(Distribution, WithMeanScvHitsRequestedMomentsExactly) {
  // The two-moment fitter spans deterministic, Erlang-mixture, exponential
  // and hyperexponential regimes; mean and SCV must come back exactly.
  for (const double scv :
       {0.0, 0.15, 0.2, 1.0 / 3.0, 0.5, 0.8, 1.0, 1.7, 4.0, 16.0}) {
    const auto d = with_mean_scv(2.5, scv);
    EXPECT_NEAR(d->mean(), 2.5, 1e-9) << "scv " << scv;
    EXPECT_NEAR(d->scv(), scv, 1e-9) << "scv " << scv;
  }
}

TEST(Distribution, WithMeanScvSampledMomentsMatchTargets) {
  // The Erlang-mixture regime actually samples what it promises.
  const auto d = with_mean_scv(1.8, 0.4);
  EXPECT_EQ(d->hazard_class(), HazardClass::kIncreasing);
  Rng rng(321);
  RunningStat s;
  for (int i = 0; i < 400000; ++i) s.push(d->sample(rng));
  EXPECT_NEAR(s.mean(), 1.8, 0.01);
  EXPECT_NEAR(s.variance(), 0.4 * 1.8 * 1.8, 0.02);
}

TEST(Distribution, WithMeanScvRejectsBadArguments) {
  EXPECT_THROW(with_mean_scv(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(with_mean_scv(1.0, -0.1), std::invalid_argument);
}

TEST(Distribution, WithMeanScvBoundaryInputs) {
  // SCV exactly 1 must select the exponential law itself, not a degenerate
  // mixture or hyperexponential.
  const auto exp_fit = with_mean_scv(2.0, 1.0);
  EXPECT_STREQ(exp_fit->name(), "exp");
  EXPECT_NEAR(exp_fit->mean(), 2.0, 1e-12);
  EXPECT_NEAR(exp_fit->scv(), 1.0, 1e-12);

  // At SCV = 1/k the Erlang-mixture weight vanishes (pure Erlang-k); a hair
  // below 1/k the fitter flips to the Erlang(k)/Erlang(k+1) mixture. Both
  // sides of every threshold must still report the requested moments
  // exactly — the radicand clamp is what this guards.
  for (unsigned k = 2; k <= 6; ++k) {
    const double at = 1.0 / static_cast<double>(k);
    for (const double scv : {at, at - 1e-12, at + 1e-12}) {
      const auto d = with_mean_scv(1.3, scv);
      EXPECT_NEAR(d->mean(), 1.3, 1e-9) << "k " << k << " scv " << scv;
      EXPECT_NEAR(d->scv(), scv, 1e-7) << "k " << k << " scv " << scv;
    }
  }

  // Tiny means must come back relatively exact in every regime.
  for (const double scv : {0.0, 0.3, 1.0, 4.0}) {
    const auto d = with_mean_scv(1e-12, scv);
    EXPECT_NEAR(d->mean(), 1e-12, 1e-21) << "scv " << scv;
    EXPECT_NEAR(d->scv(), scv, 1e-7) << "scv " << scv;
  }
}

TEST(Distribution, ScaledDistScalesTimeExactly) {
  const auto base = erlang_dist(3, 1.5);
  const auto d = scaled_dist(base, 2.0);
  EXPECT_NEAR(d->mean(), 2.0 * base->mean(), 1e-12);
  EXPECT_NEAR(d->variance(), 4.0 * base->variance(), 1e-12);
  EXPECT_NEAR(d->scv(), base->scv(), 1e-12);
  EXPECT_EQ(d->hazard_class(), base->hazard_class());
  // Samples are the base draw times the factor (same substream).
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i)
    ASSERT_DOUBLE_EQ(d->sample(a), 2.0 * base->sample(b));
  // Finite supports scale too.
  std::vector<double> v, p;
  ASSERT_TRUE(discrete_support(*scaled_dist(two_point_dist(1.0, 0.5, 2.0), 3.0),
                               &v, &p));
  EXPECT_EQ(v, (std::vector<double>{3.0, 6.0}));
  EXPECT_THROW(scaled_dist(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(scaled_dist(base, 0.0), std::invalid_argument);
}

TEST(Distribution, Hyperexp2HitsRequestedMoments) {
  const auto d = hyperexp2_dist(3.0, 2.5);
  EXPECT_NEAR(d->mean(), 3.0, 1e-9);
  EXPECT_NEAR(d->variance() / 9.0, 2.5, 1e-9);
}

TEST(Distribution, ErlangEqualsGammaMoments) {
  const auto d = erlang_dist(4, 2.0);
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
  EXPECT_DOUBLE_EQ(d->variance(), 1.0);
}

TEST(Distribution, ParetoInfiniteSecondMomentBelowAlpha2) {
  const auto d = pareto_dist(1.0, 1.5);
  EXPECT_TRUE(std::isinf(d->second_moment()));
  EXPECT_NEAR(d->mean(), 3.0, 1e-12);
}

TEST(Distribution, DiscreteSupportRoundTrip) {
  const auto d = discrete_dist({1.0, 3.0, 9.0}, {0.5, 0.25, 0.25});
  std::vector<double> v, p;
  ASSERT_TRUE(discrete_support(*d, &v, &p));
  EXPECT_EQ(v, (std::vector<double>{1.0, 3.0, 9.0}));
  EXPECT_EQ(p, (std::vector<double>{0.5, 0.25, 0.25}));
  EXPECT_FALSE(discrete_support(*exponential_dist(1.0), nullptr, nullptr));
}

TEST(Distribution, TwoPointIsDiscrete) {
  const auto d = two_point_dist(1.0, 0.75, 9.0);
  std::vector<double> v, p;
  ASSERT_TRUE(discrete_support(*d, &v, &p));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_NEAR(d->mean(), 0.75 * 1.0 + 0.25 * 9.0, 1e-12);
}

TEST(Distribution, InvalidParametersThrow) {
  EXPECT_THROW(exponential_dist(0.0), std::invalid_argument);
  EXPECT_THROW(deterministic_dist(-1.0), std::invalid_argument);
  EXPECT_THROW(uniform_dist(3.0, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_dist(0, 1.0), std::invalid_argument);
  EXPECT_THROW(hyperexp_dist({0.5, 0.6}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(hyperexp2_dist(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(two_point_dist(2.0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(pareto_dist(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(discrete_dist({2.0, 1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(discrete_dist({1.0, 2.0}, {0.5, 0.6}), std::invalid_argument);
}

// ---- FlatSampler: the devirtualized hot-path sampler ----------------------

TEST_P(LawMoments, FlatSamplerIsBitIdenticalToVirtualSample) {
  // The contract simulators rely on to cache FlatSamplers: for EVERY law —
  // fast-path and virtual-fallback alike — the flat draw consumes the same
  // Rng primitives in the same order, so same-seed streams produce exactly
  // equal (bitwise, not approximately) sample paths.
  const auto laws = all_laws();
  const auto& law = laws[GetParam()];
  const FlatSampler flat = law.dist->flat();
  Rng virt_rng(911 + GetParam());
  Rng flat_rng(911 + GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double expected = law.dist->sample(virt_rng);
    const double got = flat.sample(flat_rng);
    ASSERT_EQ(expected, got) << law.name << " draw " << i;
  }
  // And the streams themselves must be in the same state afterwards.
  EXPECT_EQ(virt_rng(), flat_rng());
}

TEST(FlatSampler, FastPathCoversTheCommonLawsOnly) {
  using Kind = FlatSampler::Kind;
  EXPECT_EQ(exponential_dist(0.7)->flat().kind(), Kind::kExponential);
  EXPECT_EQ(deterministic_dist(2.5)->flat().kind(), Kind::kDeterministic);
  EXPECT_EQ(uniform_dist(1.0, 3.0)->flat().kind(), Kind::kUniform);
  EXPECT_EQ(erlang_dist(3, 1.5)->flat().kind(), Kind::kErlang);
  // Everything else keeps the virtual fallback.
  EXPECT_EQ(hyperexp2_dist(2.0, 4.0)->flat().kind(), Kind::kVirtual);
  EXPECT_EQ(weibull_dist(2.0, 1.0)->flat().kind(), Kind::kVirtual);
  EXPECT_EQ(pareto_dist(1.0, 3.0)->flat().kind(), Kind::kVirtual);
  EXPECT_EQ(scaled_dist(exponential_dist(0.7), 2.0)->flat().kind(),
            Kind::kVirtual);
}

TEST(FlatSampler, DefaultIsInertPointMass) {
  FlatSampler s;
  Rng rng(5);
  const Rng before = rng;
  EXPECT_EQ(s.sample(rng), 0.0);
  EXPECT_EQ(rng(), Rng(before)());  // consumed no randomness
}

TEST(FlatSampler, GoldenDrawsPinTheSamplePaths) {
  // Golden first draws for the fast-path laws under Rng(2026), generated
  // once with %.17g. These pin the exact draw algorithms: any change to the
  // Rng primitives, the law implementations, or the FlatSampler cases shows
  // up here as a bitwise mismatch — the simulators' replay guarantee.
  struct Golden {
    FlatSampler sampler;
    double draws[3];
  };
  const Golden goldens[] = {
      {FlatSampler::exponential(0.7),
       {0.26937570493725943, 1.4553949809642446, 2.3971807561101972}},
      {FlatSampler::deterministic(2.5), {2.5, 2.5, 2.5}},
      {FlatSampler::uniform(1.0, 3.0),
       {2.6562966677395794, 1.722072805800021, 1.3734842855765779}},
      {FlatSampler::erlang(3, 1.5),
       {1.9235773396054603, 0.99819619398995629, 1.2289886586237107}},
  };
  for (const auto& g : goldens) {
    Rng rng(2026);
    for (const double expected : g.draws)
      ASSERT_EQ(g.sampler.sample(rng), expected);
  }
}

}  // namespace
}  // namespace stosched
