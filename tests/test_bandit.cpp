// Tests for bandit/ (survey §2):
//   * the three Gittins algorithms agree (the F2 cross-validation);
//   * closed forms for degenerate projects;
//   * Gittins–Jones optimality: the index policy attains the product-MDP
//     optimum on random instances (property test);
//   * switching costs: optimal <= hysteresis <= naive orderings.
#include <gtest/gtest.h>

#include <cmath>

#include "bandit/bandit_sim.hpp"
#include "bandit/gittins.hpp"
#include "bandit/project.hpp"
#include "bandit/switching.hpp"

#include "util/stats.hpp"
#include "util/rng.hpp"

namespace stosched::bandit {
namespace {

TEST(Gittins, ConstantRewardProjectHasConstantIndex) {
  // Every state pays 0.4: the index is 0.4 everywhere, for any chain.
  Rng rng(1);
  MarkovProject p = random_project(5, rng);
  for (auto& r : p.reward) r = 0.4;
  for (const double g : gittins_largest_index(p, 0.9))
    EXPECT_NEAR(g, 0.4, 1e-10);
}

TEST(Gittins, AbsorbingStatesIndexTheirOwnReward) {
  // Two absorbing states: the index of an absorbing state is its reward.
  MarkovProject p;
  p.reward = {0.2, 0.9};
  p.trans = {{1.0, 0.0}, {0.0, 1.0}};
  const auto g = gittins_largest_index(p, 0.85);
  EXPECT_NEAR(g[0], 0.2, 1e-10);
  EXPECT_NEAR(g[1], 0.9, 1e-10);
}

TEST(Gittins, DeterministicDecayingChain) {
  // 0 -> 1 -> 2 (absorbing), rewards 1.0, 0.5, 0.0, beta = 0.5.
  // Index of 0: best stop after k steps; tau=1: 1.0; tau=2:
  // (1 + 0.5*0.5)/(1 + 0.5) = 1.25/1.5 ≈ 0.833 < 1.0 -> index 1.0.
  MarkovProject p;
  p.reward = {1.0, 0.5, 0.0};
  p.trans = {{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {0.0, 0.0, 1.0}};
  const auto g = gittins_largest_index(p, 0.5);
  EXPECT_NEAR(g[0], 1.0, 1e-10);
  EXPECT_NEAR(g[1], 0.5, 1e-10);
  EXPECT_NEAR(g[2], 0.0, 1e-10);
}

TEST(Gittins, IndexBoundedByRewardRange) {
  Rng rng(2);
  const MarkovProject p = random_project(8, rng, -1.0, 2.0);
  for (const double g : gittins_largest_index(p, 0.9)) {
    EXPECT_GE(g, -1.0 - 1e-9);
    EXPECT_LE(g, 2.0 + 1e-9);
  }
}

class GittinsAlgorithms : public ::testing::TestWithParam<int> {};

TEST_P(GittinsAlgorithms, ThreeAlgorithmsAgree) {
  Rng rng(900 + GetParam());
  const std::size_t states = 2 + rng.below(6);
  const double beta = 0.5 + 0.45 * rng.uniform();
  const MarkovProject p = random_project(states, rng);
  const auto a = gittins_largest_index(p, beta);
  const auto b = gittins_restart(p, beta);
  const auto c = gittins_calibration(p, beta);
  for (std::size_t s = 0; s < states; ++s) {
    EXPECT_NEAR(a[s], b[s], 1e-6) << "state " << s << " beta " << beta;
    EXPECT_NEAR(a[s], c[s], 1e-6) << "state " << s << " beta " << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GittinsAlgorithms,
                         ::testing::Range(0, 15));

class GittinsOptimality : public ::testing::TestWithParam<int> {};

TEST_P(GittinsOptimality, IndexPolicyAttainsOptimum) {
  Rng rng(1200 + GetParam());
  BanditInstance inst;
  inst.beta = 0.7 + 0.25 * rng.uniform();
  const std::size_t projects = 2 + rng.below(2);
  for (std::size_t j = 0; j < projects; ++j)
    inst.projects.push_back(random_project(2 + rng.below(3), rng));
  const std::vector<std::size_t> start(projects, 0);

  const double opt = optimal_value(inst, start);
  const double git = index_policy_value(inst, gittins_table(inst), start);
  EXPECT_NEAR(git, opt, 1e-6 * (1.0 + std::abs(opt)));
}

TEST_P(GittinsOptimality, MyopicNeverBeatsGittins) {
  Rng rng(1400 + GetParam());
  BanditInstance inst;
  inst.beta = 0.9;
  for (int j = 0; j < 2; ++j)
    inst.projects.push_back(random_project(3, rng));
  const std::vector<std::size_t> start(2, 0);
  const double git = index_policy_value(inst, gittins_table(inst), start);
  const double myo = index_policy_value(inst, myopic_table(inst), start);
  EXPECT_LE(myo, git + 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GittinsOptimality,
                         ::testing::Range(0, 15));

TEST(BanditSim, SimulationApproachesExactValue) {
  Rng rng(5);
  BanditInstance inst;
  inst.beta = 0.9;
  inst.projects.push_back(random_project(3, rng));
  inst.projects.push_back(random_project(4, rng));
  const std::vector<std::size_t> start{0, 0};
  const auto table = gittins_table(inst);
  const double exact = index_policy_value(inst, table, start);
  RunningStat s;
  Rng sim_rng(6);
  for (int i = 0; i < 20000; ++i)
    s.push(simulate_index_policy(inst, table, start, sim_rng));
  EXPECT_NEAR(s.mean(), exact, 5.0 * s.sem() + 1e-3);
}

TEST(Bandit, ProductMdpShape) {
  Rng rng(7);
  BanditInstance inst;
  inst.beta = 0.9;
  inst.projects.push_back(random_project(3, rng));
  inst.projects.push_back(random_project(4, rng));
  const auto m = product_mdp(inst);
  EXPECT_EQ(m.num_states(), 12u);
  EXPECT_EQ(m.actions(0).size(), 2u);
  m.validate();
}

// ---------------------------------------------------------------------------
// Switching costs.
// ---------------------------------------------------------------------------

class Switching : public ::testing::TestWithParam<int> {};

TEST_P(Switching, PolicyOrdering) {
  Rng rng(1600 + GetParam());
  SwitchingInstance inst;
  inst.base.beta = 0.85;
  inst.base.projects.push_back(random_project(3, rng));
  inst.base.projects.push_back(random_project(3, rng));
  inst.switch_cost = rng.uniform(0.0, 1.0);
  const std::vector<std::size_t> start{0, 0};

  const double opt = switching_optimal_value(inst, start);
  const double hyst = switching_hysteresis_value(inst, start);
  const double naive = switching_naive_gittins_value(inst, start);
  EXPECT_LE(hyst, opt + 1e-8);
  EXPECT_LE(naive, opt + 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Switching, ::testing::Range(0, 10));

TEST(Switching, ZeroCostReducesToGittins) {
  Rng rng(9);
  SwitchingInstance inst;
  inst.base.beta = 0.9;
  inst.base.projects.push_back(random_project(3, rng));
  inst.base.projects.push_back(random_project(3, rng));
  inst.switch_cost = 0.0;
  const std::vector<std::size_t> start{0, 0};
  const double opt = switching_optimal_value(inst, start);
  const double naive = switching_naive_gittins_value(inst, start);
  EXPECT_NEAR(naive, opt, 1e-6 * (1.0 + std::abs(opt)));
}

TEST(Switching, LargeCostFavorsStaying) {
  // With a huge switching cost the hysteresis policy should clearly beat
  // naive Gittins on projects designed to make indices flip often.
  MarkovProject flip;
  flip.reward = {1.0, 0.0};
  flip.trans = {{0.0, 1.0}, {1.0, 0.0}};  // alternates every pull
  SwitchingInstance inst;
  inst.base.beta = 0.9;
  inst.base.projects = {flip, flip};
  inst.switch_cost = 5.0;
  const std::vector<std::size_t> start{0, 0};
  const double hyst = switching_hysteresis_value(inst, start);
  const double naive = switching_naive_gittins_value(inst, start);
  EXPECT_GT(hyst, naive + 0.5);
}

TEST(Project, ValidateCatchesBadRows) {
  MarkovProject p;
  p.reward = {1.0, 2.0};
  p.trans = {{0.5, 0.4}, {0.0, 1.0}};  // first row sums to 0.9
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace stosched::bandit
