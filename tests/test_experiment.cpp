// Tests for the experiment subsystem: the replication engine (fixed-length,
// sequential-precision and paired/CRN modes), the scenario registry, and the
// uniform run_replication adapters over the simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "experiment/adapters.hpp"
#include "experiment/engine.hpp"
#include "experiment/scenario.hpp"
#include "queueing/mg1_analytic.hpp"

using namespace stosched;
using namespace stosched::experiment;

namespace {

/// Scalar exponential body used by the generic engine tests.
void exp_body(std::size_t, Rng& rng, std::span<double> out) {
  out[0] = rng.exponential(1.0);
}

/// A short-horizon copy of the registered T9 scenario (tests trade CI width
/// for runtime; the workload itself comes from the registry).
QueueScenario short_t9() {
  QueueScenario s = queue_scenario("t9-three-class");
  s.horizon = 1500.0;
  s.warmup = 150.0;
  return s;
}

QueuePolicy fcfs_arm() { return {"fcfs", queueing::Discipline::kFcfs, {}}; }

QueuePolicy cmu_arm(const QueueScenario& s) {
  return {"c-mu", queueing::Discipline::kPriorityNonPreemptive,
          queueing::cmu_order(s.classes)};
}

}  // namespace

TEST(Engine, FixedRunDeterministicAndCounted) {
  const auto a = run_fixed(1000, 99, 1, exp_body);
  const auto b = run_fixed(1000, 99, 1, exp_body);
  EXPECT_EQ(a.replications, 1000u);
  EXPECT_TRUE(a.converged);
  EXPECT_DOUBLE_EQ(a.metrics[0].mean(), b.metrics[0].mean());
  EXPECT_DOUBLE_EQ(a.metrics[0].variance(), b.metrics[0].variance());
}

TEST(Engine, FixedRunCountsAreExact) {
  // The former monte_carlo shim is gone; run_fixed is the only fixed-length
  // entry point. Pin its count/min/max bookkeeping on a known body.
  const auto engine = run_fixed(1000, 99, 1, exp_body);
  EXPECT_EQ(engine.metrics[0].count(), 1000u);
  EXPECT_GT(engine.metrics[0].min(), 0.0);
  EXPECT_GT(engine.metrics[0].max(), engine.metrics[0].mean());
}

TEST(Engine, SequentialStoppingHitsRequestedPrecision) {
  EngineOptions opt;
  opt.seed = 7;
  opt.rel_precision = 0.02;
  opt.min_replications = 64;
  opt.batch = 128;
  opt.max_replications = 1 << 20;
  const auto res = run(opt, 1, exp_body);
  ASSERT_TRUE(res.converged);
  const double hw = res.metrics[0].ci_halfwidth(opt.alpha);
  EXPECT_LE(hw, opt.rel_precision * std::abs(res.metrics[0].mean()));
  // An exponential CV of 1 needs roughly (1.96/0.02)^2 ~ 9600 replications;
  // the stopping rule should land in that ballpark, not at the cap.
  EXPECT_GT(res.replications, 2000u);
  EXPECT_LT(res.replications, 60000u);
}

TEST(Engine, SequentialStoppingDeterministicInSeedAndPrecision) {
  EngineOptions opt;
  opt.seed = 21;
  opt.rel_precision = 0.05;
  opt.max_replications = 1 << 18;
  const auto a = run(opt, 1, exp_body);
  const auto b = run(opt, 1, exp_body);
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_DOUBLE_EQ(a.metrics[0].mean(), b.metrics[0].mean());
  EXPECT_DOUBLE_EQ(a.metrics[0].variance(), b.metrics[0].variance());

  // Tighter precision keeps all earlier replications (prefix property) and
  // adds more.
  EngineOptions tight = opt;
  tight.rel_precision = 0.02;
  const auto c = run(tight, 1, exp_body);
  EXPECT_GT(c.replications, a.replications);
}

TEST(Engine, StoppingReportsMissWhenCapTooSmall) {
  EngineOptions opt;
  opt.seed = 3;
  opt.rel_precision = 1e-4;  // unreachable within the cap
  opt.max_replications = 512;
  const auto res = run(opt, 1, exp_body);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.replications, 512u);
}

TEST(Engine, PairedDiffMatchesArmMeans) {
  EngineOptions opt;
  opt.seed = 11;
  opt.max_replications = 96;
  const auto s = short_t9();
  const auto res = compare_queue_policies(s, {fcfs_arm(), cmu_arm(s)}, opt,
                                          Pairing::kCommonRandomNumbers);
  ASSERT_EQ(res.arm.size(), 2u);
  ASSERT_EQ(res.diff.size(), 1u);
  EXPECT_EQ(res.replications, 96u);
  // E[X1 - X0] == E[X1] - E[X0] up to floating-point association.
  EXPECT_NEAR(res.diff[0][0].mean(),
              res.arm[1][0].mean() - res.arm[0][0].mean(), 1e-9);
}

TEST(Engine, CrnCutsDifferenceVarianceAtLeastTwofold) {
  // The acceptance test of the CRN design: comparing the WSEPT/c-mu priority
  // against FCFS on the same M/G/1 workload, common random numbers must cut
  // the variance of the cost-rate difference by >= 2x versus independent
  // streams at the same replication count. (Measured factors are far larger
  // because the per-purpose substreams in simulate_mg1 synchronize the
  // workload exactly; 2x is the contract.)
  EngineOptions opt;
  opt.seed = 2026;
  opt.max_replications = 128;
  const auto s = short_t9();
  const std::vector<QueuePolicy> arms{fcfs_arm(), cmu_arm(s)};
  const auto crn =
      compare_queue_policies(s, arms, opt, Pairing::kCommonRandomNumbers);
  const auto ind =
      compare_queue_policies(s, arms, opt, Pairing::kIndependentStreams);
  const double var_crn = crn.diff[0][0].variance();
  const double var_ind = ind.diff[0][0].variance();
  ASSERT_GT(var_ind, 0.0);
  EXPECT_LE(2.0 * var_crn, var_ind)
      << "CRN variance " << var_crn << " vs independent " << var_ind;
  // Both designs estimate the same difference.
  EXPECT_NEAR(crn.diff[0][0].mean(), ind.diff[0][0].mean(),
              4.0 * (crn.diff[0][0].sem() + ind.diff[0][0].sem()));
}

TEST(Engine, PairedSequentialStoppingConverges) {
  EngineOptions opt;
  opt.seed = 5;
  opt.rel_precision = 0.10;
  opt.min_replications = 64;
  opt.batch = 64;
  opt.max_replications = 4096;
  opt.tracked = {0};  // the comparison is about the cost rate
  const auto s = short_t9();
  const auto res = compare_queue_policies(s, {fcfs_arm(), cmu_arm(s)}, opt,
                                          Pairing::kCommonRandomNumbers);
  ASSERT_TRUE(res.converged);
  const double hw = res.diff[0][0].ci_halfwidth(opt.alpha);
  EXPECT_LE(hw, opt.rel_precision * std::abs(res.diff[0][0].mean()) + 1e-12);
}

TEST(Scenarios, RegistryLookupAndUnknownName) {
  const auto& t9 = queue_scenario("t9-three-class");
  EXPECT_EQ(t9.classes.size(), 3u);
  EXPECT_NEAR(t9.load(), 0.25 + 0.20 * (2.0 / 3.0) + 0.15 * 1.3, 1e-12);
  EXPECT_THROW(queue_scenario("no-such-scenario"), std::invalid_argument);
  EXPECT_FALSE(queue_scenario_names().empty());
  EXPECT_FALSE(polling_scenario_names().empty());
  EXPECT_FALSE(restless_scenario_names().empty());
  EXPECT_FALSE(batch_scenario_names().empty());
}

TEST(Scenarios, ScaleToLoadHitsTarget) {
  const auto scaled = scale_to_load(queue_scenario("heavy-tail"), 0.85);
  EXPECT_NEAR(scaled.load(), 0.85, 1e-12);
}

TEST(Scenarios, KlimovScenarioCarriesFeedback) {
  const auto& t10 = queue_scenario("klimov-t10");
  ASSERT_EQ(t10.feedback.size(), 3u);
  EXPECT_NEAR(t10.feedback[0][1], 0.4, 1e-15);
  // options() forwards the feedback matrix for the simulator.
  EXPECT_EQ(t10.options().feedback, t10.feedback);
}

TEST(Adapters, QueueReplicationMatchesDirectSimulate) {
  const auto s = short_t9();
  const auto arm = cmu_arm(s);
  std::vector<double> metrics(metric_count(s), 0.0);
  Rng r1(42);
  run_replication(s, arm, r1, std::span<double>(metrics));

  queueing::SimOptions opt = s.options();
  opt.discipline = arm.discipline;
  opt.priority = arm.priority;
  Rng r2(42);
  const auto direct = queueing::simulate_mg1(s.classes, opt, r2);
  EXPECT_DOUBLE_EQ(metrics[0], direct.cost_rate);
  EXPECT_DOUBLE_EQ(metrics[1], direct.utilization);
  for (std::size_t j = 0; j < s.classes.size(); ++j)
    EXPECT_DOUBLE_EQ(metrics[2 + 3 * j], direct.per_class[j].mean_in_system);

  // Round-trip through the metric layout.
  const auto rebuilt =
      queueing::mg1_result_from_metrics(s.classes,
                                        std::span<const double>(metrics));
  EXPECT_DOUBLE_EQ(rebuilt.cost_rate, direct.cost_rate);
  EXPECT_DOUBLE_EQ(rebuilt.per_class[2].mean_wait,
                   direct.per_class[2].mean_wait);
  EXPECT_EQ(queueing::mg1_metric_names(3).size(),
            queueing::mg1_metric_count(3));
}

TEST(Adapters, SimOptionsValidationRejectsBadRuns) {
  const auto s = short_t9();
  Rng rng(1);
  queueing::SimOptions opt = s.options();
  opt.discipline = queueing::Discipline::kFcfs;
  opt.horizon = -1.0;
  EXPECT_THROW(queueing::simulate_mg1(s.classes, opt, rng),
               std::invalid_argument);
  opt.horizon = 100.0;
  opt.warmup = -5.0;
  EXPECT_THROW(queueing::simulate_mg1(s.classes, opt, rng),
               std::invalid_argument);
  // Non-permutation priority list.
  opt.warmup = 10.0;
  opt.discipline = queueing::Discipline::kPriorityNonPreemptive;
  opt.priority = {0, 0, 2};
  EXPECT_THROW(queueing::simulate_mg1(s.classes, opt, rng),
               std::invalid_argument);
  // Feedback row summing past one.
  opt.priority = {0, 1, 2};
  opt.feedback = {{0.7, 0.7, 0.0}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  EXPECT_THROW(queueing::simulate_mg1(s.classes, opt, rng),
               std::invalid_argument);
}

TEST(Scenarios, NewFamiliesRegistered) {
  EXPECT_FALSE(network_scenario_names().empty());
  EXPECT_FALSE(mmm_scenario_names().empty());
  EXPECT_FALSE(fluid_scenario_names().empty());
  EXPECT_FALSE(tree_scenario_names().empty());
  EXPECT_FALSE(online_scenario_names().empty());
  EXPECT_THROW(network_scenario("no-such"), std::invalid_argument);
  EXPECT_NO_THROW(batch_scenario("turnpike"));
  EXPECT_NO_THROW(batch_scenario("t5-twopoint"));
  EXPECT_NO_THROW(tree_scenario("intree"));
  EXPECT_EQ(batch_scenario("turnpike").machines, 3u);
  EXPECT_EQ(batch_scenario("turnpike").jobs.size(), 100u);
  // Generators are deterministic: same n, same batch.
  const auto a = turnpike_scenario(50);
  const auto b = turnpike_scenario(50);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].weight, b.jobs[i].weight);
    EXPECT_DOUBLE_EQ(a.jobs[i].processing->mean(), b.jobs[i].processing->mean());
  }
}

TEST(Scenarios, NonPoissonConfigurationsReachableByName) {
  // The bursty polling / parallel-server configurations the simulators
  // already supported are now registered scenarios, and the heavy-tailed
  // Lu–Kumar variant carries its service laws through the registry.
  const PollingScenario& polling = polling_scenario("t11-bursty");
  for (const auto& c : polling.classes) {
    ASSERT_NE(c.arrival, nullptr);
    EXPECT_NEAR(c.arrival->burstiness(), 6.0, 1e-9);
  }
  const MmmScenario& mmm = mmm_scenario("parallel-pooling-bursty");
  EXPECT_NEAR(mmm.load(), 0.85, 1e-9);
  for (const auto& c : mmm.classes) {
    ASSERT_NE(c.arrival, nullptr);
    EXPECT_NEAR(c.arrival->burstiness(), 6.0, 1e-9);
  }
  const NetworkScenario& ht = network_scenario("lu-kumar-ht");
  ASSERT_NE(ht.config.classes[1].service, nullptr);
  EXPECT_NEAR(ht.config.classes[1].service->scv(), 6.0, 1e-9);
  // Heavy-tailed services keep the same nominal intensities as the base.
  const auto rho = ht.intensities();
  EXPECT_NEAR(rho[0], 0.01 + 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(rho[1], 2.0 / 3.0 + 0.01, 1e-9);
}

TEST(Scenarios, LuKumarIntensitiesSubcritical) {
  // station_intensities through the registered scenario: both stations are
  // nominally stable, the classic precondition of the instability result.
  const auto& s = network_scenario("lu-kumar");
  const auto rho = s.intensities();
  ASSERT_EQ(rho.size(), 2u);
  EXPECT_NEAR(rho[0], 0.01 + 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rho[1], 2.0 / 3.0 + 0.01, 1e-12);
  EXPECT_LT(rho[0], 1.0);
  EXPECT_LT(rho[1], 1.0);
}

TEST(Scenarios, MmmSweepHelpersPreserveStructure) {
  const auto base = mmm_scenario("parallel-pooling");
  EXPECT_NEAR(base.load(), 0.85, 1e-12);
  const auto heavy = mmm_scale_to_load(base, 0.95);
  EXPECT_NEAR(heavy.load(), 0.95, 1e-12);
  // Server-count sweep keeps the per-server load invariant.
  const auto pooled = with_servers(base, 4);
  EXPECT_EQ(pooled.servers, 4u);
  EXPECT_NEAR(pooled.load(), base.load(), 1e-12);
  EXPECT_NEAR(queueing::traffic_intensity(pooled.classes),
              2.0 * queueing::traffic_intensity(base.classes), 1e-12);
}

TEST(Adapters, MmmReplicationMatchesDirectSimulate) {
  MmmScenario s = mmm_scenario("parallel-pooling");
  s.horizon = 2000.0;
  s.warmup = 200.0;
  const MmmPolicy arm{"c-mu", queueing::cmu_order(s.classes)};
  std::vector<double> metrics(metric_count(s), 0.0);
  Rng r1(42);
  run_replication(s, arm, r1, std::span<double>(metrics));
  Rng r2(42);
  const auto direct = queueing::simulate_mmm(s.classes, s.servers,
                                             arm.priority, s.horizon,
                                             s.warmup, r2);
  EXPECT_DOUBLE_EQ(metrics[0], direct.cost_rate);
  EXPECT_DOUBLE_EQ(metrics[1], direct.utilization);
  for (std::size_t j = 0; j < s.classes.size(); ++j)
    EXPECT_DOUBLE_EQ(metrics[2 + j], direct.mean_in_system[j]);
  EXPECT_EQ(queueing::mmm_metric_names(2).size(),
            queueing::mmm_metric_count(2));
}

TEST(Adapters, NetworkGrowthSignSeparatesStableFromBad) {
  // lu_kumar_network through the engine adapters: the destabilizing
  // priority pair shows a clearly positive mean growth rate, FCFS and the
  // safe pair do not — the sign structure bench F6 reports.
  NetworkScenario s = network_scenario("lu-kumar");
  s.horizon = 8000.0;
  s.samples = 40;
  const auto arms = lu_kumar_policies();
  ASSERT_EQ(arms.size(), 3u);
  EngineOptions opt;
  opt.seed = 31;
  opt.max_replications = 4;
  const auto bad = run_network(s, arms[0], opt);
  const auto fcfs = run_network(s, arms[1], opt);
  const auto safe = run_network(s, arms[2], opt);
  EXPECT_GT(bad.metrics[2].mean(), 0.05);
  EXPECT_LT(std::abs(fcfs.metrics[2].mean()), 0.002);
  EXPECT_LT(std::abs(safe.metrics[2].mean()), 0.002);
  EXPECT_GT(bad.metrics[0].mean(), 20.0 * fcfs.metrics[0].mean());
}

TEST(Engine, NetworkCrnCutsDifferenceVarianceAtLeastTwofold) {
  // The satellite acceptance test of the per-class substream refactor:
  // comparing two *stable* priority assignments on the Lu–Kumar workload
  // (they differ only in station A's order), common random numbers must cut
  // the variance of the mean-backlog difference by >= 2x versus independent
  // streams at the same replication count. (Measured factor is ~3x; the
  // per-class substreams replay the identical workload under any priority
  // order, so only the scheduling difference remains.)
  NetworkScenario s = network_scenario("lu-kumar");
  s.horizon = 4000.0;
  s.samples = 40;
  const std::vector<NetworkPolicy> pair{
      {"safe", {{0, 3}, {2, 1}}},
      {"swap-A", {{3, 0}, {2, 1}}}};
  EngineOptions opt;
  opt.seed = 404;
  opt.max_replications = 48;
  const auto crn =
      compare_network_policies(s, pair, opt, Pairing::kCommonRandomNumbers);
  const auto ind =
      compare_network_policies(s, pair, opt, Pairing::kIndependentStreams);
  const double var_crn = crn.diff[0][0].variance();
  const double var_ind = ind.diff[0][0].variance();
  ASSERT_GT(var_ind, 0.0);
  EXPECT_LE(2.0 * var_crn, var_ind)
      << "CRN variance " << var_crn << " vs independent " << var_ind;
  EXPECT_NEAR(crn.diff[0][0].mean(), ind.diff[0][0].mean(),
              4.0 * (crn.diff[0][0].sem() + ind.diff[0][0].sem()));
}

TEST(Adapters, FluidReplicationTracksFluidLimit) {
  FluidScenario s = fluid_scenario("f7-fluid");
  s.scale = 100.0;  // cheaper than the bench's 400 and still tight
  const auto priority = queueing::fluid_cmu_priority(s.classes);
  EngineOptions opt;
  opt.seed = 12;
  opt.max_replications = 24;
  const auto res = run_fluid(s, priority, opt);
  ASSERT_EQ(res.metrics.size(), metric_count(s));
  const auto fluid = queueing::fluid_drain(s.classes, s.initial, priority);
  // Cost integral close to the fluid prediction; path point mid-drain too.
  EXPECT_NEAR(res.metrics[0].mean(), fluid.cost_integral,
              0.15 * fluid.cost_integral);
  const auto mid = fluid.at(0.5 * fluid.drain_time);
  const std::size_t nc = s.classes.size();
  EXPECT_NEAR(res.metrics[1 + 4 * nc + 1].mean(), mid[1], 0.15 * (1.0 + mid[1]));
  EXPECT_EQ(metric_names(s).size(), metric_count(s));
}

TEST(Adapters, TreeComparisonRunsUnderCrn) {
  const TreeScenario s = intree_scenario(40);
  EngineOptions opt;
  opt.seed = 8;
  opt.max_replications = 64;
  const auto cmp = compare_tree_policies(
      s,
      {batch::TreePolicy::kHighestLevelFirst,
       batch::TreePolicy::kFifoEligible},
      opt, Pairing::kCommonRandomNumbers);
  EXPECT_EQ(cmp.replications, 64u);
  EXPECT_GT(cmp.arm[0][0].mean(), 0.0);
  // HLF is never worse in expectation (allow CRN-tight noise).
  EXPECT_LE(cmp.arm[0][0].mean(),
            cmp.arm[1][0].mean() + 2.0 * cmp.diff[0][0].sem() + 0.05);
}

TEST(Scenarios, ArrivalFamiliesRegistered) {
  // The bursty/SCV variants carry the same effective rates (and hence the
  // same nominal load) as their Poisson bases — only the arrival law
  // changes.
  const auto& t9 = queue_scenario("t9-three-class");
  const auto& bursty = queue_scenario("t9-bursty");
  const auto& scv4 = queue_scenario("t9-scv4");
  EXPECT_NEAR(bursty.load(), t9.load(), 1e-9);
  EXPECT_NEAR(scv4.load(), t9.load(), 1e-9);
  for (const auto& c : bursty.classes) {
    ASSERT_NE(c.arrival, nullptr);
    EXPECT_STREQ(c.arrival->kind(), "mmpp");
    EXPECT_NEAR(c.arrival->burstiness(), 9.0, 1e-9);
  }
  for (const auto& c : scv4.classes) {
    ASSERT_NE(c.arrival, nullptr);
    EXPECT_STREQ(c.arrival->kind(), "renewal");
    EXPECT_NEAR(c.arrival->burstiness(), 4.0, 1e-9);
  }
  EXPECT_NO_THROW(queue_scenario("call-center-bursty"));
  EXPECT_NO_THROW(network_scenario("lu-kumar-bursty"));
  EXPECT_NO_THROW(network_scenario("rybko-stolyar"));
  EXPECT_NO_THROW(network_scenario("dai-wang-reentrant"));
}

TEST(Scenarios, ArrivalSweepsComposeWithLoadScaling) {
  // scale_to_load rescales attached arrival processes in time, so the
  // target load is hit exactly and burstiness/SCV are preserved.
  const auto scaled = scale_to_load(queue_scenario("t9-bursty"), 0.95);
  EXPECT_NEAR(scaled.load(), 0.95, 1e-9);
  for (const auto& c : scaled.classes)
    EXPECT_NEAR(c.arrival->burstiness(), 9.0, 1e-9);
  const auto swept = with_arrival_scv(queue_scenario("heavy-tail"), 2.5);
  EXPECT_NEAR(swept.load(), queue_scenario("heavy-tail").load(), 1e-9);
  for (const auto& c : swept.classes)
    EXPECT_NEAR(c.arrival->burstiness(), 2.5, 1e-9);
}

TEST(Scenarios, RybkoStolyarIntensitiesSubcritical) {
  const auto& rs = network_scenario("rybko-stolyar");
  const auto rho = rs.intensities();
  ASSERT_EQ(rho.size(), 2u);
  EXPECT_NEAR(rho[0], 0.61, 1e-12);
  EXPECT_NEAR(rho[1], 0.61, 1e-12);
  const auto& dw = network_scenario("dai-wang-reentrant");
  const auto dw_rho = dw.intensities();
  ASSERT_EQ(dw_rho.size(), 2u);
  EXPECT_NEAR(dw_rho[0], 0.85, 1e-12);
  EXPECT_NEAR(dw_rho[1], 0.90, 1e-12);
}

TEST(Adapters, RybkoStolyarExitPrioritySelfStarves) {
  // Both stations sit at rho = 0.61, yet prioritizing the exit classes
  // diverges (virtual-station load 1.2 > 1) while FCFS and the entry
  // priority stay flat — the crossing-routes cousin of Lu–Kumar.
  NetworkScenario s = network_scenario("rybko-stolyar");
  s.horizon = 8000.0;
  s.samples = 40;
  const auto arms = rybko_stolyar_policies();
  ASSERT_EQ(arms.size(), 3u);
  EngineOptions opt;
  opt.seed = 33;
  opt.max_replications = 4;
  const auto bad = run_network(s, arms[0], opt);
  const auto fcfs = run_network(s, arms[1], opt);
  const auto safe = run_network(s, arms[2], opt);
  EXPECT_GT(bad.metrics[2].mean(), 0.02);
  EXPECT_LT(std::abs(fcfs.metrics[2].mean()), 0.005);
  EXPECT_LT(std::abs(safe.metrics[2].mean()), 0.005);
  EXPECT_GT(bad.metrics[0].mean(), 5.0 * fcfs.metrics[0].mean());
}

TEST(Adapters, ReentrantLinePoliciesRunUnderCrn) {
  // The Dai–Wang-style re-entrant line through the engine: LBFS / FBFS /
  // FCFS all run on the shared workload, and the subcritical line stays
  // stable under FCFS (no systematic growth).
  NetworkScenario s = network_scenario("dai-wang-reentrant");
  s.horizon = 4000.0;
  s.samples = 40;
  const auto arms = reentrant_policies(s.config);
  ASSERT_EQ(arms.size(), 3u);
  EXPECT_EQ(arms[0].name, "LBFS");
  // Buffer order at station 0 is {0, 2, 4} (FBFS) and reversed for LBFS.
  EXPECT_EQ(arms[1].station_priority[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(arms[0].station_priority[0], (std::vector<std::size_t>{4, 2, 0}));
  EngineOptions opt;
  opt.seed = 71;
  opt.max_replications = 8;
  const auto cmp = compare_network_policies(s, arms, opt,
                                            Pairing::kCommonRandomNumbers);
  EXPECT_EQ(cmp.replications, 8u);
  for (std::size_t k = 0; k < arms.size(); ++k)
    EXPECT_GT(cmp.arm[k][0].mean(), 0.0);
}

TEST(Engine, BurstyScenarioSequentialStoppingConverges) {
  // Sequential-precision stopping must work for non-Poisson input too: a
  // short bursty T9 run tracked on the cost rate converges and hits the
  // requested precision.
  QueueScenario s = queue_scenario("t9-bursty");
  s.horizon = 1200.0;
  s.warmup = 120.0;
  EngineOptions opt;
  opt.seed = 17;
  opt.rel_precision = 0.15;
  opt.min_replications = 32;
  opt.batch = 64;
  opt.max_replications = 1 << 14;
  opt.tracked = {0};
  const auto res = run_queue(s, fcfs_arm(), opt);
  ASSERT_TRUE(res.converged);
  const double hw = res.metrics[0].ci_halfwidth(opt.alpha);
  EXPECT_LE(hw, opt.rel_precision * std::abs(res.metrics[0].mean()) + 1e-12);
}

TEST(Adapters, NewQueueScenariosSmokeThroughReplication) {
  // Every new arrival-process scenario is runnable through the uniform
  // run_replication adapter (one cheap replication each).
  for (const char* name : {"t9-bursty", "t9-scv4", "call-center-bursty"}) {
    QueueScenario s = queue_scenario(name);
    s.horizon = 400.0;
    s.warmup = 40.0;
    std::vector<double> metrics(metric_count(s), 0.0);
    Rng rng(5);
    run_replication(s, fcfs_arm(), rng, std::span<double>(metrics));
    EXPECT_GT(metrics[1], 0.0) << name;  // utilization
  }
  for (const char* name :
       {"lu-kumar-bursty", "rybko-stolyar", "dai-wang-reentrant"}) {
    NetworkScenario s = network_scenario(name);
    s.horizon = 500.0;
    s.samples = 10;
    std::vector<double> metrics(metric_count(s), 0.0);
    Rng rng(6);
    run_replication(s, NetworkPolicy{"FCFS", {}}, rng,
                    std::span<double>(metrics));
    EXPECT_GT(metrics[0], 0.0) << name;  // mean_total
  }
}

TEST(Adapters, RestlessAndBatchReplicationsRun) {
  const auto& f3 = restless_scenario("f3-decay");
  const restless::PriorityTable uniform(
      f3.projects,
      std::vector<double>(f3.prototype.num_states(), 1.0));
  RestlessScenario quick = f3;
  quick.horizon = 500;
  quick.burnin = 50;
  EngineOptions opt;
  opt.seed = 9;
  opt.max_replications = 8;
  const auto res = run_restless(quick, uniform, opt);
  EXPECT_EQ(res.replications, 8u);
  EXPECT_GT(res.metrics[0].mean(), 0.0);

  const auto& qs = batch_scenario("quickstart-four-jobs");
  batch::Order order{0, 1, 2, 3};
  const auto bres = run_batch(qs, order, opt);
  EXPECT_EQ(bres.replications, 8u);
  EXPECT_GT(bres.metrics[0].mean(), 0.0);
}
