// Tests for queueing/ network, polling, parallel servers and fluid models
// (survey §3): Lu–Kumar instability vs FCFS stability, M/M/m closed forms,
// polling sanity, fluid trajectories and the fluid-stochastic coupling.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/fluid.hpp"
#include "queueing/network.hpp"
#include "queueing/parallel_servers.hpp"
#include "queueing/polling.hpp"
#include "util/rng.hpp"

namespace stosched::queueing {
namespace {

// ---------------------------------------------------------------------------
// Multistation network (Lu–Kumar).
// ---------------------------------------------------------------------------

TEST(Network, StationIntensitiesOfLuKumar) {
  const auto cfg = lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0,
                                    /*bad_priority=*/true);
  const auto rho = station_intensities(cfg);
  ASSERT_EQ(rho.size(), 2u);
  EXPECT_NEAR(rho[0], 0.01 + 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rho[1], 2.0 / 3.0 + 0.01, 1e-12);
  EXPECT_LT(rho[0], 1.0);
  EXPECT_LT(rho[1], 1.0);
}

TEST(Network, BadPriorityDivergesFcfsDoesNot) {
  // Both stations have rho < 1, yet m2 + m4 = 4/3 > 1 destabilizes the
  // priority pair. FCFS stays put.
  Rng r1(1), r2(2);
  const double horizon = 30000.0;
  const auto bad = simulate_network(
      lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0, true), horizon,
      60, r1);
  const auto fcfs = simulate_network(
      lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0, false), horizon,
      60, r2);
  EXPECT_GT(bad.growth_rate, 5.0 * std::max(1e-4, std::abs(fcfs.growth_rate)));
  EXPECT_GT(bad.final_total, 10.0 * std::max(1.0, fcfs.final_total));
}

TEST(Network, SubcriticalSafePrioritiesStable) {
  // Give priority to the *first* stage at each station; this drains safely.
  auto cfg = lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0, true);
  cfg.station_priority = {{0, 3}, {2, 1}};
  Rng rng(3);
  const auto trace = simulate_network(cfg, 30000.0, 60, rng);
  EXPECT_LT(trace.final_total, 200.0);
}

TEST(Network, ExponentialServiceLawBitIdenticalToDefaultPath) {
  // The acceptance regression for DistPtr services: attaching an explicit
  // exponential law with the same mean must reproduce the historical
  // `service_mean` sample path bit-for-bit (identical draws, identical
  // metrics) — the default path is the null-service case.
  const auto base = lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0,
                                     /*bad_priority=*/true);
  auto law = base;
  for (auto& c : law.classes) c.service = exponential_dist(1.0 / c.service_mean);
  Rng r1(7), r2(7);
  const auto a = simulate_network(base, 4000.0, 20, r1);
  const auto b = simulate_network(law, 4000.0, 20, r2);
  EXPECT_DOUBLE_EQ(a.mean_total, b.mean_total);
  EXPECT_DOUBLE_EQ(a.final_total, b.final_total);
  EXPECT_DOUBLE_EQ(a.growth_rate, b.growth_rate);
  ASSERT_EQ(a.total_jobs.size(), b.total_jobs.size());
  for (std::size_t i = 0; i < a.total_jobs.size(); ++i)
    EXPECT_DOUBLE_EQ(a.total_jobs[i], b.total_jobs[i]);
}

TEST(Network, DeterministicServiceMatchesMd1ClosedForm) {
  // One class, one station, deterministic service: the time-average number
  // in system must match the M/D/1 Pollaczek–Khinchine value
  // L = rho + rho^2 / (2 (1 - rho)).
  NetworkConfig cfg;
  cfg.num_stations = 1;
  NetworkClass c;
  c.station = 0;
  c.service_mean = 99.0;  // must be ignored once a law is attached
  c.service = deterministic_dist(0.5);
  c.next = NetworkClass::kExit;
  c.arrival_rate = 1.0;
  cfg.classes = {c};
  EXPECT_NEAR(station_intensities(cfg)[0], 0.5, 1e-12);
  Rng rng(11);
  const auto trace = simulate_network(cfg, 60000.0, 60, rng);
  const double rho = 0.5;
  const double expected = rho + rho * rho / (2.0 * (1.0 - rho));
  EXPECT_NEAR(trace.mean_total, expected, 0.05);
}

TEST(Network, HeavyTailedServicesInflateBacklogUnderFcfs) {
  // Same rates and means, SCV-6 services at the exit stages: the FCFS
  // backlog must sit well above the exponential-service baseline (the
  // PK-style variance penalty carried through the network path).
  const auto base = lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0,
                                     /*bad_priority=*/false);
  auto heavy = base;
  heavy.classes[1].service = hyperexp2_dist(2.0 / 3.0, 6.0);
  heavy.classes[3].service = hyperexp2_dist(2.0 / 3.0, 6.0);
  Rng r1(5), r2(5);
  const auto light = simulate_network(base, 30000.0, 60, r1);
  const auto ht = simulate_network(heavy, 30000.0, 60, r2);
  EXPECT_GT(ht.mean_total, 1.5 * light.mean_total);
  // Still stable: no linear growth.
  EXPECT_LT(std::abs(ht.growth_rate), 5e-3);
}

TEST(Network, ValidationCatchesCrossStationPriority) {
  auto cfg = lu_kumar_network(1.0, 0.1, 0.5, 0.1, 0.5, true);
  cfg.station_priority[0] = {3, 0};
  cfg.station_priority[1] = {1, 2, 0};  // class 0 lives at station A
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Network, ValidationRejectsPartialPriorityList) {
  // Regression: a station list that omits one of its classes used to pass
  // validation, and the dispatch scan would then never serve the omitted
  // class — jobs accumulate unboundedly and mean_total/growth_rate report
  // fake "instability". Such configs must throw now.
  auto cfg = lu_kumar_network(1.0, 0.1, 0.5, 0.1, 0.5, true);
  cfg.station_priority[0] = {3};  // omits class 0 at station A: starvation
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(
      {
        Rng rng(1);
        simulate_network(cfg, 1000.0, 10, rng);
      },
      std::invalid_argument);
  // Duplicates are not a permutation either.
  cfg.station_priority[0] = {3, 3};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // The full lists are fine.
  cfg.station_priority[0] = {3, 0};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Network, CrnReplaysIdenticalWorkloadAcrossPriorities) {
  // Per-class arrival/service substreams: two different priority
  // assignments fed the same caller Rng state see the same arrival epochs
  // and service requirements, so a *stable* quantity like the long-run
  // throughput balance shows strongly coupled traces. Weak proxy assertion:
  // identical seeds under FCFS vs safe priority give close totals, while
  // the trace lengths match exactly.
  const double horizon = 5000.0;
  auto safe = lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0, true);
  safe.station_priority = {{0, 3}, {2, 1}};
  const auto fcfs =
      lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01, 2.0 / 3.0, false);
  Rng r1(99), r2(99);
  const auto a = simulate_network(fcfs, horizon, 50, r1);
  const auto b = simulate_network(safe, horizon, 50, r2);
  ASSERT_EQ(a.times.size(), b.times.size());
  // Same external arrivals: the cumulative job counts can differ only by
  // what is in flight, never drift apart.
  EXPECT_LT(std::abs(a.final_total - b.final_total), 50.0);
}

// ---------------------------------------------------------------------------
// Parallel servers.
// ---------------------------------------------------------------------------

TEST(ParallelServers, MatchesErlangCMeanQueue) {
  // M/M/2 with lambda = 1.2, mu = 1: Erlang-C closed form.
  const double lambda = 1.2, mu = 1.0;
  const unsigned m = 2;
  const double a = lambda / mu;  // offered load
  const double rho = a / m;
  // Erlang C for m=2: C = a^2 / (2 (1 - rho)) / (1 + a + a^2/(2(1-rho))).
  const double tail = a * a / (2.0 * (1.0 - rho));
  const double c = tail / (1.0 + a + tail);
  const double lq = c * rho / (1.0 - rho);
  const double expected_l = lq + a;

  std::vector<ClassSpec> classes{{lambda, exponential_dist(mu), 1.0}};
  Rng rng(4);
  const auto res = simulate_mmm(classes, m, {0}, 3e5, 3e4, rng);
  EXPECT_NEAR(res.mean_in_system[0], expected_l, 0.05 * expected_l);
  EXPECT_NEAR(res.utilization, rho, 0.02);
}

TEST(ParallelServers, PriorityShieldsTopClass) {
  std::vector<ClassSpec> classes{{0.8, exponential_dist(1.0), 1.0},
                                 {0.8, exponential_dist(1.0), 1.0}};
  Rng rng(5);
  const auto res = simulate_mmm(classes, 2, {0, 1}, 2e5, 2e4, rng);
  EXPECT_LT(res.mean_in_system[0], res.mean_in_system[1]);
}

TEST(ParallelServers, RejectsNonPermutationPriority) {
  // Regression: an out-of-range priority entry used to be an out-of-bounds
  // write into rank[]; a duplicate silently mis-ranked the missing class.
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.3, exponential_dist(1.0), 1.0}};
  Rng rng(1);
  EXPECT_THROW(simulate_mmm(classes, 2, {0, 5}, 1e3, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_mmm(classes, 2, {0, 0}, 1e3, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_mmm(classes, 2, {0}, 1e3, 0.0, rng),
               std::invalid_argument);
}

TEST(ParallelServers, WarmupResetsAtExactEpochUnderSparseTraffic) {
  // Regression: the time-averages used to restart at the first event *at or
  // after* warmup (and never restarted if no event followed warmup), biasing
  // sparse-traffic estimates. Find a seed whose derived arrival substream
  // puts one arrival before the warmup epoch and the next one beyond the
  // horizon; with an effectively infinite service the window [warmup,
  // warmup + horizon] then holds exactly one permanently-in-service job, so
  // the unbiased time averages are exactly 1.
  const double lambda = 0.02, warmup = 100.0, horizon = 100.0;
  const double t_end = warmup + horizon;
  std::uint64_t seed = 0;
  double t0 = 0.0, t1 = 0.0;
  bool found = false;
  for (std::uint64_t s = 0; s < 20000 && !found; ++s) {
    // Mirror the documented substream derivation: one draw of the caller's
    // Rng seeds the root, arrivals of class 0 come from root.stream(0).
    Rng caller(s);
    Rng arrivals = Rng(caller()).stream(0);
    t0 = arrivals.exponential(lambda);
    t1 = t0 + arrivals.exponential(lambda);
    if (t0 < warmup && t1 > t_end) {
      seed = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no qualifying seed below 20000";

  std::vector<ClassSpec> classes{{lambda, deterministic_dist(1e9), 1.0}};
  Rng rng(seed);
  const auto res = simulate_mmm(classes, 1, {0}, horizon, warmup, rng);
  EXPECT_DOUBLE_EQ(res.mean_in_system[0], 1.0);
  EXPECT_DOUBLE_EQ(res.utilization, 1.0);
}

TEST(ParallelServers, WarmupCreditsSegmentBeforeFirstPostWarmupEvent) {
  // Companion regression: when an event does follow warmup, the segment
  // [warmup, first event) must be credited at the pre-warmup level instead
  // of being dropped. One arrival before warmup, a second inside the
  // window, none after: with infinite services the exact time average is
  //   (1 * (t1 - warmup) + 2 * (t_end - t1)) / horizon.
  const double lambda = 0.02, warmup = 100.0, horizon = 100.0;
  const double t_end = warmup + horizon;
  std::uint64_t seed = 0;
  double t1 = 0.0;
  bool found = false;
  for (std::uint64_t s = 0; s < 50000 && !found; ++s) {
    Rng caller(s);
    Rng arrivals = Rng(caller()).stream(0);
    const double a0 = arrivals.exponential(lambda);
    const double a1 = a0 + arrivals.exponential(lambda);
    const double a2 = a1 + arrivals.exponential(lambda);
    if (a0 < warmup && a1 > warmup + 5.0 && a1 < t_end - 5.0 && a2 > t_end) {
      seed = s;
      t1 = a1;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no qualifying seed below 50000";

  std::vector<ClassSpec> classes{{lambda, deterministic_dist(1e9), 1.0}};
  Rng rng(seed);
  const auto res = simulate_mmm(classes, 1, {0}, horizon, warmup, rng);
  const double expected =
      (1.0 * (t1 - warmup) + 2.0 * (t_end - t1)) / horizon;
  EXPECT_DOUBLE_EQ(res.mean_in_system[0], expected);
  EXPECT_DOUBLE_EQ(res.utilization, 1.0);
}

TEST(ParallelServers, PooledBoundIsALowerBound) {
  std::vector<ClassSpec> classes{{0.9, exponential_dist(1.0), 2.0},
                                 {0.8, exponential_dist(1.5), 1.0}};
  const unsigned m = 2;
  const double bound = pooled_lower_bound(classes, m);
  // Simulated cµ priority cost must dominate the relaxation bound.
  std::vector<std::size_t> order{0, 1};  // cµ: 2*1 vs 1*1.5 -> class 0 first
  Rng rng(6);
  const auto res = simulate_mmm(classes, m, order, 3e5, 3e4, rng);
  EXPECT_GE(res.cost_rate, bound * 0.98);
}

// ---------------------------------------------------------------------------
// Polling.
// ---------------------------------------------------------------------------

TEST(Polling, ZeroSwitchoverExhaustiveMatchesMg1Workload) {
  // With near-zero switchovers, exhaustive polling of symmetric queues
  // behaves like a work-conserving single server: total L close to M/M/1.
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.3, exponential_dist(1.0), 1.0}};
  PollingOptions opt;
  opt.discipline = PollingDiscipline::kExhaustive;
  opt.switchover = deterministic_dist(1e-6);
  opt.horizon = 3e5;
  opt.warmup = 3e4;
  Rng rng(7);
  const auto res = simulate_polling(classes, opt, rng);
  const double total = res.mean_in_system[0] + res.mean_in_system[1];
  EXPECT_NEAR(total, 0.6 / 0.4, 0.12);  // M/M/1 with rho = 0.6
  EXPECT_LT(res.switching_fraction, 0.02);
}

TEST(Polling, SetupsConsumeCapacity) {
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.3, exponential_dist(1.0), 1.0}};
  PollingOptions small, big;
  small.switchover = deterministic_dist(0.05);
  big.switchover = deterministic_dist(1.0);
  small.horizon = big.horizon = 2e5;
  small.warmup = big.warmup = 2e4;
  Rng r1(8), r2(9);
  const auto rs = simulate_polling(classes, small, r1);
  const auto rb = simulate_polling(classes, big, r2);
  EXPECT_GT(rb.switching_fraction, rs.switching_fraction);
  EXPECT_GT(rb.cost_rate, rs.cost_rate);
}

TEST(Polling, LimitedSwitchesMoreThanExhaustive) {
  std::vector<ClassSpec> classes{{0.25, exponential_dist(1.0), 1.0},
                                 {0.25, exponential_dist(1.0), 1.0}};
  PollingOptions ex, lim;
  ex.discipline = PollingDiscipline::kExhaustive;
  lim.discipline = PollingDiscipline::kLimited;
  lim.limit = 1;
  ex.switchover = lim.switchover = deterministic_dist(0.3);
  ex.horizon = lim.horizon = 2e5;
  ex.warmup = lim.warmup = 2e4;
  Rng r1(10), r2(11);
  const auto re = simulate_polling(classes, ex, r1);
  const auto rl = simulate_polling(classes, lim, r2);
  EXPECT_GT(rl.switching_fraction, re.switching_fraction);
}

TEST(Polling, RequiresSwitchoverLaw) {
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0}};
  PollingOptions opt;  // no switchover set
  Rng rng(12);
  EXPECT_THROW(simulate_polling(classes, opt, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fluid model.
// ---------------------------------------------------------------------------

TEST(Fluid, SingleClassDrainTime) {
  // q0 = 10, lambda = 0.2, mu = 1: drains at rate 0.8 -> t = 12.5.
  std::vector<FluidClass> classes{{0.2, 1.0, 1.0}};
  const auto traj = fluid_drain(classes, {10.0}, {0});
  EXPECT_NEAR(traj.drain_time, 12.5, 1e-9);
  // Cost integral of a triangle: c * q0 * T / 2.
  EXPECT_NEAR(traj.cost_integral, 10.0 * 12.5 / 2.0, 1e-6);
}

TEST(Fluid, PriorityDrainsTopClassFirst) {
  std::vector<FluidClass> classes{{0.0, 1.0, 2.0}, {0.0, 1.0, 1.0}};
  const auto traj = fluid_drain(classes, {5.0, 5.0}, {0, 1});
  // Class 0 empties at t=5 while class 1 untouched; then class 1 by t=10.
  const auto at5 = traj.at(5.0);
  EXPECT_NEAR(at5[0], 0.0, 1e-9);
  EXPECT_NEAR(at5[1], 5.0, 1e-9);
  EXPECT_NEAR(traj.drain_time, 10.0, 1e-9);
}

TEST(Fluid, CmuPriorityMinimizesCostAmongOrders) {
  std::vector<FluidClass> classes{{0.1, 2.0, 1.0},   // cµ = 2
                                  {0.1, 1.0, 3.0},   // cµ = 3
                                  {0.1, 0.5, 1.0}};  // cµ = 0.5
  const std::vector<double> q0{8.0, 8.0, 8.0};
  const auto cmu = fluid_cmu_priority(classes);
  const double best = fluid_drain(classes, q0, cmu).cost_integral;
  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    EXPECT_GE(fluid_drain(classes, q0, order).cost_integral, best - 1e-6);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Fluid, ScaledStochasticPathTracksFluid) {
  // Functional LLN: q(nt)/n near the fluid path for large n.
  std::vector<FluidClass> classes{{0.3, 1.0, 2.0}, {0.2, 0.8, 1.0}};
  const std::vector<std::size_t> priority{0, 1};
  const double scale = 400.0;
  const std::vector<double> q0{1.0, 1.5};
  std::vector<double> q0_scaled{scale * 1.0, scale * 1.5};
  const auto fluid =
      fluid_drain(classes, q0, priority);

  std::vector<double> sample_times;
  for (int i = 1; i <= 8; ++i)
    sample_times.push_back(fluid.drain_time * i / 10.0 * scale);
  std::vector<std::size_t> init{static_cast<std::size_t>(q0_scaled[0]),
                                static_cast<std::size_t>(q0_scaled[1])};
  Rng rng(13);
  const auto paths =
      simulate_backlog_path(classes, init, priority, sample_times, rng);
  for (std::size_t i = 0; i < sample_times.size(); ++i) {
    const auto expected = fluid.at(sample_times[i] / scale);
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(paths[i][j] / scale, expected[j],
                  0.15 * (1.0 + expected[j]))
          << "sample " << i << " class " << j;
  }
}

TEST(Fluid, TrajectoryInterpolation) {
  std::vector<FluidClass> classes{{0.0, 1.0, 1.0}};
  const auto traj = fluid_drain(classes, {4.0}, {0});
  EXPECT_NEAR(traj.at(2.0)[0], 2.0, 1e-9);
  EXPECT_NEAR(traj.at(100.0)[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace stosched::queueing
