// Tests for queueing/mg1: the simulator against closed forms — M/M/1,
// Pollaczek–Khinchine, Cobham, preemptive-resume — plus Little's law and
// Kleinrock's conservation law as built-in invariants. These are the tests
// that certify the survey-§3 experiment harness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/conservation.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1_analytic.hpp"
#include "util/rng.hpp"

namespace stosched::queueing {
namespace {

SimOptions fcfs_options(double horizon = 4e5) {
  SimOptions opt;
  opt.discipline = Discipline::kFcfs;
  opt.horizon = horizon;
  opt.warmup = horizon / 10.0;
  return opt;
}

TEST(Mg1Analytic, MM1ClosedForms) {
  // M/M/1 with lambda = 0.6, mu = 1: W_q = rho/(mu - lambda) = 1.5.
  std::vector<ClassSpec> classes{{0.6, exponential_dist(1.0), 1.0}};
  EXPECT_NEAR(traffic_intensity(classes), 0.6, 1e-12);
  EXPECT_NEAR(mean_residual_work(classes), 0.6, 1e-12);
  EXPECT_NEAR(pk_fcfs_wait(classes), 1.5, 1e-12);
}

TEST(Mg1Analytic, PkGrowsWithServiceVariability) {
  // Same mean, higher SCV -> longer FCFS waits (the PK shape).
  std::vector<ClassSpec> det{{0.6, deterministic_dist(1.0), 1.0}};
  std::vector<ClassSpec> exp{{0.6, exponential_dist(1.0), 1.0}};
  std::vector<ClassSpec> h2{{0.6, hyperexp2_dist(1.0, 5.0), 1.0}};
  EXPECT_LT(pk_fcfs_wait(det), pk_fcfs_wait(exp));
  EXPECT_LT(pk_fcfs_wait(exp), pk_fcfs_wait(h2));
}

TEST(Mg1Analytic, CobhamReducesToPkForOneClass) {
  std::vector<ClassSpec> classes{{0.7, erlang_dist(2, 2.5), 1.0}};
  const auto waits = cobham_waits(classes, {0});
  EXPECT_NEAR(waits[0], pk_fcfs_wait(classes), 1e-12);
}

TEST(Mg1Analytic, CobhamHighPriorityWaitsLess) {
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.4, exponential_dist(2.0), 1.0}};
  const auto w01 = cobham_waits(classes, {0, 1});
  EXPECT_LT(w01[0], w01[1]);
  const auto w10 = cobham_waits(classes, {1, 0});
  EXPECT_LT(w10[1], w10[0]);
}

TEST(Mg1Analytic, KleinrockInvariantHoldsAcrossOrders) {
  std::vector<ClassSpec> classes{{0.25, exponential_dist(1.0), 1.0},
                                 {0.3, erlang_dist(2, 4.0), 2.0},
                                 {0.2, hyperexp2_dist(1.2, 3.0), 0.5}};
  const double invariant = kleinrock_invariant(classes);
  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    const auto waits = cobham_waits(classes, order);
    double sum = 0.0;
    for (std::size_t j = 0; j < classes.size(); ++j)
      sum += classes[j].arrival_rate * classes[j].service->mean() * waits[j];
    EXPECT_NEAR(sum, invariant, 1e-9);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Mg1Analytic, CmuOrderSortsCorrectly) {
  std::vector<ClassSpec> classes{{0.1, exponential_dist(1.0), 1.0},   // cµ=1
                                 {0.1, exponential_dist(4.0), 1.0},   // cµ=4
                                 {0.1, exponential_dist(1.0), 3.0}};  // cµ=3
  const auto order = cmu_order(classes);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Mg1Analytic, CmuMinimizesCobhamCostOverAllOrders) {
  std::vector<ClassSpec> classes{{0.25, exponential_dist(1.0), 1.0},
                                 {0.2, erlang_dist(2, 3.0), 2.5},
                                 {0.15, exponential_dist(0.8), 0.7}};
  const double cmu_cost = cobham_cost_rate(classes, cmu_order(classes));
  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    EXPECT_GE(cobham_cost_rate(classes, order), cmu_cost - 1e-9);
  } while (std::next_permutation(order.begin(), order.end()));
}

// ---------------------------------------------------------------------------
// Simulator vs closed forms.
// ---------------------------------------------------------------------------

TEST(Mg1Sim, MM1NumberInSystem) {
  std::vector<ClassSpec> classes{{0.6, exponential_dist(1.0), 1.0}};
  Rng rng(1);
  const auto res = simulate_mg1(classes, fcfs_options(), rng);
  // L = rho / (1 - rho) = 1.5.
  EXPECT_NEAR(res.per_class[0].mean_in_system, 1.5, 0.08);
  EXPECT_NEAR(res.utilization, 0.6, 0.01);
  EXPECT_NEAR(res.per_class[0].throughput, 0.6, 0.01);
}

TEST(Mg1Sim, PkWaitForMG1) {
  std::vector<ClassSpec> classes{{0.5, hyperexp2_dist(1.0, 4.0), 1.0}};
  Rng rng(2);
  const auto res = simulate_mg1(classes, fcfs_options(6e5), rng);
  EXPECT_NEAR(res.per_class[0].mean_wait, pk_fcfs_wait(classes),
              0.06 * pk_fcfs_wait(classes));
}

TEST(Mg1Sim, CobhamWaitsUnderStaticPriority) {
  std::vector<ClassSpec> classes{{0.25, exponential_dist(1.0), 1.0},
                                 {0.3, erlang_dist(2, 4.0), 1.0},
                                 {0.2, hyperexp2_dist(0.8, 3.0), 1.0}};
  SimOptions opt;
  opt.discipline = Discipline::kPriorityNonPreemptive;
  opt.priority = {2, 0, 1};
  opt.horizon = 6e5;
  opt.warmup = 6e4;
  Rng rng(3);
  const auto res = simulate_mg1(classes, opt, rng);
  const auto waits = cobham_waits(classes, opt.priority);
  for (std::size_t j = 0; j < classes.size(); ++j)
    EXPECT_NEAR(res.per_class[j].mean_wait, waits[j], 0.08 * waits[j] + 0.02)
        << "class " << j;
}

TEST(Mg1Sim, LittleLawPerClass) {
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.25, erlang_dist(2, 4.0), 1.0}};
  SimOptions opt;
  opt.discipline = Discipline::kPriorityNonPreemptive;
  opt.priority = {0, 1};
  opt.horizon = 4e5;
  opt.warmup = 4e4;
  Rng rng(4);
  const auto res = simulate_mg1(classes, opt, rng);
  for (std::size_t j = 0; j < classes.size(); ++j) {
    const double little = classes[j].arrival_rate *
                          res.per_class[j].mean_sojourn;
    EXPECT_NEAR(res.per_class[j].mean_in_system, little,
                0.05 * little + 0.02)
        << "class " << j;
  }
}

TEST(Mg1Sim, ConservationLawAudit) {
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.25, hyperexp2_dist(1.1, 2.5), 2.0}};
  SimOptions opt;
  opt.discipline = Discipline::kPriorityNonPreemptive;
  opt.priority = {1, 0};
  opt.horizon = 6e5;
  opt.warmup = 6e4;
  Rng rng(5);
  const auto res = simulate_mg1(classes, opt, rng);
  const auto audit = core::audit_conservation(classes, res);
  EXPECT_LT(audit.rel_error, 0.05);
}

TEST(Mg1Sim, PreemptiveResumeSojourns) {
  std::vector<ClassSpec> classes{{0.3, exponential_dist(1.0), 1.0},
                                 {0.3, exponential_dist(1.5), 1.0}};
  SimOptions opt;
  opt.discipline = Discipline::kPriorityPreemptiveResume;
  opt.priority = {0, 1};
  opt.horizon = 6e5;
  opt.warmup = 6e4;
  Rng rng(6);
  const auto res = simulate_mg1(classes, opt, rng);
  const auto sojourns = preemptive_resume_sojourns(classes, opt.priority);
  for (std::size_t j = 0; j < classes.size(); ++j)
    EXPECT_NEAR(res.per_class[j].mean_sojourn, sojourns[j],
                0.07 * sojourns[j])
        << "class " << j;
}

TEST(Mg1Sim, PreemptionShieldsHighPriorityCompletely) {
  // Under PR priority the top class behaves as an isolated M/G/1.
  std::vector<ClassSpec> classes{{0.4, exponential_dist(1.0), 1.0},
                                 {0.4, exponential_dist(1.0), 1.0}};
  SimOptions opt;
  opt.discipline = Discipline::kPriorityPreemptiveResume;
  opt.priority = {0, 1};
  opt.horizon = 4e5;
  opt.warmup = 4e4;
  Rng rng(7);
  const auto res = simulate_mg1(classes, opt, rng);
  std::vector<ClassSpec> isolated{classes[0]};
  const double expected = 0.4 / (1.0 - 0.4);  // M/M/1 L
  EXPECT_NEAR(res.per_class[0].mean_in_system, expected, 0.05 * expected);
}

TEST(Mg1Sim, DeterministicGivenRngState) {
  std::vector<ClassSpec> classes{{0.5, exponential_dist(1.0), 1.0}};
  SimOptions opt = fcfs_options(1e4);
  Rng r1(42), r2(42);
  const auto a = simulate_mg1(classes, opt, r1);
  const auto b = simulate_mg1(classes, opt, r2);
  EXPECT_DOUBLE_EQ(a.per_class[0].mean_in_system,
                   b.per_class[0].mean_in_system);
  EXPECT_EQ(a.per_class[0].completions, b.per_class[0].completions);
}

TEST(Mg1Sim, OptionValidation) {
  std::vector<ClassSpec> classes{{0.5, exponential_dist(1.0), 1.0},
                                 {0.2, exponential_dist(1.0), 1.0}};
  SimOptions opt;
  opt.discipline = Discipline::kPriorityNonPreemptive;
  opt.priority = {0};  // wrong size
  Rng rng(8);
  EXPECT_THROW(simulate_mg1(classes, opt, rng), std::invalid_argument);
  opt.priority = {0, 0};  // not a permutation
  EXPECT_THROW(simulate_mg1(classes, opt, rng), std::invalid_argument);
}

TEST(Mg1Analytic, UnstableInputsRejected) {
  std::vector<ClassSpec> classes{{1.5, exponential_dist(1.0), 1.0}};
  EXPECT_THROW(pk_fcfs_wait(classes), std::invalid_argument);
  EXPECT_THROW(kleinrock_invariant(classes), std::invalid_argument);
}

}  // namespace
}  // namespace stosched::queueing
