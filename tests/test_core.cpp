// Tests for core/: the adaptive-greedy engine against its closed-form
// specializations, the M/G/1 achievable region (polymatroid geometry), the
// conservation-law audit, and the policy catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bandit/gittins.hpp"
#include "core/achievable_region.hpp"
#include "core/conservation.hpp"
#include "core/policy.hpp"
#include "queueing/mg1_analytic.hpp"
#include "restless/whittle.hpp"
#include "util/rng.hpp"

namespace stosched::core {
namespace {

using queueing::ClassSpec;

std::vector<ClassSpec> three_classes() {
  return {{0.25, exponential_dist(1.0), 1.0},
          {0.2, erlang_dist(2, 3.0), 2.5},
          {0.15, exponential_dist(0.8), 0.7}};
}

TEST(AdaptiveGreedy, ConstantCoefficientsGiveWeightedRatioRule) {
  // A_j^S = a_j for all S: the index must be c_j / a_j (generalized cµ).
  const std::vector<double> a{2.0, 0.5, 1.0, 4.0};
  const std::vector<double> c{1.0, 1.0, 3.0, 2.0};
  const auto res = adaptive_greedy(
      4, [&](const std::vector<char>&) { return a; }, c);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(res.index[j], c[j] / a[j], 1e-9) << "class " << j;
  // Priority: descending c/a -> class 2 (3.0), 0 (0.5), 3 (0.5), 1 (2.0)...
  // compute expected order explicitly:
  std::vector<std::size_t> expect{0, 1, 2, 3};
  std::stable_sort(expect.begin(), expect.end(), [&](auto x, auto y) {
    return c[x] / a[x] > c[y] / a[y];
  });
  EXPECT_EQ(res.priority, expect);
}

TEST(AdaptiveGreedy, DualIncrementsNonNegative) {
  stosched::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.below(5);
    std::vector<double> a(n), c(n);
    for (std::size_t j = 0; j < n; ++j) {
      a[j] = rng.uniform(0.2, 3.0);
      c[j] = rng.uniform(0.1, 2.0);
    }
    const auto res = adaptive_greedy(
        n, [&](const std::vector<char>&) { return a; }, c);
    for (const double y : res.y) EXPECT_GE(y, -1e-12);
  }
}

TEST(AdaptiveGreedy, RejectsNonPositiveCoefficients) {
  EXPECT_THROW(adaptive_greedy(
                   2,
                   [&](const std::vector<char>&) {
                     return std::vector<double>{1.0, 0.0};
                   },
                   {1.0, 1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Achievable region.
// ---------------------------------------------------------------------------

TEST(Region, VerticesSatisfyBaseEquality) {
  const auto classes = three_classes();
  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  std::vector<char> full(3, 1);
  const double b_full = mg1_region_b(classes, full);
  do {
    const auto x = mg1_region_vertex(classes, order);
    const double sum = x[0] + x[1] + x[2];
    EXPECT_NEAR(sum, b_full, 1e-9);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Region, VerticesInsideRegion) {
  const auto classes = three_classes();
  std::vector<std::size_t> order{0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    EXPECT_TRUE(mg1_region_contains(classes, mg1_region_vertex(classes, order),
                                    1e-7));
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Region, MixturesOfVerticesInsideRegion) {
  const auto classes = three_classes();
  const auto v1 = mg1_region_vertex(classes, {0, 1, 2});
  const auto v2 = mg1_region_vertex(classes, {2, 1, 0});
  stosched::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const double w = rng.uniform();
    std::vector<double> mix(3);
    for (std::size_t j = 0; j < 3; ++j)
      mix[j] = w * v1[j] + (1.0 - w) * v2[j];
    EXPECT_TRUE(mg1_region_contains(classes, mix, 1e-7));
  }
}

TEST(Region, PointsBelowBoundInfeasible) {
  const auto classes = three_classes();
  auto x = mg1_region_vertex(classes, {0, 1, 2});
  x[0] *= 0.2;  // steal waiting time without giving it to anyone
  EXPECT_FALSE(mg1_region_contains(classes, x, 1e-9));
}

TEST(Region, PriorityVertexMinimizesItsOwnClasses) {
  // Giving S priority attains b(S) with equality — the polymatroid facet.
  const auto classes = three_classes();
  const auto x = mg1_region_vertex(classes, {1, 0, 2});
  std::vector<char> in_set{0, 1, 0};  // S = {1}, the top-priority class
  EXPECT_NEAR(x[1], mg1_region_b(classes, in_set), 1e-9);
  in_set = {1, 1, 0};  // S = {0, 1}: top two classes
  EXPECT_NEAR(x[0] + x[1], mg1_region_b(classes, in_set), 1e-9);
}

TEST(Region, AdaptiveGreedyOnRegionRecoversCmu) {
  // Instantiate the AG engine with the M/G/1 coefficients A_j^S = E[S_j]
  // (performance x_j = rho_j W_j): indices must be c_j / E[S_j] = cµ.
  const auto classes = three_classes();
  std::vector<double> costs;
  std::vector<double> means;
  for (const auto& c : classes) {
    costs.push_back(c.holding_cost);
    means.push_back(c.service->mean());
  }
  const auto res = adaptive_greedy(
      3, [&](const std::vector<char>&) { return means; }, costs);
  EXPECT_EQ(res.priority, queueing::cmu_order(classes));
}

// ---------------------------------------------------------------------------
// Policy catalog.
// ---------------------------------------------------------------------------

TEST(PolicyCatalog, WseptMatchesBatchOrder) {
  stosched::Rng rng(3);
  const auto jobs = batch::random_batch(6, rng);
  const auto rule = wsept_rule(jobs);
  EXPECT_EQ(rule.priority_order(), batch::wsept_order(jobs));
  EXPECT_EQ(rule.name, "WSEPT");
}

TEST(PolicyCatalog, SeptLeptAreReverses) {
  stosched::Rng rng(4);
  const auto jobs = batch::random_batch(5, rng);
  const auto sept = sept_rule(jobs).priority_order();
  const auto lept = lept_rule(jobs).priority_order();
  // With distinct means, SEPT and LEPT are exact reverses.
  std::vector<std::size_t> rev(lept.rbegin(), lept.rend());
  EXPECT_EQ(sept, rev);
}

TEST(PolicyCatalog, CmuMatchesAnalytic) {
  const auto classes = three_classes();
  EXPECT_EQ(cmu_rule(classes).priority_order(),
            queueing::cmu_order(classes));
}

TEST(PolicyCatalog, KlimovRuleMatchesIndices) {
  queueing::KlimovNetwork net;
  net.classes = three_classes();
  net.feedback = {{0.0, 0.3, 0.0}, {0.0, 0.0, 0.2}, {0.0, 0.0, 0.0}};
  const auto rule = klimov_rule(net);
  const auto direct = queueing::klimov_indices(net);
  EXPECT_EQ(rule.priority_order(), direct.priority);
}

TEST(PolicyCatalog, GittinsRuleWrapsLargestIndex) {
  stosched::Rng rng(5);
  const auto p = bandit::random_project(4, rng);
  const auto rule = gittins_rule(p, 0.9);
  const auto direct = bandit::gittins_largest_index(p, 0.9);
  ASSERT_EQ(rule.index.size(), direct.size());
  for (std::size_t s = 0; s < direct.size(); ++s)
    EXPECT_DOUBLE_EQ(rule.index[s], direct[s]);
  EXPECT_EQ(rule.name, "Gittins");
}

TEST(PolicyCatalog, WhittleRuleRequiresIndexability) {
  restless::RestlessProject p;
  p.reward_passive = {0.0, 0.0};
  p.reward_active = {0.6, 0.2};
  p.trans_passive = {{0.7, 0.3}, {0.4, 0.6}};
  p.trans_active = p.trans_passive;
  const auto rule = whittle_rule(p);  // constant-dynamics: indexable
  EXPECT_GT(rule.index[0], rule.index[1]);
}

}  // namespace
}  // namespace stosched::core
