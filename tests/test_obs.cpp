// test_obs.cpp — the observability subsystem (src/obs/).
//
// Four fronts:
//   * histogram determinism: the bucket of a value is exact (boundary
//     values land where the layout says), and shared-histogram merges are
//     commutative — the snapshot after an OpenMP fan-out is bit-identical
//     to a serial fill, whatever OMP_NUM_THREADS is (1 and 8 in CI);
//   * registry semantics: find-or-create stability, non-creating reads,
//     and the migrated process counters ("events", "lp_solves",
//     "lp_iterations") staying in lockstep with their legacy wrappers;
//   * trace collector: the emitted JSON is a valid Chrome trace_event
//     array (ph/ts/pid/tid present, multiple thread lanes), in every
//     build — only the macros are compile-time gated;
//   * compiled-out mode: with STOSCHED_TRACE off, the macros evaluate
//     NOTHING (the ghost evaluation-count pattern from test_contract.cpp).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "des/event_queue.hpp"
#include "experiment/engine.hpp"
#include "lp/simplex.hpp"
#include "obs/progress.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace stosched {
namespace {

// ---- bucket layout ---------------------------------------------------------

TEST(HistBucketTest, SpecialValuesLandInUnderflow) {
  EXPECT_EQ(obs::hist::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::hist::bucket_index(-1.5), 0u);
  EXPECT_EQ(obs::hist::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(obs::hist::bucket_index(1e-300), 0u);  // below 2^kMinExp
}

TEST(HistBucketTest, OverflowCatchesHugeValues) {
  EXPECT_EQ(obs::hist::bucket_index(1e13), obs::hist::kBuckets - 1);
  EXPECT_EQ(obs::hist::bucket_index(
                std::numeric_limits<double>::infinity()),
            obs::hist::kBuckets - 1);
}

TEST(HistBucketTest, ExactBoundaryValuesLandInTheirOwnBucket) {
  // A bucket's inclusive lower edge maps to that bucket; one ulp below
  // maps to the previous one. Scan a swath of the layout.
  for (std::size_t i = 1; i + 1 < obs::hist::kBuckets; i += 37) {
    const double lo = obs::hist::bucket_lower(i);
    EXPECT_EQ(obs::hist::bucket_index(lo), i) << "lower edge of bucket " << i;
    const double below = std::nextafter(lo, 0.0);
    EXPECT_EQ(obs::hist::bucket_index(below), i - 1)
        << "one ulp below bucket " << i;
  }
}

TEST(HistBucketTest, PowersOfTwoStartAnOctave) {
  // 2^e has sub-bucket 0 and v in [2^e, 2^e (1 + 1/8)).
  const std::size_t i1 = obs::hist::bucket_index(1.0);
  EXPECT_DOUBLE_EQ(obs::hist::bucket_lower(i1), 1.0);
  EXPECT_DOUBLE_EQ(obs::hist::bucket_upper(i1), 1.125);
  const std::size_t i2 = obs::hist::bucket_index(2.0);
  EXPECT_EQ(i2, i1 + obs::hist::kSubBuckets);
}

TEST(HistBucketTest, IndexIsMonotoneInValue) {
  double v = 1e-7;
  std::size_t prev = obs::hist::bucket_index(v);
  while (v < 1e13) {
    v *= 1.05;
    const std::size_t i = obs::hist::bucket_index(v);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

// ---- percentiles -----------------------------------------------------------

TEST(HistogramTest, PercentilesAreBucketUpperBounds) {
  obs::LocalHistogram h;
  // 90 samples in the bucket of 1.0, 10 in the bucket of 100.0.
  for (int i = 0; i < 90; ++i) h.record(1.0);
  for (int i = 0; i < 10; ++i) h.record(100.0);
  obs::Histogram shared("test_pct");
  shared.merge(h);
  const obs::HistogramSnapshot s = shared.snapshot();
  EXPECT_EQ(s.total, 100u);
  const double b1 = obs::hist::bucket_upper(obs::hist::bucket_index(1.0));
  const double b100 = obs::hist::bucket_upper(obs::hist::bucket_index(100.0));
  EXPECT_DOUBLE_EQ(s.percentile(0.50), b1);
  EXPECT_DOUBLE_EQ(s.percentile(0.90), b1);   // rank 90 is the last 1.0
  EXPECT_DOUBLE_EQ(s.percentile(0.99), b100);
  EXPECT_DOUBLE_EQ(s.percentile(0.999), b100);
}

TEST(HistogramTest, EmptySnapshotReportsZero) {
  const obs::HistogramSnapshot s;
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.percentile(0.99), 0.0);
}

TEST(HistogramTest, PercentileIsAlwaysFinite) {
  obs::LocalHistogram h;
  h.record(1e300);  // overflow bucket
  obs::Histogram shared("test_pct_inf");
  shared.merge(h);
  EXPECT_TRUE(std::isfinite(shared.snapshot().percentile(0.999)));
}

// ---- merge determinism -----------------------------------------------------

TEST(HistogramTest, MergeIsCommutative) {
  obs::LocalHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(0.1 * i);
  for (int i = 0; i < 50; ++i) b.record(3.0 * i);
  obs::Histogram ab("test_merge_ab"), ba("test_merge_ba");
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.snapshot(), ba.snapshot());
}

TEST(HistogramTest, SnapshotBitIdenticalAcrossOmpSchedules) {
  // Fill a registry histogram from inside the OpenMP replication driver —
  // whatever OMP_NUM_THREADS is (the CI determinism gate runs this binary
  // under 1 and 8), the commutative bucket sums must equal a serial fill.
  obs::Histogram& shared = obs::histogram("test_hist_omp");
  constexpr std::size_t kReps = 256;
  auto sample = [](std::size_t r, int i) {
    return 0.37 * static_cast<double>((r * 31 + static_cast<std::size_t>(i) * 7) % 97) + 1e-3;
  };
  experiment::run_fixed(kReps, 20260807, 1,
                        [&](std::size_t r, Rng& rng, std::span<double> out) {
                          (void)rng;
                          obs::LocalHistogram local;
                          for (int i = 0; i < 64; ++i)
                            local.record(sample(r, i));
                          shared.merge(local);
                          out[0] = 0.0;
                        });
  obs::LocalHistogram serial;
  for (std::size_t r = 0; r < kReps; ++r)
    for (int i = 0; i < 64; ++i) serial.record(sample(r, i));
  const obs::HistogramSnapshot got = shared.snapshot();
  EXPECT_EQ(got.total, serial.total());
  EXPECT_EQ(got.counts, serial.counts());
}

// ---- registry --------------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  obs::Counter& a = obs::counter("test_reg_counter");
  obs::Counter& b = obs::counter("test_reg_counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  a.add();
  EXPECT_EQ(b.value(), 4u);
  EXPECT_EQ(obs::counter_value("test_reg_counter"), 4u);
}

TEST(RegistryTest, NonCreatingReadsOfAbsentNames) {
  EXPECT_EQ(obs::counter_value("test_never_registered"), 0u);
  EXPECT_EQ(obs::histogram_snapshot("test_never_registered").total, 0u);
}

TEST(RegistryTest, GaugeHoldsLastWrite) {
  obs::Gauge& g = obs::gauge("test_reg_gauge");
  g.set(2.5);
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(RegistryTest, SnapshotIsNameSorted) {
  obs::counter("test_sorted_b").add();
  obs::counter("test_sorted_a").add();
  const obs::MetricsSnapshot s = obs::metrics_snapshot();
  ASSERT_GE(s.counters.size(), 2u);
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].first, s.counters[i].first);
}

// ---- migrated process counters ---------------------------------------------

TEST(MigrationTest, EventCounterBackedByRegistry) {
  const std::uint64_t before = process_event_count();
  EXPECT_EQ(before, obs::counter_value("events"));
  add_process_events(42);
  EXPECT_EQ(process_event_count(), before + 42);
  EXPECT_EQ(obs::counter_value("events"), before + 42);
}

TEST(MigrationTest, LpCountersBackedByRegistry) {
  const lp::LpCounters before = lp::process_lp_counters();
  EXPECT_EQ(before.solves, obs::counter_value("lp_solves"));
  EXPECT_EQ(before.iterations, obs::counter_value("lp_iterations"));
  lp::add_process_lp_solve(7);
  const lp::LpCounters after = lp::process_lp_counters();
  EXPECT_EQ(after.solves, before.solves + 1);
  EXPECT_EQ(after.iterations, before.iterations + 7);
  EXPECT_EQ(obs::counter_value("lp_solves"), after.solves);
  EXPECT_EQ(obs::counter_value("lp_iterations"), after.iterations);
}

// ---- trace collector -------------------------------------------------------

TEST(TraceTest, EmitsValidChromeTraceJson) {
  obs::trace::clear();
  obs::trace::record_complete("cat_a", "span_one", 1000, 2500);
  obs::trace::record_instant("cat_a", "marker");
  obs::trace::record_counter("cat_b", "level", 3.5);
  std::thread worker(
      [] { obs::trace::record_complete("cat_a", "span_two", 2000, 100); });
  worker.join();
  EXPECT_EQ(obs::trace::event_count(), 4u);

  std::ostringstream os;
  obs::trace::write(os);
  const std::string json = os.str();

  // Array shape and the required Chrome trace_event fields.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span_one\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat_b\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);  // 1000 ns = 1 µs
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":3.5}"), std::string::npos);

  // The worker thread got its own lane.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  const std::size_t tid_pos = json.find("\"tid\":0");
  EXPECT_NE(json.find("\"tid\":", tid_pos + 7), std::string::npos);

  // Balanced brackets/braces — cheap well-formedness proxy (names here
  // contain no braces).
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  obs::trace::clear();
}

TEST(TraceTest, ClearDropsEverything) {
  obs::trace::clear();
  obs::trace::record_instant("cat", "x");
  EXPECT_EQ(obs::trace::event_count(), 1u);
  obs::trace::clear();
  EXPECT_EQ(obs::trace::event_count(), 0u);
  std::ostringstream os;
  obs::trace::write(os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(TraceTest, SpanRecordsOnDestruction) {
  obs::trace::clear();
  {
    obs::trace::Span span("cat", "scoped");
    EXPECT_EQ(obs::trace::event_count(), 0u);
  }
  EXPECT_EQ(obs::trace::event_count(), 1u);
  obs::trace::clear();
}

// ---- compiled-out macros ---------------------------------------------------

TEST(TraceMacrosTest, ArgumentsEvaluatedExactlyWhenArmed) {
  // Ghost evaluation count (the test_contract.cpp pattern): with
  // STOSCHED_TRACE off the value expression must never run.
  obs::trace::clear();
  int evaluations = 0;
  STOSCHED_TRACE_COUNTER("test", "ghost", (++evaluations, 1.0));
  EXPECT_EQ(evaluations, STOSCHED_TRACE_ACTIVE ? 1 : 0);
}

TEST(TraceMacrosTest, SpanAndInstantCompiledOutWhenInactive) {
  obs::trace::clear();
  {
    STOSCHED_TRACE_SPAN("test", "maybe_span");
    STOSCHED_TRACE_INSTANT("test", "maybe_instant");
  }
  EXPECT_EQ(obs::trace::event_count(),
            STOSCHED_TRACE_ACTIVE ? 2u : 0u);
  obs::trace::clear();
}

// ---- progress sink ---------------------------------------------------------

TEST(ProgressTest, LineProtocolShape) {
  const std::string line = obs::format_progress_line(
      "ci", 7, {{"metric", 2.0}, {"halfwidth", 0.125}});
  EXPECT_EQ(line,
            "{\"event\":\"ci\",\"seq\":7,\"metric\":2,\"halfwidth\":0.125}");
}

TEST(ProgressTest, DisabledWithoutEnvVar) {
  // ctest never sets STOSCHED_PROGRESS; emitting must be a safe no-op.
  if (std::getenv("STOSCHED_PROGRESS") == nullptr) {
    EXPECT_FALSE(obs::progress_enabled());
    obs::progress_line("noop", {{"x", 1.0}});
  }
}

// ---- provenance ------------------------------------------------------------

TEST(ProvenanceTest, BuildFactsArePopulated) {
  const obs::BuildInfo b = obs::build_info();
  EXPECT_FALSE(b.git_sha.empty());
  EXPECT_FALSE(b.compiler.empty());
  EXPECT_FALSE(b.build_type.empty());
  EXPECT_FALSE(b.sanitizers.empty());  // "none" when off
  EXPECT_GE(b.omp_max_threads, 1);
  EXPECT_EQ(b.trace, STOSCHED_TRACE_ACTIVE != 0);
}

}  // namespace
}  // namespace stosched
