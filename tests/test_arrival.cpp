// Tests for dist/arrival.hpp — the pluggable arrival processes — and their
// integration with the queueing simulators:
//   * closed-form rate/burstiness contracts (MMPP stationary rate, batch
//     weighting, time-scaling invariance);
//   * the bit-identity regression: renewal-with-exponential (and the
//     Poisson-default construction path) reproduce the pre-refactor
//     simulator draws exactly on a fixed seed;
//   * CRN under MMPP: policy arms replaying the same substreams see the
//     same bursty workload, enforced as a >= 2x paired-variance cut.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dist/arrival.hpp"
#include "dist/distribution.hpp"
#include "experiment/adapters.hpp"
#include "experiment/engine.hpp"
#include "experiment/scenario.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1_analytic.hpp"
#include "queueing/network.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stosched {
namespace {

using queueing::ClassSpec;

// ---------------------------------------------------------------------------
// Process-level contracts.
// ---------------------------------------------------------------------------

TEST(Arrival, PoissonAndRenewalExponentialGapsAreBitIdentical) {
  // The renewal process over an exponential law must consume the substream
  // exactly like the dedicated Poisson path (one rng.exponential per gap).
  const auto poisson = poisson_arrivals(0.7);
  const auto renewal = renewal_arrivals(exponential_dist(0.7));
  const Rng master(2026);
  Rng a = master.stream(3), b = master.stream(3);
  ArrivalState sa, sb;
  for (int i = 0; i < 1000; ++i)
    ASSERT_DOUBLE_EQ(poisson->next_gap(sa, a), renewal->next_gap(sb, b));
  EXPECT_DOUBLE_EQ(poisson->rate(), renewal->rate());
  EXPECT_DOUBLE_EQ(poisson->burstiness(), 1.0);
  EXPECT_NEAR(renewal->burstiness(), 1.0, 1e-12);
}

TEST(Arrival, MmppStationaryRateMatchesClosedForm) {
  // pi0 = sw10 / (sw01 + sw10) = 2/3, so rate = 2/3 * 3 + 1/3 * 0.5.
  const auto p = mmpp_arrivals(3.0, 0.5, 0.2, 0.4);
  const double expected = (2.0 / 3.0) * 3.0 + (1.0 / 3.0) * 0.5;
  EXPECT_NEAR(p->rate(), expected, 1e-12);

  // Long-run empirical arrival count per unit time converges to rate().
  ArrivalState st;
  Rng rng(404);
  double t = 0.0;
  std::size_t count = 0;
  while (t < 40000.0) {
    t += p->next_gap(st, rng);
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / t, p->rate(), 0.02 * p->rate());
}

TEST(Arrival, MmppGapReplayIsDeterministicPerSubstream) {
  // The CRN foundation: identical substream + state => identical epochs,
  // independent of what any consumer does in between.
  const auto p = bursty_arrivals(1.3, 7.0);
  const Rng master(7);
  Rng a = master.stream(11), b = master.stream(11);
  ArrivalState sa, sb;
  for (int i = 0; i < 2000; ++i)
    ASSERT_DOUBLE_EQ(p->next_gap(sa, a), p->next_gap(sb, b));
}

TEST(Arrival, BurstyFamilyHitsRateAndBurstiness) {
  const auto p = bursty_arrivals(0.8, 9.0);
  EXPECT_NEAR(p->rate(), 0.8, 1e-12);
  EXPECT_NEAR(p->burstiness(), 9.0, 1e-12);
  EXPECT_STREQ(p->kind(), "mmpp");
  // Time scaling moves the rate and preserves the burstiness exactly.
  const auto scaled = p->scaled(1.75);
  EXPECT_NEAR(scaled->rate(), 1.4, 1e-12);
  EXPECT_NEAR(scaled->burstiness(), 9.0, 1e-12);
}

TEST(Arrival, BurstyEmpiricalDispersionExceedsPoisson) {
  // Counts in fixed windows: the bursty stream's index of dispersion must
  // be far above 1 (Poisson) and in the rough vicinity of the asymptotic
  // target — the whole point of the MAP family.
  const auto p = bursty_arrivals(1.0, 8.0);
  ArrivalState st;
  Rng rng(99);
  const double window = 200.0;  // >> the 1/sw ~ 7 phase time scale
  RunningStat counts;
  double t = 0.0, next = p->next_gap(st, rng);
  for (int w = 0; w < 3000; ++w) {
    const double end = t + window;
    std::size_t n = 0;
    while (t + next <= end) {
      t += next;
      ++n;
      next = p->next_gap(st, rng);
    }
    next -= end - t;
    t = end;
    counts.push(static_cast<double>(n));
  }
  const double idc = counts.variance() / counts.mean();
  EXPECT_GT(idc, 4.0);
  EXPECT_LT(idc, 12.0);
  EXPECT_NEAR(counts.mean(), window * p->rate(), 0.05 * window);
}

TEST(Arrival, BatchProcessesWeightRateAndSizes) {
  const auto fixed = batch_arrivals(deterministic_dist(2.0), 3);
  EXPECT_NEAR(fixed->rate(), 1.5, 1e-12);
  EXPECT_NEAR(fixed->mean_batch(), 3.0, 1e-12);
  EXPECT_STREQ(fixed->kind(), "batch");
  // Deterministic epochs and fixed batches: zero count dispersion.
  EXPECT_NEAR(fixed->burstiness(), 0.0, 1e-12);
  ArrivalState st;
  Rng rng(1);
  EXPECT_EQ(fixed->batch_size(st, rng), 3u);

  const auto geo = batch_arrivals_geometric(exponential_dist(1.0), 2.5);
  EXPECT_NEAR(geo->rate(), 2.5, 1e-12);
  RunningStat sizes;
  for (int i = 0; i < 200000; ++i)
    sizes.push(static_cast<double>(geo->batch_size(st, rng)));
  EXPECT_NEAR(sizes.mean(), 2.5, 0.02);
  // Geometric on {1,2,...} with mean b: Var = b(b-1).
  EXPECT_NEAR(sizes.variance(), 2.5 * 1.5, 0.1);
  // Batch over Poisson base: IDC = Var B / E B + E B.
  EXPECT_NEAR(geo->burstiness(), 1.5 + 2.5, 1e-12);
}

TEST(Arrival, ScaledRenewalPreservesInterarrivalScv) {
  const auto p = renewal_arrivals(with_mean_scv(0.5, 4.0));
  EXPECT_NEAR(p->rate(), 2.0, 1e-9);
  EXPECT_NEAR(p->burstiness(), 4.0, 1e-9);
  const auto scaled = p->scaled(3.0);
  EXPECT_NEAR(scaled->rate(), 6.0, 1e-9);
  EXPECT_NEAR(scaled->burstiness(), 4.0, 1e-9);
}

TEST(Arrival, ScaledComposedTwiceMatchesOneStepScaling) {
  // scaled() is a pure time rescaling, so composing two rescalings must be
  // the same as one combined rescaling: rate multiplies through, the
  // correlation structure (burstiness) and the process kind are untouched.
  const std::vector<ArrivalPtr> processes{
      poisson_arrivals(0.7),
      renewal_arrivals(with_mean_scv(0.5, 4.0)),
      bursty_arrivals(0.8, 9.0),
      batch_arrivals_geometric(exponential_dist(1.0), 2.5)};
  for (const auto& p : processes) {
    const auto twice = p->scaled(2.0)->scaled(3.0);
    const auto once = p->scaled(6.0);
    EXPECT_NEAR(twice->rate(), once->rate(), 1e-9 * once->rate())
        << p->kind();
    EXPECT_NEAR(twice->rate(), 6.0 * p->rate(), 1e-9 * p->rate());
    EXPECT_NEAR(twice->burstiness(), p->burstiness(), 1e-9) << p->kind();
    EXPECT_STREQ(twice->kind(), p->kind());
    // Sample-path check: long-run empirical rate of the composed process.
    ArrivalState st;
    Rng rng(515);
    double t = 0.0;
    double count = 0.0;
    while (t < 4000.0) {
      t += twice->next_gap(st, rng);
      count += static_cast<double>(twice->batch_size(st, rng));
    }
    EXPECT_NEAR(count / t, twice->rate(), 0.05 * twice->rate()) << p->kind();
  }
}

TEST(Arrival, InvalidParametersThrow) {
  EXPECT_THROW(poisson_arrivals(0.0), std::invalid_argument);
  EXPECT_THROW(renewal_arrivals(nullptr), std::invalid_argument);
  EXPECT_THROW(mmpp_arrivals(1.0, 1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mmpp_arrivals(0.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(bursty_arrivals(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(batch_arrivals(exponential_dist(1.0), 0),
               std::invalid_argument);
  EXPECT_THROW(batch_arrivals_geometric(exponential_dist(1.0), 0.5),
               std::invalid_argument);
  EXPECT_THROW(poisson_arrivals(1.0)->scaled(0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Simulator integration.
// ---------------------------------------------------------------------------

std::vector<ClassSpec> two_class_mix() {
  return {{0.25, exponential_dist(1.0), 1.0},
          {0.20, erlang_dist(2, 3.0), 2.5}};
}

TEST(ArrivalSim, RenewalExponentialBitIdenticalToPoissonPathInMg1) {
  // The acceptance regression: replacing the arrival_rate field with an
  // explicit renewal-over-exponential process must reproduce the old
  // Poisson sample path bit-for-bit (identical draws, identical metrics).
  const auto classes = two_class_mix();
  auto renewal_classes = classes;
  for (auto& c : renewal_classes) {
    c.arrival = renewal_arrivals(exponential_dist(c.arrival_rate));
    c.arrival_rate = 0.0;  // must be ignored once a process is attached
  }
  queueing::SimOptions opt;
  opt.horizon = 4000.0;
  opt.warmup = 400.0;
  opt.discipline = queueing::Discipline::kPriorityNonPreemptive;
  opt.priority = {1, 0};
  Rng r1(42), r2(42);
  const auto a = queueing::simulate_mg1(classes, opt, r1);
  const auto b = queueing::simulate_mg1(renewal_classes, opt, r2);
  EXPECT_DOUBLE_EQ(a.cost_rate, b.cost_rate);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  for (std::size_t j = 0; j < classes.size(); ++j) {
    EXPECT_EQ(a.per_class[j].completions, b.per_class[j].completions);
    EXPECT_DOUBLE_EQ(a.per_class[j].mean_in_system,
                     b.per_class[j].mean_in_system);
    EXPECT_DOUBLE_EQ(a.per_class[j].mean_wait, b.per_class[j].mean_wait);
    EXPECT_DOUBLE_EQ(a.per_class[j].mean_sojourn,
                     b.per_class[j].mean_sojourn);
  }
}

TEST(ArrivalSim, RenewalExponentialBitIdenticalToPoissonPathInNetwork) {
  auto base = queueing::lu_kumar_network(1.0, 0.01, 2.0 / 3.0, 0.01,
                                         2.0 / 3.0, /*bad_priority=*/true);
  auto renewal = base;
  renewal.classes[0].arrival =
      renewal_arrivals(exponential_dist(renewal.classes[0].arrival_rate));
  Rng r1(7), r2(7);
  const auto a = queueing::simulate_network(base, 4000.0, 20, r1);
  const auto b = queueing::simulate_network(renewal, 4000.0, 20, r2);
  EXPECT_DOUBLE_EQ(a.mean_total, b.mean_total);
  EXPECT_DOUBLE_EQ(a.final_total, b.final_total);
  EXPECT_DOUBLE_EQ(a.growth_rate, b.growth_rate);
}

TEST(ArrivalSim, EffectiveRatesDriveTrafficIntensity) {
  std::vector<ClassSpec> classes{
      {0.0, exponential_dist(2.0), 1.0, bursty_arrivals(0.6, 5.0)},
      {0.3, exponential_dist(1.0), 1.0}};
  EXPECT_NEAR(queueing::class_arrival_rate(classes[0]), 0.6, 1e-12);
  EXPECT_NEAR(queueing::traffic_intensity(classes), 0.6 * 0.5 + 0.3, 1e-12);
}

TEST(ArrivalSim, Mg1DeterministicUnderMmpp) {
  auto classes = two_class_mix();
  for (auto& c : classes)
    c.arrival = bursty_arrivals(c.arrival_rate, 6.0);
  queueing::SimOptions opt;
  opt.horizon = 2000.0;
  opt.warmup = 200.0;
  opt.discipline = queueing::Discipline::kFcfs;
  Rng r1(11), r2(11);
  const auto a = queueing::simulate_mg1(classes, opt, r1);
  const auto b = queueing::simulate_mg1(classes, opt, r2);
  EXPECT_DOUBLE_EQ(a.cost_rate, b.cost_rate);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(ArrivalSim, Mg1ThroughputMatchesBatchWeightedRate) {
  // A stable queue completes what arrives: per-class throughput must match
  // the batch-weighted process rate, pinning the batch fan-out in the
  // simulator.
  std::vector<ClassSpec> classes{
      {0.0, exponential_dist(4.0), 1.0,
       batch_arrivals_geometric(exponential_dist(0.3), 2.0)}};
  queueing::SimOptions opt;
  opt.horizon = 60000.0;
  opt.warmup = 2000.0;
  opt.discipline = queueing::Discipline::kFcfs;
  Rng rng(5);
  const auto res = queueing::simulate_mg1(classes, opt, rng);
  EXPECT_NEAR(res.per_class[0].throughput, 0.6, 0.03);
  EXPECT_NEAR(res.utilization, 0.6 / 4.0, 0.01);
}

TEST(ArrivalSim, CrnCutsDifferenceVarianceUnderMmpp) {
  // The CRN acceptance regression under correlated input: comparing c-mu
  // against FCFS on the bursty T9 workload, common random numbers must cut
  // the variance of the cost-rate difference by >= 2x versus independent
  // streams — i.e. both arms replay the identical MMPP arrival epochs.
  using namespace stosched::experiment;
  QueueScenario s = queue_scenario("t9-bursty");
  s.horizon = 1500.0;
  s.warmup = 150.0;
  const QueuePolicy fcfs{"fcfs", queueing::Discipline::kFcfs, {}};
  const QueuePolicy cmu{"c-mu", queueing::Discipline::kPriorityNonPreemptive,
                        queueing::cmu_order(s.classes)};
  EngineOptions opt;
  opt.seed = 2027;
  opt.max_replications = 128;
  const auto crn = compare_queue_policies(s, {fcfs, cmu}, opt,
                                          Pairing::kCommonRandomNumbers);
  const auto ind = compare_queue_policies(s, {fcfs, cmu}, opt,
                                          Pairing::kIndependentStreams);
  const double var_crn = crn.diff[0][0].variance();
  const double var_ind = ind.diff[0][0].variance();
  ASSERT_GT(var_ind, 0.0);
  EXPECT_LE(2.0 * var_crn, var_ind)
      << "CRN variance " << var_crn << " vs independent " << var_ind;
  EXPECT_NEAR(crn.diff[0][0].mean(), ind.diff[0][0].mean(),
              4.0 * (crn.diff[0][0].sem() + ind.diff[0][0].sem()));
}

// ---------------------------------------------------------------------------
// CachedGapSampler: the simulators' per-class dispatch cache must replay
// the virtual next_gap path bit-for-bit for every process kind.
// ---------------------------------------------------------------------------

TEST(CachedGapSampler, FlatPathIsBitIdenticalForStatelessProcesses) {
  const ArrivalPtr processes[] = {
      poisson_arrivals(0.7),
      renewal_arrivals(uniform_dist(0.5, 1.5)),
      renewal_arrivals(weibull_dist(1.7, 2.0)),  // via virtual-fallback case
      batch_arrivals(erlang_dist(2, 3.0), 4),
  };
  for (const auto& p : processes) {
    const CachedGapSampler cached(p.get());
    Rng virt_rng(314);
    Rng flat_rng(314);
    ArrivalState virt_st;
    ArrivalState flat_st;
    for (int i = 0; i < 500; ++i) {
      const double expected = p->next_gap(virt_st, virt_rng);
      const double got = cached.next_gap(flat_st, flat_rng);
      ASSERT_EQ(expected, got) << p->kind() << " draw " << i;
    }
    EXPECT_EQ(virt_rng(), flat_rng()) << p->kind();
  }
}

TEST(CachedGapSampler, FastPathCoversExactlyTheStatelessDraws) {
  // Which processes resolve to the flat switch is part of the perf contract:
  // Poisson/renewal/batch epochs are one stateless draw; MMPP gaps depend
  // on the modulating chain and must keep the virtual path.
  EXPECT_TRUE(CachedGapSampler(poisson_arrivals(1.0).get()).flat());
  EXPECT_TRUE(
      CachedGapSampler(renewal_arrivals(deterministic_dist(1.0)).get())
          .flat());
  EXPECT_TRUE(
      CachedGapSampler(batch_arrivals(exponential_dist(1.0), 3).get())
          .flat());
  EXPECT_FALSE(
      CachedGapSampler(mmpp_arrivals(0.5, 4.0, 0.1, 0.4).get()).flat());
}

TEST(CachedGapSampler, MmppVirtualFallbackMatchesDirectCalls) {
  const auto mmpp = mmpp_arrivals(0.5, 4.0, 0.1, 0.4);
  const CachedGapSampler cached(mmpp.get());
  Rng direct_rng(99);
  Rng cached_rng(99);
  ArrivalState direct_st;
  ArrivalState cached_st;
  for (int i = 0; i < 500; ++i)
    ASSERT_EQ(mmpp->next_gap(direct_st, direct_rng),
              cached.next_gap(cached_st, cached_rng));
}

}  // namespace
}  // namespace stosched
